#include "microbench/suite_io.hpp"

#include <cstdio>
#include <stdexcept>

namespace archline::microbench {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void emit_group(report::CsvWriter& csv, const char* group,
                const std::vector<Observation>& obs) {
  for (const Observation& o : obs)
    csv.add_row({group, o.kernel.label, num(o.kernel.flops),
                 num(o.kernel.bytes), num(o.kernel.accesses),
                 num(o.seconds), num(o.joules)});
}

}  // namespace

report::CsvWriter suite_to_csv(const SuiteData& data) {
  report::CsvWriter csv(observation_csv_header());
  // idle power rides along as a pseudo-observation.
  if (data.idle_watts > 0.0)
    csv.add_row({"idle", "idle", "0", "0", "0", "1",
                 num(data.idle_watts)});
  emit_group(csv, "dram_sp", data.dram_sp);
  emit_group(csv, "dram_dp", data.dram_dp);
  emit_group(csv, "l1", data.l1);
  emit_group(csv, "l2", data.l2);
  emit_group(csv, "random", data.random);
  return csv;
}

void write_suite_csv(const SuiteData& data,
                     const std::filesystem::path& path) {
  suite_to_csv(data).write_file(path);
}

SuiteData suite_from_csv_rows(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty())
    throw std::runtime_error("suite_from_csv: empty input");
  if (rows.front() != observation_csv_header())
    throw std::runtime_error("suite_from_csv: unexpected header");

  SuiteData data;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != observation_csv_header().size())
      throw std::runtime_error("suite_from_csv: bad row width at line " +
                               std::to_string(i + 1));
    const std::string& group = row[0];
    if (group == "idle") {
      data.idle_watts = std::stod(row[6]);
      continue;
    }
    Observation o;
    o.kernel.label = row[1];
    o.kernel.flops = std::stod(row[2]);
    o.kernel.bytes = std::stod(row[3]);
    o.kernel.accesses = std::stod(row[4]);
    o.seconds = std::stod(row[5]);
    o.joules = std::stod(row[6]);
    if (!(o.seconds > 0.0) || !(o.joules > 0.0))
      throw std::runtime_error("suite_from_csv: non-positive measurement");
    o.watts = o.joules / o.seconds;
    if (o.kernel.accesses > 0.0)
      o.kernel.pattern = core::AccessPattern::Random;

    if (group == "dram_sp") data.dram_sp.push_back(std::move(o));
    else if (group == "dram_dp") {
      o.kernel.precision = core::Precision::Double;
      data.dram_dp.push_back(std::move(o));
    } else if (group == "l1") {
      o.kernel.level = core::MemLevel::L1;
      data.l1.push_back(std::move(o));
    } else if (group == "l2") {
      o.kernel.level = core::MemLevel::L2;
      data.l2.push_back(std::move(o));
    } else if (group == "random") {
      data.random.push_back(std::move(o));
    } else {
      throw std::runtime_error("suite_from_csv: unknown group '" + group +
                               "'");
    }
  }
  return data;
}

SuiteData read_suite_csv(const std::filesystem::path& path) {
  return suite_from_csv_rows(report::read_csv_file(path));
}

}  // namespace archline::microbench
