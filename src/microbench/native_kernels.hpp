#pragma once
// Native (actually-executing) host kernels.
//
// The simulator carries the multi-platform study, but the library keeps a
// real execution path alive: the same three microbenchmark shapes the
// paper uses — an FMA intensity ladder, a streaming triad, and a pointer
// chase — implemented as genuine host loops with wall-clock timing. The
// examples run them to characterize the *host* machine, and tests use
// them to validate the kernel-shape math (flops/bytes accounting) against
// real code.

#include <cstddef>
#include <vector>

#include "core/memory.hpp"
#include "stats/rng.hpp"

namespace archline::microbench {

/// The result of one native kernel run.
struct NativeResult {
  double seconds = 0.0;
  double flops = 0.0;      ///< arithmetic operations performed
  double bytes = 0.0;      ///< memory traffic generated (first-order)
  double accesses = 0.0;   ///< dependent loads (pointer chase only)
  double checksum = 0.0;   ///< value sink; defeats dead-code elimination

  [[nodiscard]] double flops_per_second() const noexcept {
    return seconds > 0.0 ? flops / seconds : 0.0;
  }
  [[nodiscard]] double bytes_per_second() const noexcept {
    return seconds > 0.0 ? bytes / seconds : 0.0;
  }
  [[nodiscard]] double accesses_per_second() const noexcept {
    return seconds > 0.0 ? accesses / seconds : 0.0;
  }
  [[nodiscard]] double intensity() const noexcept {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
};

/// Intensity ladder: for each element loaded, performs `flops_per_element`
/// fused multiply-adds (counted as 2 flop each). `elements` sized by the
/// caller; precision selects float/double. Passes >= 1 repeats the sweep.
[[nodiscard]] NativeResult run_intensity_ladder(std::size_t elements,
                                                int flops_per_element,
                                                core::Precision precision,
                                                int passes = 1);

/// STREAM-style triad a[i] = b[i] + s * c[i] over `elements`; counts
/// 2 flop and 3 words of traffic per element.
[[nodiscard]] NativeResult run_stream_triad(std::size_t elements,
                                            core::Precision precision,
                                            int passes = 1);

/// Pointer chase over a Sattolo cycle of `slots` entries (8 B each),
/// following `steps` dependent loads.
[[nodiscard]] NativeResult run_pointer_chase(std::size_t slots,
                                             std::size_t steps,
                                             stats::Rng& rng);

/// A short calibration: sweeps flops-per-element over `ladder` and returns
/// one result per rung — a native intensity sweep of the host.
[[nodiscard]] std::vector<NativeResult> native_intensity_sweep(
    std::size_t elements, const std::vector<int>& ladder,
    core::Precision precision);

}  // namespace archline::microbench
