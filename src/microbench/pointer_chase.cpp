#include "microbench/pointer_chase.hpp"

#include <stdexcept>

namespace archline::microbench {

sim::KernelDesc random_access_kernel(double accesses,
                                     double working_set_bytes) {
  if (!(accesses > 0.0))
    throw std::invalid_argument("random_access_kernel: accesses must be > 0");
  if (!(working_set_bytes > 0.0))
    throw std::invalid_argument(
        "random_access_kernel: working set must be > 0");
  sim::KernelDesc k;
  k.label = "pointer chase";
  k.accesses = accesses;
  // Each access touches one cache line; byte traffic is implied by the
  // access count, so Q stays 0 and costs come from the random-access path.
  k.pattern = core::AccessPattern::Random;
  k.level = core::MemLevel::DRAM;
  k.working_set_bytes = working_set_bytes;
  return k;
}

std::vector<std::size_t> sattolo_cycle(std::size_t n, stats::Rng& rng) {
  if (n < 2) throw std::invalid_argument("sattolo_cycle: need n >= 2");
  // Start from the identity-successor cycle and shuffle: Sattolo's
  // algorithm permutes so the result is one cycle of length n.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.below(i);  // j in [0, i): never i itself
    std::swap(perm[i], perm[j]);
  }
  // perm is now a cyclic permutation in one-line notation; convert to a
  // successor table: next[perm[k]] = perm[(k+1) % n].
  std::vector<std::size_t> next(n);
  for (std::size_t k = 0; k + 1 < n; ++k) next[perm[k]] = perm[k + 1];
  next[perm[n - 1]] = perm[0];
  return next;
}

bool is_single_cycle(const std::vector<std::size_t>& next) {
  const std::size_t n = next.size();
  if (n == 0) return false;
  std::size_t pos = 0;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    pos = next[pos];
    if (pos >= n || pos == 0) return false;
  }
  return next[pos] == 0;
}

}  // namespace archline::microbench
