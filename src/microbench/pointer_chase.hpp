#pragma once
// The random-access microbenchmark (paper §IV-f): pointer chasing, "as
// might appear in a sparse matrix or other graph computation".
//
// Two halves:
//  * a KernelDesc generator for the simulator (accesses at eps_rand /
//    tau_rand cost);
//  * a real permutation-cycle builder shared with the native benchmark —
//    Sattolo's algorithm yields a single cycle covering all slots, so a
//    chase of N steps is N dependent cache-defeating loads.

#include <cstddef>
#include <vector>

#include "sim/kernel.hpp"
#include "stats/rng.hpp"

namespace archline::microbench {

/// A random-access kernel of `accesses` dependent loads over a working set
/// of `working_set_bytes` (both positive).
[[nodiscard]] sim::KernelDesc random_access_kernel(double accesses,
                                                   double working_set_bytes);

/// Builds a single-cycle permutation of {0..n-1} with Sattolo's algorithm:
/// following next[i] from any start visits every index exactly once before
/// returning. n must be >= 2.
[[nodiscard]] std::vector<std::size_t> sattolo_cycle(std::size_t n,
                                                     stats::Rng& rng);

/// Verifies that `next` is a single n-cycle (every chase from 0 visits all
/// slots). Used by tests and by the native benchmark's self-check.
[[nodiscard]] bool is_single_cycle(const std::vector<std::size_t>& next);

}  // namespace archline::microbench
