#pragma once
// The intensity microbenchmark (paper §IV-e).
//
// Varies operational intensity "nearly continuously, by varying the number
// of floating point operations (single or double) on each word of data
// loaded from main memory". Here that becomes a generator of KernelDescs:
// given a target intensity and data volume, it computes the flops-per-word
// ladder and emits the abstract kernel the simulator executes.

#include <vector>

#include "sim/kernel.hpp"

namespace archline::microbench {

/// Flops performed per loaded word to hit `intensity` [flop/B] at the
/// given precision (intensity * word_bytes, >= 0).
[[nodiscard]] double flops_per_word(double intensity,
                                    core::Precision precision) noexcept;

/// A streaming kernel of `bytes` total traffic at `intensity`, hitting
/// `level`. `bytes` and `intensity` must be positive.
[[nodiscard]] sim::KernelDesc intensity_kernel(double intensity,
                                               double bytes,
                                               core::Precision precision,
                                               core::MemLevel level);

/// The paper's intensity grid: log2-spaced from `lo` to `hi` flop:Byte.
[[nodiscard]] std::vector<double> default_intensity_grid(
    double lo = 1.0 / 8.0, double hi = 512.0, int points_per_octave = 2);

/// Sizes the data volume so the kernel's ideal runtime on a machine with
/// the given costs is about `target_seconds` (keeps every measurement long
/// enough to sample and short enough to sweep). All arguments positive;
/// `delta_pi` may be core::kUncapped.
[[nodiscard]] double bytes_for_duration(double intensity, double tau_flop,
                                        double eps_flop, double tau_byte,
                                        double eps_byte, double delta_pi,
                                        double target_seconds);

}  // namespace archline::microbench
