#include "microbench/parallel.hpp"

#include <atomic>
#include <functional>
#include <thread>

#include "sim/factory.hpp"

namespace archline::microbench {

std::uint64_t campaign_seed(std::uint64_t base_seed,
                            const std::string& platform_name) {
  return base_seed ^ std::hash<std::string>{}(platform_name);
}

std::vector<SuiteData> run_campaign(
    std::span<const platforms::PlatformSpec> specs,
    const SuiteOptions& options, std::uint64_t base_seed, unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(specs.size()));

  std::vector<SuiteData> results(specs.size());
  std::atomic<std::size_t> next{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) return;
      const sim::SimMachine machine = sim::make_machine(specs[i]);
      stats::Rng rng(campaign_seed(base_seed, specs[i].name));
      results[i] = run_suite(machine, options, rng);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

}  // namespace archline::microbench
