#pragma once
// Machine-level parallel campaign execution.
//
// Each platform's campaign is independent, so the twelve campaigns fan
// out across std::thread workers (the paper ran its platforms one rig at
// a time; we can afford better). Determinism is preserved: every
// platform derives its RNG stream from the campaign seed and its own
// name, never from scheduling order — the parallel result is
// bit-identical to the serial one (tested).

#include <cstdint>
#include <span>
#include <vector>

#include "microbench/suite.hpp"
#include "platforms/spec.hpp"

namespace archline::microbench {

/// Seed derivation used for both serial and parallel campaign runs.
[[nodiscard]] std::uint64_t campaign_seed(std::uint64_t base_seed,
                                          const std::string& platform_name);

/// Runs the suite on each platform, using up to `threads` workers
/// (0 = hardware concurrency). Results are in input order.
[[nodiscard]] std::vector<SuiteData> run_campaign(
    std::span<const platforms::PlatformSpec> specs,
    const SuiteOptions& options, std::uint64_t base_seed,
    unsigned threads = 0);

}  // namespace archline::microbench
