#include "microbench/intensity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/analysis.hpp"

namespace archline::microbench {

double flops_per_word(double intensity, core::Precision precision) noexcept {
  return intensity * core::word_bytes(precision);
}

sim::KernelDesc intensity_kernel(double intensity, double bytes,
                                 core::Precision precision,
                                 core::MemLevel level) {
  if (!(intensity > 0.0))
    throw std::invalid_argument("intensity_kernel: intensity must be > 0");
  if (!(bytes > 0.0))
    throw std::invalid_argument("intensity_kernel: bytes must be > 0");
  sim::KernelDesc k;
  k.label = std::string("intensity I=") + std::to_string(intensity) + " " +
            core::to_string(precision) + " " + core::to_string(level);
  k.flops = intensity * bytes;
  k.bytes = bytes;
  k.level = level;
  k.pattern = core::AccessPattern::Streaming;
  k.precision = precision;
  k.working_set_bytes = bytes;
  return k;
}

std::vector<double> default_intensity_grid(double lo, double hi,
                                           int points_per_octave) {
  return core::intensity_grid(lo, hi, points_per_octave);
}

double bytes_for_duration(double intensity, double tau_flop, double eps_flop,
                          double tau_byte, double eps_byte, double delta_pi,
                          double target_seconds) {
  if (!(intensity > 0.0) || !(target_seconds > 0.0))
    throw std::invalid_argument("bytes_for_duration: bad arguments");
  // Time per byte of traffic at intensity I:
  //   max(I * tau_flop, tau_byte, (I * eps_flop + eps_byte) / delta_pi).
  const double per_byte_free = std::max(intensity * tau_flop, tau_byte);
  const double per_byte_cap =
      delta_pi == core::kUncapped
          ? 0.0
          : (intensity * eps_flop + eps_byte) / delta_pi;
  const double per_byte = std::max(per_byte_free, per_byte_cap);
  return target_seconds / per_byte;
}

}  // namespace archline::microbench
