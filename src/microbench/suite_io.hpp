#pragma once
// CSV interchange for measured observations.
//
// Writes SuiteData observation groups in the same flops,bytes,seconds,
// joules layout the fit_from_csv example consumes, so any measurement —
// simulated here or collected on real hardware elsewhere — flows through
// the same fitting pipeline. The loader is the inverse.

#include <filesystem>

#include "microbench/suite.hpp"
#include "report/csv.hpp"

namespace archline::microbench {

/// Column header shared by writer and loader.
inline const std::vector<std::string>& observation_csv_header() {
  static const std::vector<std::string> kHeader = {
      "group", "label", "flops", "bytes", "accesses", "seconds", "joules"};
  return kHeader;
}

/// Serializes every observation group of a suite (group column:
/// dram_sp / dram_dp / l1 / l2 / random) plus an idle_watts comment row.
[[nodiscard]] report::CsvWriter suite_to_csv(const SuiteData& data);

/// Writes the suite to a file (creating directories as needed).
void write_suite_csv(const SuiteData& data,
                     const std::filesystem::path& path);

/// Parses rows produced by suite_to_csv back into a SuiteData (platform
/// name is not stored; measured watts are reconstructed as J/s; the
/// simulator-only diagnostic fields are defaulted). Throws
/// std::runtime_error on malformed input.
[[nodiscard]] SuiteData suite_from_csv_rows(
    const std::vector<std::vector<std::string>>& rows);

/// Reads a suite CSV file.
[[nodiscard]] SuiteData read_suite_csv(const std::filesystem::path& path);

}  // namespace archline::microbench
