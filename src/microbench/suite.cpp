#include "microbench/suite.hpp"

#include <algorithm>

#include "microbench/cache_bench.hpp"
#include "microbench/intensity.hpp"
#include "microbench/pointer_chase.hpp"
#include "powermon/sampler.hpp"

namespace archline::microbench {

std::vector<const Observation*> SuiteData::all() const {
  std::vector<const Observation*> out;
  out.reserve(total_observations());
  for (const auto* group : {&dram_sp, &dram_dp, &l1, &l2, &random})
    for (const Observation& o : *group) out.push_back(&o);
  return out;
}

std::size_t SuiteData::total_observations() const noexcept {
  return dram_sp.size() + dram_dp.size() + l1.size() + l2.size() +
         random.size();
}

std::vector<Observation> measure_kernel(
    const sim::SimMachine& machine, const sim::KernelDesc& kernel,
    int repeats, const powermon::SamplerConfig& sampler, stats::Rng& rng) {
  std::vector<Observation> out;
  out.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const sim::RunResult run = machine.run(kernel, rng);
    const powermon::SampledCapture sampled =
        powermon::sample(run.capture, sampler, rng);
    const powermon::Measurement m = powermon::integrate_mean(sampled);
    Observation o;
    o.kernel = kernel;
    o.seconds = m.seconds;
    o.joules = m.joules;
    o.watts = m.avg_watts;
    o.true_regime = run.regime;
    o.true_utilization = run.utilization;
    out.push_back(std::move(o));
  }
  return out;
}

namespace {

void append(std::vector<Observation>& dst, std::vector<Observation>&& src) {
  dst.insert(dst.end(), std::make_move_iterator(src.begin()),
             std::make_move_iterator(src.end()));
}

std::vector<Observation> intensity_sweep(
    const sim::SimMachine& machine, const std::vector<double>& intensities,
    core::Precision precision, const SuiteOptions& opt, stats::Rng& rng) {
  std::vector<Observation> out;
  const sim::SimConfig& cfg = machine.config();
  const sim::FlopCosts& fc =
      precision == core::Precision::Single ? cfg.sp : cfg.dp.value();
  for (const double intensity : intensities) {
    const double bytes = bytes_for_duration(
        intensity, fc.tau, fc.eps, cfg.dram.tau_byte, cfg.dram.eps_byte,
        cfg.delta_pi, opt.target_seconds);
    const sim::KernelDesc k =
        intensity_kernel(intensity, bytes, precision, core::MemLevel::DRAM);
    append(out, measure_kernel(machine, k, opt.repeats, opt.sampler, rng));
  }
  return out;
}

}  // namespace

SuiteData run_suite(const sim::SimMachine& machine,
                    const SuiteOptions& options, stats::Rng& rng) {
  SuiteOptions opt = options;
  if (opt.intensities.empty()) opt.intensities = default_intensity_grid();

  SuiteData data;
  data.platform = machine.name();

  if (opt.include_idle) {
    const powermon::Capture idle =
        machine.idle_capture(opt.target_seconds, rng);
    const powermon::SampledCapture sampled =
        powermon::sample(idle, opt.sampler, rng);
    data.idle_watts = powermon::integrate_mean(sampled).avg_watts;
  }

  data.dram_sp = intensity_sweep(machine, opt.intensities,
                                 core::Precision::Single, opt, rng);

  if (opt.include_double && machine.config().dp)
    data.dram_dp = intensity_sweep(machine, opt.intensities,
                                   core::Precision::Double, opt, rng);

  if (opt.include_caches) {
    for (const core::MemLevel level :
         {core::MemLevel::L1, core::MemLevel::L2}) {
      const bool present = level == core::MemLevel::L1
                               ? machine.config().l1.has_value()
                               : machine.config().l2.has_value();
      if (!present) continue;
      auto kernels = cache_sweep(machine, level, opt.intensities,
                                 core::Precision::Single,
                                 opt.target_seconds);
      std::vector<Observation>& dst =
          level == core::MemLevel::L1 ? data.l1 : data.l2;
      for (const sim::KernelDesc& k : kernels)
        append(dst, measure_kernel(machine, k, opt.repeats, opt.sampler, rng));
    }
  }

  if (opt.include_random && machine.config().random) {
    const double accesses =
        opt.target_seconds / machine.config().random->tau_access;
    const sim::KernelDesc k =
        random_access_kernel(accesses, 256.0 * 1024 * 1024);
    append(data.random,
           measure_kernel(machine, k, opt.repeats, opt.sampler, rng));
  }

  return data;
}

}  // namespace archline::microbench
