#pragma once
// Automated "hand-tuning" (paper §IV-e).
//
// The authors hand-tuned each platform's microbenchmarks — unrolling, FMA,
// instruction mix, prefetching, assembly — until they got "as close to the
// vendor's claimed peak as we could manage". We reproduce that as a search
// over sim::TuneConfig against the platform's pipeline-efficiency
// landscape; the winner's achieved throughput is the "sustained peak" the
// rest of the pipeline uses.

#include <vector>

#include "sim/pipeline_model.hpp"

namespace archline::microbench {

struct TuneResult {
  sim::TuneConfig config;       ///< best configuration found
  double efficiency = 0.0;      ///< fraction of vendor peak achieved
  double throughput = 0.0;      ///< flop/s or B/s at the optimum
  int evaluated = 0;            ///< configurations tried
};

/// The discrete configuration space the search enumerates (unroll powers
/// of two up to max_unroll, vector widths powers of two up to max_vector,
/// all boolean knobs).
[[nodiscard]] std::vector<sim::TuneConfig> tuning_space(
    const sim::TuningTraits& traits);

/// Finds the flop-side optimum for a platform at the given precision.
[[nodiscard]] TuneResult tune_flops(const platforms::PlatformSpec& spec,
                                    core::Precision precision);

/// Finds the memory-side (streaming bandwidth) optimum.
[[nodiscard]] TuneResult tune_bandwidth(const platforms::PlatformSpec& spec);

}  // namespace archline::microbench
