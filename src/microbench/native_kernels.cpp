#include "microbench/native_kernels.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "microbench/pointer_chase.hpp"

namespace archline::microbench {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The inner ladder: k FMA rungs on a loaded value with per-rung constants
/// chosen so the result stays bounded (multipliers near 1).
template <typename T>
T ladder_element(T x, int k) {
  T acc = x;
  const T mul = static_cast<T>(1.0000001);
  const T add = static_cast<T>(1e-7);
  for (int i = 0; i < k; ++i) acc = acc * mul + add;
  return acc;
}

template <typename T>
NativeResult intensity_ladder_impl(std::size_t elements, int flops_per_element,
                                   int passes) {
  if (elements == 0) throw std::invalid_argument("intensity ladder: empty");
  if (flops_per_element < 1 || passes < 1)
    throw std::invalid_argument("intensity ladder: bad parameters");
  std::vector<T> data(elements);
  for (std::size_t i = 0; i < elements; ++i)
    data[i] = static_cast<T>(1.0) + static_cast<T>(i % 97) * static_cast<T>(1e-3);

  // Each rung is one FMA = 2 flop.
  const int rungs = std::max(1, flops_per_element / 2);
  T sink = 0;
  const auto t0 = Clock::now();
  for (int p = 0; p < passes; ++p) {
    T acc = 0;
    for (std::size_t i = 0; i < elements; ++i)
      acc += ladder_element(data[i], rungs);
    sink += acc;
  }
  const auto t1 = Clock::now();

  NativeResult r;
  r.seconds = elapsed_seconds(t0, t1);
  r.flops = 2.0 * rungs * static_cast<double>(elements) * passes;
  r.bytes = static_cast<double>(sizeof(T)) * static_cast<double>(elements) *
            passes;
  r.checksum = static_cast<double>(sink);
  return r;
}

template <typename T>
NativeResult stream_triad_impl(std::size_t elements, int passes) {
  if (elements == 0) throw std::invalid_argument("stream triad: empty");
  if (passes < 1) throw std::invalid_argument("stream triad: bad passes");
  std::vector<T> a(elements, T{0});
  std::vector<T> b(elements);
  std::vector<T> c(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    b[i] = static_cast<T>(i % 13) * static_cast<T>(0.5);
    c[i] = static_cast<T>(i % 7) * static_cast<T>(0.25);
  }
  const T scalar = static_cast<T>(3.0);

  const auto t0 = Clock::now();
  for (int p = 0; p < passes; ++p)
    for (std::size_t i = 0; i < elements; ++i)
      a[i] = b[i] + scalar * c[i];
  const auto t1 = Clock::now();

  NativeResult r;
  r.seconds = elapsed_seconds(t0, t1);
  r.flops = 2.0 * static_cast<double>(elements) * passes;
  r.bytes = 3.0 * static_cast<double>(sizeof(T)) *
            static_cast<double>(elements) * passes;
  r.checksum = static_cast<double>(a[elements / 2]);
  return r;
}

}  // namespace

NativeResult run_intensity_ladder(std::size_t elements, int flops_per_element,
                                  core::Precision precision, int passes) {
  return precision == core::Precision::Single
             ? intensity_ladder_impl<float>(elements, flops_per_element,
                                            passes)
             : intensity_ladder_impl<double>(elements, flops_per_element,
                                             passes);
}

NativeResult run_stream_triad(std::size_t elements, core::Precision precision,
                              int passes) {
  return precision == core::Precision::Single
             ? stream_triad_impl<float>(elements, passes)
             : stream_triad_impl<double>(elements, passes);
}

NativeResult run_pointer_chase(std::size_t slots, std::size_t steps,
                               stats::Rng& rng) {
  if (slots < 2) throw std::invalid_argument("pointer chase: need >= 2 slots");
  if (steps == 0) throw std::invalid_argument("pointer chase: zero steps");
  const std::vector<std::size_t> next = sattolo_cycle(slots, rng);

  std::size_t pos = 0;
  const auto t0 = Clock::now();
  for (std::size_t s = 0; s < steps; ++s) pos = next[pos];
  const auto t1 = Clock::now();

  NativeResult r;
  r.seconds = elapsed_seconds(t0, t1);
  r.accesses = static_cast<double>(steps);
  r.bytes = static_cast<double>(steps) * sizeof(std::size_t);
  r.checksum = static_cast<double>(pos);
  return r;
}

std::vector<NativeResult> native_intensity_sweep(
    std::size_t elements, const std::vector<int>& ladder,
    core::Precision precision) {
  std::vector<NativeResult> out;
  out.reserve(ladder.size());
  for (const int k : ladder)
    out.push_back(run_intensity_ladder(elements, k, precision));
  return out;
}

}  // namespace archline::microbench
