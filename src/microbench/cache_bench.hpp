#pragma once
// Cache microbenchmarks (paper §IV-g): streaming kernels whose working set
// is sized to fit a target level of the memory hierarchy.
//
// "We need only ensure the data set size is small enough to fit into the
// target cache level." On GPUs the L1 slot maps to shared memory /
// scratchpad, which the sim::factory encodes in its level table.

#include <vector>

#include "sim/machine.hpp"

namespace archline::microbench {

/// Working-set size used to target a level on this machine: half the
/// level's capacity (comfortably resident), or the full capacity default
/// for DRAM-class kernels. Throws if the machine lacks the level.
[[nodiscard]] double working_set_for_level(const sim::SimMachine& machine,
                                           core::MemLevel level);

/// A streaming sweep over `intensities` with traffic sized for
/// `target_seconds` per point, bound to `level`. Kernels whose working set
/// exceeds the level capacity are never produced.
[[nodiscard]] std::vector<sim::KernelDesc> cache_sweep(
    const sim::SimMachine& machine, core::MemLevel level,
    const std::vector<double>& intensities, core::Precision precision,
    double target_seconds);

/// Pure-bandwidth kernel (tiny flop count) for a level; measures the
/// level's sustainable bandwidth and energy per byte.
[[nodiscard]] sim::KernelDesc bandwidth_kernel(const sim::SimMachine& machine,
                                               core::MemLevel level,
                                               double target_seconds);

}  // namespace archline::microbench
