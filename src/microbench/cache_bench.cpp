#include "microbench/cache_bench.hpp"

#include <algorithm>
#include <stdexcept>

#include "microbench/intensity.hpp"

namespace archline::microbench {

double working_set_for_level(const sim::SimMachine& machine,
                             core::MemLevel level) {
  const sim::LevelCosts& costs = machine.level_costs(level);
  if (level == core::MemLevel::DRAM) return 64.0 * 1024 * 1024;
  if (!(costs.capacity_bytes > 0.0))
    throw std::invalid_argument(machine.name() +
                                ": level has no capacity configured");
  return 0.5 * costs.capacity_bytes;
}

std::vector<sim::KernelDesc> cache_sweep(
    const sim::SimMachine& machine, core::MemLevel level,
    const std::vector<double>& intensities, core::Precision precision,
    double target_seconds) {
  const sim::LevelCosts& costs = machine.level_costs(level);
  const sim::FlopCosts& fc = precision == core::Precision::Single
                                 ? machine.config().sp
                                 : machine.config().dp.value();
  const double ws = working_set_for_level(machine, level);

  std::vector<sim::KernelDesc> kernels;
  kernels.reserve(intensities.size());
  for (const double intensity : intensities) {
    const double bytes = bytes_for_duration(
        intensity, fc.tau, fc.eps, costs.tau_byte, costs.eps_byte,
        machine.config().delta_pi, target_seconds);
    sim::KernelDesc k = intensity_kernel(intensity, bytes, precision, level);
    // Total traffic may exceed the working set (many passes over the same
    // resident data), but the footprint never does.
    k.working_set_bytes = std::min(bytes, ws);
    kernels.push_back(std::move(k));
  }
  return kernels;
}

sim::KernelDesc bandwidth_kernel(const sim::SimMachine& machine,
                                 core::MemLevel level,
                                 double target_seconds) {
  const sim::LevelCosts& costs = machine.level_costs(level);
  const double bytes = target_seconds / costs.tau_byte;
  // A whisper of flops keeps the kernel shaped like the intensity
  // benchmark's lowest rung without leaving the memory-bound regime.
  const double intensity = 1.0 / 1024.0;
  sim::KernelDesc k = intensity_kernel(intensity, bytes,
                                       core::Precision::Single, level);
  k.label = std::string("bandwidth ") + core::to_string(level);
  k.working_set_bytes = working_set_for_level(machine, level);
  return k;
}

}  // namespace archline::microbench
