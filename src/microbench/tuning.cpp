#include "microbench/tuning.hpp"

namespace archline::microbench {

std::vector<sim::TuneConfig> tuning_space(const sim::TuningTraits& traits) {
  std::vector<sim::TuneConfig> space;
  for (int unroll = 1; unroll <= traits.max_unroll; unroll *= 2) {
    for (int vw = 1; vw <= traits.max_vector; vw *= 2) {
      for (const bool fma : {false, true}) {
        for (const bool prefetch : {false, true}) {
          for (const bool asm_tuned : {false, true}) {
            space.push_back(sim::TuneConfig{.unroll = unroll, .fma = fma,
                                            .vector_width = vw,
                                            .prefetch = prefetch,
                                            .asm_tuned = asm_tuned});
          }
        }
      }
    }
  }
  return space;
}

namespace {

template <typename EfficiencyFn>
TuneResult search(const sim::TuningTraits& traits, double vendor_peak,
                  EfficiencyFn&& efficiency) {
  TuneResult best;
  for (const sim::TuneConfig& c : tuning_space(traits)) {
    const double eff = efficiency(traits, c);
    ++best.evaluated;
    if (eff > best.efficiency) {
      best.efficiency = eff;
      best.config = c;
    }
  }
  best.throughput = best.efficiency * vendor_peak;
  return best;
}

}  // namespace

TuneResult tune_flops(const platforms::PlatformSpec& spec,
                      core::Precision precision) {
  const sim::TuningTraits traits = sim::traits_for(spec, precision);
  const double peak = precision == core::Precision::Single
                          ? spec.peak_sp_flops
                          : spec.peak_dp_flops;
  return search(traits, peak, [](const sim::TuningTraits& t,
                                 const sim::TuneConfig& c) {
    return sim::flop_efficiency(t, c);
  });
}

TuneResult tune_bandwidth(const platforms::PlatformSpec& spec) {
  const sim::TuningTraits traits =
      sim::traits_for(spec, core::Precision::Single);
  return search(traits, spec.peak_bandwidth,
                [](const sim::TuningTraits& t, const sim::TuneConfig& c) {
                  return sim::mem_efficiency(t, c);
                });
}

}  // namespace archline::microbench
