#pragma once
// The full microbenchmark campaign for one platform (paper §IV/§V-A):
// intensity sweeps against DRAM (single and double precision), cache-level
// sweeps, pure-bandwidth kernels per level, and the pointer chase — each
// executed on the simulated machine, captured by the simulated PowerMon 2,
// and reduced to (time, energy, power) Measurements.

#include <string>
#include <vector>

#include "powermon/integrator.hpp"
#include "sim/machine.hpp"
#include "stats/rng.hpp"

namespace archline::microbench {

/// One measured data point: the kernel that ran and what the measurement
/// stack reported. `regime`/`utilization` carry simulator ground truth for
/// diagnostics; the fitting pipeline must not use them.
struct Observation {
  sim::KernelDesc kernel;
  double seconds = 0.0;
  double joules = 0.0;
  double watts = 0.0;
  core::Regime true_regime = core::Regime::Compute;
  double true_utilization = 1.0;

  [[nodiscard]] double intensity() const noexcept {
    return kernel.intensity();
  }
  /// Measured performance W / t [flop/s].
  [[nodiscard]] double flops_per_second() const noexcept {
    return kernel.flops / seconds;
  }
  /// Measured energy efficiency W / E [flop/J].
  [[nodiscard]] double flops_per_joule() const noexcept {
    return kernel.flops / joules;
  }
};

struct SuiteOptions {
  std::vector<double> intensities;  ///< empty = default grid 1/8..512
  int repeats = 3;                  ///< runs per kernel
  double target_seconds = 0.25;     ///< per-run duration target
  bool include_double = true;
  bool include_caches = true;
  bool include_random = true;
  bool include_idle = true;         ///< measure idle power first
  powermon::SamplerConfig sampler;
};

/// Everything measured on one platform.
struct SuiteData {
  std::string platform;
  double idle_watts = 0.0;            ///< measured idle power (0 = not run)
  std::vector<Observation> dram_sp;   ///< intensity sweep, DRAM, single
  std::vector<Observation> dram_dp;   ///< intensity sweep, DRAM, double
  std::vector<Observation> l1;        ///< cache sweep, L1/scratchpad
  std::vector<Observation> l2;        ///< cache sweep, L2
  std::vector<Observation> random;    ///< pointer chase

  [[nodiscard]] std::vector<const Observation*> all() const;
  [[nodiscard]] std::size_t total_observations() const noexcept;
};

/// Executes one kernel `repeats` times through the sim -> sampler ->
/// integrator path.
[[nodiscard]] std::vector<Observation> measure_kernel(
    const sim::SimMachine& machine, const sim::KernelDesc& kernel,
    int repeats, const powermon::SamplerConfig& sampler, stats::Rng& rng);

/// Runs the full campaign on a machine.
[[nodiscard]] SuiteData run_suite(const sim::SimMachine& machine,
                                  const SuiteOptions& options,
                                  stats::Rng& rng);

}  // namespace archline::microbench
