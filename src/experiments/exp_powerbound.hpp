#pragma once
// Experiment X2: the §V-D power-bounding scenario.
//
// "Suppose that, in a system based on GTX Titan nodes, it is necessary to
// reduce per-node power by half, to 140 Watts per node." The big block is
// capped down to the bound; small blocks are aggregated up to it; they are
// compared at a bandwidth-bound intensity (the paper uses I = 0.25).

#include <string>
#include <vector>

#include "core/scenarios.hpp"

namespace archline::experiments {

struct PowerBoundOptions {
  std::string big_platform = "GTX Titan";
  std::string small_platform = "Arndale GPU";
  double bound_watts = 140.0;
  double intensity = 0.25;
};

struct PowerBoundResult {
  PowerBoundOptions options;
  core::PowerBoundComparison comparison;
  /// For context: the unbounded Fig. 1 best-case speedup at the same
  /// intensity (power-matched aggregate vs uncapped big block).
  double unbounded_speedup = 0.0;
  int unbounded_count = 0;
};

[[nodiscard]] PowerBoundResult run_powerbound(const PowerBoundOptions&
                                                  options = {});

/// Sweep of bounds (for the bench's sensitivity table).
[[nodiscard]] std::vector<PowerBoundResult> run_powerbound_sweep(
    const PowerBoundOptions& base, const std::vector<double>& bounds);

}  // namespace archline::experiments
