#pragma once
// Experiments F6/F7a/F7b: Figs. 6 and 7 — hypothetical power, performance,
// and energy efficiency as the usable power cap shrinks to delta_pi / k,
// k in {1, 2, 4, 8}, across all twelve platforms.

#include <string>
#include <vector>

#include "core/scenarios.hpp"

namespace archline::experiments {

struct ThrottlePanel {
  std::string platform;
  std::vector<double> cap_divisors;            ///< {1, 2, 4, 8}
  std::vector<core::ThrottlePoint> points;     ///< divisors x intensities
  double power_reduction_at_max_divisor = 0.0; ///< actual power shrink at k=8
};

struct ThrottleResult {
  std::vector<ThrottlePanel> panels;  ///< Fig. 5 panel order
  std::string most_reconfigurable;    ///< largest power shrink at k=8
  std::string least_reconfigurable;   ///< smallest power shrink at k=8
};

struct ThrottleOptions {
  std::vector<double> cap_divisors = {1.0, 2.0, 4.0, 8.0};
  double intensity_lo = 1.0 / 4.0;
  double intensity_hi = 128.0;
  int points_per_octave = 2;
};

[[nodiscard]] ThrottleResult run_throttle_study(const ThrottleOptions&
                                                    options = {});

/// Relative performance of one platform at (intensity, divisor k) compared
/// to its full-cap performance — the quantity Fig. 7a normalizes. Helper
/// for tests and the §V-D scenario.
[[nodiscard]] double throttled_perf_ratio(const core::MachineParams& m,
                                          double intensity, double k);

}  // namespace archline::experiments
