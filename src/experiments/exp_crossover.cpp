#include "experiments/exp_crossover.hpp"

#include "core/analysis.hpp"
#include "core/kernels.hpp"
#include "platforms/platform_db.hpp"

namespace archline::experiments {

CrossoverMatrix run_crossover_matrix(const CrossoverOptions& options) {
  CrossoverMatrix m;
  m.metric = options.metric;
  m.platforms = platforms::platform_names();

  // The low-end metric values feed every pair's row_wins_low check:
  // evaluate them once per PLATFORM through the machine-batch kernel
  // (N evaluations) instead of twice per ordered pair (2*N*(N-1)).
  const std::size_t count = m.platforms.size();
  std::vector<core::MachineParams> machines;
  machines.reserve(count);
  for (const std::string& name : m.platforms)
    machines.push_back(platforms::platform(name).machine());
  std::vector<double> value_lo(count);
  core::metric_value_machines(machines, options.metric, options.intensity_lo,
                              value_lo.data());

  for (std::size_t row = 0; row < count; ++row) {
    for (std::size_t col = 0; col < count; ++col) {
      if (row == col) continue;
      CrossoverCell cell;
      cell.row_platform = m.platforms[row];
      cell.col_platform = m.platforms[col];
      // The bisection itself stays scalar: it is a serial root search
      // whose 200 data-dependent steps cannot batch across the pair.
      const double crossing = core::crossover_intensity(
          machines[row], machines[col], options.metric, options.intensity_lo,
          options.intensity_hi);
      cell.row_wins_low = value_lo[row] > value_lo[col];
      if (crossing > 0.0) {
        cell.crossover = crossing;
        ++m.pairs_with_crossover;
      } else {
        ++m.pairs_dominated;
      }
      m.cells.push_back(std::move(cell));
    }
  }
  return m;
}

std::vector<ParetoPoint> run_pareto_frontier(double intensity_lo,
                                             double intensity_hi,
                                             int points_per_octave) {
  const std::vector<double> grid =
      core::intensity_grid(intensity_lo, intensity_hi, points_per_octave);

  // Platform-major evaluation: one metric_curves call per platform
  // covers the whole grid (performance and efficiency in the same
  // pass), then the per-intensity dominance checks read the columns.
  std::vector<std::string> names;
  std::vector<core::MetricCurve> curves;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    names.push_back(spec.name);
    core::MetricCurve curve;
    core::metric_curves(spec.machine(), grid, curve);
    curves.push_back(std::move(curve));
  }

  std::vector<ParetoPoint> out;
  out.reserve(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    ParetoPoint p;
    p.intensity = grid[g];
    for (std::size_t i = 0; i < names.size(); ++i) {
      const double perf = curves[i].performance[g];
      const double eff = curves[i].efficiency[g];
      bool dominated = false;
      for (std::size_t j = 0; j < names.size(); ++j) {
        if (j == i) continue;
        const double operf = curves[j].performance[g];
        const double oeff = curves[j].efficiency[g];
        if (operf >= perf && oeff >= eff && (operf > perf || oeff > eff)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) p.frontier.push_back(names[i]);
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace archline::experiments
