#include "experiments/exp_crossover.hpp"

#include "core/analysis.hpp"
#include "platforms/platform_db.hpp"

namespace archline::experiments {

CrossoverMatrix run_crossover_matrix(const CrossoverOptions& options) {
  CrossoverMatrix m;
  m.metric = options.metric;
  m.platforms = platforms::platform_names();

  for (const std::string& row : m.platforms) {
    const core::MachineParams a = platforms::platform(row).machine();
    for (const std::string& col : m.platforms) {
      if (row == col) continue;
      const core::MachineParams b = platforms::platform(col).machine();
      CrossoverCell cell;
      cell.row_platform = row;
      cell.col_platform = col;
      const double crossing = core::crossover_intensity(
          a, b, options.metric, options.intensity_lo,
          options.intensity_hi);
      cell.row_wins_low =
          core::metric_value(a, options.metric, options.intensity_lo) >
          core::metric_value(b, options.metric, options.intensity_lo);
      if (crossing > 0.0) {
        cell.crossover = crossing;
        ++m.pairs_with_crossover;
      } else {
        ++m.pairs_dominated;
      }
      m.cells.push_back(std::move(cell));
    }
  }
  return m;
}

std::vector<ParetoPoint> run_pareto_frontier(double intensity_lo,
                                             double intensity_hi,
                                             int points_per_octave) {
  const std::vector<double> grid =
      core::intensity_grid(intensity_lo, intensity_hi, points_per_octave);
  std::vector<ParetoPoint> out;
  out.reserve(grid.size());

  struct Candidate {
    std::string name;
    double perf = 0.0;
    double eff = 0.0;
  };

  for (const double intensity : grid) {
    std::vector<Candidate> cands;
    for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
      const core::MachineParams m = spec.machine();
      cands.push_back(Candidate{.name = spec.name,
                                .perf = core::performance(m, intensity),
                                .eff = core::energy_efficiency(m, intensity)});
    }
    ParetoPoint p;
    p.intensity = intensity;
    for (const Candidate& c : cands) {
      bool dominated = false;
      for (const Candidate& other : cands) {
        if (&other == &c) continue;
        if (other.perf >= c.perf && other.eff >= c.eff &&
            (other.perf > c.perf || other.eff > c.eff)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) p.frontier.push_back(c.name);
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace archline::experiments
