#include "experiments/exp_cache_roofline.hpp"

#include "core/analysis.hpp"
#include "core/roofline.hpp"
#include "microbench/cache_bench.hpp"
#include "microbench/intensity.hpp"
#include "microbench/parallel.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace archline::experiments {

std::vector<double> CacheRooflinePlatform::ridge_points() const {
  std::vector<double> ridges;
  ridges.reserve(levels.size());
  for (const CacheRooflineLevel& l : levels)
    ridges.push_back(l.machine.time_balance());
  return ridges;
}

namespace {

CacheRooflineLevel build_level(const platforms::PlatformSpec& spec,
                               core::MemLevel level,
                               const std::vector<double>& grid) {
  CacheRooflineLevel out;
  out.level = level;
  out.machine = spec.machine_at_level(level);
  out.points.reserve(grid.size());
  for (const double intensity : grid) {
    CacheRooflinePoint p;
    p.intensity = intensity;
    p.model_perf = core::performance(out.machine, intensity);
    p.model_efficiency = core::energy_efficiency(out.machine, intensity);
    out.points.push_back(p);
  }
  return out;
}

void attach_measurements(CacheRooflineLevel& lvl,
                         const sim::SimMachine& machine,
                         const std::vector<double>& grid,
                         const microbench::SuiteOptions& opt,
                         stats::Rng& rng) {
  const auto kernels =
      lvl.level == core::MemLevel::DRAM
          ? [&] {
              std::vector<sim::KernelDesc> ks;
              const sim::SimConfig& cfg = machine.config();
              for (const double intensity : grid)
                ks.push_back(microbench::intensity_kernel(
                    intensity,
                    microbench::bytes_for_duration(
                        intensity, cfg.sp.tau, cfg.sp.eps,
                        cfg.dram.tau_byte, cfg.dram.eps_byte, cfg.delta_pi,
                        opt.target_seconds),
                    core::Precision::Single, core::MemLevel::DRAM));
              return ks;
            }()
          : microbench::cache_sweep(machine, lvl.level, grid,
                                    core::Precision::Single,
                                    opt.target_seconds);
  for (std::size_t i = 0; i < kernels.size() && i < lvl.points.size();
       ++i) {
    const auto obs = microbench::measure_kernel(machine, kernels[i], 1,
                                                opt.sampler, rng);
    lvl.points[i].measured_perf = obs[0].flops_per_second();
    lvl.points[i].measured_efficiency = obs[0].flops_per_joule();
  }
}

}  // namespace

CacheRooflinePlatform run_cache_roofline(
    const std::string& platform, const CacheRooflineOptions& options) {
  const platforms::PlatformSpec& spec = platforms::platform(platform);
  const std::vector<double> grid = core::intensity_grid(
      options.intensity_lo, options.intensity_hi, options.points_per_octave);

  CacheRooflinePlatform out;
  out.platform = spec.name;
  for (const core::MemLevel level :
       {core::MemLevel::L1, core::MemLevel::L2, core::MemLevel::DRAM}) {
    if (!spec.has_level(level)) continue;
    out.levels.push_back(build_level(spec, level, grid));
  }

  if (options.with_measurements) {
    const sim::SimMachine machine = sim::make_machine(spec);
    stats::Rng rng(microbench::campaign_seed(options.seed, spec.name));
    microbench::SuiteOptions opt;
    opt.target_seconds = 0.1;
    for (CacheRooflineLevel& lvl : out.levels)
      attach_measurements(lvl, machine, grid, opt, rng);
  }
  return out;
}

std::vector<CacheRooflinePlatform> run_cache_rooflines(
    const CacheRooflineOptions& options) {
  std::vector<CacheRooflinePlatform> out;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    if (!spec.has_level(core::MemLevel::L1) &&
        !spec.has_level(core::MemLevel::L2))
      continue;
    out.push_back(run_cache_roofline(spec.name, options));
  }
  return out;
}

}  // namespace archline::experiments
