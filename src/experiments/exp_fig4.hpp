#pragma once
// Experiment F4: Fig. 4 — power-prediction error distributions of the
// uncapped (prior) vs capped (this paper) model, per platform, with the
// two-sample Kolmogorov-Smirnov significance test.
//
// Pipeline per platform: simulate -> measure -> fit BOTH models to the
// same measurements -> per-observation relative power errors -> compare
// distributions.

#include <cstdint>
#include <string>
#include <vector>

#include "microbench/suite.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/ks_test.hpp"

namespace archline::experiments {

struct Fig4Platform {
  std::string platform;
  std::vector<double> uncapped_errors;  ///< (model-meas)/meas, power
  std::vector<double> capped_errors;
  stats::FiveNumberSummary uncapped_summary;
  stats::FiveNumberSummary capped_summary;
  stats::KsResult ks;
  bool significant = false;          ///< our K-S verdict at p < .05
  bool significant_in_paper = false; ///< the paper's "**" mark

  /// 95% bootstrap confidence intervals on the two medians; when they do
  /// not overlap, the K-S verdict gets independent corroboration.
  stats::BootstrapInterval uncapped_median_ci;
  stats::BootstrapInterval capped_median_ci;
  [[nodiscard]] bool median_cis_disjoint() const noexcept {
    return uncapped_median_ci.lo > capped_median_ci.hi ||
           capped_median_ci.lo > uncapped_median_ci.hi;
  }
};

struct Fig4Result {
  std::vector<Fig4Platform> platforms;  ///< sorted by uncapped median desc
  int improved_count = 0;   ///< platforms where capped median |err| <= uncapped
  int significant_count = 0;
  int paper_significant_count = 0;  ///< 7 in the paper
  int agreement_count = 0;  ///< platforms where our verdict matches the paper
};

struct Fig4Options {
  std::uint64_t seed = 20140519;
  microbench::SuiteOptions suite;
};

[[nodiscard]] Fig4Result run_fig4(const Fig4Options& options = {});

}  // namespace archline::experiments
