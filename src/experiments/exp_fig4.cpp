#include "experiments/exp_fig4.hpp"

#include <algorithm>
#include <cmath>

#include "fit/model_fit.hpp"
#include "microbench/intensity.hpp"
#include "microbench/parallel.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace archline::experiments {

Fig4Result run_fig4(const Fig4Options& options) {
  Fig4Result result;

  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    const sim::SimMachine machine = sim::make_machine(spec);
    stats::Rng rng(microbench::campaign_seed(options.seed, spec.name));
    microbench::SuiteOptions suite_opt = options.suite;
    suite_opt.include_caches = false;  // Fig. 4 uses the DRAM sweep
    suite_opt.include_double = false;
    suite_opt.include_random = false;
    // The paper varies intensity "nearly continuously"; a denser grid
    // gives the K-S test comparable statistical power.
    if (suite_opt.intensities.empty())
      suite_opt.intensities =
          microbench::default_intensity_grid(1.0 / 8.0, 512.0, 3);
    const microbench::SuiteData data =
        microbench::run_suite(machine, suite_opt, rng);

    // The paper's procedure (§V-A): one regression estimates tau_flop,
    // tau_mem, eps_flop, eps_mem, pi1 AND delta_pi; then BOTH models are
    // evaluated with those constants — the "uncapped" model is the capped
    // fit with the delta_pi term dropped, which is what makes it
    // overpredict in the throttled region.
    fit::FitOptions capped_opt;
    capped_opt.kind = fit::ModelKind::Capped;
    capped_opt.idle_watts_hint = data.idle_watts;
    for (const microbench::Observation& o : data.dram_sp)
      capped_opt.max_watts_hint =
          std::max(capped_opt.max_watts_hint, o.watts);
    const fit::FitResult capped = fit::fit_observations(data.dram_sp,
                                                        capped_opt);

    Fig4Platform row;
    row.platform = spec.name;
    row.capped_errors =
        fit::prediction_errors(capped.machine, data.dram_sp).power;
    row.uncapped_errors =
        fit::prediction_errors(capped.machine.without_cap(), data.dram_sp)
            .power;
    row.capped_summary = stats::summarize(row.capped_errors);
    row.uncapped_summary = stats::summarize(row.uncapped_errors);
    row.ks = stats::ks_two_sample(row.uncapped_errors, row.capped_errors);
    const auto median_stat = [](std::span<const double> xs) {
      return stats::median(xs);
    };
    stats::Rng boot_rng(options.seed ^ 0x626f6f74ULL);
    row.uncapped_median_ci =
        stats::bootstrap_ci(row.uncapped_errors, median_stat, boot_rng);
    row.capped_median_ci =
        stats::bootstrap_ci(row.capped_errors, median_stat, boot_rng);
    row.significant = row.ks.significant();
    row.significant_in_paper = spec.ks_significant_in_paper;
    result.platforms.push_back(std::move(row));
  }

  // Fig. 4 orders platforms by descending median uncapped error.
  std::sort(result.platforms.begin(), result.platforms.end(),
            [](const Fig4Platform& a, const Fig4Platform& b) {
              return a.uncapped_summary.median > b.uncapped_summary.median;
            });

  for (const Fig4Platform& p : result.platforms) {
    if (std::abs(p.capped_summary.median) <=
        std::abs(p.uncapped_summary.median))
      ++result.improved_count;
    if (p.significant) ++result.significant_count;
    if (p.significant_in_paper) ++result.paper_significant_count;
    if (p.significant == p.significant_in_paper) ++result.agreement_count;
  }
  return result;
}

}  // namespace archline::experiments
