#pragma once
// Experiment F5: Fig. 5 — normalized power vs intensity for all twelve
// platforms: three-regime model lines, measured dots, panel annotations
// (peak Gflop/J and GB/J, sustained fractions, pi1 + cap), plus the §V-C
// cross-platform statistics (constant-power fractions and their
// correlation with peak energy efficiency).

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/roofline.hpp"

namespace archline::experiments {

struct Fig5Panel {
  std::string platform;
  core::EfficiencySummary summary;   ///< the panel annotation block
  double sustained_flop_fraction = 0.0;  ///< "[81%]"
  double sustained_bw_fraction = 0.0;    ///< "[83%]"
  double measured_peak_power_fraction = 0.0;  ///< "[99%]" of pi1+delta_pi

  std::vector<double> intensity;
  std::vector<double> model_power_norm;     ///< P(I)/(pi1+delta_pi)
  std::vector<double> measured_power_norm;  ///< simulated measurement
  std::vector<core::Regime> regime;         ///< M / C / F per point
};

struct Fig5Result {
  std::vector<Fig5Panel> panels;  ///< in decreasing peak-Gflop/J order
  double pi1_fraction_correlation = 0.0;  ///< ~ -0.6 in the paper
  int over_half_constant = 0;             ///< 7 of 12 in the paper
};

struct Fig5Options {
  std::uint64_t seed = 20140519;
  double intensity_lo = 1.0 / 8.0;
  double intensity_hi = 512.0;
  int points_per_octave = 2;
  bool with_measurements = true;
};

[[nodiscard]] Fig5Result run_fig5(const Fig5Options& options = {});

}  // namespace archline::experiments
