#pragma once
// Experiment X3 (extension of the abstract's central claim): "critical
// values of arithmetic intensity around which some systems may switch
// from being more to less time- and energy-efficient than others."
//
// Two views:
//  * the full pairwise crossover matrix: for every ordered platform pair,
//    the intensity at which their ranking on a metric flips (if any);
//  * the per-intensity Pareto frontier over (performance, energy
//    efficiency): which building blocks are undominated where.

#include <optional>
#include <string>
#include <vector>

#include "core/roofline.hpp"

namespace archline::experiments {

struct CrossoverCell {
  std::string row_platform;
  std::string col_platform;
  /// Intensity where the two tie (ranking flips); nullopt if one
  /// dominates across the whole sweep.
  std::optional<double> crossover;
  /// True if the row platform wins (higher metric) at low intensity.
  bool row_wins_low = false;
};

struct CrossoverMatrix {
  core::Metric metric = core::Metric::EnergyEfficiency;
  std::vector<std::string> platforms;     ///< Table I order
  std::vector<CrossoverCell> cells;       ///< row-major, excluding diagonal
  int pairs_with_crossover = 0;
  int pairs_dominated = 0;
};

struct CrossoverOptions {
  core::Metric metric = core::Metric::EnergyEfficiency;
  double intensity_lo = 1.0 / 64.0;
  double intensity_hi = 512.0;
};

[[nodiscard]] CrossoverMatrix run_crossover_matrix(
    const CrossoverOptions& options = {});

/// Platforms on the (performance, efficiency) Pareto frontier at one
/// intensity: nobody else is at least as good on both metrics and
/// strictly better on one.
struct ParetoPoint {
  double intensity = 0.0;
  std::vector<std::string> frontier;  ///< undominated platform names
};

[[nodiscard]] std::vector<ParetoPoint> run_pareto_frontier(
    double intensity_lo = 1.0 / 8.0, double intensity_hi = 512.0,
    int points_per_octave = 1);

}  // namespace archline::experiments
