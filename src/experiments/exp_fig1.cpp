#include "experiments/exp_fig1.hpp"

#include <algorithm>

#include "core/analysis.hpp"
#include "core/scenarios.hpp"
#include "microbench/intensity.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace archline::experiments {

namespace {

std::vector<Fig1Point> model_series(const core::MachineParams& m,
                                    const std::vector<double>& grid) {
  std::vector<Fig1Point> out;
  out.reserve(grid.size());
  for (const double intensity : grid) {
    Fig1Point p;
    p.intensity = intensity;
    p.model_perf = core::performance(m, intensity);
    p.model_efficiency = core::energy_efficiency(m, intensity);
    p.model_power = core::avg_power_closed_form(m, intensity);
    out.push_back(p);
  }
  return out;
}

void attach_measurements(std::vector<Fig1Point>& series,
                         const platforms::PlatformSpec& spec,
                         const std::vector<double>& grid,
                         std::uint64_t seed) {
  const sim::SimMachine machine = sim::make_machine(spec);
  stats::Rng rng(seed);
  microbench::SuiteOptions opt;
  opt.intensities = grid;
  opt.repeats = 1;
  opt.include_double = false;
  opt.include_caches = false;
  opt.include_random = false;
  const microbench::SuiteData data =
      microbench::run_suite(machine, opt, rng);
  for (std::size_t i = 0;
       i < series.size() && i < data.dram_sp.size(); ++i) {
    const microbench::Observation& o = data.dram_sp[i];
    series[i].measured_perf = o.flops_per_second();
    series[i].measured_efficiency = o.flops_per_joule();
    series[i].measured_power = o.watts;
  }
}

}  // namespace

Fig1Result run_fig1(const Fig1Options& options) {
  const platforms::PlatformSpec& big =
      platforms::platform(options.big_platform);
  const platforms::PlatformSpec& small =
      platforms::platform(options.small_platform);
  const std::vector<double> grid = core::intensity_grid(
      options.intensity_lo, options.intensity_hi, options.points_per_octave);

  const core::MachineParams big_m = big.machine();
  const core::MachineParams small_m = small.machine();

  Fig1Result r;
  r.big_name = big.name;
  r.small_name = small.name;
  r.big = model_series(big_m, grid);
  r.small_ = model_series(small_m, grid);

  // Power-matched aggregate: enough small blocks to reach the big block's
  // maximum node power (pi1 + delta_pi).
  r.aggregate_count =
      core::blocks_to_match_power(small_m, big_m.pi1 + big_m.delta_pi);
  const core::MachineParams agg =
      core::aggregate(small_m, std::max(r.aggregate_count, 1));
  r.aggregate = model_series(agg, grid);

  r.efficiency_crossover = core::crossover_intensity(
      small_m, big_m, core::Metric::EnergyEfficiency, options.intensity_lo,
      options.intensity_hi);

  // Aggregate vs big: best speedup over the bandwidth-bound end and the
  // asymptotic compute-bound ratio.
  double best = 0.0;
  for (const double intensity : grid)
    best = std::max(best, core::performance(agg, intensity) /
                              core::performance(big_m, intensity));
  r.aggregate_peak_speedup = best;
  r.aggregate_peak_ratio =
      core::performance(agg, options.intensity_hi) /
      core::performance(big_m, options.intensity_hi);

  if (options.with_measurements) {
    attach_measurements(r.big, big, grid, options.seed);
    attach_measurements(r.small_, small, grid, options.seed + 1);
  }
  return r;
}

}  // namespace archline::experiments
