#include "experiments/exp_fig5.hpp"

#include <algorithm>

#include "microbench/parallel.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"
#include "stats/correlation.hpp"

namespace archline::experiments {

Fig5Result run_fig5(const Fig5Options& options) {
  const std::vector<double> grid = core::intensity_grid(
      options.intensity_lo, options.intensity_hi, options.points_per_octave);

  Fig5Result result;
  std::vector<double> const_fracs;
  std::vector<double> peak_effs;

  for (const platforms::PlatformSpec* spec : platforms::by_peak_efficiency()) {
    const core::MachineParams m = spec->machine();
    Fig5Panel panel;
    panel.platform = spec->name;
    panel.summary = core::summarize_efficiency(m);
    panel.sustained_flop_fraction = spec->sustained_flop_fraction();
    panel.sustained_bw_fraction = spec->sustained_bandwidth_fraction();

    const double cap_power = m.pi1 + m.delta_pi;
    panel.intensity = grid;
    panel.model_power_norm.reserve(grid.size());
    panel.regime.reserve(grid.size());
    for (const double intensity : grid) {
      panel.model_power_norm.push_back(
          core::avg_power_closed_form(m, intensity) / cap_power);
      panel.regime.push_back(core::regime_at(m, intensity));
    }

    if (options.with_measurements) {
      const sim::SimMachine machine = sim::make_machine(*spec);
      stats::Rng rng(microbench::campaign_seed(options.seed, spec->name));
      microbench::SuiteOptions opt;
      opt.intensities = grid;
      opt.repeats = 1;
      opt.include_double = false;
      opt.include_caches = false;
      opt.include_random = false;
      const microbench::SuiteData data =
          microbench::run_suite(machine, opt, rng);
      panel.measured_power_norm.reserve(data.dram_sp.size());
      double peak_measured = 0.0;
      for (const microbench::Observation& o : data.dram_sp) {
        panel.measured_power_norm.push_back(o.watts / cap_power);
        peak_measured = std::max(peak_measured, o.watts);
      }
      panel.measured_peak_power_fraction = peak_measured / cap_power;
    }

    const_fracs.push_back(core::constant_power_fraction(m));
    peak_effs.push_back(core::peak_flops_per_joule(m));
    if (core::constant_power_fraction(m) > 0.5)
      ++result.over_half_constant;
    result.panels.push_back(std::move(panel));
  }

  result.pi1_fraction_correlation = stats::pearson(const_fracs, peak_effs);
  return result;
}

}  // namespace archline::experiments
