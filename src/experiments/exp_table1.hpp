#pragma once
// Experiment T1: regenerate Table I.
//
// For each of the twelve platforms: build the ground-truth simulated
// machine, run the automated tuning search and the full microbenchmark
// campaign through the simulated PowerMon 2, fit the capped model, and
// tabulate fitted constants against the published ones.

#include <cstdint>
#include <string>
#include <vector>

#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "microbench/tuning.hpp"
#include "platforms/spec.hpp"

namespace archline::experiments {

struct Table1Row {
  const platforms::PlatformSpec* spec = nullptr;  ///< published ground truth
  microbench::TuneResult tune_sp;   ///< flop-side tuning search result
  microbench::TuneResult tune_bw;   ///< memory-side tuning search result
  fit::FitResult refit;             ///< capped-model fit from measurements
  std::size_t observations = 0;

  /// Largest relative error across the six DRAM/SP machine parameters,
  /// refit vs published.
  [[nodiscard]] double worst_param_error() const;

  /// Like worst_param_error(), but excluding parameters the power cap
  /// renders unobservable on this platform:
  ///  * tau_flop when pi_flop > delta_pi — the uncapped flop rate can
  ///    never be reached (NUC GPU);
  ///  * tau_mem and delta_pi when pi_mem >= ~delta_pi — a cap riding at
  ///    the memory engine's demand is observationally equivalent to a
  ///    slightly slower memory engine with a looser cap (NUC CPU,
  ///    APU CPU);
  ///  * delta_pi when the cap binds by under ~10% anywhere (Xeon Phi,
  ///    APU GPU) — the throttle signal sits at the noise floor.
  [[nodiscard]] double worst_identifiable_error() const;
};

struct Table1Options {
  std::uint64_t seed = 20140519;  ///< IPDPS 2014 conference date
  microbench::SuiteOptions suite;
};

[[nodiscard]] std::vector<Table1Row> run_table1(const Table1Options& options =
                                                    {});

/// One platform (used by tests to keep runtime small).
[[nodiscard]] Table1Row run_table1_row(const platforms::PlatformSpec& spec,
                                       const Table1Options& options = {});

}  // namespace archline::experiments
