#include "experiments/exp_throttle.hpp"

#include <algorithm>

#include "core/analysis.hpp"
#include "platforms/platform_db.hpp"

namespace archline::experiments {

double throttled_perf_ratio(const core::MachineParams& m, double intensity,
                            double k) {
  const core::MachineParams capped = core::with_cap_scaled(m, k);
  return core::performance(capped, intensity) /
         core::performance(m, intensity);
}

ThrottleResult run_throttle_study(const ThrottleOptions& options) {
  const std::vector<double> grid = core::intensity_grid(
      options.intensity_lo, options.intensity_hi, options.points_per_octave);
  const double max_k = *std::max_element(options.cap_divisors.begin(),
                                         options.cap_divisors.end());

  ThrottleResult result;
  double best_shrink = 0.0;
  double worst_shrink = std::numeric_limits<double>::infinity();

  for (const platforms::PlatformSpec* spec : platforms::by_peak_efficiency()) {
    const core::MachineParams m = spec->machine();
    ThrottlePanel panel;
    panel.platform = spec->name;
    panel.cap_divisors = options.cap_divisors;
    panel.points = core::throttle_sweep(m, grid, options.cap_divisors);
    panel.power_reduction_at_max_divisor =
        core::power_reduction_factor(m, max_k);

    if (panel.power_reduction_at_max_divisor > best_shrink) {
      best_shrink = panel.power_reduction_at_max_divisor;
      result.most_reconfigurable = panel.platform;
    }
    if (panel.power_reduction_at_max_divisor < worst_shrink) {
      worst_shrink = panel.power_reduction_at_max_divisor;
      result.least_reconfigurable = panel.platform;
    }
    result.panels.push_back(std::move(panel));
  }
  return result;
}

}  // namespace archline::experiments
