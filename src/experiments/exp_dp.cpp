#include "experiments/exp_dp.hpp"

#include <limits>

#include "core/analysis.hpp"
#include "platforms/platform_db.hpp"

namespace archline::experiments {

DpResult run_dp_analysis() {
  DpResult result;
  double best_eff = 0.0;
  double best_penalty = std::numeric_limits<double>::infinity();

  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    if (!spec.has_double()) {
      result.no_dp.push_back(spec.name);
      continue;
    }
    const core::MachineParams sp = spec.machine(core::Precision::Single);
    const core::MachineParams dp = spec.machine(core::Precision::Double);

    DpRow row;
    row.platform = spec.name;
    row.sp_eps_flop = sp.eps_flop;
    row.dp_eps_flop = dp.eps_flop;
    row.energy_ratio = dp.eps_flop / sp.eps_flop;
    row.sp_rate = sp.peak_flops();
    row.dp_rate = dp.peak_flops();
    row.rate_ratio = sp.peak_flops() / dp.peak_flops();
    row.dp_peak_efficiency = core::peak_flops_per_joule(dp);
    row.sp_balance = sp.time_balance();
    row.dp_balance = dp.time_balance();

    if (row.dp_peak_efficiency > best_eff) {
      best_eff = row.dp_peak_efficiency;
      result.most_efficient_dp = row.platform;
    }
    if (row.energy_ratio < best_penalty) {
      best_penalty = row.energy_ratio;
      result.lowest_penalty = row.platform;
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace archline::experiments
