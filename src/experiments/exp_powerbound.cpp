#include "experiments/exp_powerbound.hpp"

#include "platforms/platform_db.hpp"

namespace archline::experiments {

PowerBoundResult run_powerbound(const PowerBoundOptions& options) {
  const core::MachineParams big =
      platforms::platform(options.big_platform).machine();
  const core::MachineParams small =
      platforms::platform(options.small_platform).machine();

  PowerBoundResult r;
  r.options = options;
  r.comparison = core::power_bound_comparison(big, small,
                                              options.bound_watts,
                                              options.intensity);

  r.unbounded_count =
      core::blocks_to_match_power(small, big.pi1 + big.delta_pi);
  if (r.unbounded_count > 0) {
    const core::MachineParams agg =
        core::aggregate(small, r.unbounded_count);
    r.unbounded_speedup = core::performance(agg, options.intensity) /
                          core::performance(big, options.intensity);
  }
  return r;
}

std::vector<PowerBoundResult> run_powerbound_sweep(
    const PowerBoundOptions& base, const std::vector<double>& bounds) {
  std::vector<PowerBoundResult> out;
  out.reserve(bounds.size());
  for (const double b : bounds) {
    PowerBoundOptions opt = base;
    opt.bound_watts = b;
    out.push_back(run_powerbound(opt));
  }
  return out;
}

}  // namespace archline::experiments
