#pragma once
// Experiment X1: the §V-B worked example and memory-hierarchy cost
// analysis.
//
// For a pure streaming workload, the effective energy per byte is
// eps_mem + pi1 * tau_mem: the constant-power charge inverts the raw
// eps_mem ordering (Xeon Phi has the cheapest DRAM byte but the most
// expensive effective byte of the paper's trio). Also tabulates the
// inclusive-cost sanity properties eps_L1 <= eps_L2 <= eps_mem and
// eps_rand >> eps_mem.

#include <optional>
#include <string>
#include <vector>

namespace archline::experiments {

struct MemHierRow {
  std::string platform;
  double eps_mem = 0.0;            ///< J/B, published
  double constant_charge = 0.0;    ///< pi1 * tau_mem (sustained), J/B
  double effective_eps = 0.0;      ///< sum of the two
  std::optional<double> eps_l1;    ///< J/B
  std::optional<double> eps_l2;    ///< J/B
  std::optional<double> eps_rand;  ///< J/access
  bool level_ordering_holds = false;  ///< eps_L1 <= eps_L2 <= eps_mem
  /// eps_rand [J/access] over eps_mem [J/B] — the paper expects "at least
  /// an order of magnitude" (it compares per-access nJ against per-byte pJ).
  double rand_to_mem_ratio = 0.0;
};

struct MemHierResult {
  std::vector<MemHierRow> rows;  ///< Table I order
  /// Platform with the lowest raw eps_mem vs lowest effective eps — the
  /// §V-B inversion when they differ.
  std::string cheapest_raw;
  std::string cheapest_effective;
};

/// Cache line size used to compare per-access and per-byte costs.
inline constexpr double kCacheLineBytes = 64.0;

[[nodiscard]] MemHierResult run_memhier();

}  // namespace archline::experiments
