#pragma once
// Experiment C1 (extension): cache-level rooflines.
//
// The paper measures each memory level's bandwidth and energy (§IV-g,
// Table I columns 11-12) but plots only DRAM-level curves. This
// experiment assembles the full multi-level picture — the "cache-aware
// roofline" of the related work it cites (Ilic et al.) — from the same
// constants: per platform and level, model performance/efficiency vs
// intensity plus simulated measurements.

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/memory.hpp"

namespace archline::experiments {

struct CacheRooflinePoint {
  double intensity = 0.0;
  double model_perf = 0.0;      ///< flop/s
  double model_efficiency = 0.0;  ///< flop/J
  double measured_perf = 0.0;   ///< 0 when not measured
  double measured_efficiency = 0.0;
};

struct CacheRooflineLevel {
  core::MemLevel level = core::MemLevel::DRAM;
  core::MachineParams machine;  ///< flop side + this level's memory side
  std::vector<CacheRooflinePoint> points;
};

struct CacheRooflinePlatform {
  std::string platform;
  std::vector<CacheRooflineLevel> levels;  ///< L1 (if any), L2 (if any), DRAM

  /// The ridge intensity of each level (time balance B_tau); levels
  /// closer to the core have lower balance, widening the compute-bound
  /// region.
  [[nodiscard]] std::vector<double> ridge_points() const;
};

struct CacheRooflineOptions {
  std::uint64_t seed = 20140519;
  double intensity_lo = 1.0 / 8.0;
  double intensity_hi = 512.0;
  int points_per_octave = 2;
  bool with_measurements = true;
};

/// Runs the study for one platform; throws std::out_of_range on unknown
/// names.
[[nodiscard]] CacheRooflinePlatform run_cache_roofline(
    const std::string& platform, const CacheRooflineOptions& options = {});

/// All platforms that have at least one cache level measured.
[[nodiscard]] std::vector<CacheRooflinePlatform> run_cache_rooflines(
    const CacheRooflineOptions& options = {});

}  // namespace archline::experiments
