#include "experiments/exp_memhier.hpp"

#include <limits>

#include "core/analysis.hpp"
#include "platforms/platform_db.hpp"

namespace archline::experiments {

MemHierResult run_memhier() {
  MemHierResult result;
  double best_raw = std::numeric_limits<double>::infinity();
  double best_eff = std::numeric_limits<double>::infinity();

  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    const core::MachineParams m = spec.machine();
    MemHierRow row;
    row.platform = spec.name;
    row.eps_mem = m.eps_mem;
    row.constant_charge = core::constant_energy_per_byte(m);
    row.effective_eps = core::effective_stream_energy_per_byte(m);

    if (spec.mem_l1) row.eps_l1 = spec.mem_l1->energy_per_op;
    if (spec.mem_l2) row.eps_l2 = spec.mem_l2->energy_per_op;
    if (spec.mem_rand) {
      row.eps_rand = spec.mem_rand->energy_per_op;
      row.rand_to_mem_ratio = *row.eps_rand / row.eps_mem;
    }

    // Inclusive-cost ordering over the levels that exist.
    row.level_ordering_holds = true;
    if (row.eps_l1 && row.eps_l2 && *row.eps_l1 > *row.eps_l2)
      row.level_ordering_holds = false;
    if (row.eps_l2 && *row.eps_l2 > row.eps_mem)
      row.level_ordering_holds = false;
    if (row.eps_l1 && *row.eps_l1 > row.eps_mem)
      row.level_ordering_holds = false;

    if (row.eps_mem < best_raw) {
      best_raw = row.eps_mem;
      result.cheapest_raw = row.platform;
    }
    if (row.effective_eps < best_eff) {
      best_eff = row.effective_eps;
      result.cheapest_effective = row.platform;
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace archline::experiments
