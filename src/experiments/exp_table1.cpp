#include "experiments/exp_table1.hpp"

#include <algorithm>
#include <cmath>

#include "microbench/parallel.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace archline::experiments {

double Table1Row::worst_param_error() const {
  const core::MachineParams truth = spec->machine();
  const core::MachineParams& got = refit.machine;
  const auto rel = [](double a, double b) { return std::abs(a / b - 1.0); };
  double worst = rel(got.tau_flop, truth.tau_flop);
  worst = std::max(worst, rel(got.eps_flop, truth.eps_flop));
  worst = std::max(worst, rel(got.tau_mem, truth.tau_mem));
  worst = std::max(worst, rel(got.eps_mem, truth.eps_mem));
  worst = std::max(worst, rel(got.pi1, truth.pi1));
  worst = std::max(worst, rel(got.delta_pi, truth.delta_pi));
  return worst;
}

double Table1Row::worst_identifiable_error() const {
  const core::MachineParams truth = spec->machine();
  const core::MachineParams& got = refit.machine;
  const auto rel = [](double a, double b) { return std::abs(a / b - 1.0); };

  const bool flop_rate_hidden = truth.pi_flop() > truth.delta_pi;
  const bool bw_hidden = truth.pi_mem() > 0.95 * truth.delta_pi;
  const bool cap_weak =
      (truth.pi_flop() + truth.pi_mem()) / truth.delta_pi < 1.1;

  double worst = rel(got.eps_flop, truth.eps_flop);
  worst = std::max(worst, rel(got.eps_mem, truth.eps_mem));
  worst = std::max(worst, rel(got.pi1, truth.pi1));
  if (!flop_rate_hidden)
    worst = std::max(worst, rel(got.tau_flop, truth.tau_flop));
  if (!bw_hidden) worst = std::max(worst, rel(got.tau_mem, truth.tau_mem));
  if (!bw_hidden && !cap_weak)
    worst = std::max(worst, rel(got.delta_pi, truth.delta_pi));
  return worst;
}

Table1Row run_table1_row(const platforms::PlatformSpec& spec,
                         const Table1Options& options) {
  Table1Row row;
  row.spec = &spec;
  row.tune_sp = microbench::tune_flops(spec, core::Precision::Single);
  row.tune_bw = microbench::tune_bandwidth(spec);

  const sim::SimMachine machine = sim::make_machine(spec);
  stats::Rng rng(microbench::campaign_seed(options.seed, spec.name));
  const microbench::SuiteData data =
      microbench::run_suite(machine, options.suite, rng);
  row.observations = data.total_observations();
  row.refit = fit::fit_machine(data);
  return row;
}

std::vector<Table1Row> run_table1(const Table1Options& options) {
  std::vector<Table1Row> rows;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms())
    rows.push_back(run_table1_row(spec, options));
  return rows;
}

}  // namespace archline::experiments
