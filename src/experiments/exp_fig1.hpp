#pragma once
// Experiment F1: Fig. 1 — GTX Titan vs Arndale GPU head-to-head, with the
// power-matched "N x Arndale GPU" hypothetical system.
//
// Generalized to any pair of platforms so the compare_blocks example can
// reuse it.

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"

namespace archline::experiments {

/// Model + measured values for one platform at one intensity.
struct Fig1Point {
  double intensity = 0.0;
  double model_perf = 0.0;       ///< flop/s
  double model_efficiency = 0.0; ///< flop/J
  double model_power = 0.0;      ///< W
  double measured_perf = 0.0;    ///< 0 when no measurement at this point
  double measured_efficiency = 0.0;
  double measured_power = 0.0;
};

struct Fig1Result {
  std::string big_name;
  std::string small_name;
  std::vector<Fig1Point> big;     ///< model+measured, per intensity
  std::vector<Fig1Point> small_;  ///< (trailing underscore: macro safety)
  std::vector<Fig1Point> aggregate;  ///< N x small, model only

  int aggregate_count = 0;   ///< N chosen to match big's peak power
  double efficiency_crossover = 0.0;  ///< I where flop/J parity ends
  double aggregate_peak_speedup = 0.0;  ///< max perf(agg)/perf(big), low I
  double aggregate_peak_ratio = 0.0;    ///< perf(agg)/perf(big) at high I
};

struct Fig1Options {
  std::string big_platform = "GTX Titan";
  std::string small_platform = "Arndale GPU";
  double intensity_lo = 1.0 / 8.0;
  double intensity_hi = 256.0;
  int points_per_octave = 2;
  bool with_measurements = true;   ///< run the simulated microbenchmark too
  std::uint64_t seed = 1;
};

[[nodiscard]] Fig1Result run_fig1(const Fig1Options& options = {});

}  // namespace archline::experiments
