#pragma once
// Experiment D1 (extension): double-precision cost structure.
//
// The paper's figures are single-precision ("full support for double is
// incomplete on several of our evaluation platforms", §V) but Table I
// carries eps_d for the nine platforms that support it. This experiment
// assembles the DP story those columns imply: the DP:SP cost ratios, DP
// peak energy efficiency, and how each platform's balance point moves
// when every flop gets more expensive but the memory system does not.

#include <optional>
#include <string>
#include <vector>

#include "core/machine_params.hpp"

namespace archline::experiments {

struct DpRow {
  std::string platform;
  double sp_eps_flop = 0.0;  ///< J/flop
  double dp_eps_flop = 0.0;
  double energy_ratio = 0.0;  ///< eps_d / eps_s
  double sp_rate = 0.0;       ///< sustained flop/s
  double dp_rate = 0.0;
  double rate_ratio = 0.0;    ///< SP rate / DP rate
  double dp_peak_efficiency = 0.0;  ///< flop/J at I -> inf, DP
  double sp_balance = 0.0;    ///< B_tau, SP
  double dp_balance = 0.0;    ///< B_tau, DP: lower — DP is sooner compute-bound
};

struct DpResult {
  std::vector<DpRow> rows;          ///< platforms with DP, Table I order
  std::vector<std::string> no_dp;   ///< platforms without DP support
  std::string most_efficient_dp;    ///< highest DP flop/J
  std::string lowest_penalty;       ///< smallest eps_d / eps_s
};

[[nodiscard]] DpResult run_dp_analysis();

}  // namespace archline::experiments
