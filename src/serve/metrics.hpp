#pragma once
// Server observability: lock-free per-endpoint counters (slotted by
// registry id), per-class latency histograms, per-lane gauges, and
// renderers for the "stats" request (JSON) and the SIGUSR1 / shutdown
// dump (human-readable text).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "fit/online/snapshot.hpp"
#include "serve/cache.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "sim/clock.hpp"

namespace archline::serve {

/// Streaming latency histogram: 64 power-of-two nanosecond buckets
/// (bucket b covers [2^b, 2^(b+1)) ns). Recording is one relaxed atomic
/// increment; quantiles are read from a snapshot with log-linear
/// interpolation inside the bucket, so p99 is accurate to ~±35% of the
/// value — plenty for an operational latency summary.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double seconds) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;

    /// Value below which fraction q of samples fall, in seconds.
    /// q in [0, 1]; returns 0 when empty.
    [[nodiscard]] double quantile(double q) const noexcept;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;

  /// Adds this histogram's counts into `out` — how Metrics merges its
  /// per-worker histogram shards into one snapshot.
  void accumulate(Snapshot& out) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Per-endpoint counters plus lane and connection gauges. All methods
/// are thread-safe; writers never block.
class Metrics {
 public:
  /// One slot per registrable endpoint plus a trailing slot for
  /// requests that never reached a handler (parse errors, unknown
  /// types). Sized statically so completion counters stay plain atomic
  /// arrays.
  static constexpr std::size_t kEndpointSlots = Registry::kMaxEndpoints + 1;
  static constexpr std::size_t kInvalidSlot = Registry::kMaxEndpoints;

  /// `clock` is the time source for uptime/qps (null = the real steady
  /// clock). Tests inject a sim::SimClock to make uptime exact.
  explicit Metrics(const sim::ClockSource* clock = nullptr);

  /// Request finished (from cache or evaluated). `endpoint` is the
  /// descriptor it dispatched to (nullptr = never reached a handler);
  /// `ok` is the protocol success flag; latency covers
  /// submit-to-response and lands in the endpoint's class histogram.
  void on_completed(const Endpoint* endpoint, bool ok,
                    double latency_s) noexcept;

  /// Request finished but its latency was not measured (the caller's
  /// sample_latency_now() said skip). Counts are exact either way; only
  /// the histogram is sampled.
  void on_completed(const Endpoint* endpoint, bool ok) noexcept;

  /// Should the caller time the request it is about to run? Latency
  /// timestamps cost two clock reads per request — a measurable slice
  /// of a cache hit — so after `kLatencyWarmupSamples` requests on this
  /// thread's shard, only every `kLatencySampleEvery`-th request is
  /// timed. The warm-up keeps small workloads (tests, short sessions)
  /// exact; the steady state amortizes the clocks to ~zero. Quantiles
  /// from the sampled histogram are unbiased — sampling is by position,
  /// not by value.
  [[nodiscard]] bool sample_latency_now() noexcept;

  static constexpr std::uint64_t kLatencyWarmupSamples = 256;
  static constexpr std::uint64_t kLatencySampleEvery = 16;

  /// Request rejected at admission because its lane was full.
  void on_rejected(std::size_t lane) noexcept;

  /// Request expired in its lane and was answered with
  /// deadline_exceeded instead of being executed.
  void on_deadline_exceeded(std::size_t lane) noexcept;

  /// Lane depth observed after a push or a batch pop (tracks current
  /// and high water per lane).
  void on_lane_depth(std::size_t lane, std::size_t depth) noexcept;

  /// Upper bound on TCP event-loop shards tracked individually
  /// (matches TcpListener::kMaxShards).
  static constexpr std::size_t kMaxTransportShards = 16;

  /// Declares how many event-loop shards the transport runs — sizes the
  /// per-shard section of the stats snapshot. 0 (the default) means "no
  /// sharded transport": counters still work (everything lands on shard
  /// 0) and the per-shard stats section is omitted.
  void set_transport_shards(std::size_t n) noexcept;

  /// Connection lifecycle, reported by the TCP event loop; `shard` is
  /// the owning event-loop shard (callers without shards use 0).
  void on_connection_opened(std::size_t shard = 0) noexcept;  ///< accepted++, open++
  void on_connection_closed(std::size_t shard = 0) noexcept;  ///< open--
  void on_connection_rejected(std::size_t shard = 0) noexcept;  ///< over the cap
  void on_connection_idle_closed(std::size_t shard = 0) noexcept;  ///< idle timer

  /// One request line admitted for processing by a transport shard.
  void on_shard_request(std::size_t shard) noexcept;
  /// A request a shard answered inline from its cache partition —
  /// never touched the worker pool or another core.
  void on_shard_cached(std::size_t shard) noexcept;

  struct LaneSnapshot {
    std::uint64_t rejected = 0;           ///< overload rejections
    std::uint64_t deadline_exceeded = 0;  ///< expired while queued
    std::size_t depth = 0;
    std::size_t peak = 0;
    LatencyHistogram::Snapshot latency;   ///< completions of this class
  };

  struct Snapshot {
    std::uint64_t completed = 0;        ///< sum over endpoints
    std::uint64_t errors = 0;           ///< ok == false completions
    std::uint64_t rejected = 0;         ///< sum over lanes
    std::uint64_t deadline_exceeded = 0;  ///< sum over lanes
    std::array<std::uint64_t, kEndpointSlots> by_endpoint{};  ///< by id
    std::array<LaneSnapshot, kLaneCount> lanes{};
    std::size_t queue_depth = 0;        ///< sum of lane depths
    std::size_t queue_peak = 0;         ///< max over lane peaks
    std::uint64_t connections_open = 0;      ///< gauge: live connections
    std::uint64_t connections_accepted = 0;  ///< lifetime accepts
    std::uint64_t connections_rejected = 0;  ///< refused at the cap
    std::uint64_t connections_idle_closed = 0;  ///< closed by idle timer
    /// Per-event-loop-shard transport counters; entries [0,
    /// transport_shards) are meaningful. The connection_* aggregates
    /// above are the sums over all shards.
    struct TransportShardSnapshot {
      std::uint64_t open = 0;
      std::uint64_t accepted = 0;
      std::uint64_t rejected = 0;
      std::uint64_t idle_closed = 0;
      std::uint64_t requests = 0;       ///< lines admitted by this shard
      std::uint64_t cached_inline = 0;  ///< answered from the partition
    };
    std::size_t transport_shards = 0;  ///< 0 = no sharded transport
    std::array<TransportShardSnapshot, kMaxTransportShards> shards{};
    double uptime_s = 0.0;
    double qps = 0.0;                   ///< completed / uptime
    LatencyHistogram::Snapshot latency;  ///< all classes merged
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;

  /// The "stats" response body: {"ok":true,"type":"stats",...} with the
  /// snapshot, latency quantiles, per-lane sections, and the cache's
  /// counters folded in. Pass the OnlineStore's stats to append the
  /// "online" section (observation counts, parameter generation,
  /// re-solve latency); the null default keeps pre-online callers and
  /// direct Metrics tests unchanged.
  [[nodiscard]] std::string to_json(
      const ShardedLruCache::Stats& cache,
      const fit::online::OnlineStoreStats* online = nullptr) const;

  /// Multi-line human-readable summary (shutdown / SIGUSR1 dump).
  [[nodiscard]] std::string summary(
      const ShardedLruCache::Stats& cache,
      const fit::online::OnlineStoreStats* online = nullptr) const;

 private:
  /// Completion counters are the per-request write hot spot (every
  /// worker bumps them for every request), so they are striped across
  /// cache-line-aligned shards: each thread picks a home shard once and
  /// keeps its increments out of the other workers' cache lines.
  /// Snapshot readers merge all shards. The remaining counters are rare
  /// events (rejections, connection lifecycle) and stay unsharded.
  static constexpr std::size_t kCompletionShards = 8;
  struct alignas(64) CompletionShard {
    std::array<std::atomic<std::uint64_t>, kEndpointSlots> by_endpoint{};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> sample_tick{0};  ///< sample_latency_now state
    /// One histogram per request class — the per-class p99 under mixed
    /// load is the number the lane design is judged by.
    std::array<LatencyHistogram, kRequestClassCount> latency{};
  };

  /// The calling thread's home shard (round-robin assigned on first use).
  [[nodiscard]] CompletionShard& completion_shard() noexcept;

  const sim::ClockSource* clock_;  ///< never null after construction
  std::chrono::steady_clock::time_point start_;
  std::array<CompletionShard, kCompletionShards> completion_shards_{};
  std::array<std::atomic<std::uint64_t>, kLaneCount> rejected_{};
  std::array<std::atomic<std::uint64_t>, kLaneCount> deadline_exceeded_{};
  std::array<std::atomic<std::uint64_t>, kLaneCount> lane_depth_{};
  std::array<std::atomic<std::uint64_t>, kLaneCount> lane_peak_{};
  /// Connection/request counters striped by transport shard: each
  /// event-loop thread writes only its own cache line. Shard indexes at
  /// or beyond kMaxTransportShards clamp to the last slot (counts stay
  /// exact in aggregate; per-shard attribution saturates).
  struct alignas(64) TransportShard {
    std::atomic<std::uint64_t> open{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> cached_inline{0};
  };
  [[nodiscard]] TransportShard& transport_shard(std::size_t shard) noexcept {
    return transport_shards_counters_[shard < kMaxTransportShards
                                          ? shard
                                          : kMaxTransportShards - 1];
  }

  std::atomic<std::size_t> transport_shards_{0};
  std::array<TransportShard, kMaxTransportShards> transport_shards_counters_{};
};

}  // namespace archline::serve
