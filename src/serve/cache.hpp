#pragma once
// Sharded LRU response cache.
//
// The server memoizes deterministic replies keyed by the raw request
// line, so a repeated request skips JSON parsing and model evaluation
// entirely — the hot-path win that makes cached fits ~10^4x cheaper
// than recomputing them. Keys are sharded by FNV-1a hash so concurrent
// workers contend on different mutexes; within a shard, entries evict
// in strict least-recently-used order.
//
// Hot-path design:
//   * the key is hashed exactly once per operation — the same 64-bit
//     FNV-1a value selects the shard (low bits) and the bucket inside
//     the shard's index (identity-hashed multimap), so there is no
//     second hash pass over the key bytes;
//   * a hit copies the body exactly once, into a caller-supplied buffer
//     whose capacity is reused across requests;
//   * each entry carries a one-byte out-of-band tag (the server stores
//     the endpoint id there), so hits need no in-band prefix stripping.
//
// Full keys are stored and compared (the hash only picks the shard and
// bucket), so a hash collision can never serve the wrong response.
//
// Generation scoping (online fitting): an entry inserted with
// generation_scoped = true is valid only while the global parameter
// generation it was computed under is still current. A get() that finds
// a scoped entry from an older generation treats it as a miss (counted
// separately as `stale`) and erases the entry, so a published re-solve
// invalidates every parameter-dependent reply without a cache-wide
// sweep. Unscoped entries (e.g. "platforms", inline-machine "fit")
// ignore the generation entirely.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace archline::serve {

class ShardedLruCache {
 public:
  /// `capacity` is total entries across all shards (each shard gets
  /// capacity / shards, at least 1). `shards` is rounded up to a power
  /// of two so shard selection is a mask. capacity == 0 disables
  /// caching (get always misses, put is a no-op).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Single-copy hit: assigns the cached body into `value_out` (reusing
  /// its capacity), writes the entry's tag to `tag_out`, and refreshes
  /// recency. Returns false on a miss, leaving the outputs untouched.
  /// A generation-scoped entry whose generation != `current_generation`
  /// is a miss: the stale entry is erased and counted in Stats::stale.
  [[nodiscard]] bool get(std::string_view key,
                         std::uint64_t current_generation,
                         std::string& value_out, std::uint8_t& tag_out);

  /// Generation-free overload (pre-online callers and tests): behaves
  /// as if the current generation were 0, so unscoped entries always
  /// hit and scoped entries from generation 0 still work.
  [[nodiscard]] bool get(std::string_view key, std::string& value_out,
                         std::uint8_t& tag_out) {
    return get(key, 0, value_out, tag_out);
  }

  /// Value-only convenience overload (tag discarded).
  [[nodiscard]] std::optional<std::string> get(std::string_view key);

  /// Inserts or refreshes key -> (value, tag), evicting the shard's LRU
  /// entry if that shard is full. `generation_scoped` marks the entry
  /// as valid only while `generation` stays current. The value is
  /// copied internally — and only after the disabled-cache early-out,
  /// so capacity 0 costs no allocation.
  void put(std::string_view key, std::string_view value,
           std::uint8_t tag = 0, std::uint64_t generation = 0,
           bool generation_scoped = false);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Generation-scoped entries found but discarded because a newer
    /// parameter generation had been published. Every stale lookup is
    /// ALSO counted as a miss — stale is the "why" breakdown.
    std::uint64_t stale = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::size_t shards = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };

  /// Aggregated counters across shards (consistent per shard, not
  /// globally atomic — fine for monitoring).
  [[nodiscard]] Stats stats() const;

  /// Drops all entries (counters are kept).
  void clear();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// FNV-1a 64-bit — stable across runs and platforms, so shard
  /// placement is deterministic (tested).
  [[nodiscard]] static std::uint64_t hash_key(std::string_view key) noexcept;

  /// Which shard a key lands in; deterministic for a given shard count.
  [[nodiscard]] std::size_t shard_of(std::string_view key) const noexcept;

 private:
  struct Entry {
    std::string key;
    std::string value;
    std::uint64_t hash = 0;  ///< FNV-1a of key, computed once at insert
    std::uint64_t generation = 0;  ///< parameter generation at insert
    std::uint8_t tag = 0;
    bool generation_scoped = false;  ///< stale once generation moves on
  };

  /// The index key IS the precomputed FNV-1a hash; forwarding it as the
  /// bucket hash avoids a second pass over the key bytes. Collisions
  /// are resolved by full-key comparison over the equal range.
  struct IdentityHash {
    [[nodiscard]] std::size_t operator()(std::uint64_t h) const noexcept {
      return static_cast<std::size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator,
                            IdentityHash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// Locates `key` (hash `h`) in `shard`, or end(). Caller holds the
  /// shard mutex.
  [[nodiscard]] static std::unordered_multimap<
      std::uint64_t, std::list<Entry>::iterator, IdentityHash>::iterator
  find_in_shard(Shard& shard, std::uint64_t h, std::string_view key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::uint64_t shard_mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace archline::serve
