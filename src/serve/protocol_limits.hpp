#pragma once
// Hard request limits applied before parsing. Split from protocol.hpp
// so the endpoint registry (which handlers and the dispatcher both
// include) does not depend on the dispatcher's header.

#include <cstddef>

namespace archline::serve {

struct ProtocolLimits {
  std::size_t max_request_bytes = 1 << 20;  ///< reject longer lines
  int max_json_depth = 32;
  std::size_t max_fit_observations = 4096;
  /// Caps scenario_sweep grids: intensities * cap_divisors points.
  std::size_t max_sweep_points = 4096;
  /// Caps one "observe" ingest batch; larger batches bounce with
  /// "too_large" (clients should chunk their streams).
  std::size_t max_observe_batch = 1024;
  /// Caps one "predict_batch" element array; larger batches bounce with
  /// "too_large" (clients should chunk, same contract as observe).
  std::size_t max_predict_batch = 1024;
};

}  // namespace archline::serve
