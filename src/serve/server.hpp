#pragma once
// serve::Server — the concurrent request engine behind archline_serverd.
//
// Architecture (one box, four moving parts):
//
//   submit(line) --classify--> LaneScheduler --pop_n--> worker pool
//        |  lane full?      (light | heavy lane)     (lane-affine)
//        v                                               |
//   "overloaded" reply                      cache lookup -> registry
//                                               dispatch  |
//                                            done(response) callback
//
// The transport (TCP listener, stdio loop, in-process loadgen) owns
// connections and ordering; the Server owns admission, execution,
// caching, and metrics. Responses are delivered by callback from worker
// threads; OrderedWriter (below) restores per-connection FIFO order
// when requests from one connection complete out of order.
//
// Class isolation: requests are classified at admission (a registry
// scan of the raw line — no parse) and queued per class. The heavy lane
// is small and separately bounded, so a flood of multi-millisecond
// "fit" requests bounces with "overloaded" while microsecond "predict"s
// keep flowing. Execution concurrency is bounded too: only
// `heavy_workers` threads drain the heavy lane (weighted round-robin
// against light work); the remaining workers are light-only, so heavy
// requests can never occupy the whole pool.
//
// Hot-path invariants (see docs/SERVER.md "Performance"):
//   * a cache hit copies the response body exactly once, into a buffer
//     whose capacity is reused across requests (the endpoint id rides
//     out-of-band as the cache entry's tag, so there is no prefix to
//     strip);
//   * workers drain their lanes in batches (one lock crossing per
//     batch, not three per job) and only wake sleeping peers when one
//     exists;
//   * in-process callers can use handle_into() to execute into a
//     caller-owned buffer — the zero-allocation steady state.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fit/online/resolver.hpp"
#include "fit/online/snapshot.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "sim/clock.hpp"

namespace archline::serve {

struct ServerOptions {
  /// Worker threads; 0 means hardware_concurrency (min 2).
  int threads = 0;
  /// Light-lane capacity: admitted-but-incomplete Light requests. Past
  /// this, submit rejects with the canned "overloaded" reply.
  std::size_t queue_capacity = 1024;
  /// Heavy-lane capacity. Deliberately much smaller than the light
  /// lane: a heavy request is worth milliseconds of worker time, so a
  /// short queue keeps the backlog (and thus heavy queue latency)
  /// bounded. 0 disables the lane — heavy requests then share the
  /// light lane (the pre-lane behavior, useful for A/B benchmarks).
  std::size_t heavy_lane_capacity = 64;
  /// Workers allowed to execute Heavy requests; 0 means max(1,
  /// threads/4). Clamped to [1, threads] when the heavy lane is
  /// enabled. The remaining workers are light-only.
  int heavy_workers = 0;
  /// Response cache entries across all shards; 0 disables caching.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Default per-request deadline applied at submit (Light lane, and
  /// Heavy too unless heavy_deadline_ms overrides): a job still queued
  /// this long after admission is answered with deadline_exceeded_body()
  /// instead of occupying a worker. 0 disables deadlines.
  int request_deadline_ms = 0;
  /// Heavy-lane deadline override; 0 falls back to request_deadline_ms.
  int heavy_deadline_ms = 0;
  /// Time source for deadlines, latency stamps, and uptime (null = the
  /// real steady clock). Tests inject a sim::SimClock so deadline and
  /// uptime assertions are exact instead of sleep-calibrated.
  const sim::ClockSource* clock = nullptr;
  ProtocolLimits limits;
  /// Online-fitting knobs (RLS forgetting factor, observation window,
  /// re-solve budgets) for the server-owned OnlineStore.
  fit::online::OnlineFitOptions online;
  /// Background re-solve sweep period for platforms with unresolved
  /// observations. 0 (the default) disables the resolver thread:
  /// re-solves then happen only via the explicit "refit" endpoint,
  /// which keeps single-threaded replay (--stdio, golden corpus)
  /// deterministic.
  int refit_interval_ms = 0;
};

class Server {
 public:
  using Done = std::function<void(std::string&&)>;
  using Clock = std::chrono::steady_clock;

  /// Weighted round-robin credits for heavy-capable workers: up to
  /// kLightWeight light pops per kHeavyWeight heavy pop, so even the
  /// heavy-capable subset keeps serving light traffic under a flood.
  static constexpr unsigned kLightWeight = 4;
  static constexpr unsigned kHeavyWeight = 1;

  explicit Server(ServerOptions options = {});

  /// Joins workers (calls shutdown() if still running).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the worker pool. Idempotent while running; after a
  /// shutdown() the lanes are reopened, so start/shutdown cycles
  /// restart a fully functional server.
  void start();

  /// Admits one request line for asynchronous execution. On success,
  /// `done` is invoked exactly once from a worker thread with the
  /// response body (no trailing newline). Returns false — and never
  /// calls `done` — when the request's lane is full or the server is
  /// shutting down; the caller should reply with overloaded_body().
  ///
  /// The request carries its lane's default deadline (none when the
  /// configured ms is 0): if it is still queued when the deadline
  /// passes, `done` receives deadline_exceeded_body() and the request
  /// is never executed.
  [[nodiscard]] bool submit(std::string line, Done done);

  /// Same, with an explicit absolute deadline (Clock::time_point::max()
  /// = no deadline). The transport uses this to thread per-request
  /// deadlines through the queue.
  [[nodiscard]] bool submit(std::string line, Done done,
                            Clock::time_point deadline);

  /// Submit against a transport-owned response-cache partition instead
  /// of the server-wide cache: the lookup and the miss-fill both go to
  /// `cache` (null falls back to the server cache). `cache_prechecked`
  /// means the transport already probed the partition on its own thread
  /// (and counted the miss), so the worker skips the re-probe and goes
  /// straight to evaluation. The sharded TCP loop uses this so each
  /// shard's hits never leave its core while misses still fill that
  /// shard's partition.
  [[nodiscard]] bool submit(std::string line, Done done,
                            std::shared_ptr<ShardedLruCache> cache,
                            bool cache_prechecked);

  /// Loop-thread cache probe: trims `line`, looks it up in `cache`
  /// under the current parameter generation, and on a hit renders the
  /// body into `out` (capacity reused) and records the completion in
  /// metrics. Returns false on a miss (which is counted — pair with
  /// submit(..., cache, /*cache_prechecked=*/true) to avoid counting
  /// it twice).
  [[nodiscard]] bool try_serve_cached(std::string_view line,
                                      ShardedLruCache& cache,
                                      std::string& out);

  /// Registers / unregisters a transport-owned cache partition so
  /// cache_stats() and the "stats" endpoint aggregate it. The registry
  /// holds a shared_ptr: a partition stays valid for queued jobs even
  /// after its transport shard is gone.
  void add_cache_partition(std::shared_ptr<const ShardedLruCache> partition);
  void remove_cache_partition(const ShardedLruCache* partition);

  /// Synchronous execution on the calling thread (tests, simple
  /// transports, the in-process loadgen). Same cache/metrics path as
  /// the worker pool; lanes are bypassed (no queueing happens).
  [[nodiscard]] std::string handle_now(std::string_view line);

  /// Synchronous execution into a caller-owned buffer whose capacity is
  /// reused across calls — the zero-allocation steady state for
  /// in-process callers (benchmarks, embedding applications). `out` is
  /// replaced by the response body (no trailing newline).
  void handle_into(std::string_view line, std::string& out);

  /// Graceful shutdown: stop admitting, drain the lanes (every admitted
  /// request's `done` fires), join workers. Safe to call twice.
  void shutdown();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  /// Aggregated cache statistics: the server-wide cache plus every
  /// registered transport partition (hits/misses/entries/... summed).
  [[nodiscard]] ShardedLruCache::Stats cache_stats() const;

  /// The server-owned online-fitting store (observe/params/refit state).
  /// Exposed so transports, benchmarks, and tests can inspect published
  /// snapshots; all ingest still flows through the endpoints.
  [[nodiscard]] fit::online::OnlineStore& online() noexcept {
    return online_;
  }
  [[nodiscard]] const fit::online::OnlineStore& online() const noexcept {
    return online_;
  }

  /// The background resolver, or null when refit_interval_ms == 0 or
  /// the server has not been started.
  [[nodiscard]] fit::online::BackgroundResolver* resolver() noexcept {
    return resolver_.get();
  }

  /// The "stats" response body against live counters (cache numbers
  /// aggregate the transport partitions).
  [[nodiscard]] std::string stats_body() const {
    const fit::online::OnlineStoreStats online = online_.stats();
    return metrics_.to_json(cache_stats(), &online);
  }

  /// Human-readable metrics dump (shutdown summary, SIGUSR1).
  [[nodiscard]] std::string stats_text() const {
    const fit::online::OnlineStoreStats online = online_.stats();
    return metrics_.summary(cache_stats(), &online);
  }

 private:
  struct Job {
    std::string line;
    Done done;
    std::chrono::steady_clock::time_point admitted;
    Clock::time_point deadline = Clock::time_point::max();
    std::size_t lane = kLightLane;
    /// Transport-owned cache partition for this job (null = the server
    /// cache). shared_ptr: the job may outlive the transport shard.
    std::shared_ptr<ShardedLruCache> cache;
    /// The transport already probed (and miss-counted) the partition.
    bool cache_prechecked = false;
  };

  /// How many jobs a worker takes from its lanes per lock crossing.
  /// Small enough that a batch never starves sibling workers under
  /// bursty load, large enough to amortize the mutex when the queue
  /// runs deep.
  static constexpr std::size_t kWorkerBatch = 16;

  /// The lane a request line is admitted to (classify_line + the
  /// heavy-lane-disabled fallback).
  [[nodiscard]] std::size_t lane_for(std::string_view line) const noexcept;

  /// Shared tail of the submit overloads once the lane and deadline
  /// are settled.
  [[nodiscard]] bool submit_to_lane(
      std::string line, Done done, Clock::time_point deadline,
      std::size_t lane, std::shared_ptr<ShardedLruCache> cache = nullptr,
      bool cache_prechecked = false);

  /// Cache + registry execution shared by workers and handle_now /
  /// handle_into. The response is rendered into reply.body (capacity
  /// reused); reply.endpoint / reply.ok feed the metrics. A
  /// default-constructed `started` means "latency not sampled for this
  /// request" (see Metrics::sample_latency_now): the completion is
  /// counted without reading the clock.
  void execute_into(std::string_view line,
                    std::chrono::steady_clock::time_point started,
                    Reply& reply);

  /// Same, against an explicit cache. `skip_probe` suppresses the
  /// lookup (the transport already probed and counted the miss); the
  /// miss-fill still goes to `cache`.
  void execute_into(std::string_view line,
                    std::chrono::steady_clock::time_point started,
                    Reply& reply, ShardedLruCache& cache, bool skip_probe);

  /// Deadline check + execute + done; shared by workers and the
  /// shutdown drain so queue-expired jobs are answered identically on
  /// both paths. `scratch` is the worker's reusable reply buffer.
  void run_job(Job& job, Reply& scratch);

  void worker_loop(LaneMask mask);

  ServerOptions options_;
  const sim::ClockSource* clock_;  ///< never null after construction
  ShardedLruCache cache_;
  /// Transport-owned cache partitions registered for stats aggregation.
  mutable std::mutex partitions_mutex_;
  std::vector<std::shared_ptr<const ShardedLruCache>> partitions_;
  Metrics metrics_;
  LaneScheduler<Job> queue_;
  fit::online::OnlineStore online_;
  /// Created by start() when refit_interval_ms > 0; stopped and
  /// destroyed by shutdown(). Declared after online_ (it holds a
  /// reference into it).
  std::unique_ptr<fit::online::BackgroundResolver> resolver_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::mutex lifecycle_mutex_;  ///< serializes start/shutdown
};

/// Restores FIFO response order for one connection when a worker pool
/// completes requests out of order: responses are released strictly by
/// sequence number, buffering any that finish early. The sink callback
/// receives each response body in submission order.
///
/// The sink is invoked WITHOUT the writer's mutex held (a single
/// "flushing" owner drains ready runs), so a slow sink — a blocking
/// socket write, a contended downstream lock — never stalls workers
/// that are merely delivering out-of-order completions.
class OrderedWriter {
 public:
  using Sink = std::function<void(const std::string&)>;

  explicit OrderedWriter(Sink sink) : sink_(std::move(sink)) {}

  /// Reserves the next sequence number (call in submission order).
  [[nodiscard]] std::uint64_t next_sequence() noexcept { return sequence_++; }

  /// Delivers response `seq`; flushes it and any directly following
  /// buffered responses to the sink, in order.
  void complete(std::uint64_t seq, std::string&& body);

  /// Number of reserved-but-undelivered responses.
  [[nodiscard]] std::size_t pending() const;

  /// Blocks until every reserved sequence number has been delivered.
  void drain();

 private:
  /// Writes runs of contiguous buffered responses starting at
  /// next_to_write_, releasing the lock around each run of sink calls.
  /// Pre: lock held and flushing_ == true; post: flushing_ == false.
  void flush_ready(std::unique_lock<std::mutex>& lock);

  Sink sink_;
  std::atomic<std::uint64_t> sequence_{0};  ///< next to reserve
  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::uint64_t next_to_write_ = 0;
  bool flushing_ = false;  ///< one thread at a time owns the sink
  std::map<std::uint64_t, std::string> out_of_order_;
  std::vector<std::string> flush_batch_;  ///< flusher-owned scratch
};

/// Serves newline-delimited requests from `in` to `out` through the
/// worker pool, preserving input order; returns after EOF once every
/// response has been written. Used by `archline_serverd --stdio` and
/// the protocol tests. The server must be started; it is NOT shut down
/// on return.
void run_stream(Server& server, std::istream& in, std::ostream& out);

}  // namespace archline::serve
