#pragma once
// TCP transport for serve::Server: a single epoll event loop owning
// every connection as non-blocking state (read buffer, ordered write
// queue, activity clock) instead of a thread. Workers hand finished
// responses back to the loop through an eventfd-signalled completion
// channel; the loop frames them and flushes opportunistically, falling
// back to EPOLLOUT when the socket's send buffer is full.
//
// Connection lifecycle is bounded and explicit:
//   * at most `max_connections` sockets are admitted — the accept path
//     answers anyone beyond that with the canned "overloaded" error and
//     closes immediately;
//   * a connection idle longer than `idle_timeout_ms` with no pending
//     work is closed by the loop;
//   * requests inherit the Server's per-request deadline, so a job that
//     out-waits the queue is answered with "deadline_exceeded";
//   * on peer half-close (EOF with buffered bytes), the final
//     un-terminated line is still processed and answered before the
//     connection closes.
//
// Linux-only (epoll + eventfd); the stdio transport in server.hpp is
// the portable fallback.

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/server.hpp"
#include "sim/clock.hpp"

namespace archline::serve {

/// The event loop's window onto the kernel socket API — the seam
/// sim::FaultyTransport wraps to inject partial writes, split reads,
/// EAGAIN storms, mid-frame resets, and accept failures without a
/// misbehaving peer. Implementations mimic the syscalls they wrap:
/// return counts / fds on success, -1 with errno set on failure, and
/// recv() == 0 means peer EOF. The loop is level-triggered, so a
/// wrapper may return short counts or spurious EAGAINs freely — epoll
/// re-fires until the real fd drains.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK).
  [[nodiscard]] virtual int accept(int listen_fd) noexcept;

  /// recv(fd, buf, len, 0).
  [[nodiscard]] virtual ssize_t recv(int fd, char* buf,
                                     std::size_t len) noexcept;

  /// send(fd, buf, len, MSG_NOSIGNAL).
  [[nodiscard]] virtual ssize_t send(int fd, const char* buf,
                                     std::size_t len) noexcept;
};

/// The process-wide pass-through — what a null SocketOps* resolves to.
[[nodiscard]] SocketOps& real_socket_ops() noexcept;

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 7411;  ///< 0 = pick an ephemeral port
  int backlog = 128;
  /// epoll_wait timeout; bounds how fast the loop notices a stop
  /// request and how precisely idle timeouts fire.
  int poll_interval_ms = 100;
  /// Hard cap on concurrently open connections; accepts beyond it are
  /// answered with overloaded_body() and closed.
  std::size_t max_connections = 1024;
  /// Close a connection with no traffic and no pending responses for
  /// this long. 0 disables idle closing.
  int idle_timeout_ms = 0;
  /// Time source for idle sweeps and the stop-drain grace (null = the
  /// real steady clock). With a sim::SimClock, idle-timeout tests
  /// advance time instead of sleeping through it.
  const sim::ClockSource* clock = nullptr;
  /// Socket syscall seam (null = the real kernel API). Tests install a
  /// sim::FaultyTransport to script read/write/accept faults.
  SocketOps* socket_ops = nullptr;
};

class TcpListener {
 public:
  TcpListener(Server& server, TcpOptions options);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens (non-blocking). Returns false and fills `error`
  /// on failure.
  [[nodiscard]] bool open(std::string* error);

  /// The bound port (useful when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Event loop; runs until `stop` becomes true AND every admitted
  /// request has been answered and flushed (admitted work is never
  /// dropped; a peer that stops reading is force-closed after a short
  /// drain grace). Call from exactly one thread; the loop never spawns
  /// threads of its own — worker parallelism lives in the Server.
  void run(const std::atomic<bool>& stop);

 private:
  Server& server_;
  TcpOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace archline::serve
