#pragma once
// TCP transport for serve::Server: a poll-based accept loop plus one
// thread per connection, each reading newline-delimited requests,
// submitting them to the worker pool, and writing responses back in
// request order via OrderedWriter. Clients may pipeline arbitrarily
// many requests before reading.
//
// POSIX sockets only (the project targets Linux); the stdio transport
// in server.hpp is the portable fallback.

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace archline::serve {

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 7411;  ///< 0 = pick an ephemeral port
  int backlog = 128;
  /// recv poll timeout; bounds how fast connections notice a stop
  /// request.
  int poll_interval_ms = 100;
};

class TcpListener {
 public:
  TcpListener(Server& server, TcpOptions options);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens. Returns false and fills `error` on failure.
  [[nodiscard]] bool open(std::string* error);

  /// The bound port (useful when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept loop; returns when `stop` becomes true. In-flight requests
  /// on live connections finish and their responses are flushed before
  /// each connection closes (admitted work is never dropped).
  void run(const std::atomic<bool>& stop);

 private:
  void serve_connection(int fd, const std::atomic<bool>& stop);

  Server& server_;
  TcpOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace archline::serve
