#pragma once
// TCP transport for serve::Server: a single epoll event loop owning
// every connection as non-blocking state (read buffer, ordered write
// queue, activity clock) instead of a thread. Workers hand finished
// responses back to the loop through an eventfd-signalled completion
// channel; the loop frames them and flushes opportunistically, falling
// back to EPOLLOUT when the socket's send buffer is full.
//
// Connection lifecycle is bounded and explicit:
//   * at most `max_connections` sockets are admitted — the accept path
//     answers anyone beyond that with the canned "overloaded" error and
//     closes immediately;
//   * a connection idle longer than `idle_timeout_ms` with no pending
//     work is closed by the loop;
//   * requests inherit the Server's per-request deadline, so a job that
//     out-waits the queue is answered with "deadline_exceeded";
//   * on peer half-close (EOF with buffered bytes), the final
//     un-terminated line is still processed and answered before the
//     connection closes.
//
// Linux-only (epoll + eventfd); the stdio transport in server.hpp is
// the portable fallback.

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace archline::serve {

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 7411;  ///< 0 = pick an ephemeral port
  int backlog = 128;
  /// epoll_wait timeout; bounds how fast the loop notices a stop
  /// request and how precisely idle timeouts fire.
  int poll_interval_ms = 100;
  /// Hard cap on concurrently open connections; accepts beyond it are
  /// answered with overloaded_body() and closed.
  std::size_t max_connections = 1024;
  /// Close a connection with no traffic and no pending responses for
  /// this long. 0 disables idle closing.
  int idle_timeout_ms = 0;
};

class TcpListener {
 public:
  TcpListener(Server& server, TcpOptions options);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens (non-blocking). Returns false and fills `error`
  /// on failure.
  [[nodiscard]] bool open(std::string* error);

  /// The bound port (useful when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Event loop; runs until `stop` becomes true AND every admitted
  /// request has been answered and flushed (admitted work is never
  /// dropped; a peer that stops reading is force-closed after a short
  /// drain grace). Call from exactly one thread; the loop never spawns
  /// threads of its own — worker parallelism lives in the Server.
  void run(const std::atomic<bool>& stop);

 private:
  Server& server_;
  TcpOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace archline::serve
