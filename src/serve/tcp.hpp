#pragma once
// TCP transport for serve::Server: N thread-per-core epoll event-loop
// shards. Each shard owns its listen socket (SO_REUSEPORT — the kernel
// load-balances accepts by 4-tuple hash), its connection table, its
// completion eventfd, a partition of the response cache served inline
// from the loop thread, and a Metrics stripe — so the steady-state
// cached-hit path never crosses a core boundary. Only heavy-lane /
// miss traffic is handed to the shared worker pool through the
// LaneScheduler. Where SO_REUSEPORT is unavailable (or disabled for
// deterministic placement in tests), shard 0 accepts and round-robins
// fds to its peers over eventfd-signalled handoff queues.
//
// Workers hand finished responses back to the owning shard through an
// eventfd-signalled completion channel; the shard frames them and
// coalesces every reply buffered for a connection into one writev()
// per epoll wake, falling back to EPOLLOUT when the socket's send
// buffer is full.
//
// Connection lifecycle is bounded and explicit:
//   * at most `max_connections` sockets are admitted (split across
//     shards) — the accept path answers anyone beyond that with the
//     canned "overloaded" error and closes immediately;
//   * a connection idle longer than `idle_timeout_ms` with no pending
//     work is closed by its shard;
//   * requests inherit the Server's per-request deadline, so a job that
//     out-waits the queue is answered with "deadline_exceeded";
//   * on peer half-close (EOF with buffered bytes), the final
//     un-terminated line is still processed and answered before the
//     connection closes.
//
// Linux-only (epoll + eventfd); the stdio transport in server.hpp is
// the portable fallback.

#include <sys/types.h>
#include <sys/uio.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/server.hpp"
#include "sim/clock.hpp"

namespace archline::serve {

/// The event loop's window onto the kernel socket API — the seam
/// sim::FaultyTransport wraps to inject partial writes, split reads,
/// EAGAIN storms, mid-frame resets, and accept failures without a
/// misbehaving peer. Implementations mimic the syscalls they wrap:
/// return counts / fds on success, -1 with errno set on failure, and
/// recv() == 0 means peer EOF. The loop is level-triggered, so a
/// wrapper may return short counts or spurious EAGAINs freely — epoll
/// re-fires until the real fd drains.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK).
  [[nodiscard]] virtual int accept(int listen_fd) noexcept;

  /// recv(fd, buf, len, 0).
  [[nodiscard]] virtual ssize_t recv(int fd, char* buf,
                                     std::size_t len) noexcept;

  /// send(fd, buf, len, MSG_NOSIGNAL).
  [[nodiscard]] virtual ssize_t send(int fd, const char* buf,
                                     std::size_t len) noexcept;

  /// Scatter-gather send — the loop's reply-batching path (one call
  /// per connection per epoll wake). The real implementation is
  /// sendmsg(MSG_NOSIGNAL); the base-class default degrades to a
  /// single-segment send() so SocketOps mocks that only script send()
  /// keep working (the loop treats the result as a legal short write).
  [[nodiscard]] virtual ssize_t sendv(int fd, const struct iovec* iov,
                                      int iovcnt) noexcept;
};

/// The process-wide pass-through — what a null SocketOps* resolves to.
[[nodiscard]] SocketOps& real_socket_ops() noexcept;

struct TcpOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 7411;  ///< 0 = pick an ephemeral port
  int backlog = 128;
  /// epoll_wait timeout; bounds how fast a shard notices a stop
  /// request and how precisely idle timeouts fire.
  int poll_interval_ms = 100;
  /// Hard cap on concurrently open connections, divided across shards
  /// (shard i gets the remainder spread first); accepts beyond a
  /// shard's slice are answered with overloaded_body() and closed.
  std::size_t max_connections = 1024;
  /// Close a connection with no traffic and no pending responses for
  /// this long. 0 disables idle closing.
  int idle_timeout_ms = 0;
  /// Event-loop shard count. Clamped to [1, kMaxShards] and to
  /// max_connections (a shard with zero connection slots is useless).
  /// 1 reproduces the single-loop behavior exactly.
  int shards = 1;
  /// Use SO_REUSEPORT listeners (one per shard, kernel-balanced) when
  /// shards > 1. false — or a kernel without SO_REUSEPORT — selects
  /// the fallback: shard 0 accepts and hands fds to shards round-robin
  /// in accept order, which is deterministic and therefore what the
  /// cross-shard tests pin.
  bool use_reuseport = true;
  /// Pin each shard's loop thread to CPU `shard` (shard 0 pins the
  /// thread that called run()). Off by default: pinning helps steady
  /// benchmark numbers on a quiet machine but fights the scheduler on a
  /// shared one. When the machine has fewer online CPUs than shards the
  /// request is logged to stderr and ignored (no-op, not an error).
  bool pin_shards = false;
  /// Once a stop is requested, how long shards keep flushing pending
  /// responses to peers that have stopped reading before force-closing
  /// them. Bounds shutdown against misbehaving clients. While
  /// stopping, the epoll timeout is clamped to the remaining grace so
  /// the deadline is honored even when poll_interval_ms exceeds it.
  int drain_grace_ms = 5000;
  /// Time source for idle sweeps and the stop-drain grace (null = the
  /// real steady clock). With a sim::SimClock, idle-timeout tests
  /// advance time instead of sleeping through it.
  const sim::ClockSource* clock = nullptr;
  /// Socket syscall seam (null = the real kernel API). Tests install a
  /// sim::FaultyTransport to script read/write/accept faults. With
  /// shards > 1 every shard thread calls it — use one shard or a
  /// per-thread wrapper (sim::ShardedFaultyTransport) for scripted
  /// faults.
  SocketOps* socket_ops = nullptr;
};

class TcpListener {
 public:
  /// Upper bound on event-loop shards (also the Metrics per-shard
  /// counter array size).
  static constexpr int kMaxShards = 16;

  TcpListener(Server& server, TcpOptions options);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens (non-blocking) — one socket per shard with
  /// SO_REUSEPORT, or a single acceptor socket in handoff mode.
  /// Returns false and fills `error` on failure; every fd created on a
  /// failed or repeated open is closed first (no leaks), so a caller
  /// may retry open() after fixing the options.
  [[nodiscard]] bool open(std::string* error);

  /// The bound port (useful when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Shard count actually in effect after open()'s clamping.
  [[nodiscard]] int shard_count() const noexcept { return shards_; }

  /// True when open() established per-shard SO_REUSEPORT listeners;
  /// false in single-shard or acceptor-handoff mode.
  [[nodiscard]] bool reuseport_active() const noexcept { return reuseport_; }

  /// Event loop; runs until `stop` becomes true AND every admitted
  /// request has been answered and flushed (admitted work is never
  /// dropped; a peer that stops reading is force-closed after the
  /// drain grace). Call from exactly one thread; with shards > 1 the
  /// calling thread runs shard 0 and the remaining shards run on
  /// threads owned by this call, all joined before it returns.
  void run(const std::atomic<bool>& stop);

 private:
  /// Creates, configures, binds, and listens one socket on `port`
  /// (0 = ephemeral). Returns -1 with `error` filled on failure; never
  /// leaks the fd it created.
  [[nodiscard]] int open_socket(std::uint16_t port, bool reuseport,
                                std::string* error);

  void close_listeners() noexcept;
  void drop_partitions() noexcept;

  Server& server_;
  TcpOptions options_;
  std::vector<int> listen_fds_;
  /// Per-shard response-cache partitions, created by open() and served
  /// inline by the owning shard's loop thread. shared_ptr because jobs
  /// in the worker queue hold a reference for miss-fill after a shard
  /// force-closes its connections at shutdown.
  std::vector<std::shared_ptr<ShardedLruCache>> partitions_;
  std::uint16_t port_ = 0;
  int shards_ = 1;
  bool reuseport_ = false;
};

}  // namespace archline::serve
