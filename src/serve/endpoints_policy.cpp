// The energy-policy surface: "policy_advise" runs the operating-point /
// execution-plan sweep of core/policy.hpp for a named platform and
// returns the recommended (point, plan) pair plus the full evaluated
// table, so clients can audit the argmin themselves.
//
// Closed-form all the way down (a handful of eq. (1)-(7) evaluations
// per operating point), so the endpoint is Light and cacheable. It is
// model_scoped: the per-point machines are derived from the online
// store's published estimates when present, so cached replies expire
// with the parameter generation like predict's do.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/operating_point.hpp"
#include "core/policy.hpp"
#include "core/roofline.hpp"
#include "fit/online/snapshot.hpp"
#include "platforms/platform_db.hpp"
#include "serve/endpoint_util.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

namespace {

core::Objective parse_objective(const Json& req) {
  const std::string_view o = req.string_view_or("objective", "min_energy");
  if (o == "min_energy") return core::Objective::MinEnergy;
  if (o == "min_time") return core::Objective::MinTime;
  if (o == "min_edp") return core::Objective::MinEdp;
  if (o == "power_cap") return core::Objective::PowerCap;
  bad("unknown objective \"" + std::string(o) +
      "\" (expected \"min_energy\", \"min_time\", \"min_edp\", or "
      "\"power_cap\")");
}

/// The operating-point block shared by the recommendation and the
/// platforms listing: label, scales, and the *effective* constant power
/// of the per-point machine (inherit resolved, online overlay applied).
Json point_json(const core::OperatingPoint& p, const core::MachineParams& m) {
  Json out = Json::object();
  out.set("label", Json::view(p.label));
  out.set("freq_scale", p.freq_scale);
  out.set("energy_scale", p.energy_scale);
  out.set("pi1_w", m.pi1);
  out.set("idle_w", p.idle_watts);
  return out;
}

Json plan_json(const core::PlanEvaluation& e,
               std::span<const core::OperatingPoint> points) {
  Json row = Json::object();
  row.set("point", Json::view(points[e.point_index].label));
  row.set("point_index", static_cast<double>(e.point_index));
  row.set("plan", Json::view(core::to_string(e.kind)));
  row.set("feasible", e.feasible);
  if (e.feasible) {
    row.set("busy_s", e.busy_s);
    row.set("time_s", e.time_s);
    row.set("energy_j", e.energy_j);
    row.set("avg_power_w", e.avg_power_w);
    row.set("edp", e.edp);
    row.set("objective_value", e.objective_value);
    row.set("regime", core::regime_name(e.regime));
  }
  return row;
}

Json do_policy_advise(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  const std::string_view name = require_string(req, "platform");
  const platforms::PlatformSpec& spec = lookup_platform(name);
  if (spec.operating_points.empty())
    throw RequestError{"unsupported",
                       "platform \"" + std::string(name) +
                           "\" has no operating-point table"};
  const core::Precision prec = parse_precision(req);
  const core::Objective objective = parse_objective(req);

  core::PolicyRequest preq;
  preq.workload = resolve_workload(req);
  preq.objective = objective;
  preq.period_s = req.number_or("period_s", 0.0);
  preq.power_cap_w = req.number_or("power_cap_w", 0.0);
  try {
    preq.validate();
  } catch (const std::exception& e) {
    bad(e.what());
  }

  // Per-point machines: the online snapshot pre-builds them at publish
  // time (learned constants swept across the ladder); when none is
  // published — or the precision is not the learned SP machine — derive
  // them from the static/overlaid base. platform_machine raises
  // "unsupported" itself for DP on SP-only parts.
  const std::span<const core::OperatingPoint> points =
      spec.operating_points.points;
  std::vector<core::MachineParams> machines;
  std::shared_ptr<const fit::online::ParamSnapshot> snap;
  if (ctx.online && prec == core::Precision::Single)
    snap = ctx.online->published(name);
  if (snap && snap->op_machines.size() == points.size()) {
    machines = snap->op_machines;
  } else {
    machines = core::machines_at_points(platform_machine(ctx, name, prec),
                                        points);
  }

  const core::PolicyAdvice advice = core::policy_advise(
      machines, points, spec.operating_points.park_watts(), preq);
  if (!advice.has_recommendation())
    throw RequestError{
        "infeasible",
        "no operating point admits a feasible plan for this request "
        "(period too short or power cap below constant power)"};

  Json out = begin_reply(ctx.endpoint, req);
  out.set("platform", Json::view(name));
  out.set("objective", Json::view(core::to_string(objective)));
  out.set("flops", preq.workload.flops);
  out.set("bytes", preq.workload.bytes);
  out.set("intensity", preq.workload.intensity());
  if (preq.period_s > 0.0) out.set("period_s", preq.period_s);
  if (preq.power_cap_w > 0.0) out.set("power_cap_w", preq.power_cap_w);
  out.set("park_w", advice.park_watts);

  const core::PlanEvaluation& best = advice.recommended();
  Json rec = Json::object();
  rec.set("point",
          point_json(points[best.point_index], machines[best.point_index]));
  rec.set("plan", Json::view(core::to_string(best.kind)));
  rec.set("busy_s", best.busy_s);
  rec.set("time_s", best.time_s);
  rec.set("energy_j", best.energy_j);
  rec.set("avg_power_w", best.avg_power_w);
  rec.set("edp", best.edp);
  rec.set("objective_value", best.objective_value);
  rec.set("regime", core::regime_name(best.regime));
  out.set("recommended", std::move(rec));

  Json plans = Json::array();
  for (const core::PlanEvaluation& e : advice.plans)
    plans.push_back(plan_json(e, points));
  out.set("plans", std::move(plans));
  return out;
}

}  // namespace

void register_policy_endpoints(Registry& r) {
  r.add({.name = "policy_advise",
         .klass = RequestClass::Light,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_policy_advise});
}

}  // namespace archline::serve
