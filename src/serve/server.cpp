#include "serve/server.hpp"

#include <algorithm>
#include <utility>

namespace archline::serve {

namespace {

/// Trims trailing CR / whitespace so "...}\r\n" framed requests hit the
/// same cache key as "...}\n".
std::string_view trim(std::string_view line) noexcept {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
    line.remove_suffix(1);
  while (!line.empty() &&
         (line.front() == ' ' || line.front() == '\t'))
    line.remove_prefix(1);
  return line;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(2u, hw));
}

/// Heavy-capable worker count: explicit request clamped to the pool, or
/// a quarter of the pool (min 1) by default. With the heavy lane
/// disabled nobody needs heavy capability, so all workers go light-only
/// plus one all-lanes sweeper (harmless: the heavy lane stays empty).
int resolve_heavy_workers(int requested, int threads,
                          std::size_t heavy_capacity) {
  if (heavy_capacity == 0) return 1;
  if (requested > 0) return std::min(requested, threads);
  return std::max(1, threads / 4);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      clock_(options.clock ? options.clock : &sim::real_clock()),
      cache_(options.cache_capacity, options.cache_shards),
      metrics_(options.clock),
      // Heavy lane disabled (capacity 0) => Heavy requests are routed to
      // the light lane by lane_for(), restoring the unified single-queue
      // behavior — the A/B baseline for the starvation benchmark.
      queue_(std::array<LaneConfig, kLaneCount>{
          LaneConfig{options.queue_capacity, kLightWeight},
          LaneConfig{options.heavy_lane_capacity, kHeavyWeight}}),
      online_(options.online) {
  options_.threads = resolve_threads(options_.threads);
  options_.heavy_workers = resolve_heavy_workers(
      options_.heavy_workers, options_.threads, options_.heavy_lane_capacity);
}

Server::~Server() { shutdown(); }

void Server::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) return;
  // A previous shutdown() closed the lanes; reopen so submit() admits
  // again and fresh workers block in pop_n() instead of exiting at once.
  queue_.reopen();
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  // The first heavy_workers threads drain both lanes with weighted
  // round-robin; the rest are light-only, so Heavy execution concurrency
  // is capped and a fit flood can never occupy the whole pool.
  for (int i = 0; i < options_.threads; ++i) {
    const LaneMask mask = i < options_.heavy_workers ? kAllLanes : kLightOnly;
    workers_.emplace_back([this, mask] { worker_loop(mask); });
  }
  if (options_.refit_interval_ms > 0 && !resolver_) {
    resolver_ = std::make_unique<fit::online::BackgroundResolver>(
        online_, options_.refit_interval_ms);
    resolver_->start();
  }
  running_.store(true, std::memory_order_release);
}

std::size_t Server::lane_for(std::string_view line) const noexcept {
  if (options_.heavy_lane_capacity == 0) return kLightLane;
  return classify_line(line) == RequestClass::Heavy ? kHeavyLane : kLightLane;
}

bool Server::submit(std::string line, Done done) {
  const std::size_t lane = lane_for(line);
  const int deadline_ms = lane == kHeavyLane && options_.heavy_deadline_ms > 0
                              ? options_.heavy_deadline_ms
                              : options_.request_deadline_ms;
  const auto deadline =
      deadline_ms > 0 ? clock_->now() + std::chrono::milliseconds(deadline_ms)
                      : Clock::time_point::max();
  return submit_to_lane(std::move(line), std::move(done), deadline, lane);
}

bool Server::submit(std::string line, Done done, Clock::time_point deadline) {
  return submit_to_lane(std::move(line), std::move(done), deadline,
                        lane_for(line));
}

bool Server::submit(std::string line, Done done,
                    std::shared_ptr<ShardedLruCache> cache,
                    bool cache_prechecked) {
  const std::size_t lane = lane_for(line);
  const int deadline_ms = lane == kHeavyLane && options_.heavy_deadline_ms > 0
                              ? options_.heavy_deadline_ms
                              : options_.request_deadline_ms;
  const auto deadline =
      deadline_ms > 0 ? clock_->now() + std::chrono::milliseconds(deadline_ms)
                      : Clock::time_point::max();
  return submit_to_lane(std::move(line), std::move(done), deadline, lane,
                        std::move(cache), cache_prechecked);
}

bool Server::submit_to_lane(std::string line, Done done,
                            Clock::time_point deadline, std::size_t lane,
                            std::shared_ptr<ShardedLruCache> cache,
                            bool cache_prechecked) {
  // `admitted` anchors queue-inclusive latency; like handle_into, it is
  // only stamped for requests whose latency is sampled.
  Job job{std::move(line), std::move(done),
          metrics_.sample_latency_now()
              ? clock_->now()
              : std::chrono::steady_clock::time_point{},
          deadline, lane, std::move(cache), cache_prechecked};
  std::size_t depth = 0;
  if (!queue_.try_push(lane, std::move(job), &depth)) {
    metrics_.on_rejected(lane);
    return false;
  }
  metrics_.on_lane_depth(lane, depth);
  return true;
}

std::string Server::handle_now(std::string_view line) {
  std::string out;
  handle_into(line, out);
  return out;
}

void Server::handle_into(std::string_view line, std::string& out) {
  // Donate the caller's capacity to the reply buffer and hand it back
  // afterwards: repeated calls with the same `out` settle into zero
  // allocations on the cache-hit path. The start timestamp is taken
  // only when this request's latency is sampled (default-constructed
  // time_point = unsampled).
  Reply reply;
  reply.body.swap(out);
  const auto started = metrics_.sample_latency_now()
                           ? clock_->now()
                           : std::chrono::steady_clock::time_point{};
  execute_into(line, started, reply);
  out.swap(reply.body);
}

bool Server::try_serve_cached(std::string_view line, ShardedLruCache& cache,
                              std::string& out) {
  const std::string_view key = trim(line);
  if (key.empty()) return false;
  const auto started = metrics_.sample_latency_now()
                           ? clock_->now()
                           : std::chrono::steady_clock::time_point{};
  const std::uint64_t generation = online_.generation();
  out.clear();
  std::uint8_t tag = 0;
  if (!cache.get(key, generation, out, tag)) return false;
  const Endpoint* endpoint = Registry::instance().by_id(tag);
  if (started == std::chrono::steady_clock::time_point{}) {
    metrics_.on_completed(endpoint, true);
  } else {
    metrics_.on_completed(
        endpoint, true,
        std::chrono::duration<double>(clock_->now() - started).count());
  }
  return true;
}

void Server::add_cache_partition(
    std::shared_ptr<const ShardedLruCache> partition) {
  if (!partition) return;
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  partitions_.push_back(std::move(partition));
}

void Server::remove_cache_partition(const ShardedLruCache* partition) {
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  partitions_.erase(
      std::remove_if(partitions_.begin(), partitions_.end(),
                     [partition](const auto& p) { return p.get() == partition; }),
      partitions_.end());
}

ShardedLruCache::Stats Server::cache_stats() const {
  ShardedLruCache::Stats total = cache_.stats();
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  for (const auto& p : partitions_) {
    const ShardedLruCache::Stats s = p->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.stale += s.stale;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.capacity += s.capacity;
    total.shards += s.shards;
  }
  return total;
}

void Server::execute_into(
    std::string_view line, std::chrono::steady_clock::time_point started,
    Reply& reply) {
  execute_into(line, started, reply, cache_, /*skip_probe=*/false);
}

void Server::execute_into(
    std::string_view line, std::chrono::steady_clock::time_point started,
    Reply& reply, ShardedLruCache& cache, bool skip_probe) {
  const std::string_view key = trim(line);
  const auto finish = [&](const Endpoint* endpoint, bool ok) {
    if (started == std::chrono::steady_clock::time_point{}) {
      metrics_.on_completed(endpoint, ok);  // counted, latency unsampled
      return;
    }
    const double latency =
        std::chrono::duration<double>(clock_->now() - started).count();
    metrics_.on_completed(endpoint, ok, latency);
  };

  // The parameter generation is captured BEFORE the lookup and reused
  // for the put: if a re-solve publishes while this request evaluates,
  // the entry is inserted under the old generation and is stale on
  // arrival — the next lookup recomputes instead of serving a reply
  // that mixes generations.
  const std::uint64_t generation = online_.generation();

  // Hot path: a byte-identical request skips parsing entirely. The
  // endpoint id rides out-of-band as the entry's tag and the body is
  // copied exactly once, into reply.body's reused capacity.
  reply.body.clear();
  std::uint8_t tag = 0;
  if (!skip_probe && cache.get(key, generation, reply.body, tag)) {
    reply.endpoint = Registry::instance().by_id(tag);
    reply.ok = true;
    reply.cacheable = true;
    finish(reply.endpoint, true);
    return;
  }

  handle_line(key, options_.limits, reply, &online_);
  // server_evaluated endpoints ("stats") render against live server
  // state instead of the request alone; the handler left the body empty.
  if (reply.ok && reply.endpoint && reply.endpoint->server_evaluated)
    reply.body = stats_body();
  if (reply.ok && reply.cacheable)
    cache.put(key, reply.body, reply.endpoint->id, generation,
              reply.endpoint->model_scoped);
  finish(reply.endpoint, reply.ok);
}

void Server::run_job(Job& job, Reply& scratch) {
  // A job that out-waited its deadline in the queue is answered with
  // the canned error instead of burning a worker on a reply the client
  // has likely given up on.
  if (job.deadline != Clock::time_point::max() &&
      clock_->now() > job.deadline) {
    metrics_.on_deadline_exceeded(job.lane);
    job.done(std::string(deadline_exceeded_body()));
    return;
  }
  execute_into(job.line, job.admitted, scratch,
               job.cache ? *job.cache : cache_,
               job.cache != nullptr && job.cache_prechecked);
  // Ownership of the body transfers to the transport; the scratch
  // buffer re-grows on the next request (one allocation per response is
  // the floor while `done` takes ownership).
  job.done(std::move(scratch.body));
}

void Server::worker_loop(LaneMask mask) {
  std::vector<Job> batch;
  batch.reserve(kWorkerBatch);
  Reply scratch;
  std::array<std::size_t, kLaneCount> depths{};
  for (;;) {
    batch.clear();
    if (queue_.pop_n(mask, batch, kWorkerBatch, &depths) == 0) break;
    // One gauge update per lane per batch, using the depths pop_n
    // already observed — no extra lock crossings just to read sizes.
    for (std::size_t lane = 0; lane < kLaneCount; ++lane)
      if (mask & lane_bit(lane)) metrics_.on_lane_depth(lane, depths[lane]);
    for (Job& job : batch) run_job(job, scratch);
  }
}

void Server::shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  // Stop the resolver first so no re-solve publishes while workers
  // drain — in-flight requests then see one stable generation.
  if (resolver_) {
    resolver_->stop();
    resolver_.reset();
  }
  queue_.close();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  // If shutdown raced start (or start was never called), drain whatever
  // was admitted on this thread so every submit()'s done still fires.
  Reply scratch;
  while (std::optional<Job> job = queue_.pop(kAllLanes)) run_job(*job, scratch);
  for (std::size_t lane = 0; lane < kLaneCount; ++lane)
    metrics_.on_lane_depth(lane, 0);
  running_.store(false, std::memory_order_release);
}

// ---- OrderedWriter --------------------------------------------------------

void OrderedWriter::flush_ready(std::unique_lock<std::mutex>& lock) {
  while (!out_of_order_.empty() &&
         out_of_order_.begin()->first == next_to_write_) {
    flush_batch_.clear();
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() &&
           it->first == next_to_write_ + flush_batch_.size()) {
      flush_batch_.push_back(std::move(it->second));
      it = out_of_order_.erase(it);
    }
    lock.unlock();
    for (const std::string& body : flush_batch_) sink_(body);
    lock.lock();
    next_to_write_ += flush_batch_.size();
  }
  flushing_ = false;
  if (next_to_write_ == sequence_.load(std::memory_order_acquire))
    all_done_.notify_all();
}

void OrderedWriter::complete(std::uint64_t seq, std::string&& body) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Fast path: this response is the next to write, nothing is buffered,
  // and nobody else owns the sink — write it directly, without ever
  // parking it in the map, and without holding the mutex across sink_.
  if (!flushing_ && seq == next_to_write_ && out_of_order_.empty()) {
    flushing_ = true;
    lock.unlock();
    sink_(body);
    lock.lock();
    ++next_to_write_;
    flush_ready(lock);
    return;
  }
  out_of_order_.emplace(seq, std::move(body));
  if (flushing_ || out_of_order_.begin()->first != next_to_write_) return;
  flushing_ = true;
  flush_ready(lock);
}

std::size_t OrderedWriter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      sequence_.load(std::memory_order_acquire) - next_to_write_);
}

void OrderedWriter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [&] {
    return next_to_write_ == sequence_.load(std::memory_order_acquire);
  });
}

// ---- Stream transport -----------------------------------------------------

void run_stream(Server& server, std::istream& in, std::ostream& out) {
  OrderedWriter writer(
      [&out](const std::string& body) { out << body << '\n'; });
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const std::uint64_t seq = writer.next_sequence();
    const bool admitted = server.submit(
        line, [&writer, seq](std::string&& body) {
          writer.complete(seq, std::move(body));
        });
    if (!admitted) writer.complete(seq, std::string(overloaded_body()));
  }
  writer.drain();
  out.flush();
}

}  // namespace archline::serve
