#include "serve/server.hpp"

#include <algorithm>
#include <utility>

namespace archline::serve {

namespace {

/// Trims trailing CR / whitespace so "...}\r\n" framed requests hit the
/// same cache key as "...}\n".
std::string_view trim(std::string_view line) noexcept {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
    line.remove_suffix(1);
  while (!line.empty() &&
         (line.front() == ' ' || line.front() == '\t'))
    line.remove_prefix(1);
  return line;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(2u, hw));
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      queue_(options.queue_capacity) {
  options_.threads = resolve_threads(options_.threads);
}

Server::~Server() { shutdown(); }

void Server::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) return;
  // A previous shutdown() closed the queue; reopen so submit() admits
  // again and fresh workers block in pop() instead of exiting at once.
  queue_.reopen();
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  running_.store(true, std::memory_order_release);
}

bool Server::submit(std::string line, Done done) {
  const auto deadline =
      options_.request_deadline_ms > 0
          ? Clock::now() + std::chrono::milliseconds(
                               options_.request_deadline_ms)
          : Clock::time_point::max();
  return submit(std::move(line), std::move(done), deadline);
}

bool Server::submit(std::string line, Done done, Clock::time_point deadline) {
  Job job{std::move(line), std::move(done),
          std::chrono::steady_clock::now(), deadline};
  std::size_t depth = 0;
  if (!queue_.try_push(std::move(job), &depth)) {
    metrics_.on_rejected();
    return false;
  }
  metrics_.on_queue_depth(depth);
  return true;
}

std::string Server::handle_now(std::string_view line) {
  return execute(line, std::chrono::steady_clock::now());
}

std::string Server::execute(
    std::string_view line, std::chrono::steady_clock::time_point started) {
  const std::string_view key = trim(line);
  const auto finish = [&](RequestType type, bool ok) {
    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    metrics_.on_completed(type, ok, latency);
  };

  // Hot path: a byte-identical request skips parsing entirely. Cached
  // values carry a one-byte RequestType tag so the hit still counts
  // under the right type.
  if (std::optional<std::string> hit = cache_.get(key)) {
    const auto type = static_cast<RequestType>((*hit)[0]);
    std::string body = hit->substr(1);
    finish(type, true);
    return body;
  }

  Reply reply = handle_line(key, options_.limits);
  if (reply.type == RequestType::Stats && reply.ok)
    reply.body = stats_body();
  if (reply.ok && reply.cacheable) {
    std::string tagged;
    tagged.reserve(reply.body.size() + 1);
    tagged += static_cast<char>(reply.type);
    tagged += reply.body;
    cache_.put(key, std::move(tagged));
  }
  finish(reply.type, reply.ok);
  return std::move(reply.body);
}

void Server::run_job(Job& job) {
  // A job that out-waited its deadline in the queue is answered with
  // the canned error instead of burning a worker on a reply the client
  // has likely given up on.
  if (job.deadline != Clock::time_point::max() &&
      Clock::now() > job.deadline) {
    metrics_.on_deadline_exceeded();
    job.done(std::string(deadline_exceeded_body()));
    return;
  }
  std::string response = execute(job.line, job.admitted);
  job.done(std::move(response));
}

void Server::worker_loop() {
  while (std::optional<Job> job = queue_.pop()) {
    run_job(*job);
    metrics_.on_queue_depth(queue_.size());
  }
}

void Server::shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  queue_.close();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  // If shutdown raced start (or start was never called), drain whatever
  // was admitted on this thread so every submit()'s done still fires.
  while (std::optional<Job> job = queue_.pop()) run_job(*job);
  metrics_.on_queue_depth(0);
  running_.store(false, std::memory_order_release);
}

// ---- OrderedWriter --------------------------------------------------------

void OrderedWriter::complete(std::uint64_t seq, std::string&& body) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (seq != next_to_write_) {
    out_of_order_.emplace(seq, std::move(body));
    return;
  }
  sink_(body);
  ++next_to_write_;
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first == next_to_write_) {
    sink_(it->second);
    ++next_to_write_;
    it = out_of_order_.erase(it);
  }
  if (next_to_write_ == sequence_.load(std::memory_order_acquire))
    all_done_.notify_all();
}

std::size_t OrderedWriter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      sequence_.load(std::memory_order_acquire) - next_to_write_);
}

void OrderedWriter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [&] {
    return next_to_write_ == sequence_.load(std::memory_order_acquire);
  });
}

// ---- Stream transport -----------------------------------------------------

void run_stream(Server& server, std::istream& in, std::ostream& out) {
  OrderedWriter writer(
      [&out](const std::string& body) { out << body << '\n'; });
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const std::uint64_t seq = writer.next_sequence();
    const bool admitted = server.submit(
        line, [&writer, seq](std::string&& body) {
          writer.complete(seq, std::move(body));
        });
    if (!admitted) writer.complete(seq, std::string(overloaded_body()));
  }
  writer.drain();
  out.flush();
}

}  // namespace archline::serve
