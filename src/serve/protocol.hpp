#pragma once
// The newline-delimited request/response protocol of archline_serverd.
//
// Each request is one JSON object on one line with a "type" member;
// each response is one JSON object on one line. Responses are pure
// functions of the request bytes (deterministic model evaluation,
// deterministic serialization), which is what makes them cacheable and
// lets clients verify byte-identical replay. See docs/SERVER.md for the
// wire format with examples.
//
// This layer is stateless: it parses, validates, and dispatches through
// the endpoint registry (serve/registry.hpp) — the set of request types
// lives entirely in the endpoint translation units, never here. Queueing,
// caching, and metrics live in serve::Server.

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/json.hpp"
#include "serve/protocol_limits.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

/// A rendered response plus the routing facts Server needs.
struct Reply {
  std::string body;  ///< one-line JSON response (no trailing newline)
  /// The registry descriptor the request dispatched to; nullptr when it
  /// never reached a handler (parse error, unknown type, oversized).
  const Endpoint* endpoint = nullptr;
  bool ok = false;
  /// True when the reply is a deterministic pure function of the request
  /// and worth memoizing (handler successes on cacheable endpoints).
  bool cacheable = false;
};

/// Handles one request line end to end: size check, JSON parse, registry
/// dispatch, evaluation, rendering. Never throws and never crashes on
/// malformed input — every failure renders as
/// {"ok":false,"error":<code>,"message":...}.
///
/// A server_evaluated endpoint ("stats") is NOT rendered here (the
/// protocol layer has no metrics); it returns a Reply with that
/// endpoint, ok = true, empty body, and the caller substitutes the
/// live snapshot.
///
/// `online` is the caller's online-fit store (serve::Server passes its
/// own); it reaches handlers through EndpointContext. Null is valid —
/// the online endpoints then answer "unsupported" and platform
/// resolution uses the static Table I constants only.
[[nodiscard]] Reply handle_line(std::string_view line,
                                const ProtocolLimits& limits = {},
                                fit::online::OnlineStore* online = nullptr);

/// Same, rendering into a caller-owned Reply whose body capacity is
/// reused across calls — the hot-path form (Server workers keep one
/// Reply per thread). All fields of `reply` are reset; the request is
/// parsed in situ (no copies of `line`'s string payloads), so `line`
/// must stay alive for the duration of the call — which it trivially
/// does. Never throws.
void handle_line(std::string_view line, const ProtocolLimits& limits,
                 Reply& reply, fit::online::OnlineStore* online = nullptr);

/// Renders a structured error reply. `code` is a stable machine-readable
/// token ("bad_request", "unknown_platform", "overloaded", ...);
/// `id` (may be null) is the request's "id" member, echoed back.
[[nodiscard]] std::string error_body(std::string_view code,
                                     std::string_view message,
                                     const Json* id = nullptr);

/// The canned reply Server sends when the request's lane is full. Built
/// once; contains code "overloaded".
[[nodiscard]] const std::string& overloaded_body();

/// The canned reply Server sends when a request's deadline expired
/// while it waited in the queue. Built once; contains code
/// "deadline_exceeded".
[[nodiscard]] const std::string& deadline_exceeded_body();

}  // namespace archline::serve
