#include "serve/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace archline::serve {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const names[] = {"null",  "bool",   "number", "string",
                                      "array", "object", "raw"};
  throw JsonError(std::string("expected ") + want + ", got " +
                      names[static_cast<int>(got)],
                  0);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  if (!owned_)
    throw JsonError(
        "string is a view into external storage; use as_string_view", 0);
  return str_;
}

std::string_view Json::as_string_view() const {
  if (type_ != Type::String) type_error("string", type_);
  return owned_ ? std::string_view(str_) : view_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return obj_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::set(std::string_view key, Json value) {
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, v] : obj_)
    if (k == key) {
      v = std::move(value);
      return;
    }
  obj_.emplace_back(std::string(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) type_error("array", type_);
  arr_.push_back(std::move(value));
}

std::string Json::take_raw() {
  if (type_ != Type::Raw) type_error("raw", type_);
  return std::move(str_);
}

void Json::reserve(std::size_t n) {
  if (type_ == Type::Array)
    arr_.reserve(n);
  else if (type_ == Type::Object)
    obj_.reserve(n);
  else
    type_error("array or object", type_);
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return fallback;
  return v->as_number();
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return fallback;
  return v->as_bool();
}

std::string Json::string_or(std::string_view key,
                            std::string_view fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return std::string(fallback);
  return std::string(v->as_string_view());
}

std::string_view Json::string_view_or(std::string_view key,
                                      std::string_view fallback) const {
  const Json* v = find(key);
  if (!v || v->is_null()) return fallback;
  return v->as_string_view();
}

bool Json::operator==(const Json& other) const noexcept {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return num_ == other.num_;
    case Type::String:
      // Payload bytes, not storage mode: an owned string equals a view
      // of the same characters.
      return (owned_ ? std::string_view(str_) : view_) ==
             (other.owned_ ? std::string_view(other.str_) : other.view_);
    case Type::Array: return arr_ == other.arr_;
    case Type::Object: return obj_ == other.obj_;
    case Type::Raw: return str_ == other.str_;
  }
  return false;
}

// ---- Parser ---------------------------------------------------------------

namespace {

/// Expected member counts for reserve(): protocol requests are small
/// flat objects; 8 covers every request shape in one allocation while
/// wasting little on smaller documents.
constexpr std::size_t kReserveHint = 8;

/// Nested objects (batch elements, inline machine specs) run 2-6
/// members. The smaller hint matters beyond the wasted bytes: 4 pairs
/// keep the member vector's allocation under glibc's tcache ceiling,
/// so a 256-element batch does 256 fast-bin mallocs instead of 256
/// slow-path ones.
constexpr std::size_t kNestedReserveHint = 4;

/// Ceiling on the array() comma pre-scan estimate, so a hostile
/// document can't make reserve() grab unbounded memory up front.
constexpr std::size_t kArrayReserveCap = 4096;

class Parser {
 public:
  Parser(std::string_view text, int max_depth, bool in_situ)
      : text_(text), max_depth_(max_depth), in_situ_(in_situ) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  int max_depth_;
  bool in_situ_;

  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError(msg + " at offset " + std::to_string(pos_), pos_);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail(std::string("invalid literal (expected ") + std::string(word) +
           ")");
    pos_ += word.size();
  }

  Json value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return Json(true);
      case 'f': literal("false"); return Json(false);
      case 'n': literal("null"); return Json(nullptr);
      default: return number();
    }
  }

  Json object() {
    if (++depth_ > max_depth_) fail("nesting too deep");
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    obj.reserve(depth_ == 1 ? kReserveHint : kNestedReserveHint);
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (eof()) fail("unterminated object");
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return obj;
  }

  Json array() {
    if (++depth_ > max_depth_) fail("nesting too deep");
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    // Shallow arrays can be huge (predict_batch "elements"), and every
    // growth step move-relocates fat Json nodes. Commas in the rest of
    // the document upper-bound the element count (members inside the
    // elements only over-reserve), so one vectorizable byte scan buys a
    // single allocation with no relocations. Deep arrays skip the scan
    // — rescanning per nesting level would turn parsing quadratic.
    std::size_t hint = kReserveHint;
    if (depth_ <= 2) {
      std::size_t commas = 0;
      for (std::size_t i = pos_; i < text_.size(); ++i)
        if (text_[i] == ',') ++commas;
      hint = std::min(commas + 1, kArrayReserveCap);
    }
    arr.reserve(hint);
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (eof()) fail("unterminated array");
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return arr;
  }

  /// Fast scan for a string with no escapes and no control characters.
  /// On success, `payload` is the raw bytes between the quotes, pos_ is
  /// past the closing quote, and true is returned. On any complication
  /// (escape, control char, unterminated) pos_ is left on the opening
  /// quote for the slow path to re-parse and diagnose.
  /// Pre: text_[pos_] == '"'.
  bool scan_simple_string(std::string_view& payload) noexcept {
    for (std::size_t i = pos_ + 1; i < text_.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(text_[i]);
      if (c == '"') {
        payload = text_.substr(pos_ + 1, i - pos_ - 1);
        pos_ = i + 1;
        return true;
      }
      if (c == '\\' || c < 0x20) return false;
    }
    return false;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  unsigned hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return value;
  }

  /// An owned string (object keys always take this form; protocol keys
  /// fit SSO, so it stays heap-free). Escape-free strings are copied in
  /// one bulk append instead of char-by-char.
  std::string string() {
    std::string_view simple;
    if (scan_simple_string(simple)) return std::string(simple);
    return slow_string();
  }

  /// A string VALUE node: under in-situ parsing an escape-free payload
  /// becomes a view into text_ (zero copies); otherwise it is owned.
  /// Strings with escapes always materialize owned storage — the
  /// decoded bytes don't exist in the input.
  Json string_value() {
    std::string_view simple;
    if (scan_simple_string(simple))
      return in_situ_ ? Json::view(simple) : Json(simple);
    return Json(slow_string());
  }

  /// Escape-decoding path, also the diagnostic path for malformed
  /// strings (the fast scan rejects without consuming input).
  std::string slow_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half.
            if (eof() || next() != '\\' || eof() || next() != 'u')
              fail("unpaired surrogate in \\u escape");
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("invalid low surrogate in \\u escape");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !(peek() >= '0' && peek() <= '9')) fail("invalid number");
    // Leading zero may not be followed by more digits.
    if (peek() == '0') {
      ++pos_;
      if (!eof() && peek() >= '0' && peek() <= '9')
        fail("leading zero in number");
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !(peek() >= '0' && peek() <= '9'))
        fail("expected digits after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !(peek() >= '0' && peek() <= '9'))
        fail("expected digits in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    // from_chars first: correctly rounded like strtod but ~6x faster
    // (no locale machinery), and it reads straight from the input —
    // no copy at all. It reports extreme magnitudes (overflow to inf,
    // underflow past the smallest subnormal) as result_out_of_range
    // without storing a value, so those rare cases fall through to the
    // strtod path below, which keeps the previous implementation's
    // semantics exactly: underflow parses as 0.0, overflow fails.
    const std::size_t len = pos_ - start;
    {
      double v = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text_.data() + start, text_.data() + pos_, v);
      if (ec == std::errc{} && ptr == text_.data() + pos_) {
        if (!std::isfinite(v)) fail("number out of range");
        return Json(v);
      }
    }
    char buf[64];
    if (len < sizeof buf) {
      std::memcpy(buf, text_.data() + start, len);
      buf[len] = '\0';
      char* end = nullptr;
      const double v = std::strtod(buf, &end);
      if (end != buf + len) fail("invalid number");
      if (!std::isfinite(v)) fail("number out of range");
      return Json(v);
    }
    const std::string token(text_.substr(start, len));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (!std::isfinite(v)) fail("number out of range");
    return Json(v);
  }
};

void dump_string(std::string_view s, std::string& out) {
  out += '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth, /*in_situ=*/false).run();
}

Json Json::parse_in_situ(std::string_view text, int max_depth) {
  return Parser(text, max_depth, /*in_situ=*/true).run();
}

namespace {

/// Renders format_number's bytes into `buf` (>= 40 bytes), returning
/// the length. The format is definitionally "the first precision in
/// 1..17 whose %.*g round-trips" — the original implementation probed
/// every precision with snprintf+strtod per number, which dominated
/// reply rendering (up to 34 libc calls for a 17-digit double). This
/// version gets the shortest round-trip digit count d in one
/// std::to_chars call and rebuilds glibc's %g presentation from the
/// to_chars digits directly:
///
///   * no round-tripping string has fewer than d digits, so the probe
///     loop can never stop before d; and when the value's round-trip
///     interval is SYMMETRIC, the correctly-rounded d-digit decimal
///     (what %.*g prints) is at least as close to v as to_chars's
///     round-tripping one, hence also round-trips and equals it — so
///     the loop stops exactly at d with exactly these digits.
///   * the interval is asymmetric only at binade boundaries (mantissa
///     bits all zero, i.e. v = ±2^k): there to_chars may round-trip
///     with a digit string the probe loop rejects, so powers of two
///     take a probe path instead — starting at d (a proven lower
///     bound), which still skips almost the whole 1..17 scan.
///   * %g presentation rules: scientific iff exponent < -4 or >= d,
///     exponent sign always printed and zero-padded to two digits,
///     trailing zeros stripped (shortest digits never have any).
///
/// tests/test_serve_protocol.cpp holds the old loop as a reference
/// oracle and asserts byte equality over random doubles; the golden
/// corpus pins the format on every reply shape.
std::size_t render_number_impl(char* buf, double v) {
  if (!std::isfinite(v)) {
    std::memcpy(buf, "null", 4);
    return 4;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    // Integers up to 2^53 print exactly without an exponent or decimal
    // point ("%.0f"), including the "-0" negative-zero spelling.
    if (v == 0.0 && std::signbit(v)) {
      buf[0] = '-';
      buf[1] = '0';
      return 2;
    }
    const auto r = std::to_chars(buf, buf + 32, static_cast<long long>(v));
    return static_cast<std::size_t>(r.ptr - buf);
  }
  // Shortest round-trip mantissa digits + decimal exponent. to_chars
  // scientific output is "[-]d[.ffff]e±x[x..]": the mantissa is reused
  // by block memcpy below instead of a digit-at-a-time copy — this
  // function sits under every rendered number in every reply.
  char sci[40];
  const auto r =
      std::to_chars(sci, sci + sizeof sci, v, std::chars_format::scientific);
  const char* p = sci;
  char* out = buf;
  if (*p == '-') {
    *out++ = '-';
    ++p;
  }
  const char* e = static_cast<const char*>(
      std::memchr(p, 'e', static_cast<std::size_t>(r.ptr - p)));
  const int nd = e - p == 1 ? 1 : static_cast<int>(e - p - 1);
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  if ((bits & 0x000FFFFFFFFFFFFFull) == 0) {
    // v is ±2^k: the binade boundary, where the round-trip interval is
    // asymmetric (the ulp below is half the ulp above). Only here can
    // the correctly-rounded nd-digit decimal — what %.*g prints — fail
    // to round-trip even though to_chars's nd-digit string succeeds,
    // so the bytes must come from the probe itself. nd stays a valid
    // lower bound (no shorter string round-trips at all), so the probe
    // starts there, not at 1.
    for (int prec = nd; prec <= 17; ++prec) {
      const int len = std::snprintf(buf, 40, "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) return static_cast<std::size_t>(len);
    }
  }
  const char* q = e + 1;
  int exp_sign = 1;
  if (*q == '+') {
    ++q;
  } else if (*q == '-') {
    exp_sign = -1;
    ++q;
  }
  int exp10 = 0;
  while (q != r.ptr) exp10 = exp10 * 10 + (*q++ - '0');
  exp10 *= exp_sign;

  if (exp10 < -4 || exp10 >= nd) {
    // Scientific: d.ddde±XX with at least two exponent digits. The
    // mantissa ("d" or "d.ffff") is already in %g form — copy it whole.
    std::memcpy(out, p, static_cast<std::size_t>(e - p));
    out += e - p;
    *out++ = 'e';
    *out++ = exp10 < 0 ? '-' : '+';
    int x = exp10 < 0 ? -exp10 : exp10;
    char etmp[8];
    int en = 0;
    do {
      etmp[en++] = static_cast<char>('0' + x % 10);
      x /= 10;
    } while (x != 0);
    if (en < 2) *out++ = '0';
    while (en > 0) *out++ = etmp[--en];
  } else if (exp10 >= 0) {
    // Fixed, >= 1: dd[.dd] — exp10 < nd guarantees the digits cover
    // the integer part. Digits live at p[0] then p[2..]: two block
    // copies around the shifted decimal point.
    *out++ = p[0];
    std::memcpy(out, p + 2, static_cast<std::size_t>(exp10));
    out += exp10;
    if (nd > exp10 + 1) {
      *out++ = '.';
      std::memcpy(out, p + 2 + exp10, static_cast<std::size_t>(nd - exp10 - 1));
      out += nd - exp10 - 1;
    }
  } else {
    // Fixed, < 1: 0.[00]dd.
    *out++ = '0';
    *out++ = '.';
    for (int z = 0; z < -exp10 - 1; ++z) *out++ = '0';
    *out++ = p[0];
    if (nd > 1) {
      std::memcpy(out, p + 2, static_cast<std::size_t>(nd - 1));
      out += nd - 1;
    }
  }
  return static_cast<std::size_t>(out - buf);
}

}  // namespace

std::string Json::format_number(double v) {
  char buf[40];
  return std::string(buf, render_number_impl(buf, v));
}

void Json::append_number(std::string& out, double v) {
  char buf[40];
  out.append(buf, render_number_impl(buf, v));
}

std::size_t Json::render_number(char* buf, double v) {
  return render_number_impl(buf, v);
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_); break;
    case Type::String:
      dump_string(owned_ ? std::string_view(str_) : view_, out);
      break;
    case Type::Raw: out += str_; break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        arr_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        dump_string(obj_[i].first, out);
        out += ':';
        obj_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

}  // namespace archline::serve
