// The online-fitting endpoints: the server's live model-learning
// surface (docs/MODEL.md "Online fitting").
//
//   observe — Light, NOT cacheable: ingest one batch of (W, Q, t, E)
//             tuples for a platform. O(1) per tuple (RLS update + ring
//             buffer write); never waits on a re-solve. The reply
//             echoes only batch-local facts, so identical requests
//             produce identical bytes even though the store mutates.
//   params  — Light, cacheable + model_scoped: the platform's last
//             PUBLISHED estimates with RLS confidence intervals.
//             Deliberately reads the snapshot, not the live filter:
//             the reply is a pure function of (request, epoch), which
//             is what lets the generation-tagged cache serve it.
//   refit   — Heavy, NOT cacheable: force a synchronous re-solve +
//             publish. The archetypal heavy mutation — it runs the full
//             §V pipeline on the calling worker.
//
// All three require a Server-owned OnlineStore (EndpointContext.online);
// a bare handle_line caller gets "unsupported".

#include <memory>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "fit/online/snapshot.hpp"
#include "serve/endpoint_util.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

namespace {

using fit::online::OnlineStore;
using fit::online::ParamSnapshot;
using fit::online::Sample;

OnlineStore& require_store(const EndpointContext& ctx) {
  if (!ctx.online)
    throw RequestError{"unsupported",
                       "online fitting requires a serve::Server"};
  return *ctx.online;
}

/// Validates the "platform" field against the Table I set; a miss
/// raises unknown_platform with the standard self-correcting message.
std::string_view require_platform(const EndpointContext& ctx) {
  const std::string_view name = require_string(ctx.req, "platform");
  (void)lookup_platform(name);
  return name;
}

void add_machine(Json& out, const core::MachineParams& m) {
  Json machine = Json::object();
  machine.set("tau_flop", m.tau_flop);
  machine.set("eps_flop", m.eps_flop);
  machine.set("tau_mem", m.tau_mem);
  machine.set("eps_mem", m.eps_mem);
  machine.set("pi1", m.pi1);
  // kUncapped serializes as null (format_number maps non-finite to null).
  machine.set("delta_pi", m.delta_pi);
  out.set("machine", std::move(machine));
}

/// One linear-parameter row: point estimate, standard error, and the
/// 95% normal interval from the RLS covariance.
Json estimate_row(double value, double se) {
  Json row = Json::object();
  row.set("value", value);
  row.set("stderr", se);
  row.set("ci95_lo", value - 1.96 * se);
  row.set("ci95_hi", value + 1.96 * se);
  return row;
}

Json do_observe(const EndpointContext& ctx) {
  OnlineStore& store = require_store(ctx);
  // Ingest hot path: resolve the platform name ONCE, to a store handle.
  // The store's key set is exactly the Table I names (it is built from
  // all_platforms()), so a handle miss is the unknown-platform case —
  // lookup_platform then raises the standard self-correcting error.
  const std::string_view platform = require_string(ctx.req, "platform");
  const OnlineStore::PlatformRef ref = store.find_platform(platform);
  if (!ref) (void)lookup_platform(platform);
  const Json* obs_json = ctx.req.find("observations");
  if (!obs_json || !obs_json->is_array())
    bad("\"observations\" must be an array");
  const Json::Array& rows = obs_json->as_array();
  if (rows.empty()) bad("\"observations\" must not be empty");
  if (rows.size() > ctx.limits.max_observe_batch)
    throw RequestError{
        "too_large", "observe batch exceeds " +
                         std::to_string(ctx.limits.max_observe_batch) +
                         " tuples; chunk the stream"};
  std::vector<Sample> batch;
  batch.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    batch.push_back(parse_observation_tuple(rows[i], i));
  store.observe(ref, batch);
  Json out = begin_reply(ctx.endpoint, ctx.req);
  out.set("platform", Json::view(platform));
  // Batch-local facts only: the reply must be a pure function of the
  // request bytes (running totals live in "stats"/"params").
  out.set("accepted", batch.size());
  return out;
}

Json do_params(const EndpointContext& ctx) {
  OnlineStore& store = require_store(ctx);
  const std::string_view platform = require_platform(ctx);
  const std::shared_ptr<const ParamSnapshot> snap = store.published(platform);
  Json out = begin_reply(ctx.endpoint, ctx.req);
  out.set("platform", Json::view(platform));
  if (!snap) {
    // Nothing published yet. No live counters in the reply: it must
    // stay a pure function of (request, generation) for the cache.
    out.set("fitted", false);
    out.set("epoch", 0);
    return out;
  }
  out.set("fitted", true);
  out.set("epoch", snap->epoch);
  out.set("observations", snap->observations);
  add_machine(out, snap->machine);
  Json rls = Json::object();
  rls.set("eps_flop", estimate_row(snap->rls.eps_flop,
                                   snap->rls.se_eps_flop));
  rls.set("eps_mem", estimate_row(snap->rls.eps_mem, snap->rls.se_eps_mem));
  rls.set("pi1", estimate_row(snap->rls.pi1, snap->rls.se_pi1));
  rls.set("effective_count", snap->rls.effective_count);
  out.set("rls", std::move(rls));
  out.set("resolved", snap->resolved);
  out.set("rss", snap->rss);
  out.set("r_squared_perf", snap->r_squared);
  out.set("converged", snap->converged);
  return out;
}

Json do_refit(const EndpointContext& ctx) {
  OnlineStore& store = require_store(ctx);
  const std::string_view platform = require_platform(ctx);
  std::shared_ptr<const ParamSnapshot> snap;
  try {
    snap = store.resolve(platform);
  } catch (const std::exception& e) {
    throw RequestError{"fit_failed", e.what()};
  }
  if (!snap)
    throw RequestError{
        "fit_failed",
        "need at least " +
            std::to_string(store.options().min_resolve_observations) +
            " observations to re-solve (have " +
            std::to_string(store.observations(platform)) + ")"};
  Json out = begin_reply(ctx.endpoint, ctx.req);
  out.set("platform", Json::view(platform));
  out.set("epoch", snap->epoch);
  out.set("observations", snap->observations);
  out.set("window_observations", snap->window_observations);
  add_machine(out, snap->machine);
  out.set("rss", snap->rss);
  out.set("r_squared_perf", snap->r_squared);
  out.set("converged", snap->converged);
  return out;
}

}  // namespace

void register_online_endpoints(Registry& r) {
  // observe/refit mutate the store: never cacheable (a cached reply
  // would silently drop the ingest/re-solve side effect). params is the
  // cacheable read — scoped to the parameter generation so a publish
  // invalidates it.
  r.add({.name = "observe",
         .klass = RequestClass::Light,
         .cacheable = false,
         .handler = &do_observe});
  r.add({.name = "params",
         .klass = RequestClass::Light,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_params});
  r.add({.name = "refit",
         .klass = RequestClass::Heavy,
         .cacheable = false,
         .handler = &do_refit});
}

}  // namespace archline::serve
