#pragma once
// The typed endpoint registry: the single source of truth for what the
// server can do.
//
// Every request type is an Endpoint descriptor — wire name, execution
// class (Light / Heavy), cacheability, handler — registered once at
// startup by its defining translation unit. The protocol dispatcher
// (`handle_line`), the response cache (entry tags), the metrics layer
// (per-endpoint slots), and the admission classifier all key off the
// descriptor's dense id, so adding an endpoint is ONE registration call
// in ONE file: protocol.cpp / server.cpp / metrics.cpp never change.
//
// Registration happens inside Registry::instance()'s lazy initializer,
// which calls each module's registrar function explicitly
// (register_core_endpoints, register_analysis_endpoints). Explicit
// calls — rather than static-initializer self-registration — keep the
// endpoints alive through static-library dead-stripping and make the
// id assignment order deterministic, which matters because ids ride
// in cache entry tags and metrics arrays.
//
// Execution classes (the paper's own split): Light endpoints are
// closed-form model evaluation (eqs. 1-7 — microseconds), Heavy
// endpoints run iterative work (§V parameter fitting, batched sweeps —
// milliseconds). serve::Server maps the class to an execution lane so
// a flood of Heavy requests cannot starve Light ones (see queue.hpp).

#include <cstdint>
#include <string_view>

#include "serve/json.hpp"
#include "serve/protocol_limits.hpp"

namespace archline::fit::online {
class OnlineStore;
}

namespace archline::serve {

/// Execution class: which lane a request runs on (see LaneScheduler).
enum class RequestClass : std::uint8_t {
  Light = 0,  ///< closed-form evaluation, microseconds
  Heavy = 1,  ///< iterative / batched work, milliseconds
};

inline constexpr std::size_t kRequestClassCount = 2;

[[nodiscard]] const char* request_class_name(RequestClass c) noexcept;

struct Endpoint;

/// Context handed to an endpoint handler: the parsed request, the
/// protocol limits (fit observation caps etc.), the endpoint's own
/// descriptor (so begin_reply can stamp the wire name without a lookup),
/// and — when the caller is a Server — its online-fit store. The store
/// is the one mutable dependency a handler may touch: `observe`/`refit`
/// write it, `params` and the platform-resolution overlay read its
/// published snapshots. Null for store-less callers (bare handle_line);
/// online endpoints then answer "unsupported".
struct EndpointContext {
  const Json& req;
  const ProtocolLimits& limits;
  const Endpoint& endpoint;
  fit::online::OnlineStore* online = nullptr;
};

/// Handler contract: build the success reply as a Json object (the
/// dispatcher serializes it). Failures are reported by throwing
/// RequestError (see endpoint_util.hpp); any other exception renders as
/// {"error":"internal"}.
using EndpointHandler = Json (*)(const EndpointContext&);

/// One registered request type.
struct Endpoint {
  std::string_view name;  ///< wire value of the request's "type" member
  RequestClass klass = RequestClass::Light;
  /// Deterministic pure function of the request bytes — worth memoizing
  /// in the response cache.
  bool cacheable = true;
  /// The handler cannot render this reply from the request alone; the
  /// Server substitutes the body against live state ("stats"). Such
  /// replies are never cached.
  bool server_evaluated = false;
  /// The reply depends on the published online-fit parameters, so a
  /// cached copy is valid only within one parameter generation: the
  /// cache stores the generation observed before evaluation and treats
  /// a mismatch on hit as a miss (see ShardedLruCache / OnlineStore).
  bool model_scoped = false;
  EndpointHandler handler = nullptr;
  /// Optional per-endpoint admission classifier: refines the static
  /// `klass` from the RAW request line (no parse) so size-dependent
  /// endpoints can split lanes — predict_batch runs small batches on
  /// the Light lane and large ones on Heavy. Must be cheap and
  /// allocation-free; like classify_line itself, the verdict affects
  /// lane choice only, never reply bytes. Null means "use klass".
  RequestClass (*classify)(std::string_view line) noexcept = nullptr;
  /// Optional per-request cache exemption: a statically cacheable
  /// endpoint can declare that THIS request's reply must not enter (or
  /// be served from) the response cache because evaluating it has a
  /// side effect — "fit" with "seed_online": true feeds its inline
  /// observations into the online store, and a cached replay would
  /// silently drop the seeding. Runs on the parsed request after the
  /// handler succeeds; null means "cacheable as declared".
  bool (*cache_exempt)(const Json& req) noexcept = nullptr;
  /// Dense id, assigned at registration in registration order. Doubles
  /// as the cache entry tag and the metrics slot.
  std::uint8_t id = 0;
};

class Registry {
 public:
  /// The ceiling on registered endpoints. The cache tag is one byte and
  /// metrics slot arrays are sized statically, so the bound is explicit;
  /// registration past it aborts (a programming error, not runtime input).
  static constexpr std::size_t kMaxEndpoints = 16;

  /// The process-wide registry, fully populated (all module registrars
  /// have run). Thread-safe; first caller builds it.
  [[nodiscard]] static const Registry& instance();

  /// Registers one endpoint and assigns its id. Only meaningful inside
  /// a module registrar invoked from instance()'s initializer.
  void add(Endpoint endpoint);

  /// Descriptor for a wire name, or nullptr if unknown.
  [[nodiscard]] const Endpoint* find(std::string_view name) const noexcept;

  /// Descriptor by dense id (cache tags); nullptr when out of range.
  [[nodiscard]] const Endpoint* by_id(std::uint8_t id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  /// Iteration in id order (metrics naming, docs tooling).
  [[nodiscard]] const Endpoint* begin() const noexcept { return endpoints_; }
  [[nodiscard]] const Endpoint* end() const noexcept {
    return endpoints_ + count_;
  }

 private:
  Endpoint endpoints_[kMaxEndpoints];
  std::size_t count_ = 0;
};

/// Module registrars, called (in this order) by Registry::instance().
/// Defined in endpoints_core.cpp / endpoints_analysis.cpp /
/// endpoints_online.cpp / endpoints_batch.cpp / endpoints_policy.cpp —
/// the id order below is part of the wire-compatible surface (cache
/// tags).
void register_core_endpoints(Registry& r);
void register_analysis_endpoints(Registry& r);
void register_online_endpoints(Registry& r);
void register_batch_endpoints(Registry& r);
void register_policy_endpoints(Registry& r);

/// Admission-time classification without a full JSON parse: scans the
/// raw request line for its "type" member and returns the matching
/// endpoint's class. Unknown types, missing types, and malformed lines
/// classify Light — their replies are cheap errors. Misclassification
/// can only affect lane choice, never reply bytes (the dispatcher
/// re-parses properly).
[[nodiscard]] RequestClass classify_line(std::string_view line) noexcept;

}  // namespace archline::serve
