#include "serve/endpoint_util.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/scenarios.hpp"
#include "fit/online/snapshot.hpp"
#include "platforms/platform_db.hpp"

namespace archline::serve {

void bad(std::string message) {
  throw RequestError{"bad_request", std::move(message)};
}

double require_number(const Json& req, std::string_view key) {
  const Json* v = req.find(key);
  if (!v) bad("missing required field \"" + std::string(key) + "\"");
  if (!v->is_number())
    bad("field \"" + std::string(key) + "\" must be a number");
  return v->as_number();
}

std::string_view require_string(const Json& req, std::string_view key) {
  const Json* v = req.find(key);
  if (!v) bad("missing required field \"" + std::string(key) + "\"");
  if (!v->is_string())
    bad("field \"" + std::string(key) + "\" must be a string");
  return v->as_string_view();
}

core::Precision parse_precision(const Json& req) {
  const std::string_view p = req.string_view_or("precision", "sp");
  if (p == "sp" || p == "single") return core::Precision::Single;
  if (p == "dp" || p == "double") return core::Precision::Double;
  bad("unknown precision \"" + std::string(p) +
      "\" (expected \"sp\" or \"dp\")");
}

core::MemLevel parse_level(const Json& req) {
  const std::string_view l = req.string_view_or("level", "dram");
  if (l == "dram") return core::MemLevel::DRAM;
  if (l == "l1") return core::MemLevel::L1;
  if (l == "l2") return core::MemLevel::L2;
  bad("unknown level \"" + std::string(l) +
      "\" (expected \"dram\", \"l1\", or \"l2\")");
}

const platforms::PlatformSpec& lookup_platform(std::string_view name) {
  if (const platforms::PlatformSpec* spec = platforms::find_platform(name))
    return *spec;
  // Miss path: list what IS available so clients can self-correct.
  // Allocation is fine here — errors are off the hot path by definition.
  std::string message = "no platform named \"" + std::string(name) +
                        "\"; available:";
  bool first = true;
  for (const platforms::PlatformSpec& p : platforms::all_platforms()) {
    message += first ? " " : ", ";
    message += p.name;
    first = false;
  }
  throw RequestError{"unknown_platform", std::move(message)};
}

namespace {

/// MachineParams from an inline {"machine": {...}} object.
core::MachineParams machine_from_json(const Json& spec) {
  core::MachineParams m;
  m.tau_flop = require_number(spec, "tau_flop");
  m.eps_flop = require_number(spec, "eps_flop");
  m.tau_mem = require_number(spec, "tau_mem");
  m.eps_mem = require_number(spec, "eps_mem");
  m.pi1 = require_number(spec, "pi1");
  const Json* cap = spec.find("delta_pi");
  m.delta_pi = (cap && cap->is_number()) ? cap->as_number() : core::kUncapped;
  return m;
}

}  // namespace

core::MachineParams platform_machine(const EndpointContext& ctx,
                                     std::string_view name,
                                     core::Precision prec) {
  const platforms::PlatformSpec& spec = lookup_platform(name);
  core::MachineParams m;
  try {
    m = spec.machine(prec);
  } catch (const std::exception& e) {
    throw RequestError{"unsupported", e.what()};
  }
  // Online overlay: live estimates replace the static Table I machine.
  // Only the base single-precision machine is learned from the stream;
  // DP constants stay static (documented in docs/MODEL.md).
  if (ctx.online && prec == core::Precision::Single) {
    if (const std::shared_ptr<const fit::online::ParamSnapshot> snap =
            ctx.online->published(name))
      m = snap->machine;
  }
  return m;
}

core::MachineParams resolve_machine(const EndpointContext& ctx,
                                    std::string_view& name_out) {
  const Json& req = ctx.req;
  core::MachineParams m;
  if (const Json* inline_spec = req.find("machine")) {
    if (!inline_spec->is_object()) bad("\"machine\" must be an object");
    m = machine_from_json(*inline_spec);
    name_out = req.string_view_or("name", "inline");
  } else {
    const std::string_view platform_name = require_string(req, "platform");
    const platforms::PlatformSpec& spec = lookup_platform(platform_name);
    const core::Precision prec = parse_precision(req);
    const core::MemLevel level = parse_level(req);
    try {
      m = (level == core::MemLevel::DRAM) ? spec.machine(prec)
                                          : spec.machine_at_level(level, prec);
    } catch (const std::exception& e) {
      throw RequestError{"unsupported", e.what()};
    }
    // Online overlay: live estimates replace the static Table I
    // machine. Only the base SP @ DRAM machine is learned from the
    // stream; DP and cache-level constants stay static.
    if (ctx.online && prec == core::Precision::Single &&
        level == core::MemLevel::DRAM) {
      if (const std::shared_ptr<const fit::online::ParamSnapshot> snap =
              ctx.online->published(platform_name))
        m = snap->machine;
    }
    name_out = platform_name;
  }
  if (req.bool_or("uncapped", false)) m = m.without_cap();
  if (const Json* k = req.find("cap_divisor")) {
    if (!k->is_number() || k->as_number() < 1.0)
      bad("\"cap_divisor\" must be a number >= 1");
    m = core::with_cap_scaled(m, k->as_number());
  }
  if (const Json* w = req.find("cap_watts")) {
    if (!w->is_number() || w->as_number() <= 0.0)
      bad("\"cap_watts\" must be a positive number");
    m = core::with_cap(m, w->as_number());
  }
  try {
    m.validate("request machine");
  } catch (const std::exception& e) {
    bad(e.what());
  }
  return m;
}

fit::online::Sample parse_observation_tuple(const Json& row,
                                            std::size_t index) {
  if (!row.is_object())
    bad("observation " + std::to_string(index) + " must be an object");
  fit::online::Sample s;
  s.flops = require_number(row, "flops");
  s.bytes = require_number(row, "bytes");
  s.seconds = require_number(row, "seconds");
  s.joules = require_number(row, "joules");
  if (!(s.flops >= 0.0) || !(s.bytes > 0.0) || !(s.seconds > 0.0) ||
      !(s.joules > 0.0))
    bad("observation " + std::to_string(index) +
        " needs bytes/seconds/joules > 0 and flops >= 0");
  return s;
}

core::Workload resolve_workload(const Json& req) {
  const double flops = req.number_or("flops", 1e9);
  if (!(flops > 0.0)) bad("\"flops\" must be positive");
  const Json* bytes = req.find("bytes");
  const Json* intensity = req.find("intensity");
  if (bytes) {
    if (!bytes->is_number() || !(bytes->as_number() > 0.0))
      bad("\"bytes\" must be a positive number");
    return core::Workload{.flops = flops, .bytes = bytes->as_number()};
  }
  if (intensity) {
    if (!intensity->is_number() || !(intensity->as_number() > 0.0))
      bad("\"intensity\" must be a positive number");
    return core::Workload::from_intensity(flops, intensity->as_number());
  }
  bad("need \"bytes\" or \"intensity\"");
}

core::Metric parse_metric(const Json& req) {
  const std::string_view m = req.string_view_or("metric", "performance");
  if (m == "performance") return core::Metric::Performance;
  if (m == "efficiency") return core::Metric::EnergyEfficiency;
  if (m == "power") return core::Metric::Power;
  bad("unknown metric \"" + std::string(m) +
      "\" (expected \"performance\", \"efficiency\", or \"power\")");
}

Json begin_reply(const Endpoint& endpoint, const Json& req) {
  Json out = Json::object();
  out.set("ok", true);
  // The name is a view into the static registry — outlives everything.
  out.set("type", Json::view(endpoint.name));
  if (const Json* id = req.find("id")) out.set("id", *id);
  return out;
}

void add_prediction(Json& out, const core::MachineParams& m,
                    const core::Workload& w) {
  const double t = core::time(m, w);
  const double e = core::energy(m, w);
  out.set("intensity", w.intensity());
  out.set("time_s", t);
  out.set("energy_j", e);
  out.set("avg_power_w", core::avg_power(m, w));
  out.set("performance_flops", w.flops / t);
  out.set("efficiency_flops_per_joule", w.flops / e);
  out.set("regime", core::regime_name(core::regime(m, w)));
}

}  // namespace archline::serve
