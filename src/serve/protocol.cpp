#include "serve/protocol.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/analysis.hpp"
#include "core/machine_params.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"

namespace archline::serve {

namespace {

/// Thrown internally to surface a structured (code, message) pair.
struct RequestError {
  std::string code;
  std::string message;
};

[[noreturn]] void bad(std::string message) {
  throw RequestError{"bad_request", std::move(message)};
}

double require_number(const Json& req, std::string_view key) {
  const Json* v = req.find(key);
  if (!v) bad("missing required field \"" + std::string(key) + "\"");
  if (!v->is_number())
    bad("field \"" + std::string(key) + "\" must be a number");
  return v->as_number();
}

std::string require_string(const Json& req, std::string_view key) {
  const Json* v = req.find(key);
  if (!v) bad("missing required field \"" + std::string(key) + "\"");
  if (!v->is_string())
    bad("field \"" + std::string(key) + "\" must be a string");
  return std::string(v->as_string_view());
}

core::Precision parse_precision(const Json& req) {
  const std::string p = req.string_or("precision", "sp");
  if (p == "sp" || p == "single") return core::Precision::Single;
  if (p == "dp" || p == "double") return core::Precision::Double;
  bad("unknown precision \"" + p + "\" (expected \"sp\" or \"dp\")");
}

core::MemLevel parse_level(const Json& req) {
  const std::string l = req.string_or("level", "dram");
  if (l == "dram") return core::MemLevel::DRAM;
  if (l == "l1") return core::MemLevel::L1;
  if (l == "l2") return core::MemLevel::L2;
  bad("unknown level \"" + l + "\" (expected \"dram\", \"l1\", or \"l2\")");
}

/// Looks up a platform by name, mapping a miss to a structured error.
const platforms::PlatformSpec& lookup_platform(const std::string& name) {
  if (!platforms::has_platform(name))
    throw RequestError{"unknown_platform",
                       "no platform named \"" + name + "\""};
  return platforms::platform(name);
}

/// MachineParams from an inline {"machine": {...}} object.
core::MachineParams machine_from_json(const Json& spec) {
  core::MachineParams m;
  m.tau_flop = require_number(spec, "tau_flop");
  m.eps_flop = require_number(spec, "eps_flop");
  m.tau_mem = require_number(spec, "tau_mem");
  m.eps_mem = require_number(spec, "eps_mem");
  m.pi1 = require_number(spec, "pi1");
  const Json* cap = spec.find("delta_pi");
  m.delta_pi = (cap && cap->is_number()) ? cap->as_number() : core::kUncapped;
  return m;
}

/// Resolves the machine a request addresses: either "platform" (a
/// Table I name, with optional precision / memory level) or an inline
/// "machine" parameter object, then optional cap modifiers
/// (uncapped / cap_divisor / cap_watts). `name_out` receives a label
/// for the response.
core::MachineParams resolve_machine(const Json& req, std::string& name_out) {
  core::MachineParams m;
  if (const Json* inline_spec = req.find("machine")) {
    if (!inline_spec->is_object()) bad("\"machine\" must be an object");
    m = machine_from_json(*inline_spec);
    name_out = req.string_or("name", "inline");
  } else {
    const std::string platform_name = require_string(req, "platform");
    const platforms::PlatformSpec& spec = lookup_platform(platform_name);
    const core::Precision prec = parse_precision(req);
    const core::MemLevel level = parse_level(req);
    try {
      m = (level == core::MemLevel::DRAM) ? spec.machine(prec)
                                          : spec.machine_at_level(level, prec);
    } catch (const std::exception& e) {
      throw RequestError{"unsupported", e.what()};
    }
    name_out = platform_name;
  }
  if (req.bool_or("uncapped", false)) m = m.without_cap();
  if (const Json* k = req.find("cap_divisor")) {
    if (!k->is_number() || k->as_number() < 1.0)
      bad("\"cap_divisor\" must be a number >= 1");
    m = core::with_cap_scaled(m, k->as_number());
  }
  if (const Json* w = req.find("cap_watts")) {
    if (!w->is_number() || w->as_number() <= 0.0)
      bad("\"cap_watts\" must be a positive number");
    m = core::with_cap(m, w->as_number());
  }
  try {
    m.validate("request machine");
  } catch (const std::exception& e) {
    bad(e.what());
  }
  return m;
}

/// Workload from "flops" plus either "bytes" or "intensity".
core::Workload resolve_workload(const Json& req) {
  const double flops = req.number_or("flops", 1e9);
  if (!(flops > 0.0)) bad("\"flops\" must be positive");
  const Json* bytes = req.find("bytes");
  const Json* intensity = req.find("intensity");
  if (bytes) {
    if (!bytes->is_number() || !(bytes->as_number() > 0.0))
      bad("\"bytes\" must be a positive number");
    return core::Workload{.flops = flops, .bytes = bytes->as_number()};
  }
  if (intensity) {
    if (!intensity->is_number() || !(intensity->as_number() > 0.0))
      bad("\"intensity\" must be a positive number");
    return core::Workload::from_intensity(flops, intensity->as_number());
  }
  bad("need \"bytes\" or \"intensity\"");
}

/// Starts a response object: ok, type, echoed id (if the request had one).
Json begin_reply(RequestType type, const Json& req) {
  Json out = Json::object();
  out.set("ok", true);
  out.set("type", request_type_name(type));
  if (const Json* id = req.find("id")) out.set("id", *id);
  return out;
}

void add_prediction(Json& out, const core::MachineParams& m,
                    const core::Workload& w) {
  const double t = core::time(m, w);
  const double e = core::energy(m, w);
  out.set("intensity", w.intensity());
  out.set("time_s", t);
  out.set("energy_j", e);
  out.set("avg_power_w", core::avg_power(m, w));
  out.set("performance_flops", w.flops / t);
  out.set("efficiency_flops_per_joule", w.flops / e);
  out.set("regime", core::regime_name(core::regime(m, w)));
}

// ---- Request handlers -----------------------------------------------------

Json do_predict(const Json& req) {
  std::string name;
  const core::MachineParams m = resolve_machine(req, name);
  const core::Workload w = resolve_workload(req);
  Json out = begin_reply(RequestType::Predict, req);
  out.set("platform", name);
  out.set("flops", w.flops);
  out.set("bytes", w.bytes);
  add_prediction(out, m, w);
  return out;
}

core::Metric parse_metric(const Json& req) {
  const std::string m = req.string_or("metric", "performance");
  if (m == "performance") return core::Metric::Performance;
  if (m == "efficiency") return core::Metric::EnergyEfficiency;
  if (m == "power") return core::Metric::Power;
  bad("unknown metric \"" + m +
      "\" (expected \"performance\", \"efficiency\", or \"power\")");
}

Json do_crossover(const Json& req) {
  const std::string name_a = require_string(req, "a");
  const std::string name_b = require_string(req, "b");
  const core::Precision prec = parse_precision(req);
  core::MachineParams a, b;
  try {
    a = lookup_platform(name_a).machine(prec);
    b = lookup_platform(name_b).machine(prec);
  } catch (const RequestError&) {
    throw;
  } catch (const std::exception& e) {
    throw RequestError{"unsupported", e.what()};
  }
  const core::Metric metric = parse_metric(req);
  const double lo = req.number_or("lo", 1.0 / 64.0);
  const double hi = req.number_or("hi", 512.0);
  if (!(lo > 0.0) || !(hi > lo)) bad("need 0 < lo < hi");
  const double x = core::crossover_intensity(a, b, metric, lo, hi);
  Json out = begin_reply(RequestType::Crossover, req);
  out.set("a", name_a);
  out.set("b", name_b);
  out.set("metric", req.string_or("metric", "performance"));
  out.set("found", x > 0.0);
  if (x > 0.0) {
    out.set("intensity", x);
    out.set("value_a", core::metric_value(a, metric, x));
    out.set("value_b", core::metric_value(b, metric, x));
  }
  return out;
}

Json do_scenario(const Json& req) {
  const std::string kind = require_string(req, "kind");
  Json out = begin_reply(RequestType::Scenario, req);
  out.set("kind", kind);
  if (kind == "throttle") {
    std::string name;
    const core::MachineParams m = resolve_machine(req, name);
    const double intensity = require_number(req, "intensity");
    const double cap_watts = require_number(req, "watts");
    if (!(intensity > 0.0)) bad("\"intensity\" must be positive");
    if (!(cap_watts > 0.0)) bad("\"watts\" must be positive");
    const core::ThrottleRequirement r =
        core::throttle_requirement(m, intensity, cap_watts);
    out.set("platform", name);
    out.set("intensity", r.intensity);
    out.set("cap_watts", r.cap_watts);
    out.set("slowdown", r.slowdown);
    out.set("flop_rate_fraction", r.flop_rate_fraction);
    out.set("mem_rate_fraction", r.mem_rate_fraction);
    out.set("regime", core::regime_name(r.regime));
    return out;
  }
  if (kind == "aggregate") {
    std::string name;
    const core::MachineParams block = resolve_machine(req, name);
    const double count = require_number(req, "count");
    if (count < 1.0 || count != std::floor(count) || count > 1e6)
      bad("\"count\" must be an integer in [1, 1e6]");
    const core::MachineParams node =
        core::aggregate(block, static_cast<int>(count));
    const core::Workload w = resolve_workload(req);
    out.set("platform", name);
    out.set("count", count);
    out.set("node_max_power_w", node.max_power());
    add_prediction(out, node, w);
    return out;
  }
  if (kind == "power_bound") {
    const std::string big_name = require_string(req, "big");
    const std::string small_name = require_string(req, "small");
    core::MachineParams big, small;
    try {
      big = lookup_platform(big_name).machine();
      small = lookup_platform(small_name).machine();
    } catch (const RequestError&) {
      throw;
    } catch (const std::exception& e) {
      throw RequestError{"unsupported", e.what()};
    }
    const double bound = require_number(req, "watts");
    const double intensity = require_number(req, "intensity");
    if (!(bound > 0.0)) bad("\"watts\" must be positive");
    if (!(intensity > 0.0)) bad("\"intensity\" must be positive");
    core::PowerBoundComparison c;
    try {
      c = core::power_bound_comparison(big, small, bound, intensity);
    } catch (const std::exception& e) {
      bad(e.what());
    }
    out.set("big", big_name);
    out.set("small", small_name);
    out.set("bound_watts", c.bound_watts);
    out.set("intensity", intensity);
    out.set("big_cap_divisor", c.big_cap_divisor);
    out.set("big_performance_flops", c.big_performance);
    out.set("big_slowdown", c.big_slowdown);
    out.set("small_count", c.small_count);
    out.set("small_performance_flops", c.small_performance);
    out.set("speedup", c.speedup);
    return out;
  }
  bad("unknown scenario kind \"" + kind +
      "\" (expected \"throttle\", \"aggregate\", or \"power_bound\")");
}

Json do_fit(const Json& req, const ProtocolLimits& limits) {
  const Json* obs_json = req.find("observations");
  if (!obs_json || !obs_json->is_array())
    bad("\"observations\" must be an array");
  const Json::Array& rows = obs_json->as_array();
  if (rows.size() > limits.max_fit_observations)
    bad("too many observations (max " +
        std::to_string(limits.max_fit_observations) + ")");
  std::vector<microbench::Observation> obs;
  obs.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].is_object())
      bad("observation " + std::to_string(i) + " must be an object");
    microbench::Observation o;
    o.kernel.label = "serve obs " + std::to_string(i);
    o.kernel.flops = require_number(rows[i], "flops");
    o.kernel.bytes = require_number(rows[i], "bytes");
    o.seconds = require_number(rows[i], "seconds");
    o.joules = require_number(rows[i], "joules");
    if (!(o.kernel.flops >= 0.0) || !(o.kernel.bytes > 0.0) ||
        !(o.seconds > 0.0) || !(o.joules > 0.0))
      bad("observation " + std::to_string(i) +
          " needs bytes/seconds/joules > 0 and flops >= 0");
    o.watts = o.joules / o.seconds;
    obs.push_back(std::move(o));
  }
  fit::FitOptions opt;
  opt.kind = req.bool_or("uncapped", false) ? fit::ModelKind::Uncapped
                                            : fit::ModelKind::Capped;
  opt.idle_watts_hint = req.number_or("idle_watts", 0.0);
  opt.max_watts_hint = req.number_or("max_watts", 0.0);
  fit::FitResult result;
  try {
    result = fit::fit_observations(obs, opt);
  } catch (const std::exception& e) {
    throw RequestError{"fit_failed", e.what()};
  }
  Json out = begin_reply(RequestType::Fit, req);
  Json machine = Json::object();
  machine.set("tau_flop", result.machine.tau_flop);
  machine.set("eps_flop", result.machine.eps_flop);
  machine.set("tau_mem", result.machine.tau_mem);
  machine.set("eps_mem", result.machine.eps_mem);
  machine.set("pi1", result.machine.pi1);
  // kUncapped serializes as null (format_number maps non-finite to null).
  machine.set("delta_pi", result.machine.delta_pi);
  out.set("machine", std::move(machine));
  out.set("observations", result.observations);
  out.set("rss", result.rss);
  out.set("r_squared_perf", result.r_squared_perf);
  out.set("converged", result.converged);
  return out;
}

Json do_platforms(const Json& req) {
  Json out = begin_reply(RequestType::Platforms, req);
  Json list = Json::array();
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    Json row = Json::object();
    row.set("name", spec.name);
    row.set("class", platforms::to_string(spec.device_class));
    row.set("peak_sp_flops", spec.peak_sp_flops);
    row.set("peak_bandwidth", spec.peak_bandwidth);
    row.set("pi1_w", spec.pi1);
    row.set("delta_pi_w", spec.delta_pi);
    row.set("has_dp", spec.has_double());
    list.push_back(std::move(row));
  }
  out.set("platforms", std::move(list));
  return out;
}

}  // namespace

const char* request_type_name(RequestType t) noexcept {
  switch (t) {
    case RequestType::Predict: return "predict";
    case RequestType::Crossover: return "crossover";
    case RequestType::Scenario: return "scenario";
    case RequestType::Fit: return "fit";
    case RequestType::Platforms: return "platforms";
    case RequestType::Stats: return "stats";
    case RequestType::Invalid: return "invalid";
  }
  return "?";
}

RequestType request_type_from(std::string_view name) noexcept {
  if (name == "predict") return RequestType::Predict;
  if (name == "crossover") return RequestType::Crossover;
  if (name == "scenario") return RequestType::Scenario;
  if (name == "fit") return RequestType::Fit;
  if (name == "platforms") return RequestType::Platforms;
  if (name == "stats") return RequestType::Stats;
  return RequestType::Invalid;
}

namespace {

/// Renders the structured error object into `out` (cleared first, heap
/// capacity reused). The code/message payloads are referenced, not
/// copied — they only need to outlive the dump below.
void error_body_into(std::string_view code, std::string_view message,
                     const Json* id, std::string& out) {
  Json j = Json::object();
  j.set("ok", false);
  if (id) j.set("id", *id);
  j.set("error", Json::view(code));
  j.set("message", Json::view(message));
  out.clear();
  j.dump_to(out);
}

}  // namespace

std::string error_body(std::string_view code, std::string_view message,
                       const Json* id) {
  std::string out;
  error_body_into(code, message, id, out);
  return out;
}

const std::string& overloaded_body() {
  static const std::string body =
      error_body("overloaded", "request queue is full, retry later");
  return body;
}

const std::string& deadline_exceeded_body() {
  static const std::string body = error_body(
      "deadline_exceeded", "request waited past its deadline in the queue");
  return body;
}

Reply handle_line(std::string_view line, const ProtocolLimits& limits) {
  Reply reply;
  handle_line(line, limits, reply);
  return reply;
}

void handle_line(std::string_view line, const ProtocolLimits& limits,
                 Reply& reply) {
  // Full reset: callers reuse one Reply across requests, so stale
  // routing facts from the previous request must not leak through.
  reply.type = RequestType::Invalid;
  reply.ok = false;
  reply.cacheable = false;
  reply.body.clear();
  if (line.size() > limits.max_request_bytes) {
    error_body_into("too_large",
                    "request exceeds " +
                        std::to_string(limits.max_request_bytes) + " bytes",
                    nullptr, reply.body);
    return;
  }
  // In-situ parse: escape-free string values become views into `line`,
  // which outlives everything below.
  Json req;
  try {
    req = Json::parse_in_situ(line, limits.max_json_depth);
  } catch (const JsonError& e) {
    error_body_into("parse_error", e.what(), nullptr, reply.body);
    return;
  }
  if (!req.is_object()) {
    error_body_into("bad_request", "request must be a JSON object", nullptr,
                    reply.body);
    return;
  }
  const Json* id = req.find("id");
  const Json* type_field = req.find("type");
  if (!type_field || !type_field->is_string()) {
    error_body_into("bad_request", "missing required string field \"type\"",
                    id, reply.body);
    return;
  }
  const RequestType type = request_type_from(type_field->as_string_view());
  reply.type = type;
  try {
    Json out;
    switch (type) {
      case RequestType::Predict: out = do_predict(req); break;
      case RequestType::Crossover: out = do_crossover(req); break;
      case RequestType::Scenario: out = do_scenario(req); break;
      case RequestType::Fit: out = do_fit(req, limits); break;
      case RequestType::Platforms: out = do_platforms(req); break;
      case RequestType::Stats:
        // Evaluated by Server against live metrics; flagged here only.
        reply.ok = true;
        return;
      case RequestType::Invalid:
        error_body_into("bad_request",
                        "unknown request type \"" +
                            std::string(type_field->as_string_view()) + "\"",
                        id, reply.body);
        return;
    }
    out.dump_to(reply.body);
    reply.ok = true;
    reply.cacheable = true;
  } catch (const RequestError& e) {
    error_body_into(e.code, e.message, id, reply.body);
  } catch (const std::exception& e) {
    error_body_into("internal", e.what(), id, reply.body);
  }
}

}  // namespace archline::serve
