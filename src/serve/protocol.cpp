#include "serve/protocol.hpp"

#include <stdexcept>
#include <string>

#include "serve/endpoint_util.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

namespace {

/// Renders the structured error object into `out` (cleared first, heap
/// capacity reused). The code/message payloads are referenced, not
/// copied — they only need to outlive the dump below.
void error_body_into(std::string_view code, std::string_view message,
                     const Json* id, std::string& out) {
  Json j = Json::object();
  j.set("ok", false);
  if (id) j.set("id", *id);
  j.set("error", Json::view(code));
  j.set("message", Json::view(message));
  out.clear();
  j.dump_to(out);
}

}  // namespace

std::string error_body(std::string_view code, std::string_view message,
                       const Json* id) {
  std::string out;
  error_body_into(code, message, id, out);
  return out;
}

const std::string& overloaded_body() {
  static const std::string body =
      error_body("overloaded", "request queue is full, retry later");
  return body;
}

const std::string& deadline_exceeded_body() {
  static const std::string body = error_body(
      "deadline_exceeded", "request waited past its deadline in the queue");
  return body;
}

Reply handle_line(std::string_view line, const ProtocolLimits& limits,
                  fit::online::OnlineStore* online) {
  Reply reply;
  handle_line(line, limits, reply, online);
  return reply;
}

void handle_line(std::string_view line, const ProtocolLimits& limits,
                 Reply& reply, fit::online::OnlineStore* online) {
  // Full reset: callers reuse one Reply across requests, so stale
  // routing facts from the previous request must not leak through.
  reply.endpoint = nullptr;
  reply.ok = false;
  reply.cacheable = false;
  reply.body.clear();
  if (line.size() > limits.max_request_bytes) {
    error_body_into("too_large",
                    "request exceeds " +
                        std::to_string(limits.max_request_bytes) + " bytes",
                    nullptr, reply.body);
    return;
  }
  // In-situ parse: escape-free string values become views into `line`,
  // which outlives everything below.
  Json req;
  try {
    req = Json::parse_in_situ(line, limits.max_json_depth);
  } catch (const JsonError& e) {
    error_body_into("parse_error", e.what(), nullptr, reply.body);
    return;
  }
  if (!req.is_object()) {
    error_body_into("bad_request", "request must be a JSON object", nullptr,
                    reply.body);
    return;
  }
  const Json* id = req.find("id");
  const Json* type_field = req.find("type");
  if (!type_field || !type_field->is_string()) {
    error_body_into("bad_request", "missing required string field \"type\"",
                    id, reply.body);
    return;
  }
  // Registry dispatch: the whole protocol surface is one table lookup.
  // Endpoints register themselves (see registry.hpp); this function
  // does not change when the surface grows.
  const Endpoint* endpoint =
      Registry::instance().find(type_field->as_string_view());
  if (!endpoint) {
    error_body_into("bad_request",
                    "unknown request type \"" +
                        std::string(type_field->as_string_view()) + "\"",
                    id, reply.body);
    return;
  }
  reply.endpoint = endpoint;
  try {
    if (endpoint->server_evaluated) {
      // Rendered by Server against live state; flagged here only.
      reply.ok = true;
      return;
    }
    const EndpointContext ctx{req, limits, *endpoint, online};
    Json out = endpoint->handler(ctx);
    if (out.is_raw()) {
      // The handler rendered the complete reply itself (predict_batch
      // does this for its result rows); the payload moves straight into
      // the body — the only copy of a large batch reply is its render.
      reply.body = out.take_raw();
    } else {
      out.dump_to(reply.body);
    }
    reply.ok = true;
    // A per-request exemption (seed_online fit) beats the static flag:
    // side-effecting evaluations must never be replayed from the cache.
    reply.cacheable =
        endpoint->cacheable &&
        !(endpoint->cache_exempt && endpoint->cache_exempt(req));
  } catch (const RequestError& e) {
    error_body_into(e.code, e.message, id, reply.body);
  } catch (const std::exception& e) {
    error_body_into("internal", e.what(), id, reply.body);
  }
}

}  // namespace archline::serve
