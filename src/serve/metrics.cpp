#include "serve/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "serve/json.hpp"

namespace archline::serve {

namespace {

/// Bucket index for a latency: floor(log2(nanoseconds)), clamped.
/// Integer bit_width instead of floor(log2()) — this runs once per
/// completed request, and the histogram's own granularity makes the two
/// indistinguishable.
int bucket_for(double seconds) noexcept {
  const double ns = seconds * 1e9;
  if (!(ns >= 1.0)) return 0;
  // >= 2^63 ns (~292 years) lands in the top bucket; also keeps the
  // double->uint64 cast below in range.
  if (ns >= 9.223372036854776e18) return LatencyHistogram::kBuckets - 1;
  return std::bit_width(static_cast<std::uint64_t>(ns)) - 1;
}

}  // namespace

void LatencyHistogram::record(double seconds) noexcept {
  buckets_[static_cast<std::size_t>(bucket_for(seconds))].fetch_add(
      1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot s;
  accumulate(s);
  return s;
}

void LatencyHistogram::accumulate(Snapshot& out) const noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    out.counts[static_cast<std::size_t>(i)] += c;
    out.total += c;
  }
}

double LatencyHistogram::Snapshot::quantile(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk buckets.
  const double rank = q * static_cast<double>(total);
  double seen = 0.0;
  int last_populated = -1;
  for (int i = 0; i < kBuckets; ++i) {
    const double c = static_cast<double>(counts[static_cast<std::size_t>(i)]);
    if (c == 0.0) continue;
    last_populated = i;
    if (seen + c >= rank) {
      // Log-linear interpolation inside [2^i, 2^(i+1)) ns.
      const double frac = c > 0.0 ? (rank - seen) / c : 0.0;
      const double ns = std::exp2(static_cast<double>(i) + frac);
      return ns * 1e-9;
    }
    seen += c;
  }
  // Rank landed beyond the last populated bucket (floating-point
  // accumulation, or total > sum of counts in a hand-built snapshot):
  // clamp to that bucket's upper edge rather than inventing a value one
  // bucket past the histogram's own range.
  return std::exp2(static_cast<double>(last_populated) + 1.0) * 1e-9;
}

Metrics::Metrics() : start_(std::chrono::steady_clock::now()) {}

Metrics::CompletionShard& Metrics::completion_shard() noexcept {
  // Threads claim shard indices round-robin on first use; with 8 shards
  // and worker pools of comparable size, each worker effectively owns a
  // shard. The index is process-global so a thread touching several
  // Metrics instances uses the same stripe in each.
  static std::atomic<unsigned> next_thread{0};
  static thread_local const unsigned index =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return completion_shards_[index % kCompletionShards];
}

void Metrics::on_completed(RequestType type, bool ok,
                           double latency_s) noexcept {
  CompletionShard& shard = completion_shard();
  shard.by_type[static_cast<std::size_t>(type)].fetch_add(
      1, std::memory_order_relaxed);
  if (!ok) shard.errors.fetch_add(1, std::memory_order_relaxed);
  shard.latency.record(latency_s);
}

void Metrics::on_completed(RequestType type, bool ok) noexcept {
  CompletionShard& shard = completion_shard();
  shard.by_type[static_cast<std::size_t>(type)].fetch_add(
      1, std::memory_order_relaxed);
  if (!ok) shard.errors.fetch_add(1, std::memory_order_relaxed);
}

bool Metrics::sample_latency_now() noexcept {
  // The tick lives in the thread's home shard — the same cache line its
  // completion counters already dirty — so this costs no extra
  // coherence traffic. Relaxed is fine: the tick only spaces samples,
  // it orders nothing.
  const std::uint64_t t = completion_shard().sample_tick.fetch_add(
      1, std::memory_order_relaxed);
  return t < kLatencyWarmupSamples || (t % kLatencySampleEvery) == 0;
}

void Metrics::on_rejected() noexcept {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_deadline_exceeded() noexcept {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_connection_opened() noexcept {
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  connections_open_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_connection_closed() noexcept {
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

void Metrics::on_connection_rejected() noexcept {
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_connection_idle_closed() noexcept {
  connections_idle_closed_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_queue_depth(std::size_t depth) noexcept {
  queue_depth_.store(depth, std::memory_order_relaxed);
  std::uint64_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
}

Metrics::Snapshot Metrics::snapshot() const noexcept {
  Snapshot s;
  for (const CompletionShard& shard : completion_shards_) {
    for (std::size_t i = 0; i < s.by_type.size(); ++i) {
      const std::uint64_t c = shard.by_type[i].load(std::memory_order_relaxed);
      s.by_type[i] += c;
      s.completed += c;
    }
    s.errors += shard.errors.load(std::memory_order_relaxed);
    shard.latency.accumulate(s.latency);
  }
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.connections_idle_closed =
      connections_idle_closed_.load(std::memory_order_relaxed);
  s.queue_depth =
      static_cast<std::size_t>(queue_depth_.load(std::memory_order_relaxed));
  s.queue_peak =
      static_cast<std::size_t>(queue_peak_.load(std::memory_order_relaxed));
  s.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
  s.qps = s.uptime_s > 0.0 ? static_cast<double>(s.completed) / s.uptime_s
                           : 0.0;
  return s;
}

std::string Metrics::to_json(const ShardedLruCache::Stats& cache) const {
  const Snapshot s = snapshot();
  Json out = Json::object();
  out.set("ok", true);
  out.set("type", "stats");
  out.set("uptime_s", s.uptime_s);
  out.set("completed", s.completed);
  out.set("errors", s.errors);
  out.set("rejected_overload", s.rejected);
  out.set("deadline_exceeded", s.deadline_exceeded);
  out.set("qps", s.qps);
  Json by_type = Json::object();
  for (std::size_t i = 0; i < s.by_type.size(); ++i) {
    const auto t = static_cast<RequestType>(i);
    if (s.by_type[i] > 0) by_type.set(request_type_name(t), s.by_type[i]);
  }
  out.set("by_type", std::move(by_type));
  Json latency = Json::object();
  latency.set("count", s.latency.total);
  latency.set("p50_s", s.latency.quantile(0.50));
  latency.set("p95_s", s.latency.quantile(0.95));
  latency.set("p99_s", s.latency.quantile(0.99));
  out.set("latency", std::move(latency));
  Json cache_json = Json::object();
  cache_json.set("hits", cache.hits);
  cache_json.set("misses", cache.misses);
  cache_json.set("hit_rate", cache.hit_rate());
  cache_json.set("entries", cache.entries);
  cache_json.set("capacity", cache.capacity);
  cache_json.set("shards", cache.shards);
  cache_json.set("evictions", cache.evictions);
  out.set("cache", std::move(cache_json));
  Json queue = Json::object();
  queue.set("depth", s.queue_depth);
  queue.set("peak", s.queue_peak);
  out.set("queue", std::move(queue));
  Json conns = Json::object();
  conns.set("open", s.connections_open);
  conns.set("accepted", s.connections_accepted);
  conns.set("rejected", s.connections_rejected);
  conns.set("idle_closed", s.connections_idle_closed);
  out.set("connections", std::move(conns));
  return out.dump();
}

std::string Metrics::summary(const ShardedLruCache::Stats& cache) const {
  const Snapshot s = snapshot();
  char buf[1024];
  std::string out = "---- archline_serve metrics ----\n";
  std::snprintf(buf, sizeof buf,
                "uptime       %.3f s\n"
                "completed    %llu (%.0f req/s)\n"
                "errors       %llu\n"
                "rejected     %llu (overload)\n"
                "deadlined    %llu (expired in queue)\n",
                s.uptime_s, static_cast<unsigned long long>(s.completed),
                s.qps, static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.deadline_exceeded));
  out += buf;
  for (std::size_t i = 0; i < s.by_type.size(); ++i) {
    if (s.by_type[i] == 0) continue;
    std::snprintf(buf, sizeof buf, "  %-10s %llu\n",
                  request_type_name(static_cast<RequestType>(i)),
                  static_cast<unsigned long long>(s.by_type[i]));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "latency      p50 %.1f us   p95 %.1f us   p99 %.1f us\n",
                s.latency.quantile(0.50) * 1e6,
                s.latency.quantile(0.95) * 1e6,
                s.latency.quantile(0.99) * 1e6);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "cache        %llu hits / %llu misses (%.1f%% hit rate), "
                "%zu/%zu entries, %llu evictions\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.hit_rate() * 100.0, cache.entries, cache.capacity,
                static_cast<unsigned long long>(cache.evictions));
  out += buf;
  std::snprintf(buf, sizeof buf, "queue        depth %zu, peak %zu\n",
                s.queue_depth, s.queue_peak);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "connections  %llu open, %llu accepted, %llu rejected, "
                "%llu idle-closed\n",
                static_cast<unsigned long long>(s.connections_open),
                static_cast<unsigned long long>(s.connections_accepted),
                static_cast<unsigned long long>(s.connections_rejected),
                static_cast<unsigned long long>(s.connections_idle_closed));
  out += buf;
  out += "--------------------------------";
  return out;
}

}  // namespace archline::serve
