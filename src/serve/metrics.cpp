#include "serve/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "serve/json.hpp"

namespace archline::serve {

namespace {

/// Bucket index for a latency: floor(log2(nanoseconds)), clamped.
/// Integer bit_width instead of floor(log2()) — this runs once per
/// completed request, and the histogram's own granularity makes the two
/// indistinguishable.
int bucket_for(double seconds) noexcept {
  const double ns = seconds * 1e9;
  if (!(ns >= 1.0)) return 0;
  // >= 2^63 ns (~292 years) lands in the top bucket; also keeps the
  // double->uint64 cast below in range.
  if (ns >= 9.223372036854776e18) return LatencyHistogram::kBuckets - 1;
  return std::bit_width(static_cast<std::uint64_t>(ns)) - 1;
}

/// Metrics slot for a completion: the endpoint's dense id, or the
/// invalid slot when the request never reached a handler.
std::size_t slot_for(const Endpoint* endpoint) noexcept {
  return endpoint ? endpoint->id : Metrics::kInvalidSlot;
}

/// Latency-histogram class for a completion: errors before dispatch are
/// cheap and land with the Light class.
std::size_t class_for(const Endpoint* endpoint) noexcept {
  return endpoint ? static_cast<std::size_t>(endpoint->klass)
                  : static_cast<std::size_t>(RequestClass::Light);
}

}  // namespace

void LatencyHistogram::record(double seconds) noexcept {
  buckets_[static_cast<std::size_t>(bucket_for(seconds))].fetch_add(
      1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot s;
  accumulate(s);
  return s;
}

void LatencyHistogram::accumulate(Snapshot& out) const noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    out.counts[static_cast<std::size_t>(i)] += c;
    out.total += c;
  }
}

double LatencyHistogram::Snapshot::quantile(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk buckets.
  const double rank = q * static_cast<double>(total);
  double seen = 0.0;
  int last_populated = -1;
  for (int i = 0; i < kBuckets; ++i) {
    const double c = static_cast<double>(counts[static_cast<std::size_t>(i)]);
    if (c == 0.0) continue;
    last_populated = i;
    if (seen + c >= rank) {
      // Log-linear interpolation inside [2^i, 2^(i+1)) ns.
      const double frac = c > 0.0 ? (rank - seen) / c : 0.0;
      const double ns = std::exp2(static_cast<double>(i) + frac);
      return ns * 1e-9;
    }
    seen += c;
  }
  // Rank landed beyond the last populated bucket (floating-point
  // accumulation, or total > sum of counts in a hand-built snapshot):
  // clamp to that bucket's upper edge rather than inventing a value one
  // bucket past the histogram's own range.
  return std::exp2(static_cast<double>(last_populated) + 1.0) * 1e-9;
}

Metrics::Metrics(const sim::ClockSource* clock)
    : clock_(clock ? clock : &sim::real_clock()), start_(clock_->now()) {}

Metrics::CompletionShard& Metrics::completion_shard() noexcept {
  // Threads claim shard indices round-robin on first use; with 8 shards
  // and worker pools of comparable size, each worker effectively owns a
  // shard. The index is process-global so a thread touching several
  // Metrics instances uses the same stripe in each.
  static std::atomic<unsigned> next_thread{0};
  static thread_local const unsigned index =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return completion_shards_[index % kCompletionShards];
}

void Metrics::on_completed(const Endpoint* endpoint, bool ok,
                           double latency_s) noexcept {
  CompletionShard& shard = completion_shard();
  shard.by_endpoint[slot_for(endpoint)].fetch_add(1,
                                                  std::memory_order_relaxed);
  if (!ok) shard.errors.fetch_add(1, std::memory_order_relaxed);
  shard.latency[class_for(endpoint)].record(latency_s);
}

void Metrics::on_completed(const Endpoint* endpoint, bool ok) noexcept {
  CompletionShard& shard = completion_shard();
  shard.by_endpoint[slot_for(endpoint)].fetch_add(1,
                                                  std::memory_order_relaxed);
  if (!ok) shard.errors.fetch_add(1, std::memory_order_relaxed);
}

bool Metrics::sample_latency_now() noexcept {
  // The tick lives in the thread's home shard — the same cache line its
  // completion counters already dirty — so this costs no extra
  // coherence traffic. Relaxed is fine: the tick only spaces samples,
  // it orders nothing.
  const std::uint64_t t = completion_shard().sample_tick.fetch_add(
      1, std::memory_order_relaxed);
  return t < kLatencyWarmupSamples || (t % kLatencySampleEvery) == 0;
}

void Metrics::on_rejected(std::size_t lane) noexcept {
  rejected_[lane].fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_deadline_exceeded(std::size_t lane) noexcept {
  deadline_exceeded_[lane].fetch_add(1, std::memory_order_relaxed);
}

void Metrics::set_transport_shards(std::size_t n) noexcept {
  transport_shards_.store(n < kMaxTransportShards ? n : kMaxTransportShards,
                          std::memory_order_relaxed);
}

void Metrics::on_connection_opened(std::size_t shard) noexcept {
  TransportShard& s = transport_shard(shard);
  s.accepted.fetch_add(1, std::memory_order_relaxed);
  s.open.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_connection_closed(std::size_t shard) noexcept {
  transport_shard(shard).open.fetch_sub(1, std::memory_order_relaxed);
}

void Metrics::on_connection_rejected(std::size_t shard) noexcept {
  transport_shard(shard).rejected.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_connection_idle_closed(std::size_t shard) noexcept {
  transport_shard(shard).idle_closed.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_shard_request(std::size_t shard) noexcept {
  transport_shard(shard).requests.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_shard_cached(std::size_t shard) noexcept {
  transport_shard(shard).cached_inline.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::on_lane_depth(std::size_t lane, std::size_t depth) noexcept {
  lane_depth_[lane].store(depth, std::memory_order_relaxed);
  std::uint64_t peak = lane_peak_[lane].load(std::memory_order_relaxed);
  while (depth > peak &&
         !lane_peak_[lane].compare_exchange_weak(peak, depth,
                                                 std::memory_order_relaxed)) {
  }
}

Metrics::Snapshot Metrics::snapshot() const noexcept {
  Snapshot s;
  for (const CompletionShard& shard : completion_shards_) {
    for (std::size_t i = 0; i < s.by_endpoint.size(); ++i) {
      const std::uint64_t c =
          shard.by_endpoint[i].load(std::memory_order_relaxed);
      s.by_endpoint[i] += c;
      s.completed += c;
    }
    s.errors += shard.errors.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
      shard.latency[c].accumulate(s.lanes[c].latency);
      shard.latency[c].accumulate(s.latency);
    }
  }
  for (std::size_t lane = 0; lane < kLaneCount; ++lane) {
    LaneSnapshot& l = s.lanes[lane];
    l.rejected = rejected_[lane].load(std::memory_order_relaxed);
    l.deadline_exceeded =
        deadline_exceeded_[lane].load(std::memory_order_relaxed);
    l.depth = static_cast<std::size_t>(
        lane_depth_[lane].load(std::memory_order_relaxed));
    l.peak = static_cast<std::size_t>(
        lane_peak_[lane].load(std::memory_order_relaxed));
    s.rejected += l.rejected;
    s.deadline_exceeded += l.deadline_exceeded;
    s.queue_depth += l.depth;
    if (l.peak > s.queue_peak) s.queue_peak = l.peak;
  }
  s.transport_shards = transport_shards_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxTransportShards; ++i) {
    const TransportShard& t = transport_shards_counters_[i];
    Snapshot::TransportShardSnapshot& row = s.shards[i];
    row.open = t.open.load(std::memory_order_relaxed);
    row.accepted = t.accepted.load(std::memory_order_relaxed);
    row.rejected = t.rejected.load(std::memory_order_relaxed);
    row.idle_closed = t.idle_closed.load(std::memory_order_relaxed);
    row.requests = t.requests.load(std::memory_order_relaxed);
    row.cached_inline = t.cached_inline.load(std::memory_order_relaxed);
    s.connections_open += row.open;
    s.connections_accepted += row.accepted;
    s.connections_rejected += row.rejected;
    s.connections_idle_closed += row.idle_closed;
  }
  s.uptime_s = std::chrono::duration<double>(clock_->now() - start_).count();
  s.qps = s.uptime_s > 0.0 ? static_cast<double>(s.completed) / s.uptime_s
                           : 0.0;
  return s;
}

namespace {

Json latency_json(const LatencyHistogram::Snapshot& latency) {
  Json out = Json::object();
  out.set("count", latency.total);
  out.set("p50_s", latency.quantile(0.50));
  out.set("p95_s", latency.quantile(0.95));
  out.set("p99_s", latency.quantile(0.99));
  out.set("p999_s", latency.quantile(0.999));
  return out;
}

/// Wire name of a lane: the class whose requests it runs.
const char* lane_name(std::size_t lane) noexcept {
  return request_class_name(static_cast<RequestClass>(lane));
}

}  // namespace

std::string Metrics::to_json(
    const ShardedLruCache::Stats& cache,
    const fit::online::OnlineStoreStats* online) const {
  const Snapshot s = snapshot();
  const Registry& registry = Registry::instance();
  Json out = Json::object();
  out.set("ok", true);
  out.set("type", "stats");
  out.set("uptime_s", s.uptime_s);
  out.set("completed", s.completed);
  out.set("errors", s.errors);
  out.set("rejected_overload", s.rejected);
  out.set("deadline_exceeded", s.deadline_exceeded);
  out.set("qps", s.qps);
  Json by_type = Json::object();
  for (const Endpoint& e : registry)
    if (s.by_endpoint[e.id] > 0)
      by_type.set(e.name, s.by_endpoint[e.id]);
  if (s.by_endpoint[kInvalidSlot] > 0)
    by_type.set("invalid", s.by_endpoint[kInvalidSlot]);
  out.set("by_type", std::move(by_type));
  out.set("latency", latency_json(s.latency));
  Json lanes = Json::object();
  for (std::size_t lane = 0; lane < kLaneCount; ++lane) {
    const LaneSnapshot& l = s.lanes[lane];
    Json row = Json::object();
    row.set("depth", l.depth);
    row.set("peak", l.peak);
    row.set("rejected", l.rejected);
    row.set("deadline_exceeded", l.deadline_exceeded);
    row.set("latency", latency_json(l.latency));
    lanes.set(lane_name(lane), std::move(row));
  }
  out.set("lanes", std::move(lanes));
  Json cache_json = Json::object();
  cache_json.set("hits", cache.hits);
  cache_json.set("misses", cache.misses);
  cache_json.set("hit_rate", cache.hit_rate());
  cache_json.set("entries", cache.entries);
  cache_json.set("capacity", cache.capacity);
  cache_json.set("shards", cache.shards);
  cache_json.set("stale", cache.stale);
  cache_json.set("evictions", cache.evictions);
  out.set("cache", std::move(cache_json));
  if (online) {
    Json online_json = Json::object();
    online_json.set("observations", online->observations);
    online_json.set("resolves", online->resolves);
    online_json.set("generation", online->generation);
    online_json.set("platforms_fitted", online->platforms_fitted);
    // -1 until the first re-solve completes.
    online_json.set("last_resolve_s", online->last_resolve_s);
    out.set("online", std::move(online_json));
  }
  Json queue = Json::object();
  queue.set("depth", s.queue_depth);
  queue.set("peak", s.queue_peak);
  out.set("queue", std::move(queue));
  Json conns = Json::object();
  conns.set("open", s.connections_open);
  conns.set("accepted", s.connections_accepted);
  conns.set("rejected", s.connections_rejected);
  conns.set("idle_closed", s.connections_idle_closed);
  if (s.transport_shards > 0) {
    // Per-event-loop-shard breakdown; only rendered when a sharded
    // transport declared itself, so non-TCP deployments keep the old
    // shape.
    Json shards = Json::array();
    shards.reserve(s.transport_shards);
    for (std::size_t i = 0; i < s.transport_shards; ++i) {
      const Snapshot::TransportShardSnapshot& row = s.shards[i];
      Json shard = Json::object();
      shard.set("open", row.open);
      shard.set("accepted", row.accepted);
      shard.set("rejected", row.rejected);
      shard.set("idle_closed", row.idle_closed);
      shard.set("requests", row.requests);
      shard.set("cached_inline", row.cached_inline);
      shards.push_back(std::move(shard));
    }
    conns.set("shards", std::move(shards));
  }
  out.set("connections", std::move(conns));
  return out.dump();
}

std::string Metrics::summary(
    const ShardedLruCache::Stats& cache,
    const fit::online::OnlineStoreStats* online) const {
  const Snapshot s = snapshot();
  const Registry& registry = Registry::instance();
  char buf[1024];
  std::string out = "---- archline_serve metrics ----\n";
  std::snprintf(buf, sizeof buf,
                "uptime       %.3f s\n"
                "completed    %llu (%.0f req/s)\n"
                "errors       %llu\n"
                "rejected     %llu (overload)\n"
                "deadlined    %llu (expired in queue)\n",
                s.uptime_s, static_cast<unsigned long long>(s.completed),
                s.qps, static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.deadline_exceeded));
  out += buf;
  for (const Endpoint& e : registry) {
    if (s.by_endpoint[e.id] == 0) continue;
    std::snprintf(buf, sizeof buf, "  %-14.*s %llu\n",
                  static_cast<int>(e.name.size()), e.name.data(),
                  static_cast<unsigned long long>(s.by_endpoint[e.id]));
    out += buf;
  }
  if (s.by_endpoint[kInvalidSlot] > 0) {
    std::snprintf(buf, sizeof buf, "  %-14s %llu\n", "invalid",
                  static_cast<unsigned long long>(s.by_endpoint[kInvalidSlot]));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "latency      p50 %.1f us   p95 %.1f us   p99 %.1f us\n",
                s.latency.quantile(0.50) * 1e6,
                s.latency.quantile(0.95) * 1e6,
                s.latency.quantile(0.99) * 1e6);
  out += buf;
  for (std::size_t lane = 0; lane < kLaneCount; ++lane) {
    const LaneSnapshot& l = s.lanes[lane];
    std::snprintf(buf, sizeof buf,
                  "lane %-8s depth %zu, peak %zu, rejected %llu, "
                  "deadlined %llu, p99 %.1f us\n",
                  lane_name(lane), l.depth, l.peak,
                  static_cast<unsigned long long>(l.rejected),
                  static_cast<unsigned long long>(l.deadline_exceeded),
                  l.latency.quantile(0.99) * 1e6);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "cache        %llu hits / %llu misses (%.1f%% hit rate), "
                "%zu/%zu entries, %llu evictions, %llu stale\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.hit_rate() * 100.0, cache.entries, cache.capacity,
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.stale));
  out += buf;
  if (online) {
    std::snprintf(buf, sizeof buf,
                  "online       %llu observations, %llu re-solves "
                  "(generation %llu, %zu platforms fitted, last %.3f ms)\n",
                  static_cast<unsigned long long>(online->observations),
                  static_cast<unsigned long long>(online->resolves),
                  static_cast<unsigned long long>(online->generation),
                  online->platforms_fitted, online->last_resolve_s * 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "queue        depth %zu, peak %zu\n",
                s.queue_depth, s.queue_peak);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "connections  %llu open, %llu accepted, %llu rejected, "
                "%llu idle-closed\n",
                static_cast<unsigned long long>(s.connections_open),
                static_cast<unsigned long long>(s.connections_accepted),
                static_cast<unsigned long long>(s.connections_rejected),
                static_cast<unsigned long long>(s.connections_idle_closed));
  out += buf;
  if (s.transport_shards > 1) {
    for (std::size_t i = 0; i < s.transport_shards; ++i) {
      const Snapshot::TransportShardSnapshot& row = s.shards[i];
      std::snprintf(
          buf, sizeof buf,
          "  shard %-2zu    %llu open, %llu accepted, %llu requests, "
          "%llu cached-inline\n",
          i, static_cast<unsigned long long>(row.open),
          static_cast<unsigned long long>(row.accepted),
          static_cast<unsigned long long>(row.requests),
          static_cast<unsigned long long>(row.cached_inline));
      out += buf;
    }
  }
  out += "--------------------------------";
  return out;
}

}  // namespace archline::serve
