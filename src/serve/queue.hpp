#pragma once
// Bounded multi-producer / multi-consumer queue with backpressure.
//
// Admission control for the server: producers (connection threads) use
// try_push, which fails fast when the queue is at capacity instead of
// growing without bound — the caller turns that into an "overloaded"
// reply. Consumers (workers) block in pop/pop_n until an item arrives
// or the queue is closed; after close(), remaining items still drain,
// which is what makes graceful shutdown "finish everything admitted,
// admit nothing new".
//
// Hot-path design:
//   * try_push signals the condition variable only when a consumer is
//     blocked AND this push is the empty -> non-empty transition. A
//     consumer can only block on an empty queue, and once one has been
//     signalled it stays registered on the condvar until it is
//     scheduled — so signalling again for every push in a burst is a
//     futex syscall per push buying no additional wake-up. One signal
//     per transition is enough to start a drain;
//   * consumers chain wake-ups: a pop/pop_n that leaves items behind
//     while siblings are blocked signals one of them, so a burst fans
//     out across the pool without the producer paying per-push
//     syscalls (each woken worker wakes the next);
//   * pop_n hands a consumer up to `max_items` jobs in one lock
//     acquisition, and both pop and pop_n report the post-pop depth, so
//     callers never take the lock a second time just to read size().
//
// Liveness: a consumer blocks only while the queue is empty (checked
// under the mutex), so "blocked consumer + non-empty queue" can only
// arise when another consumer took items and left some behind — exactly
// the case the chained signal covers. Every push onto an empty queue
// signals if anyone is blocked, and close() wakes everyone; no item can
// be stranded with every consumer asleep.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace archline::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless full or closed; never blocks. On success writes
  /// the resulting depth to depth_out (for the queue-depth gauge).
  [[nodiscard]] bool try_push(T item, std::size_t* depth_out = nullptr) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (depth_out) *depth_out = items_.size();
      // Empty -> non-empty transition with someone blocked: one signal
      // starts the drain; consumers chain further wake-ups themselves.
      wake = waiters_ > 0 && items_.size() == 1;
    }
    if (wake) not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt means "closed and empty" (consumer should exit).
  /// On success writes the post-pop depth to depth_out.
  [[nodiscard]] std::optional<T> pop(std::size_t* depth_out = nullptr) {
    bool wake;
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wait_not_empty(lock);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      if (depth_out) *depth_out = items_.size();
      wake = waiters_ > 0 && !items_.empty();
    }
    if (wake) not_empty_.notify_one();  // chain: work remains for a sibling
    return item;
  }

  /// Blocks like pop, then appends up to `max_items` items to `out` in
  /// one critical section. Returns the number taken; 0 means "closed
  /// and empty". On success writes the post-pop depth to depth_out.
  /// Items already in `out` are left untouched.
  [[nodiscard]] std::size_t pop_n(std::vector<T>& out, std::size_t max_items,
                                  std::size_t* depth_out = nullptr) {
    bool wake;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wait_not_empty(lock);
      n = std::min(max_items, items_.size());
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      if (depth_out) *depth_out = items_.size();
      wake = waiters_ > 0 && !items_.empty();
    }
    if (wake) not_empty_.notify_one();  // chain: work remains for a sibling
    return n;
  }

  /// Rejects future pushes and wakes all blocked consumers. Items
  /// already queued remain poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Re-admits pushes after close(); what makes Server restartable. Any
  /// items still queued simply remain poppable. Consumers blocked in
  /// pop() are unaffected (they were already woken by close()).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Blocks until there is an item or the queue is closed, counting
  /// this consumer as a waiter so pushes and sibling pops know whether
  /// a signal can reach anyone.
  void wait_not_empty(std::unique_lock<std::mutex>& lock) {
    if (!closed_ && items_.empty()) {
      ++waiters_;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      --waiters_;
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t waiters_ = 0;
  bool closed_ = false;
};

}  // namespace archline::serve
