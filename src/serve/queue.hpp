#pragma once
// LaneScheduler — a bounded multi-lane MPMC scheduler with weighted
// round-robin draining and per-consumer lane masks.
//
// One lane per request class (see serve/registry.hpp): Light requests
// (closed-form model evaluation, microseconds) and Heavy requests
// (iterative fitting / batched sweeps, milliseconds) are admitted into
// SEPARATE bounded lanes. Admission control is per lane: a flood of
// Heavy requests fills the heavy lane and bounces with "overloaded"
// while the light lane keeps admitting — the class-isolation property
// the serve stack is built around.
//
// Consumers pass a LaneMask: a light-only worker drains just the light
// lane; a heavy-capable worker drains all lanes with weighted
// round-robin (weight w pops up to w items from a lane before yielding
// the cursor), so even an all-lanes worker can't be monopolized by a
// deep heavy backlog.
//
// Hot-path design (inherits the single-queue predecessor's reasoning):
//   * try_push signals only on that lane's empty -> non-empty transition
//     while a consumer is blocked. Under load waiters_ == 0 and pushes
//     are signal-free;
//   * the wake is notify_all, not notify_one: sleepers have different
//     masks, and a notify_one could land on a consumer that cannot see
//     the lane that just filled (a light-only worker for a heavy push),
//     stranding the item while a capable sibling sleeps. Wakeups are
//     rare (only after an empty spell), so the herd is cheap and every
//     capable consumer re-checks its own mask under the mutex;
//   * pop_n hands a consumer up to `max_items` jobs in one lock
//     acquisition and reports post-pop depths, so callers never re-lock
//     just to read sizes.
//
// Liveness: a consumer blocks only while every lane in its mask is
// empty (checked under the mutex); every push onto an empty lane wakes
// all sleepers when any exist, and close() wakes everyone. A consumer
// that drains items and leaves more behind also wakes sleepers (chain),
// so a burst fans out across the pool.

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace archline::serve {

/// Lane indices. Kept in sync with RequestClass by serve::Server
/// (Light request -> lane 0, Heavy -> lane 1).
inline constexpr std::size_t kLaneCount = 2;
inline constexpr std::size_t kLightLane = 0;
inline constexpr std::size_t kHeavyLane = 1;

/// Bit i selects lane i.
using LaneMask = unsigned;
inline constexpr LaneMask kAllLanes = (1u << kLaneCount) - 1;
inline constexpr LaneMask kLightOnly = 1u << kLightLane;

[[nodiscard]] constexpr LaneMask lane_bit(std::size_t lane) noexcept {
  return 1u << lane;
}

struct LaneConfig {
  std::size_t capacity = 0;  ///< 0 = lane disabled (push always fails)
  /// Round-robin credit: an all-lanes consumer pops up to `weight`
  /// items from this lane before the cursor moves on.
  unsigned weight = 1;
};

template <typename T>
class LaneScheduler {
 public:
  explicit LaneScheduler(std::array<LaneConfig, kLaneCount> lanes)
      : lanes_(lanes) {
    credit_ = lanes_[0].weight;
  }

  LaneScheduler(const LaneScheduler&) = delete;
  LaneScheduler& operator=(const LaneScheduler&) = delete;

  /// Enqueues onto `lane` unless that lane is full/disabled or the
  /// scheduler is closed; never blocks. On success writes the lane's
  /// resulting depth to depth_out (for the per-lane gauge).
  [[nodiscard]] bool try_push(std::size_t lane, T item,
                              std::size_t* depth_out = nullptr) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::deque<T>& items = items_[lane];
      if (closed_ || items.size() >= lanes_[lane].capacity) return false;
      items.push_back(std::move(item));
      if (depth_out) *depth_out = items.size();
      // Empty -> non-empty transition with someone blocked. notify_all,
      // because sleepers with other masks must not absorb the only wake.
      wake = waiters_ > 0 && items.size() == 1;
    }
    if (wake) not_empty_.notify_all();
    return true;
  }

  /// Blocks until a lane in `mask` has an item or the scheduler is
  /// closed and those lanes drained; nullopt means "closed and empty"
  /// (consumer should exit). On success writes the source lane to
  /// lane_out.
  [[nodiscard]] std::optional<T> pop(LaneMask mask,
                                     std::size_t* lane_out = nullptr) {
    bool wake;
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wait_not_empty(lock, mask);
      // Sole non-empty lane (the common case: heavy traffic is rare):
      // no arbitration, no credit bookkeeping — fairness only means
      // something when two lanes actually compete.
      std::size_t lane = sole_nonempty(mask);
      if (lane == kArbitrate) {
        lane = pick_lane(mask);
        consume_credit(lane);
      }
      if (lane == kLaneCount) return std::nullopt;
      item.emplace(std::move(items_[lane].front()));
      items_[lane].pop_front();
      if (lane_out) *lane_out = lane;
      wake = waiters_ > 0 && total_in(kAllLanes) > 0;
    }
    if (wake) not_empty_.notify_all();  // chain: work remains for siblings
    return item;
  }

  /// Blocks like pop, then appends up to `max_items` items from lanes in
  /// `mask` to `out` in one critical section, draining lanes in weighted
  /// round-robin order. Returns the number taken; 0 means "closed and
  /// empty". On success writes each lane's post-pop depth to depths_out.
  /// Items already in `out` are left untouched.
  [[nodiscard]] std::size_t pop_n(
      LaneMask mask, std::vector<T>& out, std::size_t max_items,
      std::array<std::size_t, kLaneCount>* depths_out = nullptr) {
    bool wake;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wait_not_empty(lock, mask);
      while (n < max_items) {
        std::size_t lane = sole_nonempty(mask);
        if (lane == kLaneCount) break;
        if (lane != kArbitrate) {
          // Sole non-empty lane: drain it in a run, no per-item
          // arbitration (fairness is moot with nothing to compete).
          std::deque<T>& items = items_[lane];
          std::size_t take = max_items - n;
          if (items.size() < take) take = items.size();
          for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(items.front()));
            items.pop_front();
          }
          n += take;
          continue;  // re-check: another lane may still be masked-empty
        }
        lane = pick_lane(mask);
        out.push_back(std::move(items_[lane].front()));
        items_[lane].pop_front();
        consume_credit(lane);
        ++n;
      }
      if (depths_out)
        for (std::size_t i = 0; i < kLaneCount; ++i)
          (*depths_out)[i] = items_[i].size();
      wake = waiters_ > 0 && total_in(kAllLanes) > 0;
    }
    if (wake) not_empty_.notify_all();  // chain: work remains for siblings
    return n;
  }

  /// Rejects future pushes and wakes all blocked consumers. Items
  /// already queued remain poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Re-admits pushes after close(); what makes Server restartable. Any
  /// items still queued simply remain poppable.
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Total queued items across lanes in `mask`.
  [[nodiscard]] std::size_t size(LaneMask mask = kAllLanes) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_in(mask);
  }

  /// Queued items in one lane.
  [[nodiscard]] std::size_t lane_size(std::size_t lane) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_[lane].size();
  }

  [[nodiscard]] std::size_t capacity(std::size_t lane) const noexcept {
    return lanes_[lane].capacity;
  }

  [[nodiscard]] unsigned weight(std::size_t lane) const noexcept {
    return lanes_[lane].weight;
  }

 private:
  /// Sentinel from sole_nonempty: two or more masked lanes hold items,
  /// so the weighted-round-robin cursor must arbitrate.
  static constexpr std::size_t kArbitrate = kLaneCount + 1;

  /// The single masked lane holding items, kLaneCount when every masked
  /// lane is empty, kArbitrate when at least two compete. The fast paths
  /// in pop/pop_n use this to skip cursor/credit bookkeeping in the
  /// common one-busy-lane case; the cursor state is simply left as-is,
  /// so weighted fairness resumes unchanged the next time lanes compete.
  [[nodiscard]] std::size_t sole_nonempty(LaneMask mask) const {
    std::size_t found = kLaneCount;
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      if (!(mask & lane_bit(i)) || items_[i].empty()) continue;
      if (found != kLaneCount) return kArbitrate;
      found = i;
    }
    return found;
  }

  [[nodiscard]] std::size_t total_in(LaneMask mask) const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < kLaneCount; ++i)
      if (mask & lane_bit(i)) total += items_[i].size();
    return total;
  }

  /// The lane the weighted-round-robin cursor selects next among
  /// non-empty lanes in `mask`; kLaneCount when all are empty. The
  /// cursor/credit pair is shared across consumers (it guards the
  /// SCHEDULER's fairness, not any one consumer's), and a lane outside
  /// `mask` or out of items just forfeits its turn.
  [[nodiscard]] std::size_t pick_lane(LaneMask mask) {
    for (std::size_t step = 0; step < kLaneCount; ++step) {
      if (credit_ == 0 || items_[cursor_].empty() ||
          !(mask & lane_bit(cursor_))) {
        advance_cursor();
        continue;
      }
      return cursor_;
    }
    // Every lane either empty or unmasked — but a masked non-empty lane
    // must still win even if the full rotation above spent its credits
    // on skips.
    for (std::size_t i = 0; i < kLaneCount; ++i)
      if ((mask & lane_bit(i)) && !items_[i].empty()) {
        cursor_ = i;
        credit_ = lanes_[i].weight;
        return i;
      }
    return kLaneCount;
  }

  void consume_credit(std::size_t lane) {
    if (cursor_ == lane && credit_ > 0) --credit_;
  }

  void advance_cursor() {
    cursor_ = (cursor_ + 1) % kLaneCount;
    credit_ = lanes_[cursor_].weight;
  }

  /// A consumer that runs dry yields this many times before committing
  /// to a condition-variable sleep. While it spins, waiters_ stays 0, so
  /// producer pushes remain signal-free — the spin is what keeps a
  /// near-balanced producer/consumer pair in the cheap big-batch regime
  /// instead of degenerating into one futex wake (plus a likely
  /// preemption) per item. Measured on a 1-CPU host: the no-spin
  /// scheduler ping-ponged at ~0.35 context switches per job and halved
  /// worker-pool throughput; with the spin it batches again. A truly
  /// idle consumer burns ~64 sched_yield calls (a few microseconds)
  /// once, then sleeps as before.
  static constexpr int kIdleSpinRounds = 64;

  /// Blocks until a lane in `mask` has an item or the scheduler is
  /// closed, counting this consumer as a waiter (only once it actually
  /// sleeps) so pushes and sibling pops know whether a signal can reach
  /// anyone.
  void wait_not_empty(std::unique_lock<std::mutex>& lock, LaneMask mask) {
    if (closed_ || total_in(mask) > 0) return;
    for (int round = 0; round < kIdleSpinRounds; ++round) {
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
      if (closed_ || total_in(mask) > 0) return;
    }
    ++waiters_;
    not_empty_.wait(lock, [&] { return closed_ || total_in(mask) > 0; });
    --waiters_;
  }

  const std::array<LaneConfig, kLaneCount> lanes_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::array<std::deque<T>, kLaneCount> items_;
  std::size_t cursor_ = 0;   ///< weighted-RR position
  unsigned credit_ = 0;      ///< pops left before the cursor advances
  std::size_t waiters_ = 0;
  bool closed_ = false;
};

}  // namespace archline::serve
