#pragma once
// Bounded multi-producer / multi-consumer queue with backpressure.
//
// Admission control for the server: producers (connection threads) use
// try_push, which fails fast when the queue is at capacity instead of
// growing without bound — the caller turns that into an "overloaded"
// reply. Consumers (workers) block in pop until an item arrives or the
// queue is closed; after close(), remaining items still drain, which is
// what makes graceful shutdown "finish everything admitted, admit
// nothing new".

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace archline::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless full or closed; never blocks. On success writes
  /// the resulting depth to depth_out (for the queue-depth gauge).
  [[nodiscard]] bool try_push(T item, std::size_t* depth_out = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (depth_out) *depth_out = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt means "closed and empty" (consumer should exit).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all blocked consumers. Items
  /// already queued remain poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Re-admits pushes after close(); what makes Server restartable. Any
  /// items still queued simply remain poppable. Consumers blocked in
  /// pop() are unaffected (they were already woken by close()).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace archline::serve
