#include "serve/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/iobuf.hpp"

namespace archline::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Frame separator shared by every iovec the flush path builds.
constexpr char kNewline = '\n';

/// Most reply segments one sendv() call gathers. 64 replies per
/// syscall amortizes the crossing thoroughly; IOV_MAX is 1024, so the
/// 2-segments-per-reply layout stays far under the kernel limit.
constexpr int kMaxIov = 64;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Worker threads finish responses out on their own schedule; this is
/// the hand-off back to the owning shard. complete() under the writer's
/// lock pushes each connection's responses here in FIFO order, and the
/// eventfd wakes that shard's epoll_wait. After close() pushes are
/// dropped — that is what makes it safe for straggler callbacks (queue
/// drain during Server::shutdown) to outlive the loop.
struct CompletionChannel {
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  int event_fd = -1;
  bool closed = false;

  void push(std::uint64_t conn_id, const std::string& body) {
    std::lock_guard<std::mutex> lock(mutex);
    if (closed) return;
    ready.emplace_back(conn_id, body);
    const std::uint64_t one = 1;
    // Under the lock so close() cannot free the fd mid-write.
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd, &one, sizeof one);
  }

  void take(std::vector<std::pair<std::uint64_t, std::string>>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    out.swap(ready);
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
  }
};

/// Handoff-fallback plumbing: the acceptor shard pushes freshly
/// accepted fds here; the owning shard's eventfd wakes it to admit
/// them. After close_incoming() (owner teardown) pushes close the fd
/// instead of parking it — nobody would ever drain it.
struct HandoffQueue {
  std::mutex mutex;
  std::vector<int> fds;
  int event_fd = -1;
  bool closed = false;

  void push(int fd) {
    std::unique_lock<std::mutex> lock(mutex);
    if (closed) {
      lock.unlock();
      ::close(fd);
      return;
    }
    fds.push_back(fd);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd, &one, sizeof one);
  }

  void take(std::vector<int>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    out.swap(fds);
  }

  void close_incoming() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    for (const int fd : fds) ::close(fd);
    fds.clear();
  }
};

/// Everything a shard knows about one socket. `submitted` counts
/// requests accepted from the wire; `written` counts responses framed
/// for sending; the connection may close only when they agree and the
/// outbound buffers have drained.
///
/// Outbound data lives in two places, always sent in this order:
///   * `out`    — partially-sent residue and copied inline-hit frames
///                (cursor buffer: consuming sent bytes is O(1));
///   * `pending`— whole reply bodies not yet touched by sendv(), moved
///                in from workers with zero copies; flush() gathers
///                them (+ newline separators) into one writev.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::shared_ptr<OrderedWriter> writer;
  ConsumableBuffer in;   ///< residual partial line (no newline yet)
  ConsumableBuffer out;  ///< framed bytes awaiting (re)send
  std::vector<std::string> pending;  ///< un-sent reply bodies, FIFO
  std::size_t pending_next = 0;      ///< first un-sent index in pending
  std::uint64_t submitted = 0;
  std::uint64_t written = 0;
  /// No further reads: peer EOF, an oversized line, or server stop.
  bool half_closed = false;
  std::uint32_t interest = 0;  ///< current epoll event mask
  Clock::time_point last_activity;
};

[[nodiscard]] bool has_outbound(const Conn& c) noexcept {
  return !c.out.empty() || c.pending_next < c.pending.size();
}

/// One event-loop shard: its own epoll instance, connection table,
/// completion channel, and (optionally) listen socket, handoff inbox,
/// and response-cache partition. Everything here is touched by exactly
/// one thread; the CompletionChannel and HandoffQueue are the only
/// cross-thread doors, and both are internally locked.
class ShardLoop {
 public:
  // epoll_event.data.u64 routing within one shard.
  static constexpr std::uint64_t kListenId = 0;
  static constexpr std::uint64_t kWakeId = 1;
  static constexpr std::uint64_t kHandoffId = 2;
  static constexpr std::uint64_t kFirstConnId = 3;

  ShardLoop(Server& server, const TcpOptions& options, int shard,
            int shard_count, int listen_fd,
            std::shared_ptr<ShardedLruCache> cache, std::size_t max_conns,
            HandoffQueue* inbox, std::vector<HandoffQueue*> targets)
      : server_(server),
        options_(options),
        shard_(static_cast<std::size_t>(shard)),
        shard_count_(static_cast<std::uint64_t>(shard_count)),
        listen_fd_(listen_fd),
        cache_(std::move(cache)),
        max_conns_(max_conns),
        inbox_(inbox),
        targets_(std::move(targets)),
        metrics_(server.metrics()),
        max_line_(server.options().limits.max_request_bytes),
        clock_(options.clock ? *options.clock : sim::real_clock()),
        ops_(options.socket_ops ? *options.socket_ops : real_socket_ops()) {}

  void run(const std::atomic<bool>& stop);

 private:
  void update_interest(Conn& c) {
    const std::uint32_t want =
        (c.half_closed ? 0u : EPOLLIN) | (has_outbound(c) ? 0u : 0u) |
        (has_outbound(c) ? EPOLLOUT : 0u);
    if (want == c.interest) return;
    epoll_event mod{};
    mod.events = want;
    mod.data.u64 = c.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &mod);
    c.interest = want;
  }

  void destroy(std::uint64_t id, bool idle_timeout = false) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    // Counters first: a peer that observes the EOF must already see the
    // close reflected in a stats snapshot.
    metrics_.on_connection_closed(shard_);
    if (idle_timeout) metrics_.on_connection_idle_closed(shard_);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    conns_.erase(it);
  }

  /// Accounts `n` sent bytes against out-then-pending, in send order.
  /// A reply cut mid-body moves its unsent tail into `out` (the next
  /// writev resumes there), so partial progress is O(tail), never a
  /// front-erase of everything buffered.
  void consume_outbound(Conn& c, std::size_t n) {
    const std::size_t from_out = std::min(n, c.out.size());
    c.out.consume(from_out);
    n -= from_out;
    while (n > 0) {
      std::string& body = c.pending[c.pending_next];
      const std::size_t framed = body.size() + 1;  // + newline
      if (n >= framed) {
        n -= framed;
        ++c.pending_next;
        continue;
      }
      // Partial mid-reply: out is empty here (writev consumed it
      // first), so the tail lands at the front of the send order.
      c.out.append(body.data() + n, body.size() - n);
      c.out.push_back(kNewline);
      ++c.pending_next;
      n = 0;
    }
    if (c.pending_next == c.pending.size()) {
      c.pending.clear();
      c.pending_next = 0;
    } else if (c.pending_next >= 64) {
      // Bound the dead prefix under a never-draining pipeline.
      c.pending.erase(c.pending.begin(),
                      c.pending.begin() +
                          static_cast<std::ptrdiff_t>(c.pending_next));
      c.pending_next = 0;
    }
  }

  /// Gathers everything outbound into as few sendv() calls as the
  /// socket accepts. Returns false when the connection died (and was
  /// destroyed).
  bool flush(Conn& c) {
    while (has_outbound(c)) {
      std::array<iovec, kMaxIov> iov;
      int cnt = 0;
      if (!c.out.empty()) {
        iov[static_cast<std::size_t>(cnt++)] =
            iovec{const_cast<char*>(c.out.data()), c.out.size()};
      }
      for (std::size_t i = c.pending_next;
           i < c.pending.size() && cnt + 2 <= kMaxIov; ++i) {
        std::string& body = c.pending[i];
        iov[static_cast<std::size_t>(cnt++)] =
            iovec{body.data(), body.size()};
        iov[static_cast<std::size_t>(cnt++)] =
            iovec{const_cast<char*>(&kNewline), 1};
      }
      const ssize_t n = ops_.sendv(c.fd, iov.data(), cnt);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        destroy(c.id);
        return false;
      }
      if (n == 0) break;  // defensive: no progress, no spin
      c.last_activity = clock_.now();
      consume_outbound(c, static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Close once nothing can ever arrive for this connection again.
  /// Returns false when the connection was closed.
  bool maybe_close(Conn& c) {
    if (c.half_closed && c.written == c.submitted && !has_outbound(c)) {
      destroy(c.id);
      return false;
    }
    return true;
  }

  /// A worker-completed reply: takes ownership, zero copies.
  void frame_owned(Conn& c, std::string&& body) {
    ++c.written;
    c.pending.push_back(std::move(body));
  }

  /// An inline cache hit: the body lives in the loop's reusable scratch
  /// buffer, so it is copied out — into `out` when FIFO allows (its
  /// capacity is reused across hits; zero allocations steady-state),
  /// else into pending.
  void frame_copy(Conn& c, const std::string& body) {
    ++c.written;
    if (c.pending_next == c.pending.size()) {
      c.pending.clear();
      c.pending_next = 0;
      c.out.append(body.data(), body.size());
      c.out.push_back(kNewline);
    } else {
      c.pending.push_back(body);
    }
  }

  void submit_line(Conn& c, std::string_view line) {
    if (line.empty() || line == "\r") return;
    metrics_.on_shard_request(shard_);
    if (cache_) {
      // Shard-local cache probe on the loop thread: a hit never
      // touches the worker pool or another core. FIFO safety: with
      // nothing in flight the reply is framed directly; otherwise it
      // is sequenced through the OrderedWriter behind the in-flight
      // responses.
      const bool in_order = c.submitted == c.written;
      if (server_.try_serve_cached(line, *cache_, scratch_)) {
        metrics_.on_shard_cached(shard_);
        ++c.submitted;
        if (in_order) {
          frame_copy(c, scratch_);
        } else {
          const std::uint64_t seq = c.writer->next_sequence();
          c.writer->complete(seq, std::string(scratch_));
        }
        return;
      }
      // Probe missed (and was counted); the worker skips the re-probe
      // and its miss-fill lands in this shard's partition.
    }
    const std::uint64_t seq = c.writer->next_sequence();
    ++c.submitted;
    std::shared_ptr<OrderedWriter> writer = c.writer;
    const bool admitted = server_.submit(
        std::string(line),
        [writer, seq](std::string&& body) {
          writer->complete(seq, std::move(body));
        },
        cache_, /*cache_prechecked=*/cache_ != nullptr);
    if (!admitted)
      c.writer->complete(seq, std::string(overloaded_body()));
  }

  // Extracts complete lines FIRST, so a burst of small pipelined
  // requests is never mistaken for one oversized line; only the
  // residual partial line is bounded. On EOF the final un-terminated
  // line is a real request and gets a real reply.
  void process_input(Conn& c, bool eof) {
    const std::string_view buf = c.in.view();
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start);
         nl != std::string_view::npos; nl = buf.find('\n', start)) {
      submit_line(c, buf.substr(start, nl - start));
      start = nl + 1;
    }
    c.in.consume(start);
    if (eof) {
      if (!c.in.empty()) {
        submit_line(c, c.in.view());
        c.in.clear();
      }
      c.half_closed = true;
    } else if (c.in.size() > max_line_) {
      // A line this long can only ever be rejected; answer now and
      // stop reading rather than buffering without bound.
      const std::uint64_t seq = c.writer->next_sequence();
      ++c.submitted;
      c.writer->complete(
          seq, error_body("too_large", "request line never ended"));
      c.in.clear();
      c.half_closed = true;
    }
  }

  // Returns false when the connection was destroyed.
  bool handle_read(Conn& c) {
    char chunk[65536];
    const ssize_t n = ops_.recv(c.fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        return true;
      destroy(c.id);
      return false;
    }
    c.last_activity = clock_.now();
    if (n == 0) {
      process_input(c, /*eof=*/true);
    } else {
      c.in.append(chunk, static_cast<std::size_t>(n));
      process_input(c, /*eof=*/false);
    }
    if (!maybe_close(c)) return false;
    update_interest(c);
    return true;
  }

  /// Registers an accepted (or handed-off) fd with this shard, or
  /// rejects it against the shard's connection slice.
  void admit(int fd) {
    if (conns_.size() >= max_conns_) {
      // Admission control at the door: a canned overloaded reply
      // (best effort — the socket buffer of a fresh connection
      // always has room for one line) and an immediate close.
      metrics_.on_connection_rejected(shard_);
      const std::string reply = overloaded_body() + "\n";
      [[maybe_unused]] const ssize_t n =
          ops_.send(fd, reply.data(), reply.size());
      ::close(fd);
      return;
    }
    const std::uint64_t id = next_id_++;
    Conn& c = conns_[id];
    c.fd = fd;
    c.id = id;
    c.last_activity = clock_.now();
    c.interest = EPOLLIN;
    std::shared_ptr<CompletionChannel> channel = channel_;
    c.writer = std::make_shared<OrderedWriter>(
        [channel, id](const std::string& body) {
          channel->push(id, body);
        });
    epoll_event add{};
    add.events = EPOLLIN;
    add.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &add);
    metrics_.on_connection_opened(shard_);
  }

  void handle_accepts() {
    for (int burst = 0; burst < 256; ++burst) {
      const int fd = ops_.accept(listen_fd_);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // EAGAIN or a real error; either way, wait for epoll
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (!targets_.empty()) {
        // Handoff fallback: deterministic round-robin placement in
        // accept order, self included.
        const std::uint64_t target = next_target_++ % shard_count_;
        if (target != static_cast<std::uint64_t>(shard_)) {
          targets_[static_cast<std::size_t>(target)]->push(fd);
          continue;
        }
      }
      admit(fd);
    }
  }

  void drain_handoff() {
    std::uint64_t counter = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(inbox_->event_fd, &counter, sizeof counter);
    handed_.clear();
    inbox_->take(handed_);
    for (const int fd : handed_) {
      if (stopping_) {
        // Raced the stop: treat like a connection still in the backlog
        // — never admitted, silently closed.
        ::close(fd);
        continue;
      }
      admit(fd);
    }
  }

  void drain_completions() {
    std::uint64_t counter = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(channel_->event_fd, &counter, sizeof counter);
    ready_.clear();
    channel_->take(ready_);
    // Frame everything first, then flush each touched connection once —
    // this is what turns a burst of pipelined completions into a
    // single writev per connection.
    touched_.clear();
    for (auto& [id, body] : ready_) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // connection already gone
      frame_owned(it->second, std::move(body));
      if (touched_.empty() || touched_.back() != id) touched_.push_back(id);
    }
    for (const std::uint64_t id : touched_) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      if (!flush(c)) continue;
      if (!maybe_close(c)) continue;
      update_interest(c);
    }
  }

  Server& server_;
  const TcpOptions& options_;
  const std::size_t shard_;
  const std::uint64_t shard_count_;
  const int listen_fd_;  ///< -1: this shard does not accept
  const std::shared_ptr<ShardedLruCache> cache_;  ///< null: no caching
  const std::size_t max_conns_;
  HandoffQueue* const inbox_;  ///< null unless handoff-mode non-acceptor
  const std::vector<HandoffQueue*> targets_;  ///< non-empty: acceptor
  Metrics& metrics_;
  const std::size_t max_line_;
  const sim::ClockSource& clock_;
  SocketOps& ops_;

  int epoll_fd_ = -1;
  std::shared_ptr<CompletionChannel> channel_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_id_ = kFirstConnId;
  std::uint64_t next_target_ = 0;
  bool stopping_ = false;
  Clock::time_point stop_at_{};
  std::string scratch_;  ///< inline cache-hit reply buffer (reused)
  std::vector<std::pair<std::uint64_t, std::string>> ready_;
  std::vector<std::uint64_t> touched_;
  std::vector<int> handed_;
};

void ShardLoop::run(const std::atomic<bool>& stop) {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return;
  channel_ = std::make_shared<CompletionChannel>();
  channel_->event_fd = ::eventfd(0, EFD_NONBLOCK);
  if (channel_->event_fd < 0) {
    ::close(epoll_fd_);
    return;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  if (listen_fd_ >= 0) {
    ev.data.u64 = kListenId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, channel_->event_fd, &ev);
  if (inbox_) {
    ev.data.u64 = kHandoffId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, inbox_->event_fd, &ev);
  }

  std::array<epoll_event, 64> events;

  while (true) {
    if (!stopping_ && stop.load(std::memory_order_acquire)) {
      // Stop accepting, stop reading; keep looping until every
      // admitted request has been answered and flushed.
      stopping_ = true;
      stop_at_ = clock_.now();
      if (listen_fd_ >= 0)
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      std::vector<std::uint64_t> ids;
      ids.reserve(conns_.size());
      for (auto& [id, c] : conns_) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        it->second.half_closed = true;
        if (!maybe_close(it->second)) continue;
        update_interest(it->second);
      }
    }
    if (stopping_ && conns_.empty()) break;
    const auto grace = std::chrono::milliseconds(options_.drain_grace_ms);
    if (stopping_ && clock_.now() - stop_at_ > grace) {
      // Peers that stopped reading do not get to hold shutdown hostage.
      std::vector<std::uint64_t> ids;
      ids.reserve(conns_.size());
      for (auto& [id, c] : conns_) ids.push_back(id);
      for (const std::uint64_t id : ids) destroy(id);
      break;
    }

    int timeout = options_.poll_interval_ms;
    if (stopping_) {
      // The grace check above only runs when epoll_wait returns, so the
      // wait itself must never outlive the remaining grace: clamp the
      // timeout to it (+1ms to land past the strict `>` boundary).
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              grace - (clock_.now() - stop_at_))
              .count() +
          1;
      if (remaining < static_cast<long long>(timeout))
        timeout = static_cast<int>(std::max<long long>(0, remaining));
    }

    const int n_events =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout);
    if (n_events < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (int i = 0; i < n_events; ++i) {
      const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t flags =
          events[static_cast<std::size_t>(i)].events;
      if (id == kListenId) {
        if (!stopping_) handle_accepts();
        continue;
      }
      if (id == kWakeId) {
        drain_completions();
        continue;
      }
      if (id == kHandoffId) {
        drain_handoff();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // destroyed earlier this batch
      Conn& c = it->second;
      if (flags & (EPOLLHUP | EPOLLERR)) {
        destroy(id);
        continue;
      }
      if ((flags & EPOLLIN) && !c.half_closed) {
        if (!handle_read(c)) continue;
      }
      if (flags & EPOLLOUT) {
        if (!flush(c)) continue;
        if (!maybe_close(c)) continue;
        update_interest(c);
      }
    }

    // Idle sweep: connections with no traffic and nothing in flight for
    // idle_timeout_ms are closed. Ones with pending responses are
    // exempt — they are "busy", just waiting on workers or the socket.
    if (options_.idle_timeout_ms > 0) {
      const auto now = clock_.now();
      const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
      std::vector<std::uint64_t> expired;
      for (auto& [id, c] : conns_) {
        const bool pending = c.submitted != c.written || has_outbound(c);
        if (!pending && now - c.last_activity > limit) expired.push_back(id);
      }
      for (const std::uint64_t id : expired)
        destroy(id, /*idle_timeout=*/true);
    }
  }

  // Straggler callbacks (e.g. the queue drain inside Server::shutdown)
  // may still fire after this point; mark the channel closed so their
  // pushes are dropped instead of touching freed fds. Likewise the
  // handoff inbox: fds the acceptor pushes from here on are closed at
  // the push.
  channel_->close();
  ::close(channel_->event_fd);
  channel_->event_fd = -1;
  if (inbox_) inbox_->close_incoming();
  for (auto& [id, c] : conns_) ::close(c.fd);
  ::close(epoll_fd_);
}

}  // namespace

int SocketOps::accept(int listen_fd) noexcept {
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
}

ssize_t SocketOps::recv(int fd, char* buf, std::size_t len) noexcept {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketOps::send(int fd, const char* buf, std::size_t len) noexcept {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

ssize_t SocketOps::sendv(int fd, const struct iovec* iov,
                         int iovcnt) noexcept {
  // Mock-friendly default: one segment through the (possibly
  // overridden) send() — a legal short write the loop recovers from.
  // The real implementation below gathers everything.
  for (int i = 0; i < iovcnt; ++i) {
    if (iov[i].iov_len == 0) continue;
    return send(fd, static_cast<const char*>(iov[i].iov_base),
                iov[i].iov_len);
  }
  return 0;
}

namespace {

/// The kernel-backed SocketOps: sendv is a true scatter-gather
/// sendmsg, everything else inherits the real syscalls.
class RealSocketOps final : public SocketOps {
 public:
  [[nodiscard]] ssize_t sendv(int fd, const struct iovec* iov,
                              int iovcnt) noexcept override {
    msghdr msg{};
    msg.msg_iov = const_cast<struct iovec*>(iov);
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
  }
};

}  // namespace

SocketOps& real_socket_ops() noexcept {
  static RealSocketOps ops;
  return ops;
}

TcpListener::TcpListener(Server& server, TcpOptions options)
    : server_(server), options_(std::move(options)) {}

TcpListener::~TcpListener() {
  close_listeners();
  drop_partitions();
}

void TcpListener::close_listeners() noexcept {
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
}

void TcpListener::drop_partitions() noexcept {
  for (const auto& p : partitions_) server_.remove_cache_partition(p.get());
  partitions_.clear();
}

int TcpListener::open_socket(std::uint16_t port, bool reuseport,
                             std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    if (error)
      *error = std::string("setsockopt(SO_REUSEPORT): ") +
               std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error) *error = "invalid bind address: " + options_.bind_address;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, options_.backlog) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (!set_nonblocking(fd)) {
    if (error) *error = std::string("fcntl: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool TcpListener::open(std::string* error) {
  // Re-open support without leaks: whatever a previous open created is
  // released first, successful or not.
  close_listeners();
  drop_partitions();
  port_ = 0;
  reuseport_ = false;

  shards_ = std::clamp(options_.shards, 1, kMaxShards);
  if (options_.max_connections > 0 &&
      static_cast<std::size_t>(shards_) > options_.max_connections)
    shards_ = static_cast<int>(options_.max_connections);

  const bool want_reuseport = options_.use_reuseport && shards_ > 1;
  int fd = open_socket(options_.port, want_reuseport, error);
  if (fd < 0 && want_reuseport) {
    // Kernel without SO_REUSEPORT: fall back to the acceptor-handoff
    // mode on a plain socket.
    fd = open_socket(options_.port, false, error);
  }
  if (fd < 0) return false;
  listen_fds_.push_back(fd);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0)
    port_ = ntohs(bound.sin_port);

  if (want_reuseport) {
    // Probe whether the option actually stuck (old kernels accept the
    // setsockopt but don't balance; SO_REUSEPORT has been reliable
    // since 3.9 — the getsockopt check covers the exotic cases).
    int set = 0;
    socklen_t len = sizeof set;
    reuseport_ = ::getsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &set, &len) == 0 &&
                 set != 0;
  }
  if (reuseport_) {
    for (int i = 1; i < shards_; ++i) {
      const int extra = open_socket(port_, true, error);
      if (extra < 0) {
        // Sibling bind failed (port raced away, limits): fall back to
        // handoff mode rather than failing a bindable configuration.
        while (listen_fds_.size() > 1) {
          ::close(listen_fds_.back());
          listen_fds_.pop_back();
        }
        reuseport_ = false;
        break;
      }
      listen_fds_.push_back(extra);
    }
  }

  // Per-shard response-cache partitions, each a slice of the server's
  // configured capacity. Generation scoping (entries remember the
  // online-parameter generation they were filled under) makes refit
  // invalidation work per-partition for free.
  const std::size_t cache_capacity = server_.options().cache_capacity;
  if (cache_capacity > 0) {
    const std::size_t per_shard = std::max<std::size_t>(
        1, cache_capacity / static_cast<std::size_t>(shards_));
    partitions_.reserve(static_cast<std::size_t>(shards_));
    for (int i = 0; i < shards_; ++i) {
      auto partition = std::make_shared<ShardedLruCache>(per_shard,
                                                         /*shards=*/4);
      server_.add_cache_partition(partition);
      partitions_.push_back(std::move(partition));
    }
  }
  return true;
}

void TcpListener::run(const std::atomic<bool>& stop) {
  if (listen_fds_.empty()) return;
  server_.metrics().set_transport_shards(static_cast<std::size_t>(shards_));

  // The connection cap is divided across shards, remainder first — so
  // the sum is exactly max_connections and shards=1 keeps the old
  // whole-cap semantics.
  const std::size_t n = static_cast<std::size_t>(shards_);
  std::vector<std::size_t> caps(n);
  for (std::size_t i = 0; i < n; ++i)
    caps[i] = options_.max_connections / n +
              (i < options_.max_connections % n ? 1 : 0);

  const bool handoff_mode = !reuseport_ && shards_ > 1;
  std::vector<std::unique_ptr<HandoffQueue>> handoff(n);
  std::vector<HandoffQueue*> targets;
  if (handoff_mode) {
    targets.assign(n, nullptr);
    for (std::size_t i = 1; i < n; ++i) {
      handoff[i] = std::make_unique<HandoffQueue>();
      handoff[i]->event_fd = ::eventfd(0, EFD_NONBLOCK);
      targets[i] = handoff[i].get();
    }
  }

  // Shard-thread pinning: shard i -> CPU i, applied by each loop thread
  // to itself (shard 0 pins the caller of run()). Requested but
  // impossible (fewer online CPUs than shards) degrades to a logged
  // no-op — a laptop running a 4-shard config should serve, not die.
  bool pin = options_.pin_shards;
  if (pin) {
    const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
    if (ncpu > 0 && ncpu < static_cast<long>(shards_)) {
      std::fprintf(stderr,
                   "archline-serve: --pin-shards ignored: %d shards but only "
                   "%ld online CPUs\n",
                   shards_, ncpu);
      pin = false;
    }
  }

  const auto run_shard = [&](int shard) {
    const std::size_t i = static_cast<std::size_t>(shard);
    if (pin) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<std::size_t>(shard), &set);
      if (const int rc =
              ::pthread_setaffinity_np(::pthread_self(), sizeof set, &set);
          rc != 0)
        std::fprintf(stderr,
                     "archline-serve: pinning shard %d to CPU %d failed: %s\n",
                     shard, shard, std::strerror(rc));
    }
    const int lfd = reuseport_ ? listen_fds_[i]
                               : (shard == 0 ? listen_fds_[0] : -1);
    ShardLoop loop(server_, options_, shard, shards_, lfd,
                   partitions_.empty() ? nullptr : partitions_[i], caps[i],
                   handoff_mode && shard > 0 ? handoff[i].get() : nullptr,
                   handoff_mode && shard == 0 ? targets
                                              : std::vector<HandoffQueue*>{});
    loop.run(stop);
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (int i = 1; i < shards_; ++i)
    threads.emplace_back(run_shard, i);
  run_shard(0);
  for (std::thread& t : threads) t.join();
  // Handoff eventfds outlive every shard (the acceptor may write to a
  // peer's fd right up to its own exit), so they close here, after all
  // joins.
  for (const auto& q : handoff)
    if (q && q->event_fd >= 0) ::close(q->event_fd);
}

}  // namespace archline::serve
