#include "serve/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

namespace archline::serve {

namespace {

/// Writes the whole buffer, looping over partial sends. Returns false
/// on a connection error.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpListener::TcpListener(Server& server, TcpOptions options)
    : server_(server), options_(std::move(options)) {}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool TcpListener::open(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error) *error = "invalid bind address: " + options_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    port_ = ntohs(bound.sin_port);
  return true;
}

void TcpListener::run(const std::atomic<bool>& stop) {
  // Only this thread touches `connections`; handlers never do.
  std::vector<std::thread> connections;

  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections.emplace_back(
        [this, fd, &stop] { serve_connection(fd, stop); });
  }

  for (std::thread& t : connections)
    if (t.joinable()) t.join();
}

void TcpListener::serve_connection(int fd, const std::atomic<bool>& stop) {
  // Response writes go through OrderedWriter so pipelined requests come
  // back in the order they were sent even though workers finish them
  // out of order. The sink runs under the writer's lock — one writer
  // per connection, so sends never interleave.
  OrderedWriter writer([fd](const std::string& body) {
    std::string framed;
    framed.reserve(body.size() + 1);
    framed += body;
    framed += '\n';
    send_all(fd, framed.data(), framed.size());
  });

  std::string buffer;
  char chunk[65536];
  bool open = true;
  while (open && !stop.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));

    // Guard against a peer that never sends a newline.
    if (buffer.size() > server_.options().limits.max_request_bytes * 2) {
      const std::uint64_t seq = writer.next_sequence();
      writer.complete(seq,
                      error_body("too_large", "request line never ended"));
      break;
    }

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty() || line == "\r") continue;
      const std::uint64_t seq = writer.next_sequence();
      const bool admitted = server_.submit(
          std::move(line), [&writer, seq](std::string&& body) {
            writer.complete(seq, std::move(body));
          });
      if (!admitted)
        writer.complete(seq, std::string(overloaded_body()));
    }
    buffer.erase(0, start);
  }
  // Flush everything already admitted before closing — this is what
  // makes shutdown graceful from the client's point of view.
  writer.drain();
  ::close(fd);
}

}  // namespace archline::serve
