#include "serve/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace archline::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// How long the loop keeps flushing pending responses to peers that
/// have stopped reading once a stop was requested, before force-closing
/// them. Bounds shutdown against misbehaving clients.
constexpr int kDrainGraceMs = 5000;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Worker threads finish responses out on their own schedule; this is
/// the hand-off back to the event loop. complete() under the writer's
/// lock pushes each connection's responses here in FIFO order, and the
/// eventfd wakes epoll_wait. After close() pushes are dropped — that is
/// what makes it safe for straggler callbacks (queue drain during
/// Server::shutdown) to outlive the loop.
struct CompletionChannel {
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  int event_fd = -1;
  bool closed = false;

  void push(std::uint64_t conn_id, const std::string& body) {
    std::lock_guard<std::mutex> lock(mutex);
    if (closed) return;
    ready.emplace_back(conn_id, body);
    const std::uint64_t one = 1;
    // Under the lock so close() cannot free the fd mid-write.
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd, &one, sizeof one);
  }

  void take(std::vector<std::pair<std::uint64_t, std::string>>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    out.swap(ready);
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
  }
};

/// Everything the loop knows about one socket. `submitted` counts
/// sequence numbers reserved on the writer; `written` counts responses
/// framed into `out`; the connection may close only when they agree and
/// `out` has drained.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::shared_ptr<OrderedWriter> writer;
  std::string in;   ///< residual partial line (no newline yet)
  std::string out;  ///< framed responses awaiting send
  std::uint64_t submitted = 0;
  std::uint64_t written = 0;
  /// No further reads: peer EOF, an oversized line, or server stop.
  bool half_closed = false;
  std::uint32_t interest = 0;  ///< current epoll event mask
  Clock::time_point last_activity;
};

}  // namespace

int SocketOps::accept(int listen_fd) noexcept {
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
}

ssize_t SocketOps::recv(int fd, char* buf, std::size_t len) noexcept {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketOps::send(int fd, const char* buf, std::size_t len) noexcept {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

SocketOps& real_socket_ops() noexcept {
  static SocketOps ops;
  return ops;
}

TcpListener::TcpListener(Server& server, TcpOptions options)
    : server_(server), options_(std::move(options)) {}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool TcpListener::open(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error) *error = "invalid bind address: " + options_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  if (!set_nonblocking(listen_fd_)) {
    if (error) *error = std::string("fcntl: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    port_ = ntohs(bound.sin_port);
  return true;
}

void TcpListener::run(const std::atomic<bool>& stop) {
  // epoll_event.data.u64 routing: 0 = listen socket, 1 = completion
  // eventfd, >= kFirstConnId = a connection.
  constexpr std::uint64_t kListenId = 0;
  constexpr std::uint64_t kWakeId = 1;
  constexpr std::uint64_t kFirstConnId = 2;

  const int epoll_fd = ::epoll_create1(0);
  if (epoll_fd < 0) return;
  auto channel = std::make_shared<CompletionChannel>();
  channel->event_fd = ::eventfd(0, EFD_NONBLOCK);
  if (channel->event_fd < 0) {
    ::close(epoll_fd);
    return;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, channel->event_fd, &ev);

  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_id = kFirstConnId;
  Metrics& metrics = server_.metrics();
  const std::size_t max_line = server_.options().limits.max_request_bytes;
  const sim::ClockSource& clock =
      options_.clock ? *options_.clock : sim::real_clock();
  SocketOps& ops =
      options_.socket_ops ? *options_.socket_ops : real_socket_ops();

  const auto update_interest = [&](Conn& c) {
    const std::uint32_t want =
        (c.half_closed ? 0u : EPOLLIN) | (c.out.empty() ? 0u : EPOLLOUT);
    if (want == c.interest) return;
    epoll_event mod{};
    mod.events = want;
    mod.data.u64 = c.id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &mod);
    c.interest = want;
  };

  const auto destroy = [&](std::uint64_t id, bool idle_timeout = false) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    // Counters first: a peer that observes the EOF must already see the
    // close reflected in a stats snapshot.
    metrics.on_connection_closed();
    if (idle_timeout) metrics.on_connection_idle_closed();
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    conns.erase(it);
  };

  // Sends as much of c.out as the socket accepts. Returns false when
  // the connection died (and was destroyed).
  const auto flush = [&](Conn& c) -> bool {
    while (!c.out.empty()) {
      const ssize_t n = ops.send(c.fd, c.out.data(), c.out.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        destroy(c.id);
        return false;
      }
      c.out.erase(0, static_cast<std::size_t>(n));
      c.last_activity = clock.now();
    }
    return true;
  };

  // Close once nothing can ever arrive for this connection again.
  // Returns false when the connection was closed.
  const auto maybe_close = [&](Conn& c) -> bool {
    if (c.half_closed && c.written == c.submitted && c.out.empty()) {
      destroy(c.id);
      return false;
    }
    return true;
  };

  const auto submit_line = [&](Conn& c, std::string line) {
    if (line.empty() || line == "\r") return;
    const std::uint64_t seq = c.writer->next_sequence();
    ++c.submitted;
    std::shared_ptr<OrderedWriter> writer = c.writer;
    const bool admitted = server_.submit(
        std::move(line), [writer, seq](std::string&& body) {
          writer->complete(seq, std::move(body));
        });
    if (!admitted)
      c.writer->complete(seq, std::string(overloaded_body()));
  };

  // Extracts complete lines FIRST, so a burst of small pipelined
  // requests is never mistaken for one oversized line; only the
  // residual partial line is bounded. On EOF the final un-terminated
  // line is a real request and gets a real reply.
  const auto process_input = [&](Conn& c, bool eof) {
    std::size_t start = 0;
    for (std::size_t nl = c.in.find('\n', start); nl != std::string::npos;
         nl = c.in.find('\n', start)) {
      std::string line = c.in.substr(start, nl - start);
      start = nl + 1;
      submit_line(c, std::move(line));
    }
    c.in.erase(0, start);
    if (eof) {
      if (!c.in.empty()) {
        std::string line = std::move(c.in);
        c.in.clear();
        submit_line(c, std::move(line));
      }
      c.half_closed = true;
    } else if (c.in.size() > max_line) {
      // A line this long can only ever be rejected; answer now and
      // stop reading rather than buffering without bound.
      const std::uint64_t seq = c.writer->next_sequence();
      ++c.submitted;
      c.writer->complete(
          seq, error_body("too_large", "request line never ended"));
      c.in.clear();
      c.half_closed = true;
    }
  };

  // Returns false when the connection was destroyed.
  const auto handle_read = [&](Conn& c) -> bool {
    char chunk[65536];
    const ssize_t n = ops.recv(c.fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        return true;
      destroy(c.id);
      return false;
    }
    c.last_activity = clock.now();
    if (n == 0) {
      process_input(c, /*eof=*/true);
    } else {
      c.in.append(chunk, static_cast<std::size_t>(n));
      process_input(c, /*eof=*/false);
    }
    if (!maybe_close(c)) return false;
    update_interest(c);
    return true;
  };

  const auto handle_accepts = [&] {
    for (int burst = 0; burst < 256; ++burst) {
      const int fd = ops.accept(listen_fd_);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // EAGAIN or a real error; either way, wait for epoll
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (conns.size() >= options_.max_connections) {
        // Admission control at the door: a canned overloaded reply
        // (best effort — the socket buffer of a fresh connection
        // always has room for one line) and an immediate close.
        metrics.on_connection_rejected();
        const std::string reply = overloaded_body() + "\n";
        [[maybe_unused]] const ssize_t n =
            ops.send(fd, reply.data(), reply.size());
        ::close(fd);
        continue;
      }
      const std::uint64_t id = next_id++;
      Conn& c = conns[id];
      c.fd = fd;
      c.id = id;
      c.last_activity = clock.now();
      c.interest = EPOLLIN;
      c.writer = std::make_shared<OrderedWriter>(
          [channel, id](const std::string& body) {
            channel->push(id, body);
          });
      epoll_event add{};
      add.events = EPOLLIN;
      add.data.u64 = id;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &add);
      metrics.on_connection_opened();
    }
  };

  std::vector<std::pair<std::uint64_t, std::string>> ready;
  const auto drain_completions = [&] {
    std::uint64_t counter = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(channel->event_fd, &counter, sizeof counter);
    ready.clear();
    channel->take(ready);
    // Frame everything first, then flush each touched connection once.
    std::vector<std::uint64_t> touched;
    for (auto& [id, body] : ready) {
      auto it = conns.find(id);
      if (it == conns.end()) continue;  // connection already gone
      Conn& c = it->second;
      c.out += body;
      c.out += '\n';
      ++c.written;
      if (touched.empty() || touched.back() != id) touched.push_back(id);
    }
    for (const std::uint64_t id : touched) {
      auto it = conns.find(id);
      if (it == conns.end()) continue;
      Conn& c = it->second;
      if (!flush(c)) continue;
      if (!maybe_close(c)) continue;
      update_interest(c);
    }
  };

  bool stopping = false;
  Clock::time_point stop_at{};
  std::array<epoll_event, 64> events;

  while (true) {
    if (!stopping && stop.load(std::memory_order_acquire)) {
      // Stop accepting, stop reading; keep looping until every
      // admitted request has been answered and flushed.
      stopping = true;
      stop_at = clock.now();
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      std::vector<std::uint64_t> ids;
      ids.reserve(conns.size());
      for (auto& [id, c] : conns) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        auto it = conns.find(id);
        if (it == conns.end()) continue;
        it->second.half_closed = true;
        if (!maybe_close(it->second)) continue;
        update_interest(it->second);
      }
    }
    if (stopping && conns.empty()) break;
    if (stopping && clock.now() - stop_at >
                        std::chrono::milliseconds(kDrainGraceMs)) {
      // Peers that stopped reading do not get to hold shutdown hostage.
      std::vector<std::uint64_t> ids;
      ids.reserve(conns.size());
      for (auto& [id, c] : conns) ids.push_back(id);
      for (const std::uint64_t id : ids) destroy(id);
      break;
    }

    const int n_events =
        ::epoll_wait(epoll_fd, events.data(),
                     static_cast<int>(events.size()),
                     options_.poll_interval_ms);
    if (n_events < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (int i = 0; i < n_events; ++i) {
      const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t flags =
          events[static_cast<std::size_t>(i)].events;
      if (id == kListenId) {
        if (!stopping) handle_accepts();
        continue;
      }
      if (id == kWakeId) {
        drain_completions();
        continue;
      }
      auto it = conns.find(id);
      if (it == conns.end()) continue;  // destroyed earlier this batch
      Conn& c = it->second;
      if (flags & (EPOLLHUP | EPOLLERR)) {
        destroy(id);
        continue;
      }
      if ((flags & EPOLLIN) && !c.half_closed) {
        if (!handle_read(c)) continue;
      }
      if (flags & EPOLLOUT) {
        if (!flush(c)) continue;
        if (!maybe_close(c)) continue;
        update_interest(c);
      }
    }

    // Idle sweep: connections with no traffic and nothing in flight for
    // idle_timeout_ms are closed. Ones with pending responses are
    // exempt — they are "busy", just waiting on workers or the socket.
    if (options_.idle_timeout_ms > 0) {
      const auto now = clock.now();
      const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
      std::vector<std::uint64_t> expired;
      for (auto& [id, c] : conns) {
        const bool pending = c.submitted != c.written || !c.out.empty();
        if (!pending && now - c.last_activity > limit) expired.push_back(id);
      }
      for (const std::uint64_t id : expired)
        destroy(id, /*idle_timeout=*/true);
    }
  }

  // Straggler callbacks (e.g. the queue drain inside Server::shutdown)
  // may still fire after this point; mark the channel closed so their
  // pushes are dropped instead of touching freed fds.
  channel->close();
  ::close(channel->event_fd);
  channel->event_fd = -1;
  for (auto& [id, c] : conns) ::close(c.fd);
  ::close(epoll_fd);
}

}  // namespace archline::serve
