// The original protocol surface as registry endpoints: predict,
// crossover, scenario, fit, platforms, stats. Handlers produce replies
// byte-identical to the pre-registry dispatcher (pinned by
// tests/test_serve_golden.cpp); only the plumbing moved here.
//
// Classes: everything closed-form is Light; "fit" runs Nelder-Mead +
// Levenberg-Marquardt over inline observations (§V) and is the
// archetypal Heavy request.

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.hpp"
#include "core/machine_params.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "fit/model_fit.hpp"
#include "fit/online/snapshot.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "serve/endpoint_util.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

namespace {

Json do_predict(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  std::string_view name;
  const core::MachineParams m = resolve_machine(ctx, name);
  const core::Workload w = resolve_workload(req);
  Json out = begin_reply(ctx.endpoint, req);
  out.set("platform", Json::view(name));
  out.set("flops", w.flops);
  out.set("bytes", w.bytes);
  add_prediction(out, m, w);
  return out;
}

Json do_crossover(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  const std::string_view name_a = require_string(req, "a");
  const std::string_view name_b = require_string(req, "b");
  const core::Precision prec = parse_precision(req);
  // platform_machine raises unknown_platform / unsupported itself and
  // overlays published online estimates (SP only).
  const core::MachineParams a = platform_machine(ctx, name_a, prec);
  const core::MachineParams b = platform_machine(ctx, name_b, prec);
  const core::Metric metric = parse_metric(req);
  const double lo = req.number_or("lo", 1.0 / 64.0);
  const double hi = req.number_or("hi", 512.0);
  if (!(lo > 0.0) || !(hi > lo)) bad("need 0 < lo < hi");
  const double x = core::crossover_intensity(a, b, metric, lo, hi);
  Json out = begin_reply(ctx.endpoint, req);
  out.set("a", Json::view(name_a));
  out.set("b", Json::view(name_b));
  out.set("metric", Json::view(req.string_view_or("metric", "performance")));
  out.set("found", x > 0.0);
  if (x > 0.0) {
    out.set("intensity", x);
    out.set("value_a", core::metric_value(a, metric, x));
    out.set("value_b", core::metric_value(b, metric, x));
  }
  return out;
}

Json do_scenario(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  const std::string_view kind = require_string(req, "kind");
  Json out = begin_reply(ctx.endpoint, req);
  out.set("kind", Json::view(kind));
  if (kind == "throttle") {
    std::string_view name;
    const core::MachineParams m = resolve_machine(ctx, name);
    const double intensity = require_number(req, "intensity");
    const double cap_watts = require_number(req, "watts");
    if (!(intensity > 0.0)) bad("\"intensity\" must be positive");
    if (!(cap_watts > 0.0)) bad("\"watts\" must be positive");
    const core::ThrottleRequirement r =
        core::throttle_requirement(m, intensity, cap_watts);
    out.set("platform", Json::view(name));
    out.set("intensity", r.intensity);
    out.set("cap_watts", r.cap_watts);
    out.set("slowdown", r.slowdown);
    out.set("flop_rate_fraction", r.flop_rate_fraction);
    out.set("mem_rate_fraction", r.mem_rate_fraction);
    out.set("regime", core::regime_name(r.regime));
    return out;
  }
  if (kind == "aggregate") {
    std::string_view name;
    const core::MachineParams block = resolve_machine(ctx, name);
    const double count = require_number(req, "count");
    if (count < 1.0 || count != std::floor(count) || count > 1e6)
      bad("\"count\" must be an integer in [1, 1e6]");
    const core::MachineParams node =
        core::aggregate(block, static_cast<int>(count));
    const core::Workload w = resolve_workload(req);
    out.set("platform", Json::view(name));
    out.set("count", count);
    out.set("node_max_power_w", node.max_power());
    add_prediction(out, node, w);
    return out;
  }
  if (kind == "power_bound") {
    const std::string_view big_name = require_string(req, "big");
    const std::string_view small_name = require_string(req, "small");
    const core::MachineParams big =
        platform_machine(ctx, big_name, core::Precision::Single);
    const core::MachineParams small =
        platform_machine(ctx, small_name, core::Precision::Single);
    const double bound = require_number(req, "watts");
    const double intensity = require_number(req, "intensity");
    if (!(bound > 0.0)) bad("\"watts\" must be positive");
    if (!(intensity > 0.0)) bad("\"intensity\" must be positive");
    core::PowerBoundComparison c;
    try {
      c = core::power_bound_comparison(big, small, bound, intensity);
    } catch (const std::exception& e) {
      bad(e.what());
    }
    out.set("big", Json::view(big_name));
    out.set("small", Json::view(small_name));
    out.set("bound_watts", c.bound_watts);
    out.set("intensity", intensity);
    out.set("big_cap_divisor", c.big_cap_divisor);
    out.set("big_performance_flops", c.big_performance);
    out.set("big_slowdown", c.big_slowdown);
    out.set("small_count", c.small_count);
    out.set("small_performance_flops", c.small_performance);
    out.set("speedup", c.speedup);
    return out;
  }
  bad("unknown scenario kind \"" + std::string(kind) +
      "\" (expected \"throttle\", \"aggregate\", or \"power_bound\")");
}

Json do_fit(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  const Json* obs_json = req.find("observations");
  if (!obs_json || !obs_json->is_array())
    bad("\"observations\" must be an array");
  const Json::Array& rows = obs_json->as_array();
  if (rows.size() > ctx.limits.max_fit_observations)
    bad("too many observations (max " +
        std::to_string(ctx.limits.max_fit_observations) + ")");
  // "seed_online": true additionally feeds the tuples into the named
  // platform's online window (the streaming `observe` path), so a bulk
  // calibration upload primes the live model in one request. Validated
  // up front: the request must name a platform and the server must run
  // an online store.
  const bool seed_online = req.bool_or("seed_online", false);
  std::string_view seed_platform;
  if (seed_online) {
    if (!ctx.online)
      throw RequestError{"unsupported",
                         "online fitting is not enabled on this server"};
    seed_platform = require_string(req, "platform");
    lookup_platform(seed_platform);  // raises unknown_platform on a miss
  }
  std::vector<microbench::Observation> obs;
  obs.reserve(rows.size());
  std::vector<fit::online::Sample> samples;
  if (seed_online) samples.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const fit::online::Sample s = parse_observation_tuple(rows[i], i);
    if (seed_online) samples.push_back(s);
    microbench::Observation o;
    o.kernel.label = "serve obs " + std::to_string(i);
    o.kernel.flops = s.flops;
    o.kernel.bytes = s.bytes;
    o.seconds = s.seconds;
    o.joules = s.joules;
    o.watts = s.joules / s.seconds;
    obs.push_back(std::move(o));
  }
  fit::FitOptions opt;
  opt.kind = req.bool_or("uncapped", false) ? fit::ModelKind::Uncapped
                                            : fit::ModelKind::Capped;
  opt.idle_watts_hint = req.number_or("idle_watts", 0.0);
  opt.max_watts_hint = req.number_or("max_watts", 0.0);
  fit::FitResult result;
  try {
    result = fit::fit_observations(obs, opt);
  } catch (const std::exception& e) {
    throw RequestError{"fit_failed", e.what()};
  }
  Json out = begin_reply(ctx.endpoint, req);
  Json machine = Json::object();
  machine.set("tau_flop", result.machine.tau_flop);
  machine.set("eps_flop", result.machine.eps_flop);
  machine.set("tau_mem", result.machine.tau_mem);
  machine.set("eps_mem", result.machine.eps_mem);
  machine.set("pi1", result.machine.pi1);
  // kUncapped serializes as null (format_number maps non-finite to null).
  machine.set("delta_pi", result.machine.delta_pi);
  out.set("machine", std::move(machine));
  out.set("observations", result.observations);
  out.set("rss", result.rss);
  out.set("r_squared_perf", result.r_squared_perf);
  out.set("converged", result.converged);
  // Seeding happens only after a successful fit: a rejected batch never
  // contaminates the online window. The reply records what was seeded
  // so clients can confirm the side effect took place.
  if (seed_online) {
    ctx.online->observe(seed_platform, samples);
    out.set("seeded_platform", Json::view(seed_platform));
    out.set("seeded", static_cast<double>(samples.size()));
  }
  return out;
}

/// Cache exemption for "fit": a seeding request mutates the online
/// store, so its reply must never be served from (or stored into) the
/// response cache — a cached replay would drop the side effect.
bool fit_cache_exempt(const Json& req) noexcept {
  return req.bool_or("seed_online", false);
}

Json do_platforms(const EndpointContext& ctx) {
  Json out = begin_reply(ctx.endpoint, ctx.req);
  Json list = Json::array();
  for (const platforms::PlatformSpec& spec : platforms::all_platforms()) {
    Json row = Json::object();
    row.set("name", spec.name);
    row.set("class", platforms::to_string(spec.device_class));
    row.set("peak_sp_flops", spec.peak_sp_flops);
    row.set("peak_bandwidth", spec.peak_bandwidth);
    row.set("pi1_w", spec.pi1);
    row.set("delta_pi_w", spec.delta_pi);
    row.set("idle_w", spec.idle_power);
    row.set("has_dp", spec.has_double());
    Json ops = Json::array();
    for (const core::OperatingPoint& p : spec.operating_points.points) {
      Json op = Json::object();
      op.set("label", p.label);
      op.set("freq_scale", p.freq_scale);
      op.set("energy_scale", p.energy_scale);
      op.set("pi1_w", p.pi1_watts < 0.0 ? spec.pi1 : p.pi1_watts);
      op.set("idle_w", p.idle_watts);
      ops.push_back(std::move(op));
    }
    row.set("operating_points", std::move(ops));
    list.push_back(std::move(row));
  }
  out.set("platforms", std::move(list));
  return out;
}

Json do_stats(const EndpointContext&) {
  // The protocol layer has no metrics; the descriptor's server_evaluated
  // flag tells serve::Server to substitute the live snapshot. Returning
  // an empty object keeps the handler contract uniform (never null).
  return Json::object();
}

}  // namespace

void register_core_endpoints(Registry& r) {
  // Id order is frozen: these six keep their pre-registry RequestType
  // ordinals, which ride in cache entry tags and metrics slots.
  // model_scoped: these replies resolve named platforms against the
  // published online estimates, so cached copies expire with the
  // parameter generation. "fit" and "platforms" stay generation-free —
  // one is a pure function of inline observations, the other lists the
  // static Table I specs.
  r.add({.name = "predict",
         .klass = RequestClass::Light,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_predict});
  r.add({.name = "crossover",
         .klass = RequestClass::Light,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_crossover});
  r.add({.name = "scenario",
         .klass = RequestClass::Light,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_scenario});
  r.add({.name = "fit",
         .klass = RequestClass::Heavy,
         .cacheable = true,
         .handler = &do_fit,
         .cache_exempt = &fit_cache_exempt});
  r.add({.name = "platforms",
         .klass = RequestClass::Light,
         .cacheable = true,
         .handler = &do_platforms});
  r.add({.name = "stats",
         .klass = RequestClass::Light,
         .cacheable = false,
         .server_evaluated = true,
         .handler = &do_stats});
}

}  // namespace archline::serve
