#pragma once
// A tiny from-scratch JSON value type, parser, and serializer for the
// serving wire protocol — no third-party dependencies.
//
// Scope is deliberately the protocol's needs, not full generality:
//   * parse() accepts strict JSON (RFC 8259) with a recursion-depth limit
//     and rejects trailing garbage, so a request line is either one
//     complete document or an error;
//   * parse_in_situ() accepts the same grammar but stores escape-free
//     string payloads as views into the caller's buffer — the
//     low-allocation mode the request hot path uses (see below);
//   * dump() is deterministic: objects serialize in insertion order,
//     numbers print via a fixed shortest-round-trip format, and no
//     whitespace is emitted. Byte-identical requests therefore produce
//     byte-identical responses, which the response cache and the
//     loadgen's determinism check both rely on.
//
// Allocation discipline (the request path parses one document per
// miss, so this is hot):
//   * object/array storage is reserved ahead of the first member;
//   * number parsing never touches the heap;
//   * strings without escape sequences are appended in one bulk copy —
//     or, under parse_in_situ, not copied at all (the node references
//     the input buffer; see as_string_view / Json::view lifetime
//     rules). Object KEYS are always owned std::strings — protocol
//     keys are short enough for SSO, so this costs no heap either.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace archline::serve {

/// Thrown by Json::parse on malformed input; `position` is the byte
/// offset at which parsing failed.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t position)
      : std::runtime_error(message), position_(position) {}
  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_ = 0;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object, Raw };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs: preserves author order on dump()
  /// (deterministic bytes) and keeps lookup simple — protocol objects
  /// have < 16 keys, so linear scan beats hashing.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : type_(Type::Null) {}
  Json(std::nullptr_t) noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}
  Json(double v) noexcept : type_(Type::Number), num_(v) {}
  Json(int v) noexcept : type_(Type::Number), num_(v) {}
  Json(std::int64_t v) noexcept : type_(Type::Number),
                                  num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) noexcept : type_(Type::Number),
                                   num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  /// A string node that REFERENCES external bytes without copying them.
  /// The caller must keep the referenced buffer alive and unmoved for
  /// the node's (and any copy's) lifetime. This is the building block
  /// of parse_in_situ; it is also safe for string literals. Such nodes
  /// answer as_string_view() but not as_string().
  [[nodiscard]] static Json view(std::string_view s) noexcept {
    Json j;
    j.type_ = Type::String;
    j.view_ = s;
    j.owned_ = false;
    return j;
  }

  /// A PRE-SERIALIZED node: dump() appends the payload verbatim, no
  /// quoting or escaping. The caller guarantees the payload is one
  /// complete, valid JSON value — this is the batch endpoints' escape
  /// hatch for rendering large result arrays without building a node
  /// per element. The parser never produces Raw nodes; equality
  /// compares the payload bytes.
  [[nodiscard]] static Json raw(std::string payload) {
    Json j;
    j.type_ = Type::Raw;
    j.str_ = std::move(payload);
    return j;
  }

  /// Steals a Raw node's payload (the node keeps type Raw with an empty
  /// payload). This lets the protocol layer move a handler-rendered
  /// reply body out instead of re-copying it through dump() — the
  /// zero-copy exit for raw() full-reply handlers. Throws JsonError on
  /// any other node type.
  [[nodiscard]] std::string take_raw();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }
  [[nodiscard]] bool is_raw() const noexcept { return type_ == Type::Raw; }

  // Checked accessors; throw JsonError(position 0) on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// Owned strings only — throws JsonError for Json::view /
  /// parse_in_situ nodes (their payload has no std::string to
  /// reference). Prefer as_string_view(), which works for both.
  [[nodiscard]] const std::string& as_string() const;
  /// The string payload, owned or viewed. For view nodes the result
  /// aliases the external buffer; for owned nodes it aliases this node.
  [[nodiscard]] std::string_view as_string_view() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // ---- Object helpers -----------------------------------------------

  /// Pointer to the value at `key`, or nullptr if absent / not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Appends (object) or overwrites (existing key) a member. The value
  /// keeps its insertion position on overwrite. Only valid on objects.
  void set(std::string_view key, Json value);

  /// Appends to an array. Only valid on arrays.
  void push_back(Json value);

  /// Reserves member storage ahead of insertion (arrays and objects
  /// only) — the parser uses this so small documents cost one container
  /// allocation, not a growth series.
  void reserve(std::size_t n);

  // Typed lookups with defaults; throw JsonError if present but the
  // wrong type.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
  /// Allocation-free string_or: the result views either the member's
  /// payload (valid while this document — and, for in-situ parses, the
  /// input buffer — stays alive) or `fallback` itself. The request hot
  /// path uses this for enum-ish fields (precision, level, metric).
  [[nodiscard]] std::string_view string_view_or(std::string_view key,
                                                std::string_view fallback)
      const;

  bool operator==(const Json& other) const noexcept;

  // ---- Wire format --------------------------------------------------

  /// Parses one complete JSON document; trailing non-whitespace is an
  /// error. `max_depth` bounds nesting of arrays/objects. Every string
  /// payload is owned — the result is independent of `text`.
  [[nodiscard]] static Json parse(std::string_view text, int max_depth = 64);

  /// Low-allocation parse: identical grammar and error behavior, but
  /// escape-free string VALUES become views into `text` (keys and
  /// escaped strings stay owned). The result — and any copy of it or of
  /// its members — is only valid while `text`'s bytes stay alive and
  /// unmoved. The protocol layer uses this for request lines, which
  /// outlive the parse by construction.
  [[nodiscard]] static Json parse_in_situ(std::string_view text,
                                          int max_depth = 64);

  /// Compact deterministic serialization (no whitespace, insertion-order
  /// objects, fixed number format).
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  /// The serializer's number format, exposed for protocol code that
  /// formats values outside a Json tree: shortest decimal string that
  /// round-trips the double ("1e9" style exponents, "Infinity"/"NaN"
  /// never emitted — non-finite values serialize as null).
  [[nodiscard]] static std::string format_number(double v);

  /// Appends format_number(v)'s exact bytes to `out` without the
  /// temporary string — the hot-path form used by dump() itself and by
  /// handlers that serialize numbers directly (predict_batch rows).
  static void append_number(std::string& out, double v);

  /// format_number(v)'s exact bytes written straight into `buf` (which
  /// must hold >= 40 bytes); returns the byte count. The zero-copy form
  /// for handlers that assemble whole rows in a stack buffer before one
  /// bulk append (predict_batch).
  static std::size_t render_number(char* buf, double v);

 private:
  Type type_;
  bool bool_ = false;
  bool owned_ = true;  ///< String payload lives in str_ (else view_)
  double num_ = 0.0;
  std::string str_;
  std::string_view view_;
  Array arr_;
  Object obj_;
};

}  // namespace archline::serve
