#pragma once
// A tiny from-scratch JSON value type, parser, and serializer for the
// serving wire protocol — no third-party dependencies.
//
// Scope is deliberately the protocol's needs, not full generality:
//   * parse() accepts strict JSON (RFC 8259) with a recursion-depth limit
//     and rejects trailing garbage, so a request line is either one
//     complete document or an error;
//   * dump() is deterministic: objects serialize in insertion order,
//     numbers print via a fixed shortest-round-trip format, and no
//     whitespace is emitted. Byte-identical requests therefore produce
//     byte-identical responses, which the response cache and the
//     loadgen's determinism check both rely on.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace archline::serve {

/// Thrown by Json::parse on malformed input; `position` is the byte
/// offset at which parsing failed.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t position)
      : std::runtime_error(message), position_(position) {}
  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_ = 0;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs: preserves author order on dump()
  /// (deterministic bytes) and keeps lookup simple — protocol objects
  /// have < 16 keys, so linear scan beats hashing.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : type_(Type::Null) {}
  Json(std::nullptr_t) noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}
  Json(double v) noexcept : type_(Type::Number), num_(v) {}
  Json(int v) noexcept : type_(Type::Number), num_(v) {}
  Json(std::int64_t v) noexcept : type_(Type::Number),
                                  num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) noexcept : type_(Type::Number),
                                   num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  // Checked accessors; throw JsonError(position 0) on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // ---- Object helpers -----------------------------------------------

  /// Pointer to the value at `key`, or nullptr if absent / not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Appends (object) or overwrites (existing key) a member. The value
  /// keeps its insertion position on overwrite. Only valid on objects.
  void set(std::string_view key, Json value);

  /// Appends to an array. Only valid on arrays.
  void push_back(Json value);

  // Typed lookups with defaults; throw JsonError if present but the
  // wrong type.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  bool operator==(const Json& other) const noexcept;

  // ---- Wire format --------------------------------------------------

  /// Parses one complete JSON document; trailing non-whitespace is an
  /// error. `max_depth` bounds nesting of arrays/objects.
  [[nodiscard]] static Json parse(std::string_view text, int max_depth = 64);

  /// Compact deterministic serialization (no whitespace, insertion-order
  /// objects, fixed number format).
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  /// The serializer's number format, exposed for protocol code that
  /// formats values outside a Json tree: shortest decimal string that
  /// round-trips the double ("1e9" style exponents, "Infinity"/"NaN"
  /// never emitted — non-finite values serialize as null).
  [[nodiscard]] static std::string format_number(double v);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace archline::serve
