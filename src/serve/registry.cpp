#include "serve/registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace archline::serve {

const char* request_class_name(RequestClass c) noexcept {
  switch (c) {
    case RequestClass::Light: return "light";
    case RequestClass::Heavy: return "heavy";
  }
  return "?";
}

void Registry::add(Endpoint endpoint) {
  // Both failure modes are programming errors in a registrar, not
  // runtime input: fail loudly at first use instead of serving a
  // half-registered protocol.
  if (count_ >= kMaxEndpoints) {
    std::fprintf(stderr, "serve::Registry: endpoint limit (%zu) exceeded\n",
                 kMaxEndpoints);
    std::abort();
  }
  if (find(endpoint.name) != nullptr || endpoint.handler == nullptr) {
    std::fprintf(stderr, "serve::Registry: bad registration for \"%.*s\"\n",
                 static_cast<int>(endpoint.name.size()), endpoint.name.data());
    std::abort();
  }
  endpoint.id = static_cast<std::uint8_t>(count_);
  endpoints_[count_++] = endpoint;
}

const Registry& Registry::instance() {
  // Module registrars run exactly once, in a fixed order: ids are part
  // of the cache-tag / metrics-slot contract. Calling them explicitly
  // (instead of relying on static initializers in the endpoint TUs)
  // survives static-library dead-stripping.
  static const Registry registry = [] {
    Registry r;
    register_core_endpoints(r);
    register_analysis_endpoints(r);
    register_online_endpoints(r);
    register_batch_endpoints(r);
    register_policy_endpoints(r);
    return r;
  }();
  return registry;
}

const Endpoint* Registry::find(std::string_view name) const noexcept {
  // Linear scan: the table is tiny (< kMaxEndpoints) and names are
  // short, so this beats hashing — same reasoning as Json::Object.
  for (std::size_t i = 0; i < count_; ++i)
    if (endpoints_[i].name == name) return &endpoints_[i];
  return nullptr;
}

const Endpoint* Registry::by_id(std::uint8_t id) const noexcept {
  return id < count_ ? &endpoints_[id] : nullptr;
}

RequestClass classify_line(std::string_view line) noexcept {
  // Find `"type"` followed (after optional whitespace) by `:` and a
  // string value — without parsing the document. JSON string escaping
  // cannot produce the byte sequence `"type"` inside a string value
  // (the interior quotes would be backslash-escaped on the wire), so a
  // match inside a VALUE like {"metric":"type"} is ruled out by
  // requiring the colon; the loop skips such decoys. Worst case a
  // pathological line is misclassified Light — the dispatcher's real
  // parse still produces the correct reply bytes.
  static constexpr std::string_view kNeedle = "\"type\"";
  std::size_t pos = 0;
  while ((pos = line.find(kNeedle, pos)) != std::string_view::npos) {
    std::size_t i = pos + kNeedle.size();
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r' ||
            line[i] == '\n'))
      ++i;
    if (i >= line.size() || line[i] != ':') {
      pos += kNeedle.size();
      continue;
    }
    ++i;
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r' ||
            line[i] == '\n'))
      ++i;
    if (i >= line.size() || line[i] != '"') return RequestClass::Light;
    const std::size_t begin = ++i;
    // Endpoint names never contain escapes; a backslash or a missing
    // closing quote means "not one of ours" -> Light.
    while (i < line.size() && line[i] != '"' && line[i] != '\\') ++i;
    if (i >= line.size() || line[i] != '"') return RequestClass::Light;
    const Endpoint* ep =
        Registry::instance().find(line.substr(begin, i - begin));
    if (ep == nullptr) return RequestClass::Light;
    return ep->classify ? ep->classify(line) : ep->klass;
  }
  return RequestClass::Light;
}

}  // namespace archline::serve
