// Analysis endpoints added ON TOP of the registry — the proof that the
// dispatcher never changes: protocol.cpp / server.cpp / metrics.cpp
// are untouched by this file.
//
//   sensitivity    — parameter elasticities (core/sensitivity.hpp):
//                    d log(metric) / d log(param) for all six machine
//                    constants at one intensity, plus the dominant one.
//                    Closed-form differences -> Light.
//   scenario_sweep — batched core::scenarios::throttle_sweep over an
//                    intensities x cap_divisors grid (the raw material
//                    of the paper's Figs. 6/7). Up to thousands of model
//                    evaluations per request -> Heavy.

#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "core/sensitivity.hpp"
#include "serve/endpoint_util.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

namespace {

Json do_sensitivity(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  std::string_view name;
  const core::MachineParams m = resolve_machine(ctx, name);
  const core::Metric metric = parse_metric(req);
  const double intensity = require_number(req, "intensity");
  if (!(intensity > 0.0)) bad("\"intensity\" must be a positive number");
  const core::SensitivityProfile profile =
      core::sensitivity_profile(m, metric, intensity);
  Json out = begin_reply(ctx.endpoint, req);
  out.set("platform", Json::view(name));
  out.set("metric", Json::view(req.string_view_or("metric", "performance")));
  out.set("intensity", intensity);
  Json elasticities = Json::object();
  for (const core::Param p : core::kAllParams)
    elasticities.set(core::to_string(p), profile[p]);
  out.set("elasticities", std::move(elasticities));
  out.set("dominant", core::to_string(profile.dominant()));
  return out;
}

/// Reads an optional array of numbers, validating each with `check`
/// (returns false -> the error in `requirement`). Falls back to
/// `fallback` when absent.
std::vector<double> number_grid(const Json& req, std::string_view key,
                                std::vector<double> fallback,
                                bool (*check)(double),
                                const char* requirement) {
  const Json* v = req.find(key);
  if (!v) return fallback;
  if (!v->is_array()) bad("\"" + std::string(key) + "\" must be an array");
  const Json::Array& rows = v->as_array();
  if (rows.empty()) bad("\"" + std::string(key) + "\" must not be empty");
  std::vector<double> grid;
  grid.reserve(rows.size());
  for (const Json& row : rows) {
    if (!row.is_number() || !check(row.as_number()))
      bad("every \"" + std::string(key) + "\" entry must be " + requirement);
    grid.push_back(row.as_number());
  }
  return grid;
}

Json do_scenario_sweep(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  std::string_view name;
  const core::MachineParams m = resolve_machine(ctx, name);
  // Default grids mirror the paper's figures: intensities 1/16..512 on
  // a log2 grid, divisors 1..8.
  std::vector<double> intensities =
      number_grid(req, "intensities",
                  {0.0625, 0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128,
                   256, 512},
                  [](double x) { return x > 0.0; }, "a positive number");
  std::vector<double> divisors = number_grid(
      req, "cap_divisors", {1, 2, 4, 8}, [](double x) { return x >= 1.0; },
      "a number >= 1");
  if (intensities.size() * divisors.size() > ctx.limits.max_sweep_points)
    throw RequestError{
        "too_large", "sweep too large (max " +
                         std::to_string(ctx.limits.max_sweep_points) +
                         " points)"};
  const std::vector<core::ThrottlePoint> sweep =
      core::throttle_sweep(m, intensities, divisors);
  Json out = begin_reply(ctx.endpoint, req);
  out.set("platform", Json::view(name));
  out.set("points", sweep.size());
  Json rows = Json::array();
  rows.reserve(sweep.size());
  for (const core::ThrottlePoint& p : sweep) {
    Json row = Json::object();
    row.set("intensity", p.intensity);
    row.set("cap_divisor", p.cap_divisor);
    row.set("power_w", p.power);
    row.set("performance_flops", p.performance);
    row.set("efficiency_flops_per_joule", p.efficiency);
    row.set("regime", core::regime_name(p.regime));
    rows.push_back(std::move(row));
  }
  out.set("sweep", std::move(rows));
  return out;
}

}  // namespace

void register_analysis_endpoints(Registry& r) {
  // Both resolve named platforms, so both are model_scoped (cached
  // replies expire with the online-parameter generation).
  r.add({.name = "sensitivity",
         .klass = RequestClass::Light,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_sensitivity});
  r.add({.name = "scenario_sweep",
         .klass = RequestClass::Heavy,
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_scenario_sweep});
}

}  // namespace archline::serve
