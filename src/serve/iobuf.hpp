#pragma once
// ConsumableBuffer — an append-at-back / consume-at-front byte buffer
// with an explicit read cursor and *lazy* compaction.
//
// The TCP event loop's per-connection buffers consume from the front:
// the parser eats framed lines off `in`, and flush() eats sent bytes
// off `out`. A std::string with erase(0, n) does that in O(bytes
// remaining) per call — O(n²) total against a drip-feeding sender or a
// slow reader taking the data a few bytes at a time. This buffer makes
// consume(n) a cursor bump (O(1)) and only memmoves the live tail when
// the dead prefix is both large in absolute terms (>= kCompactBytes)
// and at least half the allocation — so compaction cost is amortized
// O(1) per byte ever appended, and memory is still reclaimed when a
// buffer drains past the threshold.
//
// Single-threaded by design, like the connection state it lives in.

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace archline::serve {

class ConsumableBuffer {
 public:
  /// Dead-prefix size below which consume() never compacts. Large
  /// enough that per-line parsing of normal traffic never memmoves;
  /// small enough that a drained multi-megabyte burst gives its pages
  /// back promptly.
  static constexpr std::size_t kCompactBytes = 4096;

  void append(const char* data, std::size_t n) { buf_.append(data, n); }
  void append(std::string_view s) { buf_.append(s); }
  void push_back(char c) { buf_.push_back(c); }

  /// Donates an entire string (move) when the buffer is empty —
  /// otherwise appends. Lets callers hand over a framed body without a
  /// copy in the common drained state.
  void adopt_or_append(std::string&& s) {
    if (buf_.empty()) {
      buf_ = std::move(s);
      off_ = 0;
    } else {
      buf_.append(s);
    }
  }

  [[nodiscard]] const char* data() const noexcept {
    return buf_.data() + off_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return buf_.size() - off_;
  }
  [[nodiscard]] bool empty() const noexcept { return off_ == buf_.size(); }
  [[nodiscard]] std::string_view view() const noexcept {
    return std::string_view(buf_).substr(off_);
  }

  /// Bytes consumed but not yet compacted away (the dead prefix).
  /// Observable so tests can pin the laziness contract.
  [[nodiscard]] std::size_t dead_prefix() const noexcept { return off_; }

  /// Drops n bytes from the front. O(1) unless the compaction threshold
  /// is crossed; never invalidates more than it must — data() advances
  /// by exactly n when no compaction happens.
  void consume(std::size_t n) {
    off_ += n;
    if (off_ == buf_.size()) {
      // Fully drained: reset the cursor, keep the capacity.
      buf_.clear();
      off_ = 0;
      return;
    }
    if (off_ >= kCompactBytes && off_ * 2 >= buf_.size()) {
      buf_.erase(0, off_);
      off_ = 0;
    }
  }

  void clear() noexcept {
    buf_.clear();
    off_ = 0;
  }

 private:
  std::string buf_;
  std::size_t off_ = 0;  ///< read cursor: buf_[0, off_) is consumed
};

}  // namespace archline::serve
