#pragma once
// Shared building blocks for endpoint handlers: field extraction,
// machine/workload resolution, reply scaffolding, and the structured
// error type the dispatcher renders. Everything here is hot-path aware:
// lookups and comparisons use std::string_view into the in-situ-parsed
// request, and heap strings are built only when raising an error.

#include <string>
#include <string_view>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"
#include "fit/online/rls.hpp"
#include "platforms/spec.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

/// Thrown by handlers to surface a structured (code, message) pair; the
/// dispatcher renders it as {"ok":false,"error":code,"message":...}.
struct RequestError {
  std::string code;
  std::string message;
};

/// Shorthand for the common code.
[[noreturn]] void bad(std::string message);

[[nodiscard]] double require_number(const Json& req, std::string_view key);

/// The string payload is a view into the request document (in-situ
/// parse) — valid until the reply is serialized, allocation-free.
[[nodiscard]] std::string_view require_string(const Json& req,
                                              std::string_view key);

[[nodiscard]] core::Precision parse_precision(const Json& req);
[[nodiscard]] core::MemLevel parse_level(const Json& req);

/// Looks up a platform by name; a miss raises "unknown_platform" whose
/// message lists every available platform so clients can self-correct.
[[nodiscard]] const platforms::PlatformSpec& lookup_platform(
    std::string_view name);

/// The machine constants for a named platform at a precision: the
/// static Table I spec, overlaid with the online store's published
/// estimates when the context carries a store that has a snapshot for
/// this platform. The overlay applies to the base SP @ DRAM machine
/// only — DP and cache-level constants are not learned online and stay
/// static. Raises unknown_platform / unsupported like lookup_platform.
[[nodiscard]] core::MachineParams platform_machine(const EndpointContext& ctx,
                                                   std::string_view name,
                                                   core::Precision prec);

/// Resolves the machine a request addresses: either "platform" (a
/// Table I name, with optional precision / memory level) or an inline
/// "machine" parameter object, then optional cap modifiers
/// (uncapped / cap_divisor / cap_watts). Named SP @ DRAM platforms are
/// resolved through platform_machine, so published online estimates
/// take effect here. `name_out` receives a label for the response — a
/// view into the request (or a literal), so it stays valid until the
/// reply is serialized.
[[nodiscard]] core::MachineParams resolve_machine(const EndpointContext& ctx,
                                                  std::string_view& name_out);

/// Parses one (flops, bytes, seconds, joules) wire tuple — shared by
/// "fit" and "observe" so both validate identically: all four fields
/// required numbers, bytes/seconds/joules > 0, flops >= 0. `index`
/// labels the error message.
[[nodiscard]] fit::online::Sample parse_observation_tuple(const Json& row,
                                                          std::size_t index);

/// Workload from "flops" plus either "bytes" or "intensity".
[[nodiscard]] core::Workload resolve_workload(const Json& req);

[[nodiscard]] core::Metric parse_metric(const Json& req);

/// Starts a response object: ok, type (the endpoint's wire name),
/// echoed id (if the request had one).
[[nodiscard]] Json begin_reply(const Endpoint& endpoint, const Json& req);

/// The shared prediction block: intensity, time, energy, power,
/// performance, efficiency, regime.
void add_prediction(Json& out, const core::MachineParams& m,
                    const core::Workload& w);

}  // namespace archline::serve
