#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

namespace archline::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shards_(round_up_pow2(shards == 0 ? 1 : shards)) {
  shard_mask_ = shards_.size() - 1;
  per_shard_capacity_ =
      capacity_ == 0 ? 0
                     : std::max<std::size_t>(1, capacity_ / shards_.size());
}

std::uint64_t ShardedLruCache::hash_key(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::size_t ShardedLruCache::shard_of(std::string_view key) const noexcept {
  // FNV-1a's low bits avalanche well (the high bits don't); the
  // unordered_map inside each shard uses std::hash, so there is no
  // partition interaction to avoid.
  return static_cast<std::size_t>(hash_key(key) & shard_mask_);
}

std::optional<std::string> ShardedLruCache::get(std::string_view key) {
  if (per_shard_capacity_ == 0) return std::nullopt;
  Shard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  // Refresh recency: splice the node to the front (no reallocation, the
  // index's string_view keys stay valid).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ShardedLruCache::put(std::string_view key, std::string value) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value)});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  ++shard.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(std::string_view(victim.key));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ShardedLruCache::Stats ShardedLruCache::stats() const {
  Stats s;
  s.capacity = capacity_;
  s.shards = shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.insertions += shard.insertions;
    s.evictions += shard.evictions;
    s.entries += shard.lru.size();
  }
  return s;
}

void ShardedLruCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.lru.clear();
  }
}

}  // namespace archline::serve
