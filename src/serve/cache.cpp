#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

namespace archline::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shards_(round_up_pow2(shards == 0 ? 1 : shards)) {
  shard_mask_ = shards_.size() - 1;
  per_shard_capacity_ =
      capacity_ == 0 ? 0
                     : std::max<std::size_t>(1, capacity_ / shards_.size());
}

std::uint64_t ShardedLruCache::hash_key(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::size_t ShardedLruCache::shard_of(std::string_view key) const noexcept {
  // FNV-1a's low bits avalanche well (the high bits don't).
  return static_cast<std::size_t>(hash_key(key) & shard_mask_);
}

auto ShardedLruCache::find_in_shard(Shard& shard, std::uint64_t h,
                                    std::string_view key)
    -> std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator,
                               IdentityHash>::iterator {
  auto [lo, hi] = shard.index.equal_range(h);
  for (auto it = lo; it != hi; ++it)
    if (it->second->key == key) return it;
  return shard.index.end();
}

bool ShardedLruCache::get(std::string_view key,
                          std::uint64_t current_generation,
                          std::string& value_out, std::uint8_t& tag_out) {
  if (per_shard_capacity_ == 0) return false;
  const std::uint64_t h = hash_key(key);
  Shard& shard = shards_[static_cast<std::size_t>(h & shard_mask_)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = find_in_shard(shard, h, key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  if (it->second->generation_scoped &&
      it->second->generation != current_generation) {
    // The reply was computed under an older parameter generation: a
    // re-solve has published since. Erase eagerly — a stale body can
    // never become valid again, and keeping it would let an LRU-hot
    // stale entry pin out live ones.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.misses;
    ++shard.stale;
    return false;
  }
  ++shard.hits;
  // Refresh recency: splice the node to the front (no reallocation).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  // The single copy of the hit path; assign() reuses value_out's
  // capacity, so a steady-state caller allocates nothing here.
  value_out.assign(it->second->value);
  tag_out = it->second->tag;
  return true;
}

std::optional<std::string> ShardedLruCache::get(std::string_view key) {
  std::string value;
  std::uint8_t tag = 0;
  if (!get(key, value, tag)) return std::nullopt;
  return value;
}

void ShardedLruCache::put(std::string_view key, std::string_view value_view,
                          std::uint8_t tag, std::uint64_t generation,
                          bool generation_scoped) {
  if (per_shard_capacity_ == 0) return;  // before the copy: a disabled
                                         // cache must not tax the miss
                                         // path with a body-sized alloc
  std::string value(value_view);  // copied outside the shard lock
  const std::uint64_t h = hash_key(key);
  Shard& shard = shards_[static_cast<std::size_t>(h & shard_mask_)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = find_in_shard(shard, h, key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->tag = tag;
    it->second->generation = generation;
    it->second->generation_scoped = generation_scoped;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value), h,
                             generation, tag, generation_scoped});
  shard.index.emplace(h, shard.lru.begin());
  ++shard.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    const auto victim = std::prev(shard.lru.end());
    auto [lo, hi] = shard.index.equal_range(victim->hash);
    for (auto vit = lo; vit != hi; ++vit)
      if (vit->second == victim) {
        shard.index.erase(vit);
        break;
      }
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ShardedLruCache::Stats ShardedLruCache::stats() const {
  Stats s;
  s.capacity = capacity_;
  s.shards = shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.stale += shard.stale;
    s.insertions += shard.insertions;
    s.evictions += shard.evictions;
    s.entries += shard.lru.size();
  }
  return s;
}

void ShardedLruCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.lru.clear();
  }
}

}  // namespace archline::serve
