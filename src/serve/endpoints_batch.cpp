// The predict_batch endpoint: many workloads against one machine in a
// single request, evaluated through the SoA kernels (core/kernels.hpp)
// instead of N scalar model calls.
//
// Reply contract: each element of "results" is byte-identical to what a
// single "predict" reply's prediction block would contain for the same
// (machine, workload) pair — same fields, same order, same number
// format. That holds because the kernels are bit-identical to the
// scalar model (their contract) and the rows are rendered with
// Json::render_number (format_number's exact bytes). The whole reply is
// serialized into one pre-reserved string and returned as a Json::raw
// node that handle_line moves into the reply body — a 256-element batch
// builds ONE heap string, never copies it, and allocates no per-element
// Json nodes.
//
// Lane choice is size-dependent: small batches are closed-form-cheap
// (Light), large ones do real work (Heavy). The per-endpoint `classify`
// hook decides from the RAW line via a brace count — each element is
// one object — without parsing. See classify_batch for the slack.

#include <cstring>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "core/machine_params.hpp"
#include "core/roofline.hpp"
#include "serve/endpoint_util.hpp"
#include "serve/registry.hpp"

namespace archline::serve {

namespace {

/// Per-element reply footprint: 7 keys (~120 bytes) plus six numbers at
/// up to 24 bytes each; measured replies run ~230 bytes/element, so 240
/// keeps a full 1024-element render to a single allocation.
constexpr std::size_t kReplyBytesPerElement = 240;

Json do_predict_batch(const EndpointContext& ctx) {
  const Json& req = ctx.req;
  std::string_view name;
  const core::MachineParams m = resolve_machine(ctx, name);

  const Json* elements = req.find("elements");
  if (!elements || !elements->is_array())
    bad("\"elements\" must be an array");
  const Json::Array& rows = elements->as_array();
  if (rows.empty()) bad("\"elements\" must not be empty");
  if (rows.size() > ctx.limits.max_predict_batch)
    throw RequestError{"too_large",
                       "batch too large (max " +
                           std::to_string(ctx.limits.max_predict_batch) +
                           " elements)"};

  core::WorkloadBatch batch;
  batch.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].is_object())
      bad("element " + std::to_string(i) + " must be an object");
    try {
      batch.push_back(resolve_workload(rows[i]));
    } catch (const RequestError& e) {
      throw RequestError{e.code,
                         "element " + std::to_string(i) + ": " + e.message};
    }
  }

  core::PredictionBatch pred;
  core::predict_batch(m, batch, pred);

  // Render the COMPLETE reply into one string and return it as a raw
  // node: handle_line moves the payload straight into the reply body,
  // so a batch reply's only large copy is the render itself. The
  // envelope prefix reuses begin_reply/dump for byte-identity with the
  // tree-built form (insertion order ok, type, id, platform, count);
  // its dump cost is per-request, not per-element.
  std::string body;
  body.reserve(96 + batch.size() * kReplyBytesPerElement);
  {
    Json env = begin_reply(ctx.endpoint, req);
    env.set("platform", Json::view(name));
    env.set("count", rows.size());
    env.dump_to(body);
    body.back() = ',';  // reopen the envelope: '}' -> ','
    body += "\"results\":[";
  }
  // Field names and order mirror add_prediction(); regime names are
  // escape-free identifiers, so no string quoting pass is needed. Each
  // row is assembled in a stack buffer and appended in one shot: the
  // key literals become fixed-size memcpys and body takes one capacity
  // check per row instead of one per fragment. Worst case per row:
  // ~113 literal bytes + 6 numbers at <= 24 bytes + regime name; 320
  // leaves render_number its full 40-byte headroom.
  char row[320];
  const auto lit = [](char* dst, std::string_view s) {
    std::memcpy(dst, s.data(), s.size());
    return dst + s.size();
  };
  for (std::size_t i = 0; i < batch.size(); ++i) {
    char* q = row;
    if (i != 0) *q++ = ',';
    q = lit(q, "{\"intensity\":");
    q += Json::render_number(q, pred.intensity[i]);
    q = lit(q, ",\"time_s\":");
    q += Json::render_number(q, pred.time_s[i]);
    q = lit(q, ",\"energy_j\":");
    q += Json::render_number(q, pred.energy_j[i]);
    q = lit(q, ",\"avg_power_w\":");
    q += Json::render_number(q, pred.avg_power_w[i]);
    q = lit(q, ",\"performance_flops\":");
    q += Json::render_number(q, pred.performance[i]);
    q = lit(q, ",\"efficiency_flops_per_joule\":");
    q += Json::render_number(q, pred.efficiency[i]);
    q = lit(q, ",\"regime\":\"");
    q = lit(q, core::regime_name(pred.regime[i]));
    q = lit(q, "\"}");
    body.append(row, static_cast<std::size_t>(q - row));
  }
  body += "]}";
  return Json::raw(std::move(body));
}

/// Admission classifier: batches of <= 64 elements answer in
/// closed-form microseconds and belong on the Light lane; bigger ones
/// go Heavy. Element count is estimated from the raw line's '{' count —
/// every element is one object — without parsing: the request object
/// itself is one brace and an optional inline "machine" object is
/// another, so the Light cutoff is 64 + 2 braces. The estimate has
/// deliberate slack (a 65-element batch without an inline machine still
/// counts 66, '{' bytes inside string values inflate the count): like
/// classify_line itself, the verdict picks a lane and can never change
/// reply bytes.
RequestClass classify_batch(std::string_view line) noexcept {
  constexpr std::size_t kLightBraces = 64 + 2;
  std::size_t braces = 0;
  for (const char c : line)
    if (c == '{' && ++braces > kLightBraces) return RequestClass::Heavy;
  return RequestClass::Light;
}

}  // namespace

void register_batch_endpoints(Registry& r) {
  // Registered LAST: the id rides in cache tags and metrics slots, so
  // new endpoints always append.
  r.add({.name = "predict_batch",
         .klass = RequestClass::Heavy,  // fallback when no raw line exists
         .cacheable = true,
         .model_scoped = true,
         .handler = &do_predict_batch,
         .classify = &classify_batch});
}

}  // namespace archline::serve
