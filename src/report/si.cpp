#include "report/si.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace archline::report {

namespace {

struct Prefix {
  double scale;
  const char* symbol;
};

constexpr std::array<Prefix, 13> kPrefixes = {{
    {1e18, "E"},
    {1e15, "P"},
    {1e12, "T"},
    {1e9, "G"},
    {1e6, "M"},
    {1e3, "k"},
    {1.0, ""},
    {1e-3, "m"},
    {1e-6, "u"},
    {1e-9, "n"},
    {1e-12, "p"},
    {1e-15, "f"},
    {1e-18, "a"},
}};

}  // namespace

std::string sig_format(double value, int digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return std::signbit(value) ? "-inf" : "inf";
  const double mag = std::abs(value);
  const int exponent = static_cast<int>(std::floor(std::log10(mag)));
  int decimals = digits - 1 - exponent;
  if (decimals < 0) decimals = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string si_format(double value, const std::string& unit, int digits) {
  if (value == 0.0) return "0 " + unit;
  if (!std::isfinite(value))
    return (std::signbit(value) ? std::string("-inf ") : std::string("inf ")) +
           unit;
  const double mag = std::abs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const Prefix& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  const double scaled = value / chosen->scale;
  return sig_format(scaled, digits) + " " + chosen->symbol + unit;
}

std::string percent_format(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", fraction * 100.0);
  return buf;
}

std::string intensity_label(double intensity) {
  if (intensity > 0.0 && intensity < 1.0) {
    const double inv = 1.0 / intensity;
    const double rounded = std::round(inv);
    if (std::abs(inv - rounded) < 1e-9) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "1/%.0f", rounded);
      return buf;
    }
  }
  if (intensity >= 1.0 &&
      std::abs(intensity - std::round(intensity)) < 1e-9) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", intensity);
    return buf;
  }
  return sig_format(intensity, 3);
}

}  // namespace archline::report
