#include "report/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace archline::report {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("CsvWriter: cell count != header count");
  rows_.push_back(std::move(cells));
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  const auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << ',';
      out << csv_escape(cells[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void CsvWriter::write_file(const std::filesystem::path& path) const {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path.string());
  out << to_string();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !cell.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace archline::report
