#pragma once
// Minimal CSV writing/reading.
//
// Bench binaries dump every regenerated figure/table as CSV next to their
// terminal output; the fit_from_csv example reads user measurements back.

#include <filesystem>
#include <string>
#include <vector>

namespace archline::report {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Serializes header + rows.
  [[nodiscard]] std::string to_string() const;

  /// Writes to `path`, creating parent directories as needed.
  void write_file(const std::filesystem::path& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a cell if it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Parses CSV text into rows of cells (handles quoted cells and embedded
/// commas/newlines). The first row is returned like any other.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

/// Reads and parses a CSV file. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv_file(
    const std::filesystem::path& path);

}  // namespace archline::report
