#include "report/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "report/si.hpp"

namespace archline::report {

namespace {

double transform(double v, AxisScale scale) {
  return scale == AxisScale::Log2 ? std::log2(v) : v;
}

bool usable(double v, AxisScale scale) {
  if (!std::isfinite(v)) return false;
  return scale != AxisScale::Log2 || v > 0.0;
}

/// Tick positions in transformed coordinates: integer powers of two for
/// log axes, ~5 round steps for linear axes.
std::vector<double> ticks(double lo, double hi, AxisScale scale) {
  std::vector<double> out;
  if (scale == AxisScale::Log2) {
    const int first = static_cast<int>(std::ceil(lo - 1e-9));
    const int last = static_cast<int>(std::floor(hi + 1e-9));
    const int span = std::max(1, last - first);
    const int step = std::max(1, span / 6);
    for (int t = first; t <= last; t += step)
      out.push_back(static_cast<double>(t));
  } else {
    const double span = hi - lo;
    const double raw_step = span / 5.0;
    const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
    double step = mag;
    if (raw_step / mag >= 5.0) step = 5.0 * mag;
    else if (raw_step / mag >= 2.0) step = 2.0 * mag;
    for (double t = std::ceil(lo / step) * step; t <= hi + 1e-9 * span;
         t += step)
      out.push_back(t);
  }
  return out;
}

}  // namespace

std::string svg_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

SvgPlot::SvgPlot(std::string title, SvgStyle style)
    : title_(std::move(title)), style_(std::move(style)) {
  if (style_.width < 100 || style_.height < 80)
    throw std::invalid_argument("SvgPlot: canvas too small");
  if (style_.palette.empty())
    throw std::invalid_argument("SvgPlot: empty palette");
}

void SvgPlot::add_line(Series series) {
  if (series.x.size() != series.y.size())
    throw std::invalid_argument("SvgPlot: x/y length mismatch");
  entries_.push_back(Entry{.series = std::move(series), .scatter = false});
}

void SvgPlot::add_scatter(Series series) {
  if (series.x.size() != series.y.size())
    throw std::invalid_argument("SvgPlot: x/y length mismatch");
  entries_.push_back(Entry{.series = std::move(series), .scatter = true});
}

std::string SvgPlot::render() const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const Entry& e : entries_) {
    for (std::size_t i = 0; i < e.series.x.size(); ++i) {
      if (!usable(e.series.x[i], x_scale_) ||
          !usable(e.series.y[i], y_scale_))
        continue;
      xmin = std::min(xmin, transform(e.series.x[i], x_scale_));
      xmax = std::max(xmax, transform(e.series.x[i], x_scale_));
      ymin = std::min(ymin, transform(e.series.y[i], y_scale_));
      ymax = std::max(ymax, transform(e.series.y[i], y_scale_));
    }
  }
  const bool empty = !(xmin <= xmax) || !(ymin <= ymax);
  if (!empty) {
    if (xmax == xmin) xmax = xmin + 1.0;
    if (ymax == ymin) ymax = ymin + 1.0;
    // 4% headroom on y.
    const double pad = 0.04 * (ymax - ymin);
    ymin -= pad;
    ymax += pad;
  }

  const double plot_w =
      style_.width - style_.margin_left - style_.margin_right;
  const double plot_h =
      style_.height - style_.margin_top - style_.margin_bottom;
  const auto sx = [&](double v) {
    return style_.margin_left +
           (transform(v, x_scale_) - xmin) / (xmax - xmin) * plot_w;
  };
  const auto sy = [&](double v) {
    return style_.margin_top +
           (1.0 - (transform(v, y_scale_) - ymin) / (ymax - ymin)) * plot_h;
  };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << style_.width << "\" height=\"" << style_.height
      << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out << "<text x=\"" << style_.width / 2 << "\" y=\"20\" "
      << "text-anchor=\"middle\" font-size=\"14\">" << svg_escape(title_)
      << "</text>\n";

  if (empty) {
    out << "<text x=\"" << style_.width / 2 << "\" y=\""
        << style_.height / 2
        << "\" text-anchor=\"middle\">no plottable data</text>\n</svg>\n";
    return out.str();
  }

  // Frame.
  out << "<rect x=\"" << style_.margin_left << "\" y=\""
      << style_.margin_top << "\" width=\"" << plot_w << "\" height=\""
      << plot_h << "\" fill=\"none\" stroke=\"black\"/>\n";

  // X ticks.
  for (const double t : ticks(xmin, xmax, x_scale_)) {
    const double raw = x_scale_ == AxisScale::Log2 ? std::exp2(t) : t;
    const double px = style_.margin_left + (t - xmin) / (xmax - xmin) * plot_w;
    out << "<line x1=\"" << px << "\" y1=\"" << style_.margin_top
        << "\" x2=\"" << px << "\" y2=\""
        << style_.margin_top + plot_h
        << "\" stroke=\"#dddddd\"/>\n";
    out << "<text x=\"" << px << "\" y=\""
        << style_.margin_top + plot_h + 16
        << "\" text-anchor=\"middle\">"
        << svg_escape(x_scale_ == AxisScale::Log2 ? intensity_label(raw)
                                                  : sig_format(raw, 3))
        << "</text>\n";
  }
  // Y ticks.
  for (const double t : ticks(ymin, ymax, y_scale_)) {
    const double raw = y_scale_ == AxisScale::Log2 ? std::exp2(t) : t;
    const double py =
        style_.margin_top + (1.0 - (t - ymin) / (ymax - ymin)) * plot_h;
    out << "<line x1=\"" << style_.margin_left << "\" y1=\"" << py
        << "\" x2=\"" << style_.margin_left + plot_w << "\" y2=\"" << py
        << "\" stroke=\"#dddddd\"/>\n";
    out << "<text x=\"" << style_.margin_left - 6 << "\" y=\"" << py + 4
        << "\" text-anchor=\"end\">" << svg_escape(si_format(raw, "", 2))
        << "</text>\n";
  }
  // Axis labels.
  out << "<text x=\"" << style_.margin_left + plot_w / 2 << "\" y=\""
      << style_.height - 12 << "\" text-anchor=\"middle\">"
      << svg_escape(x_label_) << "</text>\n";
  if (!y_label_.empty())
    out << "<text x=\"14\" y=\"" << style_.margin_top + plot_h / 2
        << "\" text-anchor=\"middle\" transform=\"rotate(-90 14 "
        << style_.margin_top + plot_h / 2 << ")\">" << svg_escape(y_label_)
        << "</text>\n";

  // Series.
  std::size_t color_index = 0;
  for (const Entry& e : entries_) {
    const std::string& color =
        style_.palette[color_index++ % style_.palette.size()];
    if (e.scatter) {
      for (std::size_t i = 0; i < e.series.x.size(); ++i) {
        if (!usable(e.series.x[i], x_scale_) ||
            !usable(e.series.y[i], y_scale_))
          continue;
        out << "<circle cx=\"" << sx(e.series.x[i]) << "\" cy=\""
            << sy(e.series.y[i]) << "\" r=\"3\" fill=\"" << color
            << "\" fill-opacity=\"0.7\"/>\n";
      }
    } else {
      out << "<polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.5\" points=\"";
      for (std::size_t i = 0; i < e.series.x.size(); ++i) {
        if (!usable(e.series.x[i], x_scale_) ||
            !usable(e.series.y[i], y_scale_))
          continue;
        out << sx(e.series.x[i]) << ',' << sy(e.series.y[i]) << ' ';
      }
      out << "\"/>\n";
    }
  }

  // Legend (top-right, one row per series).
  double ly = style_.margin_top + 14;
  color_index = 0;
  for (const Entry& e : entries_) {
    const std::string& color =
        style_.palette[color_index++ % style_.palette.size()];
    const double lx = style_.margin_left + plot_w - 150;
    if (e.scatter)
      out << "<circle cx=\"" << lx << "\" cy=\"" << ly - 4
          << "\" r=\"3\" fill=\"" << color << "\"/>\n";
    else
      out << "<line x1=\"" << lx - 6 << "\" y1=\"" << ly - 4 << "\" x2=\""
          << lx + 6 << "\" y2=\"" << ly - 4 << "\" stroke=\"" << color
          << "\" stroke-width=\"2\"/>\n";
    out << "<text x=\"" << lx + 10 << "\" y=\"" << ly << "\">"
        << svg_escape(e.series.name) << "</text>\n";
    ly += 15;
  }

  out << "</svg>\n";
  return out.str();
}

void SvgPlot::write_file(const std::filesystem::path& path) const {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("SvgPlot: cannot open " + path.string());
  out << render();
}

}  // namespace archline::report
