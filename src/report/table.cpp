#include "report/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace archline::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("Table: need at least one column");
  aligns_.assign(headers_.size(), Align::Right);
  aligns_.front() = Align::Left;
}

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size())
    throw std::out_of_range("Table::set_align: column out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size())
    throw std::invalid_argument("Table::add_row: too many cells");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

namespace {

void append_cell(std::ostringstream& out, const std::string& cell,
                 std::size_t width, Align align) {
  const std::size_t pad = width - std::min(width, cell.size());
  if (align == Align::Right) out << std::string(pad, ' ') << cell;
  else out << cell << std::string(pad, ' ');
}

}  // namespace

std::string Table::to_text() const {
  const auto widths = column_widths();
  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (const std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << ' ';
      append_cell(out, c < cells.size() ? cells[c] : std::string{}, widths[c],
                  aligns_[c]);
      out << " |";
    }
    out << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

std::string Table::to_markdown() const {
  const auto widths = column_widths();
  std::ostringstream out;
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << ' ';
      append_cell(out, c < cells.size() ? cells[c] : std::string{}, widths[c],
                  aligns_[c]);
      out << " |";
    }
    out << '\n';
  };
  line(headers_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string dashes(std::max<std::size_t>(widths[c], 3), '-');
    out << ' ' << (aligns_[c] == Align::Right ? dashes + ':' : dashes + ' ')
        << '|';
  }
  out << '\n';
  for (const auto& row : rows_) line(row);
  return out.str();
}

}  // namespace archline::report
