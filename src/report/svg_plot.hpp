#pragma once
// SVG figure rendering — real plot files for the regenerated figures.
//
// A deliberately small chart engine: multi-series line/scatter plots with
// linear or log-2 axes, tick labels, a legend, and a title. Enough to
// reproduce the paper's figure layouts as standalone .svg files next to
// the benches' CSV output; not a general plotting library.

#include <filesystem>
#include <string>
#include <vector>

#include "report/ascii_plot.hpp"  // AxisScale, Series

namespace archline::report {

struct SvgStyle {
  int width = 640;
  int height = 400;
  int margin_left = 70;
  int margin_right = 20;
  int margin_top = 40;
  int margin_bottom = 55;
  /// Stroke colors cycled across series (CSS color strings).
  std::vector<std::string> palette = {"#1f77b4", "#d62728", "#2ca02c",
                                      "#ff7f0e", "#9467bd", "#8c564b"};
};

class SvgPlot {
 public:
  explicit SvgPlot(std::string title, SvgStyle style = {});

  void set_x_scale(AxisScale scale) { x_scale_ = scale; }
  void set_y_scale(AxisScale scale) { y_scale_ = scale; }
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// Adds a line series (points connected) or scatter (markers only).
  /// Reuses report::Series; the glyph is ignored for lines and drawn as
  /// circles for scatters. Non-finite / non-positive-on-log points are
  /// skipped at render time.
  void add_line(Series series);
  void add_scatter(Series series);

  /// Renders the complete SVG document.
  [[nodiscard]] std::string render() const;

  /// Writes to `path`, creating parent directories as needed.
  void write_file(const std::filesystem::path& path) const;

 private:
  struct Entry {
    Series series;
    bool scatter = false;
  };
  std::string title_;
  SvgStyle style_;
  AxisScale x_scale_ = AxisScale::Log2;
  AxisScale y_scale_ = AxisScale::Linear;
  std::string x_label_ = "Intensity (flop:Byte)";
  std::string y_label_;
  std::vector<Entry> entries_;
};

/// Escapes &, <, > for SVG text nodes.
[[nodiscard]] std::string svg_escape(const std::string& text);

}  // namespace archline::report
