#pragma once
// SI-prefixed number formatting ("16 Gflop/J", "136 pJ/B", "288 GB/s").
//
// All archline quantities are stored in base SI units; these helpers apply
// metric prefixes only at the output boundary, matching how the paper
// renders Table I and the figure annotations.

#include <string>

namespace archline::report {

/// Formats `value` with an SI prefix and `digits` significant digits,
/// e.g. si_format(1.6e10, "flop/J") == "16 Gflop/J".
/// Handles prefixes from atto (1e-18) to exa (1e18); zero renders as "0".
[[nodiscard]] std::string si_format(double value, const std::string& unit,
                                    int digits = 3);

/// Formats a plain number to `digits` significant digits ("0.31", "4020").
[[nodiscard]] std::string sig_format(double value, int digits = 3);

/// Formats a ratio as a percentage with no decimals ("83%").
[[nodiscard]] std::string percent_format(double fraction);

/// Formats an intensity value the way the paper labels its x-axes:
/// powers of two below one render as fractions ("1/8"), others as numbers.
[[nodiscard]] std::string intensity_label(double intensity);

}  // namespace archline::report
