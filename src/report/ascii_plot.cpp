#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "report/si.hpp"

namespace archline::report {

namespace {

double transform(double v, AxisScale scale) {
  return scale == AxisScale::Log2 ? std::log2(v) : v;
}

bool usable(double v, AxisScale scale) {
  if (!std::isfinite(v)) return false;
  return scale != AxisScale::Log2 || v > 0.0;
}

}  // namespace

AsciiPlot::AsciiPlot(std::string title, int width, int height)
    : title_(std::move(title)), width_(width), height_(height) {
  if (width_ < 16 || height_ < 4)
    throw std::invalid_argument("AsciiPlot: canvas too small");
}

void AsciiPlot::add_series(Series series) {
  if (series.x.size() != series.y.size())
    throw std::invalid_argument("AsciiPlot: x/y length mismatch");
  series_.push_back(std::move(series));
}

std::string AsciiPlot::render() const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!usable(s.x[i], x_scale_) || !usable(s.y[i], y_scale_)) continue;
      const double tx = transform(s.x[i], x_scale_);
      const double ty = transform(s.y[i], y_scale_);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
    }
  }
  std::ostringstream out;
  out << title_ << '\n';
  if (!(xmin <= xmax) || !(ymin <= ymax)) {
    out << "  (no plottable data)\n";
    return out.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!usable(s.x[i], x_scale_) || !usable(s.y[i], y_scale_)) continue;
      const double tx = transform(s.x[i], x_scale_);
      const double ty = transform(s.y[i], y_scale_);
      const int col = static_cast<int>(std::lround(
          (tx - xmin) / (xmax - xmin) * static_cast<double>(width_ - 1)));
      const int row = static_cast<int>(std::lround(
          (ty - ymin) / (ymax - ymin) * static_cast<double>(height_ - 1)));
      const auto r = static_cast<std::size_t>(height_ - 1 - row);
      const auto c = static_cast<std::size_t>(col);
      canvas[r][c] = s.glyph;
    }
  }

  const auto y_at = [&](int row) {
    const double frac =
        static_cast<double>(height_ - 1 - row) / static_cast<double>(height_ - 1);
    const double ty = ymin + frac * (ymax - ymin);
    return y_scale_ == AxisScale::Log2 ? std::exp2(ty) : ty;
  };

  for (int row = 0; row < height_; ++row) {
    std::string label;
    if (row == 0 || row == height_ - 1 || row == height_ / 2)
      label = sig_format(y_at(row), 3);
    out << (label.size() > 9 ? label.substr(0, 9) : label)
        << std::string(label.size() > 9 ? 0 : 9 - label.size(), ' ') << " |"
        << canvas[static_cast<std::size_t>(row)] << '\n';
  }
  out << std::string(9, ' ') << " +" << std::string(static_cast<std::size_t>(width_), '-')
      << '\n';

  // X-axis tick labels at left, middle, right.
  const auto x_at = [&](double frac) {
    const double tx = xmin + frac * (xmax - xmin);
    return x_scale_ == AxisScale::Log2 ? std::exp2(tx) : tx;
  };
  const std::string left = x_scale_ == AxisScale::Log2
                               ? intensity_label(x_at(0.0))
                               : sig_format(x_at(0.0), 3);
  const std::string mid = x_scale_ == AxisScale::Log2
                              ? intensity_label(x_at(0.5))
                              : sig_format(x_at(0.5), 3);
  const std::string right = x_scale_ == AxisScale::Log2
                                ? intensity_label(x_at(1.0))
                                : sig_format(x_at(1.0), 3);
  std::string axis(static_cast<std::size_t>(width_) + 11, ' ');
  const auto place = [&axis](const std::string& text, std::size_t pos) {
    for (std::size_t i = 0; i < text.size() && pos + i < axis.size(); ++i)
      axis[pos + i] = text[i];
  };
  place(left, 11);
  place(mid, 11 + static_cast<std::size_t>(width_) / 2 - mid.size() / 2);
  place(right, 11 + static_cast<std::size_t>(width_) - right.size());
  out << axis << '\n';
  out << std::string(11, ' ') << x_label_ << '\n';

  if (!y_label_.empty()) out << "y: " << y_label_ << '\n';
  out << "legend:";
  for (const Series& s : series_) out << "  [" << s.glyph << "] " << s.name;
  out << '\n';
  return out.str();
}

}  // namespace archline::report
