#pragma once
// Terminal scatter/line plots with the paper's axis conventions.
//
// The paper's figures all share one layout: intensity (flop:Byte) on a
// log-base-2 x-axis and a normalized quantity on a linear or log y-axis,
// with a model line and measured dots. AsciiPlot renders that onto a
// character canvas so each bench binary can show its figure in-terminal.

#include <string>
#include <vector>

namespace archline::report {

enum class AxisScale { Linear, Log2 };

/// A named series of (x, y) points drawn with a single glyph.
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

class AsciiPlot {
 public:
  AsciiPlot(std::string title, int width = 72, int height = 20);

  void set_x_scale(AxisScale scale) { x_scale_ = scale; }
  void set_y_scale(AxisScale scale) { y_scale_ = scale; }
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// Adds a series; points with non-finite or (on log scales) non-positive
  /// coordinates are skipped at render time.
  void add_series(Series series);

  /// Renders canvas, axes with tick labels, and a legend.
  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  int width_;
  int height_;
  AxisScale x_scale_ = AxisScale::Log2;
  AxisScale y_scale_ = AxisScale::Linear;
  std::string x_label_ = "Intensity (flop:Byte)";
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace archline::report
