#pragma once
// Aligned plain-text and markdown table rendering.
//
// Every bench binary prints its figure/table data through this renderer so
// the regenerated artifacts are directly readable in a terminal.

#include <cstddef>
#include <string>
#include <vector>

namespace archline::report {

enum class Align { Left, Right };

/// A simple row/column table builder. Cells are strings; numeric
/// formatting is done by the caller (see report/si.hpp).
class Table {
 public:
  /// Creates a table with the given column headers (all right-aligned by
  /// default except the first column, which is left-aligned).
  explicit Table(std::vector<std::string> headers);

  /// Overrides the alignment of one column.
  void set_align(std::size_t column, Align align);

  /// Appends a row; missing trailing cells render empty, extra cells throw.
  void add_row(std::vector<std::string> cells);

  /// Renders with box-drawing separators suitable for terminals.
  [[nodiscard]] std::string to_text() const;

  /// Renders as a GitHub-flavored markdown table.
  [[nodiscard]] std::string to_markdown() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

 private:
  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace archline::report
