#include "sim/power_governor.hpp"

#include <algorithm>

namespace archline::sim {

GovernorDecision govern(double t_flop, double t_mem, double active_energy,
                        double delta_pi) noexcept {
  const double free_time = std::max(t_flop, t_mem);
  const double cap_time =
      delta_pi == core::kUncapped ? 0.0 : active_energy / delta_pi;

  GovernorDecision d;
  if (cap_time > free_time) {
    d.time = cap_time;
    d.utilization = free_time > 0.0 ? free_time / cap_time : 1.0;
    d.regime = core::Regime::PowerCap;
  } else {
    d.time = free_time;
    d.utilization = 1.0;
    d.regime = t_mem >= t_flop ? core::Regime::Memory : core::Regime::Compute;
  }
  return d;
}

}  // namespace archline::sim
