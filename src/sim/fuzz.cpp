#include "sim/fuzz.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <string_view>
#include <utility>

#include "serve/json.hpp"
#include "serve/server.hpp"

namespace archline::sim {

namespace {

/// The protocol's stable machine-readable failure codes (protocol.cpp,
/// endpoint_util.cpp, endpoints_*.cpp). Anything else in an
/// {"ok":false} reply is a contract violation the fuzzer must report.
constexpr std::array<std::string_view, 9> kKnownErrorCodes = {
    "bad_request",   "parse_error", "unknown_platform",
    "unsupported",   "too_large",   "fit_failed",
    "internal",      "overloaded",  "deadline_exceeded",
};

[[nodiscard]] bool known_code(std::string_view code) noexcept {
  for (const std::string_view known : kKnownErrorCodes)
    if (code == known) return true;
  return false;
}

/// Bytes the mutators inject: JSON structure characters, the framing
/// byte, NUL, spaces, high bytes, digits — the inputs that stress the
/// parser's state machine rather than uniformly random noise. A char
/// array (not string_view-from-literal) so the embedded NUL counts.
constexpr char kSpiceChars[] =
    "{}[]\",:.\\/-+eE0123456789 \t\n\0\x01\x7f\x80\xc0\xff tru fals nul";
constexpr std::string_view kSpiceBytes(kSpiceChars, sizeof kSpiceChars - 1);

[[nodiscard]] char spice(stats::Rng& rng) {
  return kSpiceBytes[static_cast<std::size_t>(rng.below(kSpiceBytes.size()))];
}

[[nodiscard]] std::size_t pick_offset(const std::string& s, stats::Rng& rng) {
  return s.empty() ? 0 : static_cast<std::size_t>(rng.below(s.size()));
}

// ---- mutation operators ---------------------------------------------------
// Each takes the line by reference plus the corpus (for splicing) and
// the rng. They keep the result roughly line-shaped: embedded '\n' is
// deliberate (the protocol treats the whole string as one line; a NUL
// or newline mid-token must parse-error, not crash).

void op_truncate(std::string& s, const std::vector<std::string>&,
                 stats::Rng& rng) {
  s.resize(pick_offset(s, rng));
}

void op_splice(std::string& s, const std::vector<std::string>& corpus,
               stats::Rng& rng) {
  const std::string& other =
      corpus[static_cast<std::size_t>(rng.below(corpus.size()))];
  s = s.substr(0, pick_offset(s, rng)) +
      other.substr(pick_offset(other, rng));
}

void op_flip_byte(std::string& s, const std::vector<std::string>&,
                  stats::Rng& rng) {
  if (s.empty()) return;
  s[pick_offset(s, rng)] = spice(rng);
}

void op_insert_byte(std::string& s, const std::vector<std::string>&,
                    stats::Rng& rng) {
  s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                           rng.below(s.size() + 1)),
           spice(rng));
}

void op_delete_span(std::string& s, const std::vector<std::string>&,
                    stats::Rng& rng) {
  if (s.empty()) return;
  const std::size_t at = pick_offset(s, rng);
  s.erase(at, 1 + static_cast<std::size_t>(rng.below(8)));
}

/// Swaps structural characters: '{' <-> '[', '}' <-> ']', '"' -> '\''
/// at one random structural position — turns objects into arrays
/// mid-document and unbalances nesting.
void op_flip_structure(std::string& s, const std::vector<std::string>&,
                       stats::Rng& rng) {
  std::size_t structural = 0;
  for (const char c : s)
    if (c == '{' || c == '}' || c == '[' || c == ']' || c == '"')
      ++structural;
  if (structural == 0) return;
  std::size_t target = static_cast<std::size_t>(rng.below(structural));
  for (char& c : s) {
    if (c != '{' && c != '}' && c != '[' && c != ']' && c != '"') continue;
    if (target-- > 0) continue;
    switch (c) {
      case '{': c = '['; break;
      case '}': c = ']'; break;
      case '[': c = '{'; break;
      case ']': c = '}'; break;
      case '"': c = '\''; break;
    }
    return;
  }
}

/// Replaces the digit run at a random position with an extreme number
/// literal — overflow, underflow, huge exponents, -0, leading zeros.
void op_extreme_number(std::string& s, const std::vector<std::string>&,
                       stats::Rng& rng) {
  static constexpr std::array<std::string_view, 8> kNumbers = {
      "1e309",  "-1e309", "1e-400", "99999999999999999999999999",
      "-0.0",   "0.0000000000000000000000000001",
      "2e2e2",  "00123",
  };
  const std::size_t start = pick_offset(s, rng);
  std::size_t i = start;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                          s[i] == '.' || s[i] == '-' || s[i] == '+' ||
                          s[i] == 'e' || s[i] == 'E'))
    ++i;
  const std::string_view pick =
      kNumbers[static_cast<std::size_t>(rng.below(kNumbers.size()))];
  s.replace(start, i - start, pick);
}

/// Inflates the string content at a random quote with a long run —
/// oversized fields (platform names, ids) must bounce, not overflow.
void op_inflate_field(std::string& s, const std::vector<std::string>&,
                      stats::Rng& rng) {
  const std::size_t quote = s.find('"', pick_offset(s, rng));
  if (quote == std::string::npos) return;
  s.insert(quote + 1,
           std::string(1 + static_cast<std::size_t>(rng.below(512)), 'a'));
}

/// Prepends deep array nesting — drives the parser toward its
/// max_json_depth limit, which must error, not recurse to death.
void op_deep_nest(std::string& s, const std::vector<std::string>&,
                  stats::Rng& rng) {
  const std::size_t depth = 8 + static_cast<std::size_t>(rng.below(64));
  s = std::string(depth, '[') + s;
}

using MutationOp = void (*)(std::string&, const std::vector<std::string>&,
                            stats::Rng&);

constexpr std::array<MutationOp, 9> kOps = {
    op_truncate,     op_splice,        op_flip_byte,
    op_insert_byte,  op_delete_span,   op_flip_structure,
    op_extreme_number, op_inflate_field, op_deep_nest,
};

}  // namespace

std::string mutate_line(const std::vector<std::string>& corpus,
                        stats::Rng& rng, int max_mutations) {
  std::string line =
      corpus[static_cast<std::size_t>(rng.below(corpus.size()))];
  const int count =
      1 + static_cast<int>(rng.below(
              static_cast<std::uint64_t>(max_mutations < 1 ? 1
                                                           : max_mutations)));
  for (int i = 0; i < count; ++i)
    kOps[static_cast<std::size_t>(rng.below(kOps.size()))](line, corpus, rng);
  return line;
}

bool reply_acceptable(std::string_view reply, std::string* why) {
  const auto fail = [&](std::string message) {
    if (why) *why = std::move(message);
    return false;
  };
  if (reply.empty()) return fail("empty reply");
  if (reply.find('\n') != std::string_view::npos)
    return fail("reply contains a newline (breaks framing)");
  serve::Json parsed;
  try {
    parsed = serve::Json::parse(reply);
  } catch (const serve::JsonError& e) {
    return fail(std::string("reply is not valid JSON: ") + e.what());
  }
  if (!parsed.is_object()) return fail("reply is not a JSON object");
  const serve::Json* ok = parsed.find("ok");
  if (!ok || !ok->is_bool())
    return fail("reply lacks a boolean \"ok\" member");
  if (ok->as_bool()) return true;
  const serve::Json* error = parsed.find("error");
  if (!error || !error->is_string())
    return fail("error reply lacks a string \"error\" member");
  if (!known_code(error->as_string_view()))
    return fail("unknown error code: " +
                std::string(error->as_string_view()));
  return true;
}

FuzzReport run_fuzz(serve::Server& server,
                    const std::vector<std::string>& corpus,
                    const FuzzOptions& options) {
  FuzzReport report;
  if (corpus.empty()) return report;
  std::string reply;
  std::string why;
  for (std::size_t k = options.begin; k < options.begin + options.iterations;
       ++k) {
    // Every random choice of iteration k comes from stream k: findings
    // replay from (seed, k) without re-running the preceding k inputs.
    stats::Rng rng(options.seed, k);
    const std::string input = mutate_line(corpus, rng,
                                          options.max_mutations);
    server.handle_into(input, reply);
    ++report.iterations;
    if (!reply_acceptable(reply, &why)) {
      report.findings.push_back(FuzzFinding{k, input, reply, why});
      if (options.max_findings > 0 &&
          report.findings.size() >= options.max_findings)
        break;
      continue;
    }
    // Parse a second time just for the tally; findings already carry
    // the interesting payloads.
    try {
      const serve::Json parsed = serve::Json::parse(reply);
      const serve::Json* ok = parsed.find("ok");
      if (ok && ok->is_bool() && ok->as_bool())
        ++report.ok_replies;
      else
        ++report.error_replies;
    } catch (const serve::JsonError&) {
    }
  }
  return report;
}

std::vector<std::string> load_corpus(const std::string& path) {
  std::vector<std::string> corpus;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) corpus.push_back(line);
  return corpus;
}

}  // namespace archline::sim
