#pragma once
// KernelDesc: the abstract workload a simulated machine executes.
//
// This is the simulator-side counterpart of the paper's microbenchmarks:
// a kernel performs `flops` floating-point operations and moves `bytes`
// between the processor and a given memory level, either streaming
// (intensity benchmark, §IV-e) or via dependent random accesses (pointer
// chasing, §IV-f).

#include <string>

#include "core/machine_params.hpp"
#include "core/memory.hpp"

namespace archline::sim {

struct KernelDesc {
  std::string label;  ///< free-form, e.g. "intensity I=4 SP DRAM"

  double flops = 0.0;  ///< W: total floating-point operations
  double bytes = 0.0;  ///< Q: total bytes moved from `level`
  double accesses = 0.0;  ///< random pattern: dependent loads (0 otherwise)

  core::MemLevel level = core::MemLevel::DRAM;
  core::AccessPattern pattern = core::AccessPattern::Streaming;
  core::Precision precision = core::Precision::Single;

  double working_set_bytes = 0.0;  ///< resident footprint (sizing checks)

  /// Fraction of the byte traffic that is writes (0 = read-only stream,
  /// 1/3 = triad-like). Only affects energy when the machine's level
  /// costs differentiate writes (LevelCosts::write_energy_factor != 1).
  double write_fraction = 0.0;

  /// Operational intensity W/Q; infinity when Q == 0.
  [[nodiscard]] double intensity() const noexcept {
    return bytes > 0.0 ? flops / bytes
                       : std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] core::Workload workload() const noexcept {
    return core::Workload{.flops = flops, .bytes = bytes};
  }

  /// Basic sanity: non-negative work, random kernels carry accesses.
  void validate() const;
};

}  // namespace archline::sim
