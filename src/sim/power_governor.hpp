#pragma once
// The power-cap governor: the simulator's enforcement of delta_pi.
//
// Real devices enforce their power budget in firmware (e.g. GPU boost
// limits, RAPL); the paper models the effect as the third term of eq. (3).
// The governor reproduces that behaviour: given the unthrottled flop and
// memory times and the active energy, it decides whether the budget allows
// full-rate execution and, if not, stretches execution so average active
// power equals delta_pi.

#include "core/roofline.hpp"

namespace archline::sim {

struct GovernorDecision {
  double time = 0.0;         ///< execution time after governing [s]
  double utilization = 1.0;  ///< unthrottled_time / governed_time, <= 1
  core::Regime regime = core::Regime::Compute;
};

/// Applies the cap. `t_flop` and `t_mem` are the full-rate execution times
/// of the two engines; `active_energy` is W*eps_flop + Q*eps_mem;
/// `delta_pi` may be core::kUncapped.
[[nodiscard]] GovernorDecision govern(double t_flop, double t_mem,
                                      double active_energy,
                                      double delta_pi) noexcept;

}  // namespace archline::sim
