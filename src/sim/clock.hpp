#pragma once
// Injectable time source for the serve stack — the seam that makes
// every deadline, idle-timeout, and uptime decision testable without
// sleeping.
//
// serve::Server, serve::Metrics, and serve::TcpListener each take an
// optional `const ClockSource*` (null = the real steady clock), and
// read time exclusively through it. Production pays one virtual call
// per clock read — noise next to the syscall underneath — and tests
// substitute a SimClock that advances only on demand, so "a request
// queued 10 ms past its deadline" is an exact statement, not a race
// against the scheduler.
//
// The time_point type stays std::chrono::steady_clock::time_point
// everywhere: no serve-side signatures change, sentinels like
// time_point::max() keep working, and a SimClock can be dropped into
// any structure that previously called steady_clock::now() directly.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace archline::sim {

class ClockSource {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;
  using Duration = Clock::duration;

  virtual ~ClockSource() = default;

  [[nodiscard]] virtual TimePoint now() const noexcept = 0;
};

/// Pass-through to the real steady clock.
class RealClock final : public ClockSource {
 public:
  [[nodiscard]] TimePoint now() const noexcept override {
    return Clock::now();
  }
};

/// The process-wide real clock — what a null ClockSource* resolves to.
[[nodiscard]] inline const ClockSource& real_clock() noexcept {
  static const RealClock clock;
  return clock;
}

/// A clock that moves only when told to. Starts at the steady clock's
/// epoch (the origin is arbitrary: every consumer measures durations or
/// compares against deadlines built from now()). Thread-safe: readers
/// and advancers may race, and a reader always observes either the
/// pre- or post-advance instant, never a torn value.
class SimClock final : public ClockSource {
 public:
  [[nodiscard]] TimePoint now() const noexcept override {
    return TimePoint(Duration(ticks_.load(std::memory_order_acquire)));
  }

  void advance(Duration d) noexcept {
    ticks_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  void advance_ms(std::int64_t ms) noexcept {
    advance(std::chrono::duration_cast<Duration>(
        std::chrono::milliseconds(ms)));
  }

 private:
  std::atomic<Duration::rep> ticks_{0};
};

}  // namespace archline::sim
