#include "sim/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/roofline.hpp"
#include "core/workloads.hpp"
#include "platforms/platform_db.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "sim/clock.hpp"
#include "stats/rng.hpp"

namespace archline::sim {

namespace {

constexpr std::uint64_t kNoDeadline =
    std::numeric_limits<std::uint64_t>::max();

[[nodiscard]] std::uint64_t to_ns(double seconds) noexcept {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

// ---- request vocabulary ---------------------------------------------------
// Self-contained builders mirroring bench/serve_loadgen's pools: the
// campaign and the real-TCP loadgen speak the same request language, so
// a campaign regression reproduces against the wire with the same mix.

std::vector<std::string> make_predict_pool(int keys) {
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    serve::Json req = serve::Json::object();
    req.set("type", "predict");
    req.set("platform", names[static_cast<std::size_t>(i) % names.size()]);
    req.set("flops", 1e9);
    req.set("intensity", std::exp2(-4.0 + 13.0 * i / std::max(1, keys - 1)));
    pool.push_back(req.dump());
  }
  return pool;
}

std::vector<std::string> make_batch_pool(int keys) {
  static constexpr int kSizes[] = {1, 8, 64, 256};
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const int batch = kSizes[static_cast<std::size_t>(i) % 4];
    serve::Json elements = serve::Json::array();
    for (int e = 0; e < batch; ++e) {
      serve::Json row = serve::Json::object();
      row.set("flops", 1e9);
      row.set("intensity",
              std::exp2(-4.0 + 13.0 * (i + e) / std::max(1, keys + batch - 2)));
      elements.push_back(std::move(row));
    }
    serve::Json req = serve::Json::object();
    req.set("type", "predict_batch");
    req.set("platform", names[static_cast<std::size_t>(i) % names.size()]);
    req.set("elements", std::move(elements));
    pool.push_back(req.dump());
  }
  return pool;
}

std::vector<std::string> make_observe_pool(int keys, std::uint64_t seed) {
  const auto names = platforms::platform_names();
  stats::Rng rng(seed, /*stream=*/11);
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    const auto& spec =
        platforms::platform(names[static_cast<std::size_t>(i) % names.size()]);
    const core::MachineParams m = spec.machine();
    serve::Json obs = serve::Json::array();
    for (int p = 0; p < 8; ++p) {
      const double intensity = std::exp2(-3.0 + p + (i % 2) * 0.5);
      const core::Workload w = core::Workload::from_intensity(1e9, intensity);
      serve::Json row = serve::Json::object();
      row.set("flops", w.flops);
      row.set("bytes", w.bytes);
      row.set("seconds", core::time(m, w) * rng.lognormal(0.0, 0.01));
      row.set("joules", core::energy(m, w) * rng.lognormal(0.0, 0.01));
      obs.push_back(std::move(row));
    }
    serve::Json req = serve::Json::object();
    req.set("type", "observe");
    req.set("platform", spec.name);
    req.set("observations", std::move(obs));
    pool.push_back(req.dump());
  }
  return pool;
}

std::vector<std::string> make_params_pool() {
  std::vector<std::string> pool;
  for (const auto& name : platforms::platform_names()) {
    serve::Json req = serve::Json::object();
    req.set("type", "params");
    req.set("platform", name);
    pool.push_back(req.dump());
  }
  return pool;
}

std::vector<std::string> make_policy_pool() {
  static const char* kObjectives[] = {"min_energy", "min_time", "min_edp"};
  const auto names = platforms::platform_names();
  std::vector<std::string> pool;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& spec = platforms::platform(names[i]);
    const core::MachineParams m = spec.machine();
    for (int k = 0; k < 3; ++k) {
      const core::Workload w = core::Workload::from_intensity(
          4e9, std::exp2(2.0 + 2.0 * k));
      serve::Json req = serve::Json::object();
      req.set("type", "policy_advise");
      req.set("platform", spec.name);
      req.set("objective", kObjectives[(i + static_cast<std::size_t>(k)) % 3]);
      req.set("flops", w.flops);
      req.set("bytes", w.bytes);
      req.set("period_s", 2.0 * core::time(m, w));
      pool.push_back(req.dump());
    }
  }
  return pool;
}

std::vector<std::string> make_refit_pool() {
  std::vector<std::string> pool;
  for (const auto& name : platforms::platform_names()) {
    serve::Json req = serve::Json::object();
    req.set("type", "refit");
    req.set("platform", name);
    pool.push_back(req.dump());
  }
  return pool;
}

std::vector<std::string> make_bad_json_pool(std::size_t max_request_bytes) {
  std::vector<std::string> pool;
  pool.emplace_back("{");
  pool.emplace_back("not json at all");
  pool.emplace_back(R"({"type":"no_such_endpoint"})");
  pool.emplace_back(R"({"type":"predict"})");  // missing platform/workload
  pool.emplace_back(R"({"type":"predict","platform":"Atari 2600","flops":1})");
  pool.emplace_back(R"([1,2,3])");
  // One line past the protocol's hard size limit: the dispatcher must
  // answer "too_large" without parsing.
  pool.push_back(std::string(max_request_bytes + 1, 'x'));
  return pool;
}

/// The codec-style GOP trace (IBBPBBPBBPBB per platform, policy_advise
/// at each GOP head) — the same vocabulary as `serve_loadgen
/// --scenario trace-replay`.
std::vector<std::string> make_trace_pool() {
  static constexpr char kGop[] = "IBBPBBPBBPBB";
  static const char* kObjectives[] = {"min_energy", "min_time", "min_edp"};
  const auto names = platforms::platform_names();
  std::vector<std::string> trace;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& spec = platforms::platform(names[i]);
    const core::MachineParams m = spec.machine();
    double gop_flops = 0.0;
    double gop_bytes = 0.0;
    std::vector<std::string> frames;
    for (const char* f = kGop; *f; ++f) {
      const double flops = *f == 'I' ? 8e9 : *f == 'P' ? 3e9 : 1e9;
      const double intensity = *f == 'I' ? 4.0 : *f == 'P' ? 8.0 : 16.0;
      gop_flops += flops;
      gop_bytes += flops / intensity;
      serve::Json req = serve::Json::object();
      req.set("type", "predict");
      req.set("platform", spec.name);
      req.set("flops", flops);
      req.set("intensity", intensity);
      frames.push_back(req.dump());
    }
    const core::Workload gop{gop_flops, gop_bytes};
    serve::Json advise = serve::Json::object();
    advise.set("type", "policy_advise");
    advise.set("platform", spec.name);
    advise.set("objective", kObjectives[i % 3]);
    advise.set("flops", gop_flops);
    advise.set("bytes", gop_bytes);
    advise.set("period_s", 2.0 * core::time(m, gop));
    trace.push_back(advise.dump());
    for (auto& frame : frames) trace.push_back(std::move(frame));
  }
  return trace;
}

// ---- reply inspection -----------------------------------------------------

[[nodiscard]] bool reply_ok(std::string_view body) noexcept {
  return body.rfind("{\"ok\":true", 0) == 0;
}

/// The "error" code of a failure reply ("bad_request", "too_large",
/// ...). Replies are rendered by error_body(), so the token layout is
/// fixed; anything unexpected lands in "unknown".
[[nodiscard]] std::string_view reply_error_code(std::string_view body) noexcept {
  static constexpr std::string_view kKey = "\"error\":\"";
  const std::size_t at = body.find(kKey);
  if (at == std::string_view::npos) return "unknown";
  const std::size_t begin = at + kKey.size();
  const std::size_t end = body.find('"', begin);
  if (end == std::string_view::npos) return "unknown";
  return body.substr(begin, end - begin);
}

/// The request's wire "type" (for latency bucketing). Malformed lines
/// bucket as "invalid" — their replies are cheap canned errors.
[[nodiscard]] std::string_view request_type(std::string_view line) noexcept {
  static constexpr std::string_view kKey = "\"type\"";
  const std::size_t at = line.find(kKey);
  if (at == std::string_view::npos) return "invalid";
  std::size_t i = at + kKey.size();
  while (i < line.size() && (line[i] == ' ' || line[i] == ':')) ++i;
  if (i >= line.size() || line[i] != '"') return "invalid";
  const std::size_t begin = ++i;
  const std::size_t end = line.find('"', begin);
  if (end == std::string_view::npos) return "invalid";
  return line.substr(begin, end - begin);
}

[[nodiscard]] LatencyStats summarize(std::vector<std::uint64_t>& samples) {
  LatencyStats out;
  out.count = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto rank = [&](double q) {
    const double r = std::ceil(q * static_cast<double>(samples.size()));
    const std::size_t idx =
        r < 1.0 ? 0 : static_cast<std::size_t>(r) - 1;
    return samples[std::min(idx, samples.size() - 1)];
  };
  out.p50_ns = rank(0.50);
  out.p99_ns = rank(0.99);
  out.p999_ns = rank(0.999);
  out.max_ns = samples.back();
  return out;
}

}  // namespace

const char* behavior_name(Behavior b) noexcept {
  switch (b) {
    case Behavior::Pipelined: return "pipelined";
    case Behavior::SlowLoris: return "slow_loris";
    case Behavior::PartialReset: return "partial_reset";
    case Behavior::IdleCamper: return "idle_camper";
  }
  return "?";
}

void CampaignOptions::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("CampaignOptions: ") + what);
  };
  if (connections < 1) fail("connections must be >= 1");
  if (!(virtual_seconds > 0.0)) fail("virtual_seconds must be > 0");
  if (open_ramp_s < 0.0) fail("open_ramp_s must be >= 0");
  if (workers < 1) fail("workers must be >= 1");
  if (heavy_workers < 0 || heavy_workers > workers)
    fail("heavy_workers must be in [0, workers]");
  if (light_capacity < 1) fail("light_capacity must be >= 1");
  if (deadline_ms < 0 || heavy_deadline_ms < 0 || idle_timeout_ms < 0)
    fail("timeouts must be >= 0");
  if (reply_delay_s < 0.0) fail("reply_delay_s must be >= 0");
  if (slow_loris_drip_s <= 0.0) fail("slow_loris_drip_s must be > 0");
  if (partial_reset_after_s < 0.0) fail("partial_reset_after_s must be >= 0");
  if (predict_keys < 1 || batch_keys < 1 || observe_keys < 1)
    fail("key pools must be >= 1");
  if (service.jitter_frac < 0.0) fail("service.jitter_frac must be >= 0");
  const BehaviorMix& b = behaviors;
  for (double w : {b.pipelined, b.slow_loris, b.partial_reset, b.idle_camper})
    if (!(w >= 0.0)) fail("behavior weights must be >= 0");
  if (b.pipelined + b.slow_loris + b.partial_reset + b.idle_camper <= 0.0)
    fail("behavior weights must not all be zero");
  const WorkloadMix& m = workload;
  double sum = 0.0;
  for (double w : {m.predict, m.predict_batch, m.observe, m.params,
                   m.policy_advise, m.refit, m.trace, m.bad_json}) {
    if (!(w >= 0.0)) fail("workload weights must be >= 0");
    sum += w;
  }
  if (sum <= 0.0) fail("workload weights must not all be zero");
  arrivals.validate();
}

// ---- SLO checking ---------------------------------------------------------

std::vector<std::string> assert_slo(const CampaignReport& report,
                                    const SloSpec& slo) {
  std::vector<std::string> violations;
  const auto add = [&](std::string line) {
    violations.push_back(std::move(line));
  };
  if (slo.max_total_p99_ns > 0 && report.total.p99_ns > slo.max_total_p99_ns)
    add("total p99 " + std::to_string(report.total.p99_ns) + "ns > " +
        std::to_string(slo.max_total_p99_ns) + "ns");
  for (const auto& [name, bound] : slo.max_endpoint_p99_ns) {
    const auto it = report.endpoints.find(name);
    if (it == report.endpoints.end()) {
      add(name + ": no replies recorded (bound set but endpoint silent)");
      continue;
    }
    if (it->second.p99_ns > bound)
      add(name + " p99 " + std::to_string(it->second.p99_ns) + "ns > " +
          std::to_string(bound) + "ns");
  }
  if (slo.max_overloaded_frac >= 0.0 && report.requests_framed > 0) {
    const double frac = static_cast<double>(report.overloaded) /
                        static_cast<double>(report.requests_framed);
    if (frac > slo.max_overloaded_frac)
      add("overloaded fraction " + std::to_string(frac) + " > " +
          std::to_string(slo.max_overloaded_frac));
  }
  if (report.deadline_exceeded > slo.max_deadline_exceeded)
    add("deadline_exceeded " + std::to_string(report.deadline_exceeded) +
        " > " + std::to_string(slo.max_deadline_exceeded));
  if (slo.min_cache_hit_rate >= 0.0 &&
      report.cache_hit_rate < slo.min_cache_hit_rate)
    add("cache hit rate " + std::to_string(report.cache_hit_rate) + " < " +
        std::to_string(slo.min_cache_hit_rate));
  if (slo.require_zero_dropped && report.dropped_replies != 0)
    add("dropped replies: " + std::to_string(report.dropped_replies));
  if (slo.require_drain_clean && !report.drain_clean)
    add("drain was not clean");
  if (slo.require_connections_accounted && !report.connections_accounted)
    add("connections not fully accounted");
  return violations;
}

// ---- report rendering -----------------------------------------------------

namespace {

serve::Json latency_stats_json(const LatencyStats& s) {
  serve::Json out = serve::Json::object();
  out.set("count", s.count);
  out.set("p50_ns", s.p50_ns);
  out.set("p99_ns", s.p99_ns);
  out.set("p999_ns", s.p999_ns);
  out.set("max_ns", s.max_ns);
  return out;
}

}  // namespace

std::string CampaignReport::to_json() const {
  serve::Json out = serve::Json::object();
  out.set("report", "sim_campaign");
  out.set("seed", seed);
  out.set("virtual_seconds", virtual_seconds);
  out.set("drained_at_s", drained_at_s);
  serve::Json conns = serve::Json::object();
  conns.set("opened", connections_opened);
  conns.set("refused", connections_refused);
  conns.set("closed_clean", closed_clean);
  conns.set("reset_by_client", reset_by_client);
  conns.set("idle_closed", idle_closed);
  conns.set("accounted", connections_accounted);
  out.set("connections", std::move(conns));
  serve::Json reqs = serve::Json::object();
  reqs.set("sent", requests_sent);
  reqs.set("framed", requests_framed);
  reqs.set("replies_delivered", replies_delivered);
  reqs.set("replies_abandoned", replies_abandoned);
  reqs.set("dropped_replies", dropped_replies);
  reqs.set("ok", ok);
  reqs.set("overloaded", overloaded);
  reqs.set("deadline_exceeded", deadline_exceeded);
  out.set("requests", std::move(reqs));
  serve::Json codes = serve::Json::object();
  for (const auto& [code, n] : errors_by_code) codes.set(code, n);
  out.set("errors_by_code", std::move(codes));
  out.set("latency", latency_stats_json(total));
  serve::Json per_endpoint = serve::Json::object();
  for (const auto& [name, s] : endpoints)
    per_endpoint.set(name, latency_stats_json(s));
  out.set("latency_by_endpoint", std::move(per_endpoint));
  serve::Json cache = serve::Json::object();
  cache.set("hits", cache_hits);
  cache.set("misses", cache_misses);
  cache.set("stale", cache_stale);
  cache.set("hit_rate", cache_hit_rate);
  out.set("cache", std::move(cache));
  serve::Json queues = serve::Json::object();
  queues.set("max_light_depth", max_light_depth);
  queues.set("max_heavy_depth", max_heavy_depth);
  out.set("queues", std::move(queues));
  out.set("drain_clean", drain_clean);
  out.set("events_processed", events_processed);
  return out.dump();
}

// ---- the discrete-event engine --------------------------------------------

struct Campaign::Impl {
  enum class EventKind : std::uint8_t {
    Open,       ///< connection admission (a = conn)
    Arrival,    ///< client initiates one request (a = conn)
    Frame,      ///< a dripped request's final byte lands (a = conn)
    Reset,      ///< client tears the connection down (a = conn)
    IdleCheck,  ///< idle-reaper probe (a = conn)
    JobDone,    ///< worker finishes service (a = worker)
    Deliver,    ///< delayed reply reaches the client (a = reply slot)
  };

  struct Event {
    std::uint64_t t_ns;
    std::uint64_t seq;  ///< schedule order: the deterministic tie-break
    EventKind kind;
    std::uint32_t a;
  };
  struct EventAfter {
    bool operator()(const Event& x, const Event& y) const noexcept {
      return x.t_ns != y.t_ns ? x.t_ns > y.t_ns : x.seq > y.seq;
    }
  };

  enum class ConnState : std::uint8_t {
    Unopened,
    Open,
    Refused,
    ClosedClean,
    Reset,
    IdleClosed,
  };

  struct Conn {
    ConnState state = ConnState::Unopened;
    Behavior behavior = Behavior::Pipelined;
    stats::Rng rng{0, 0};
    ArrivalSpec spec;
    std::uint32_t outstanding = 0;  ///< replies owed to this connection
    std::uint64_t last_activity_ns = 0;
    bool idle_armed = false;
    bool arrivals_live = false;
    std::uint32_t normal_left = 0;  ///< PartialReset: requests before the stub
    std::size_t trace_at = 0;
    /// Slow-loris frames in flight, in send order.
    std::deque<const std::string*> dripping;
    std::uint64_t last_frame_end_ns = 0;
  };

  struct Job {
    const std::string* line;
    std::uint32_t conn;
    std::uint64_t framed_ns;
    std::uint64_t deadline_ns;
  };

  enum class ReplyKind : std::uint8_t { Executed, Overloaded, Deadline };

  struct PendingReply {
    std::uint32_t conn;
    std::uint64_t framed_ns;
    std::uint32_t endpoint;  ///< interned wire-type id
    ReplyKind kind;
  };

  explicit Impl(CampaignOptions opts) : options(std::move(opts)) {
    options.validate();
    serve::ServerOptions so;
    so.threads = 1;  // never started: all execution is on this thread
    so.cache_capacity = options.cache_capacity;
    so.cache_shards = options.cache_shards;
    so.clock = &clock;
    so.online.window_capacity = options.online_window_capacity;
    so.online.nm_evaluations = options.online_nm_evaluations;
    so.online.lm_iterations = options.online_lm_iterations;
    server = std::make_unique<serve::Server>(so);
    pools_predict = make_predict_pool(options.predict_keys);
    pools_params = make_params_pool();
    const WorkloadMix& m = options.workload;
    if (m.predict_batch > 0) pools_batch = make_batch_pool(options.batch_keys);
    if (m.observe > 0 || m.refit > 0)
      pools_observe = make_observe_pool(options.observe_keys, options.seed);
    if (m.policy_advise > 0) pools_policy = make_policy_pool();
    if (m.refit > 0) pools_refit = make_refit_pool();
    if (m.trace > 0) pools_trace = make_trace_pool();
    if (m.bad_json > 0)
      pools_bad = make_bad_json_pool(so.limits.max_request_bytes);
  }

  // ---- configuration + fixed state ----
  CampaignOptions options;
  SimClock clock;
  std::unique_ptr<serve::Server> server;
  std::vector<std::string> pools_predict, pools_batch, pools_observe,
      pools_params, pools_policy, pools_refit, pools_trace, pools_bad;

  // ---- event loop ----
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
  std::uint64_t next_seq = 0;
  std::uint64_t now_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t clock_ns = 0;  ///< SimClock position (advance-only)
  /// Work that must settle before the campaign may finish: scheduled
  /// frames, queued jobs, busy workers, undelivered replies, and
  /// pending resets. The drain phase runs until this returns to zero.
  std::uint64_t pending_work = 0;

  // ---- virtual server ----
  std::deque<Job> light, heavy;
  std::vector<std::uint8_t> worker_busy;
  std::vector<unsigned> worker_credits;
  std::vector<PendingReply> worker_reply;  ///< what each busy worker is doing
  std::vector<PendingReply> reply_slots;   ///< delayed-delivery parking
  std::vector<std::uint32_t> reply_free;

  // ---- clients ----
  std::vector<Conn> conns;
  std::size_t open_count = 0;

  // ---- accounting ----
  CampaignReport report;
  std::vector<std::vector<std::uint64_t>> latencies;  ///< per interned type
  std::vector<std::string> endpoint_names;
  std::map<std::string, std::uint32_t, std::less<>> endpoint_ids;
  std::string scratch;  ///< reusable reply buffer
  stats::Rng service_rng{0, 0};
  bool ran = false;

  // ---- helpers ----

  void schedule(std::uint64_t t_ns, EventKind kind, std::uint32_t a) {
    heap.push(Event{t_ns, next_seq++, kind, a});
  }

  [[nodiscard]] std::uint32_t intern(std::string_view type) {
    const auto it = endpoint_ids.find(type);
    if (it != endpoint_ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(endpoint_names.size());
    endpoint_names.emplace_back(type);
    endpoint_ids.emplace(endpoint_names.back(), id);
    latencies.emplace_back();
    return id;
  }

  void advance_clock_to(std::uint64_t t_ns) {
    if (t_ns > clock_ns) {
      clock.advance(std::chrono::nanoseconds(t_ns - clock_ns));
      clock_ns = t_ns;
    }
  }

  void note_activity(Conn& c, std::uint64_t t_ns) {
    if (t_ns > c.last_activity_ns) c.last_activity_ns = t_ns;
  }

  void arm_idle(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    if (options.idle_timeout_ms <= 0 || c.idle_armed ||
        c.state != ConnState::Open)
      return;
    // Probe at the earliest instant the connection could have gone
    // stale — last activity plus the timeout, NOT now plus the timeout:
    // a re-arm after a near-miss probe must not push the next check a
    // whole extra timeout into the future.
    const std::uint64_t at =
        std::max(t_ns, c.last_activity_ns + to_ns(options.idle_timeout_ms *
                                                  1e-3));
    if (at >= end_ns) return;  // shutdown will close it first
    c.idle_armed = true;
    schedule(at, EventKind::IdleCheck, ci);
  }

  /// Draws one request line for `c` from the workload mix.
  [[nodiscard]] const std::string* draw_line(Conn& c) {
    const WorkloadMix& m = options.workload;
    const double sum = m.predict + m.predict_batch + m.observe + m.params +
                       m.policy_advise + m.refit + m.trace + m.bad_json;
    double r = c.rng.uniform() * sum;
    const auto pick = [&](const std::vector<std::string>& pool)
        -> const std::string* {
      return &pool[static_cast<std::size_t>(c.rng.below(pool.size()))];
    };
    if ((r -= m.predict) < 0.0) return pick(pools_predict);
    if ((r -= m.predict_batch) < 0.0) return pick(pools_batch);
    if ((r -= m.observe) < 0.0) return pick(pools_observe);
    if ((r -= m.params) < 0.0) return pick(pools_params);
    if ((r -= m.policy_advise) < 0.0) return pick(pools_policy);
    if ((r -= m.refit) < 0.0) return pick(pools_refit);
    if ((r -= m.trace) < 0.0)
      return &pools_trace[c.trace_at++ % pools_trace.size()];
    return pick(pools_bad);
  }

  // ---- reply delivery ----

  void finish_reply(const PendingReply& r, std::uint64_t t_ns) {
    Conn& c = conns[r.conn];
    if (c.state == ConnState::Open) {
      ++report.replies_delivered;
      if (r.kind == ReplyKind::Executed) {
        const std::uint64_t lat = t_ns - r.framed_ns;
        latencies[r.endpoint].push_back(lat);
      }
      note_activity(c, t_ns);
    } else {
      ++report.replies_abandoned;
    }
    --c.outstanding;
    if (c.outstanding == 0) arm_idle(r.conn, t_ns);
  }

  void deliver(PendingReply reply, std::uint64_t t_ns) {
    if (options.reply_delay_s <= 0.0) {
      finish_reply(reply, t_ns);
      return;
    }
    std::uint32_t slot;
    if (!reply_free.empty()) {
      slot = reply_free.back();
      reply_free.pop_back();
      reply_slots[slot] = reply;
    } else {
      slot = static_cast<std::uint32_t>(reply_slots.size());
      reply_slots.push_back(reply);
    }
    ++pending_work;
    schedule(t_ns + to_ns(options.reply_delay_s), EventKind::Deliver, slot);
  }

  // ---- the modeled server: admission, lanes, workers ----

  void frame_request(std::uint32_t ci, const std::string* line,
                     std::uint64_t t_ns) {
    Conn& c = conns[ci];
    ++report.requests_framed;
    ++c.outstanding;
    note_activity(c, t_ns);
    const bool is_heavy =
        options.heavy_capacity > 0 &&
        serve::classify_line(*line) == serve::RequestClass::Heavy;
    std::deque<Job>& lane = is_heavy ? heavy : light;
    const std::size_t cap =
        is_heavy ? options.heavy_capacity : options.light_capacity;
    if (lane.size() >= cap) {
      ++report.overloaded;
      ++report.errors_by_code["overloaded"];
      deliver(PendingReply{ci, t_ns, 0, ReplyKind::Overloaded}, t_ns);
      return;
    }
    const int deadline_ms = is_heavy && options.heavy_deadline_ms > 0
                                ? options.heavy_deadline_ms
                                : options.deadline_ms;
    const std::uint64_t deadline =
        deadline_ms > 0 ? t_ns + to_ns(deadline_ms * 1e-3) : kNoDeadline;
    lane.push_back(Job{line, ci, t_ns, deadline});
    if (is_heavy) {
      if (lane.size() > report.max_heavy_depth)
        report.max_heavy_depth = lane.size();
    } else {
      if (lane.size() > report.max_light_depth)
        report.max_light_depth = lane.size();
    }
    ++pending_work;
    dispatch(t_ns);
  }

  /// Executes `job` on this thread through the real server and returns
  /// its modeled service time.
  [[nodiscard]] std::uint64_t execute(const Job& job, std::uint64_t t_ns,
                                      PendingReply& out_reply) {
    advance_clock_to(t_ns);
    const serve::ShardedLruCache::Stats before = server->cache_stats();
    server->handle_into(*job.line, scratch);
    const serve::ShardedLruCache::Stats after = server->cache_stats();
    const bool hit = after.hits > before.hits;
    const bool ok = reply_ok(scratch);
    if (ok) {
      ++report.ok;
    } else {
      ++report.errors_by_code[std::string(reply_error_code(scratch))];
    }
    out_reply.endpoint = intern(request_type(*job.line));
    out_reply.kind = ReplyKind::Executed;
    const ServiceModel& sm = options.service;
    const bool is_heavy =
        serve::classify_line(*job.line) == serve::RequestClass::Heavy;
    std::uint64_t base = sm.light_miss_ns;
    if (hit) base = sm.cached_hit_ns;
    else if (!ok) base = sm.error_reply_ns;
    else if (is_heavy) base = sm.heavy_miss_ns;
    const double jitter =
        sm.jitter_frac > 0.0
            ? 1.0 + sm.jitter_frac * service_rng.uniform()
            : 1.0;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(base) * jitter));
  }

  /// Assigns queued jobs to idle workers (weighted 4:1 light:heavy for
  /// the heavy-capable subset, mirroring serve::Server's credits).
  /// Queue-expired jobs are answered with deadline_exceeded without
  /// occupying a worker, exactly like Server::run_job.
  void dispatch(std::uint64_t t_ns) {
    bool progress = true;
    while (progress && (!light.empty() || !heavy.empty())) {
      progress = false;
      for (int w = 0; w < options.workers; ++w) {
        if (worker_busy[static_cast<std::size_t>(w)]) continue;
        const bool heavy_capable = w < options.heavy_workers;
        for (;;) {
          std::deque<Job>* lane = nullptr;
          bool from_heavy = false;
          if (heavy_capable && !heavy.empty() &&
              (light.empty() || worker_credits[static_cast<std::size_t>(w)] ==
                                    0)) {
            lane = &heavy;
            from_heavy = true;
          } else if (!light.empty()) {
            lane = &light;
          }
          if (lane == nullptr) break;
          Job job = lane->front();
          lane->pop_front();
          --pending_work;
          if (from_heavy) {
            worker_credits[static_cast<std::size_t>(w)] =
                serve::Server::kLightWeight;
          } else if (heavy_capable &&
                     worker_credits[static_cast<std::size_t>(w)] > 0) {
            --worker_credits[static_cast<std::size_t>(w)];
          }
          if (job.deadline_ns != kNoDeadline && t_ns > job.deadline_ns) {
            ++report.deadline_exceeded;
            ++report.errors_by_code["deadline_exceeded"];
            deliver(PendingReply{job.conn, job.framed_ns, 0,
                                 ReplyKind::Deadline},
                    t_ns);
            continue;  // worker is still free; try the next job
          }
          PendingReply reply{job.conn, job.framed_ns, 0, ReplyKind::Executed};
          const std::uint64_t service = execute(job, t_ns, reply);
          worker_busy[static_cast<std::size_t>(w)] = 1;
          worker_reply[static_cast<std::size_t>(w)] = reply;
          ++pending_work;  // busy worker
          schedule(t_ns + service, EventKind::JobDone,
                   static_cast<std::uint32_t>(w));
          progress = true;
          break;
        }
      }
    }
  }

  // ---- client behaviors ----

  void send_request(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    ++report.requests_sent;
    note_activity(c, t_ns);
    const std::string* line = draw_line(c);
    if (c.behavior == Behavior::SlowLoris) {
      const double drip =
          options.slow_loris_drip_s * c.rng.uniform(0.5, 1.5);
      const std::uint64_t frames_at =
          std::max(c.last_frame_end_ns, t_ns) + to_ns(drip);
      c.last_frame_end_ns = frames_at;
      c.dripping.push_back(line);
      ++pending_work;
      schedule(frames_at, EventKind::Frame, ci);
    } else {
      frame_request(ci, line, t_ns);
    }
  }

  void on_open(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    ++report.connections_opened;
    if (options.max_connections > 0 &&
        open_count >= options.max_connections) {
      --report.connections_opened;
      ++report.connections_refused;
      c.state = ConnState::Refused;
      return;
    }
    ++open_count;
    c.state = ConnState::Open;
    note_activity(c, t_ns);
    if (c.behavior == Behavior::IdleCamper) {
      // One request, then silence: the idle reaper's prey.
      send_request(ci, t_ns);
      arm_idle(ci, t_ns);
      return;
    }
    c.arrivals_live = true;
    schedule_next_arrival(ci, t_ns);
    arm_idle(ci, t_ns);
  }

  void schedule_next_arrival(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    const double next_s =
        next_arrival(c.spec, static_cast<double>(t_ns) * 1e-9, c.rng);
    const std::uint64_t next = to_ns(next_s);
    if (!std::isfinite(next_s) || next >= end_ns) {
      c.arrivals_live = false;
      return;
    }
    schedule(next, EventKind::Arrival, ci);
  }

  void on_arrival(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    if (c.state != ConnState::Open) return;
    if (c.behavior == Behavior::PartialReset && c.normal_left == 0) {
      // The stub: a partial frame that will never complete, followed by
      // a client reset. The bytes count as sent, never as framed.
      ++report.requests_sent;
      note_activity(c, t_ns);
      c.arrivals_live = false;
      ++pending_work;
      schedule(t_ns + to_ns(options.partial_reset_after_s), EventKind::Reset,
               ci);
      return;
    }
    send_request(ci, t_ns);
    if (c.behavior == Behavior::PartialReset) --c.normal_left;
    schedule_next_arrival(ci, t_ns);
  }

  void on_frame(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    --pending_work;
    const std::string* line = c.dripping.front();
    c.dripping.pop_front();
    if (c.state != ConnState::Open) return;  // died mid-drip
    frame_request(ci, line, t_ns);
  }

  void on_reset(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    --pending_work;
    if (c.state != ConnState::Open) return;
    c.state = ConnState::Reset;
    ++report.reset_by_client;
    --open_count;
    (void)t_ns;
  }

  void on_idle_check(std::uint32_t ci, std::uint64_t t_ns) {
    Conn& c = conns[ci];
    c.idle_armed = false;
    if (c.state != ConnState::Open || options.idle_timeout_ms <= 0) return;
    const std::uint64_t timeout = to_ns(options.idle_timeout_ms * 1e-3);
    if (c.outstanding == 0 && c.dripping.empty() &&
        t_ns >= c.last_activity_ns + timeout) {
      c.state = ConnState::IdleClosed;
      ++report.idle_closed;
      --open_count;
      return;
    }
    // Activity (or in-flight work) since arming: probe again at the
    // earliest instant the connection could have gone stale.
    if (c.outstanding == 0 && c.dripping.empty()) arm_idle(ci, t_ns);
  }

  void on_job_done(std::uint32_t w, std::uint64_t t_ns) {
    worker_busy[w] = 0;
    --pending_work;
    deliver(worker_reply[w], t_ns);
    dispatch(t_ns);
  }

  void on_deliver(std::uint32_t slot, std::uint64_t t_ns) {
    --pending_work;
    finish_reply(reply_slots[slot], t_ns);
    reply_free.push_back(slot);
  }

  // ---- the main loop ----

  CampaignReport run() {
    end_ns = to_ns(options.virtual_seconds);
    const double ramp =
        std::min(options.open_ramp_s, options.virtual_seconds * 0.5);
    conns.resize(static_cast<std::size_t>(options.connections));
    worker_busy.assign(static_cast<std::size_t>(options.workers), 0);
    worker_credits.assign(static_cast<std::size_t>(options.workers),
                          serve::Server::kLightWeight);
    worker_reply.resize(static_cast<std::size_t>(options.workers));
    service_rng = stats::Rng(options.seed, /*stream=*/3);
    stats::Rng assign_rng(options.seed, /*stream=*/2);

    const BehaviorMix& b = options.behaviors;
    const double bsum =
        b.pipelined + b.slow_loris + b.partial_reset + b.idle_camper;
    for (std::uint32_t i = 0; i < conns.size(); ++i) {
      Conn& c = conns[i];
      c.rng = stats::Rng(options.seed, 1000 + i);
      double r = assign_rng.uniform() * bsum;
      if ((r -= b.pipelined) < 0.0) c.behavior = Behavior::Pipelined;
      else if ((r -= b.slow_loris) < 0.0) c.behavior = Behavior::SlowLoris;
      else if ((r -= b.partial_reset) < 0.0) {
        c.behavior = Behavior::PartialReset;
        c.normal_left = 1 + static_cast<std::uint32_t>(assign_rng.below(8));
      } else {
        c.behavior = Behavior::IdleCamper;
      }
      c.spec = options.arrivals;
      if (options.phase_spread_s > 0.0)
        c.spec.phase_s += assign_rng.uniform(0.0, options.phase_spread_s);
      // Stagger trace cursors one GOP apart, like the loadgen.
      c.trace_at = static_cast<std::size_t>(i) * 13;
      const std::uint64_t open_at =
          ramp > 0.0 ? to_ns(assign_rng.uniform(0.0, ramp)) : 0;
      schedule(open_at, EventKind::Open, i);
    }

    while (!heap.empty()) {
      const Event ev = heap.top();
      heap.pop();
      // Arrival generation has a hard horizon at end_ns; past it the
      // loop only drains — and once nothing is in flight, every
      // remaining event is a stale probe.
      if (ev.t_ns >= end_ns && pending_work == 0 && !arrivals_pending())
        break;
      now_ns = std::max(now_ns, ev.t_ns);
      ++report.events_processed;
      switch (ev.kind) {
        case EventKind::Open: on_open(ev.a, ev.t_ns); break;
        case EventKind::Arrival: on_arrival(ev.a, ev.t_ns); break;
        case EventKind::Frame: on_frame(ev.a, ev.t_ns); break;
        case EventKind::Reset: on_reset(ev.a, ev.t_ns); break;
        case EventKind::IdleCheck: on_idle_check(ev.a, ev.t_ns); break;
        case EventKind::JobDone: on_job_done(ev.a, ev.t_ns); break;
        case EventKind::Deliver: on_deliver(ev.a, ev.t_ns); break;
      }
    }

    // Shutdown: every connection still open closes cleanly.
    for (Conn& c : conns) {
      if (c.state == ConnState::Open) {
        c.state = ConnState::ClosedClean;
        ++report.closed_clean;
        --open_count;
      }
    }

    finalize();
    return report;
  }

  [[nodiscard]] bool arrivals_pending() const {
    for (const Conn& c : conns)
      if (c.arrivals_live) return true;
    return false;
  }

  void finalize() {
    report.seed = options.seed;
    report.virtual_seconds = options.virtual_seconds;
    report.drained_at_s =
        std::max(static_cast<double>(now_ns) * 1e-9, options.virtual_seconds);

    std::vector<std::uint64_t> all;
    for (std::uint32_t id = 0; id < latencies.size(); ++id) {
      all.insert(all.end(), latencies[id].begin(), latencies[id].end());
      report.endpoints[endpoint_names[id]] = summarize(latencies[id]);
    }
    report.total = summarize(all);

    const serve::ShardedLruCache::Stats cache = server->cache_stats();
    report.cache_hits = cache.hits;
    report.cache_misses = cache.misses;
    report.cache_stale = cache.stale;
    report.cache_hit_rate = cache.hit_rate();

    report.dropped_replies = report.requests_framed -
                             report.replies_delivered -
                             report.replies_abandoned;
    report.drain_clean = light.empty() && heavy.empty() &&
                         pending_work == 0 && report.dropped_replies == 0;
    const std::uint64_t terminal = report.closed_clean +
                                   report.reset_by_client +
                                   report.idle_closed;
    report.connections_accounted =
        report.connections_opened + report.connections_refused ==
            static_cast<std::uint64_t>(options.connections) &&
        terminal == report.connections_opened && open_count == 0;
  }
};

Campaign::Campaign(CampaignOptions options)
    : impl_(new Impl(std::move(options))) {}

Campaign::~Campaign() { delete impl_; }

CampaignReport Campaign::run() {
  if (impl_->ran)
    throw std::logic_error("Campaign::run() may be called once");
  impl_->ran = true;
  return impl_->run();
}

// ---- named presets --------------------------------------------------------

CampaignOptions campaign_scenario(const std::string& name) {
  CampaignOptions o;
  if (name == "steady") {
    // The production baseline: Poisson mixed read traffic.
    o.connections = 1000;
    o.virtual_seconds = 10.0;
    o.arrivals = ArrivalSpec::poisson(10.0);
    o.workload.predict = 0.80;
    o.workload.params = 0.10;
    o.workload.policy_advise = 0.10;
  } else if (name == "burst") {
    // Fleet-synchronized ON/OFF bursts slamming the light lane; a
    // queue deadline bounds how stale a burst-tail reply may be.
    o.connections = 2000;
    o.virtual_seconds = 10.0;
    o.arrivals = ArrivalSpec::on_off(80.0, 0.05, 0.45);
    o.light_capacity = 512;
    o.deadline_ms = 20;
    o.workers = 2;
    o.heavy_workers = 1;
    // A deliberately slow box (per-request cost ~50x the measured
    // server): each synchronized burst outruns capacity, so the run
    // exercises overload shedding and queue deadlines, not just the
    // happy path.
    o.service.cached_hit_ns = 20'000;
    o.service.light_miss_ns = 200'000;
    o.service.error_reply_ns = 20'000;
    o.workload.predict = 0.90;
    o.workload.params = 0.10;
  } else if (name == "diurnal") {
    // One slow swell from trough to crest and back.
    o.connections = 1000;
    o.virtual_seconds = 20.0;
    o.arrivals = ArrivalSpec::diurnal(1.0, 25.0, 20.0);
    o.workload.predict = 0.70;
    o.workload.policy_advise = 0.15;
    o.workload.params = 0.15;
  } else if (name == "slow-loris") {
    // Byte-drippers and idle campers squatting on connection slots;
    // idle reaping and the admission cap are the defenses under test.
    o.connections = 2000;
    o.virtual_seconds = 20.0;
    o.arrivals = ArrivalSpec::poisson(2.0);
    o.behaviors.pipelined = 0.40;
    o.behaviors.slow_loris = 0.40;
    o.behaviors.idle_camper = 0.20;
    o.idle_timeout_ms = 2000;
    o.max_connections = 1500;
    o.workload.predict = 0.90;
    o.workload.params = 0.10;
  } else if (name == "adversarial") {
    // Everything at once: synchronized bursts, slow-loris drip,
    // partial-frame resets, campers, malformed JSON, and heavy refits
    // against a deadline-bounded, capacity-bounded server.
    o.connections = 2000;
    o.virtual_seconds = 10.0;
    o.arrivals = ArrivalSpec::on_off(40.0, 0.1, 0.4);
    o.behaviors.pipelined = 0.70;
    o.behaviors.slow_loris = 0.15;
    o.behaviors.partial_reset = 0.10;
    o.behaviors.idle_camper = 0.05;
    o.idle_timeout_ms = 2000;
    o.deadline_ms = 20;
    o.heavy_deadline_ms = 200;
    o.light_capacity = 1024;
    o.workers = 3;
    o.heavy_workers = 1;
    // Slow enough that synchronized bursts saturate the workers: the
    // SLO must hold *because* deadlines and admission shed the excess.
    o.service.cached_hit_ns = 50'000;
    o.service.light_miss_ns = 150'000;
    o.service.error_reply_ns = 30'000;
    // Reset hard on the heels of the partial frame, while earlier
    // requests are still queued — their replies must be accounted as
    // abandoned, never dropped.
    o.partial_reset_after_s = 0.01;
    o.workload.predict = 0.70;
    o.workload.policy_advise = 0.10;
    o.workload.observe = 0.10;
    o.workload.refit = 0.01;
    o.workload.bad_json = 0.04;
    o.workload.params = 0.05;
  } else if (name == "churn") {
    // Live-learning churn: streaming observe + periodic refit keep
    // flipping the parameter generation under cached reads — the
    // generation-scoped invalidation stress test.
    o.connections = 500;
    o.virtual_seconds = 10.0;
    o.arrivals = ArrivalSpec::poisson(20.0);
    o.workers = 6;
    o.heavy_workers = 2;
    o.workload.predict = 0.40;
    o.workload.policy_advise = 0.18;
    o.workload.params = 0.10;
    o.workload.observe = 0.30;
    o.workload.refit = 0.02;
  } else if (name == "million") {
    // The acceptance campaign: 10k connections, ~1.2M requests,
    // synchronized bursts plus a slow-loris / partial-reset / camper
    // adversary mix, deadlines armed — and still SLO-clean.
    o.connections = 10000;
    o.virtual_seconds = 10.0;
    o.open_ramp_s = 2.0;
    o.arrivals = ArrivalSpec::on_off(30.0, 0.2, 0.3);
    o.behaviors.pipelined = 0.90;
    o.behaviors.slow_loris = 0.05;
    o.behaviors.partial_reset = 0.03;
    o.behaviors.idle_camper = 0.02;
    o.idle_timeout_ms = 3000;
    o.deadline_ms = 50;
    o.workers = 8;
    o.heavy_workers = 2;
    o.light_capacity = 4096;
    o.workload.predict = 0.86;
    o.workload.policy_advise = 0.05;
    o.workload.params = 0.05;
    o.workload.observe = 0.03;
    o.workload.bad_json = 0.01;
  } else {
    std::string known;
    for (const auto& n : campaign_scenario_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown campaign scenario \"" + name +
                                "\" (known: " + known + ")");
  }
  return o;
}

std::vector<std::string> campaign_scenario_names() {
  return {"steady",      "burst", "diurnal", "slow-loris",
          "adversarial", "churn", "million"};
}

}  // namespace archline::sim
