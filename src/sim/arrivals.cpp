#include "sim/arrivals.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace archline::sim {

ArrivalSpec ArrivalSpec::poisson(double rate_hz) {
  ArrivalSpec s;
  s.kind = Kind::Poisson;
  s.rate_hz = rate_hz;
  return s;
}

ArrivalSpec ArrivalSpec::on_off(double rate_hz, double on_s, double off_s) {
  ArrivalSpec s;
  s.kind = Kind::OnOff;
  s.rate_hz = rate_hz;
  s.on_s = on_s;
  s.off_s = off_s;
  return s;
}

ArrivalSpec ArrivalSpec::diurnal(double base_rate_hz, double peak_rate_hz,
                                 double period_s) {
  ArrivalSpec s;
  s.kind = Kind::Diurnal;
  s.rate_hz = peak_rate_hz;
  s.base_rate_hz = base_rate_hz;
  s.period_s = period_s;
  return s;
}

double ArrivalSpec::rate_at(double t_s) const noexcept {
  switch (kind) {
    case Kind::Poisson:
      return rate_hz;
    case Kind::OnOff: {
      const double cycle = on_s + off_s;
      double pos = std::fmod(t_s + phase_s, cycle);
      if (pos < 0.0) pos += cycle;
      return pos < on_s ? rate_hz : 0.0;
    }
    case Kind::Diurnal: {
      // Raised cosine: trough at t + phase = 0, crest at period / 2.
      const double theta = 2.0 * M_PI * (t_s + phase_s) / period_s;
      const double blend = 0.5 * (1.0 - std::cos(theta));
      return base_rate_hz + (rate_hz - base_rate_hz) * blend;
    }
  }
  return 0.0;
}

void ArrivalSpec::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("ArrivalSpec: ") + what);
  };
  if (!std::isfinite(rate_hz) || rate_hz <= 0.0) fail("rate_hz must be > 0");
  switch (kind) {
    case Kind::Poisson:
      break;
    case Kind::OnOff:
      if (!std::isfinite(on_s) || on_s <= 0.0) fail("on_s must be > 0");
      if (!std::isfinite(off_s) || off_s < 0.0) fail("off_s must be >= 0");
      break;
    case Kind::Diurnal:
      if (!std::isfinite(period_s) || period_s <= 0.0)
        fail("period_s must be > 0");
      if (!std::isfinite(base_rate_hz) || base_rate_hz < 0.0)
        fail("base_rate_hz must be >= 0");
      if (base_rate_hz > rate_hz) fail("base_rate_hz must be <= rate_hz");
      break;
  }
  if (!std::isfinite(phase_s)) fail("phase_s must be finite");
}

double next_arrival(const ArrivalSpec& spec, double t_s, stats::Rng& rng) {
  const double peak = spec.peak_rate();
  if (!(peak > 0.0)) return std::numeric_limits<double>::infinity();
  // Lewis–Shedler thinning: candidate points at the peak rate, each
  // kept with probability lambda(t)/peak. For the constant-rate Poisson
  // the acceptance test is certain, so the homogeneous case costs
  // exactly one exponential draw — and every kind shares one exact
  // code path.
  double t = t_s;
  for (;;) {
    t += rng.exponential(peak);
    const double lambda = spec.rate_at(t);
    if (lambda >= peak) return t;  // skip the uniform when certain
    if (rng.uniform() * peak < lambda) return t;
  }
}

}  // namespace archline::sim
