#pragma once
// Instruction-pipeline efficiency model: what fraction of vendor peak a
// microbenchmark configuration achieves.
//
// The paper's microbenchmarks were hand-tuned per platform — "unrolling...
// use of fused-multiply adds where available; tuning the instruction
// selection and instruction mix... prefetching; and resorting to assembly
// where needed" (§IV-e). We reproduce that tuning story with an explicit
// model: a TuneConfig describes a candidate kernel implementation, and
// flop_/mem_efficiency map it to the achieved fraction of peak. The best
// configuration over the search space achieves exactly the platform's
// sustained fraction from Table I, so microbench::tune has a real optimum
// to discover.

#include "platforms/spec.hpp"

namespace archline::sim {

/// A candidate microbenchmark implementation.
struct TuneConfig {
  int unroll = 1;           ///< loop unroll factor (1..32, power of two)
  bool fma = false;         ///< use fused multiply-add
  int vector_width = 1;     ///< SIMD lanes used (1..max)
  bool prefetch = false;    ///< software prefetch / directed prefetcher
  bool asm_tuned = false;   ///< hand-scheduled assembly inner loop

  [[nodiscard]] bool operator==(const TuneConfig&) const = default;
};

/// Per-platform tuning landscape.
struct TuningTraits {
  double best_flop_fraction = 1.0;  ///< sustained/peak flops at optimum
  double best_mem_fraction = 1.0;   ///< sustained/peak bandwidth at optimum
  bool fma_required = true;         ///< non-FMA halves flop rate
  int max_vector = 8;               ///< SIMD lanes at this precision
  double loop_overhead = 2.0;       ///< per-iteration overhead "a":
                                    ///<   unroll gain = u / (u + a)
  double asm_gain = 0.10;           ///< fraction lost without asm tuning
  double prefetch_gain = 0.25;      ///< bandwidth lost without prefetch
  int max_unroll = 32;
};

/// Fraction of vendor peak flop/s achieved by `config` (in (0, best]).
[[nodiscard]] double flop_efficiency(const TuningTraits& traits,
                                     const TuneConfig& config);

/// Fraction of vendor peak bandwidth achieved by `config`.
[[nodiscard]] double mem_efficiency(const TuningTraits& traits,
                                    const TuneConfig& config);

/// The configuration that attains the traits' best fractions.
[[nodiscard]] TuneConfig best_config(const TuningTraits& traits) noexcept;

/// Derives a tuning landscape for a Table I platform: the optimum matches
/// the platform's published sustained fractions; the landscape shape is
/// set by device class (GPUs punish scalar code harder, ARM cores have
/// higher loop overhead, etc.).
[[nodiscard]] TuningTraits traits_for(const platforms::PlatformSpec& spec,
                                      core::Precision precision);

}  // namespace archline::sim
