#pragma once
// Arrival processes for simulated traffic campaigns (sim::Campaign).
//
// A campaign drives tens of thousands of virtual connections through
// the serve stack in virtual time; each connection draws its request
// initiation instants from an ArrivalProcess. Three families cover the
// load shapes the SLO harness cares about:
//
//   * Poisson    — open-loop memoryless traffic at a constant rate;
//                  the baseline "steady production" shape.
//   * OnOff      — bursty duty cycles: silence for off_s, then a burst
//                  window of on_s at rate_hz. With phase 0 on every
//                  connection the bursts synchronize across the fleet —
//                  the adversarial thundering-herd case the race-to-idle
//                  literature (arXiv 2507.20063) shows flips policy
//                  conclusions.
//   * Diurnal    — a raised-cosine ramp between base_rate_hz and
//                  rate_hz over period_s: the slow swell that exercises
//                  admission and cache warmth at both extremes.
//
// Sampling is Lewis–Shedler thinning against the peak rate, so all
// three families share one exact, allocation-free sampler whose draws
// come only from the caller's Rng — identical seeds yield identical
// arrival sequences, which is what makes CampaignReports byte-identical
// across runs.

#include <cstdint>

#include "stats/rng.hpp"

namespace archline::sim {

/// Declarative description of one connection's arrival process. A
/// plain struct (no virtuals) so campaign configs can be compared,
/// logged, and built from CLI flags without a factory layer.
struct ArrivalSpec {
  enum class Kind : std::uint8_t { Poisson, OnOff, Diurnal };

  Kind kind = Kind::Poisson;

  /// Peak request rate [1/s]: the Poisson rate, the in-burst OnOff
  /// rate, or the Diurnal crest rate. Must be > 0.
  double rate_hz = 10.0;

  /// Diurnal trough rate [1/s]; ignored by the other kinds.
  double base_rate_hz = 0.0;

  /// OnOff burst / silence windows [s].
  double on_s = 0.1;
  double off_s = 0.9;

  /// Diurnal period [s].
  double period_s = 10.0;

  /// Per-connection phase offset [s], added to t before evaluating the
  /// OnOff / Diurnal envelope. 0 on every connection synchronizes the
  /// bursts (the adversarial default); a campaign can spread phases to
  /// model uncorrelated clients.
  double phase_s = 0.0;

  [[nodiscard]] static ArrivalSpec poisson(double rate_hz);
  [[nodiscard]] static ArrivalSpec on_off(double rate_hz, double on_s,
                                          double off_s);
  [[nodiscard]] static ArrivalSpec diurnal(double base_rate_hz,
                                           double peak_rate_hz,
                                           double period_s);

  /// Instantaneous rate lambda(t) [1/s] at absolute virtual time t [s].
  [[nodiscard]] double rate_at(double t_s) const noexcept;

  /// The thinning envelope: max over t of rate_at(t).
  [[nodiscard]] double peak_rate() const noexcept { return rate_hz; }

  /// Throws std::invalid_argument on non-positive rates/windows or a
  /// Diurnal base above the peak.
  void validate() const;
};

/// Next arrival strictly after t_s for `spec`, by thinning against
/// peak_rate(). Consumes rng draws; deterministic given (spec, t_s,
/// rng state). Returns infinity when the process can never fire
/// (peak rate 0).
[[nodiscard]] double next_arrival(const ArrivalSpec& spec, double t_s,
                                  stats::Rng& rng);

}  // namespace archline::sim
