#include "sim/fault.hpp"

#include <cerrno>

namespace archline::sim {

FaultyTransport::FaultyTransport(FaultScript script)
    : FaultyTransport(script, serve::real_socket_ops()) {}

FaultyTransport::FaultyTransport(FaultScript script, serve::SocketOps& inner)
    : script_(script), inner_(inner), rng_(script.seed) {}

bool FaultyTransport::roll(double p) noexcept {
  if (p <= 0.0) return false;
  return rng_.uniform() < p;
}

std::size_t FaultyTransport::maybe_cut(
    std::size_t len, double p, std::atomic<std::uint64_t>& hit) noexcept {
  if (script_.max_chunk > 0 && len > script_.max_chunk)
    len = script_.max_chunk;
  if (len > 1 && roll(p)) {
    hit.fetch_add(1, std::memory_order_relaxed);
    len = 1 + static_cast<std::size_t>(rng_.below(len - 1));
  }
  return len;
}

int FaultyTransport::accept(int listen_fd) noexcept {
  counters_.accept_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.accept_fail)) {
    counters_.accept_failures.fetch_add(1, std::memory_order_relaxed);
    errno = EMFILE;
    return -1;
  }
  return inner_.accept(listen_fd);
}

ssize_t FaultyTransport::recv(int fd, char* buf, std::size_t len) noexcept {
  counters_.recv_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.reset)) {
    counters_.resets.fetch_add(1, std::memory_order_relaxed);
    errno = ECONNRESET;
    return -1;
  }
  if (roll(script_.eagain)) {
    counters_.eagains.fetch_add(1, std::memory_order_relaxed);
    errno = EAGAIN;
    return -1;
  }
  return inner_.recv(
      fd, buf, maybe_cut(len, script_.split_read, counters_.split_reads));
}

ssize_t FaultyTransport::send(int fd, const char* buf,
                              std::size_t len) noexcept {
  counters_.send_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.reset)) {
    counters_.resets.fetch_add(1, std::memory_order_relaxed);
    errno = ECONNRESET;
    return -1;
  }
  if (roll(script_.eagain)) {
    counters_.eagains.fetch_add(1, std::memory_order_relaxed);
    errno = EAGAIN;
    return -1;
  }
  return inner_.send(
      fd, buf, maybe_cut(len, script_.short_write, counters_.short_writes));
}

ssize_t FaultyTransport::sendv(int fd, const struct iovec* iov,
                               int iovcnt) noexcept {
  counters_.send_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.reset)) {
    counters_.resets.fetch_add(1, std::memory_order_relaxed);
    errno = ECONNRESET;
    return -1;
  }
  if (roll(script_.eagain)) {
    counters_.eagains.fetch_add(1, std::memory_order_relaxed);
    errno = EAGAIN;
    return -1;
  }
  std::size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  if (total == 0) return 0;
  const std::size_t allowed =
      maybe_cut(total, script_.short_write, counters_.short_writes);
  if (allowed == total) return inner_.sendv(fd, iov, iovcnt);
  // Trim the gather list to `allowed` bytes: the cut can land inside a
  // reply body or exactly between two batched replies — both are
  // offsets the kernel could stop at.
  std::vector<struct iovec> trimmed;
  trimmed.reserve(static_cast<std::size_t>(iovcnt));
  std::size_t remaining = allowed;
  for (int i = 0; i < iovcnt && remaining > 0; ++i) {
    struct iovec seg = iov[i];
    if (seg.iov_len > remaining) seg.iov_len = remaining;
    remaining -= seg.iov_len;
    if (seg.iov_len > 0) trimmed.push_back(seg);
  }
  return inner_.sendv(fd, trimmed.data(),
                      static_cast<int>(trimmed.size()));
}

// ---- ShardedFaultyTransport ----------------------------------------------

ShardedFaultyTransport::ShardedFaultyTransport(FaultScript script)
    : ShardedFaultyTransport(script, serve::real_socket_ops()) {}

ShardedFaultyTransport::ShardedFaultyTransport(FaultScript script,
                                               serve::SocketOps& inner)
    : script_(script), inner_(inner) {}

FaultyTransport& ShardedFaultyTransport::child() noexcept {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, transport] : children_)
    if (id == me) return *transport;
  FaultScript script = script_;
  script.seed = script_.seed + children_.size() * 1000003u;
  children_.emplace_back(me,
                         std::make_unique<FaultyTransport>(script, inner_));
  return *children_.back().second;
}

int ShardedFaultyTransport::accept(int listen_fd) noexcept {
  return child().accept(listen_fd);
}

ssize_t ShardedFaultyTransport::recv(int fd, char* buf,
                                     std::size_t len) noexcept {
  return child().recv(fd, buf, len);
}

ssize_t ShardedFaultyTransport::send(int fd, const char* buf,
                                     std::size_t len) noexcept {
  return child().send(fd, buf, len);
}

ssize_t ShardedFaultyTransport::sendv(int fd, const struct iovec* iov,
                                      int iovcnt) noexcept {
  return child().sendv(fd, iov, iovcnt);
}

ShardedFaultyTransport::Totals ShardedFaultyTransport::totals() const {
  Totals t;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, transport] : children_) {
    const FaultCounters& c = transport->counters();
    t.recv_calls += c.recv_calls.load(std::memory_order_relaxed);
    t.send_calls += c.send_calls.load(std::memory_order_relaxed);
    t.accept_calls += c.accept_calls.load(std::memory_order_relaxed);
    t.split_reads += c.split_reads.load(std::memory_order_relaxed);
    t.short_writes += c.short_writes.load(std::memory_order_relaxed);
    t.eagains += c.eagains.load(std::memory_order_relaxed);
    t.resets += c.resets.load(std::memory_order_relaxed);
    t.accept_failures += c.accept_failures.load(std::memory_order_relaxed);
  }
  return t;
}

std::size_t ShardedFaultyTransport::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return children_.size();
}

}  // namespace archline::sim
