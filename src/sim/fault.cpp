#include "sim/fault.hpp"

#include <cerrno>

namespace archline::sim {

FaultyTransport::FaultyTransport(FaultScript script)
    : FaultyTransport(script, serve::real_socket_ops()) {}

FaultyTransport::FaultyTransport(FaultScript script, serve::SocketOps& inner)
    : script_(script), inner_(inner), rng_(script.seed) {}

bool FaultyTransport::roll(double p) noexcept {
  if (p <= 0.0) return false;
  return rng_.uniform() < p;
}

std::size_t FaultyTransport::maybe_cut(
    std::size_t len, double p, std::atomic<std::uint64_t>& hit) noexcept {
  if (script_.max_chunk > 0 && len > script_.max_chunk)
    len = script_.max_chunk;
  if (len > 1 && roll(p)) {
    hit.fetch_add(1, std::memory_order_relaxed);
    len = 1 + static_cast<std::size_t>(rng_.below(len - 1));
  }
  return len;
}

int FaultyTransport::accept(int listen_fd) noexcept {
  counters_.accept_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.accept_fail)) {
    counters_.accept_failures.fetch_add(1, std::memory_order_relaxed);
    errno = EMFILE;
    return -1;
  }
  return inner_.accept(listen_fd);
}

ssize_t FaultyTransport::recv(int fd, char* buf, std::size_t len) noexcept {
  counters_.recv_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.reset)) {
    counters_.resets.fetch_add(1, std::memory_order_relaxed);
    errno = ECONNRESET;
    return -1;
  }
  if (roll(script_.eagain)) {
    counters_.eagains.fetch_add(1, std::memory_order_relaxed);
    errno = EAGAIN;
    return -1;
  }
  return inner_.recv(
      fd, buf, maybe_cut(len, script_.split_read, counters_.split_reads));
}

ssize_t FaultyTransport::send(int fd, const char* buf,
                              std::size_t len) noexcept {
  counters_.send_calls.fetch_add(1, std::memory_order_relaxed);
  if (roll(script_.reset)) {
    counters_.resets.fetch_add(1, std::memory_order_relaxed);
    errno = ECONNRESET;
    return -1;
  }
  if (roll(script_.eagain)) {
    counters_.eagains.fetch_add(1, std::memory_order_relaxed);
    errno = EAGAIN;
    return -1;
  }
  return inner_.send(
      fd, buf, maybe_cut(len, script_.short_write, counters_.short_writes));
}

}  // namespace archline::sim
