#pragma once
// SimMachine: a parameterized stand-in for one physical platform.
//
// A SimMachine executes a KernelDesc and produces (a) the true wall time
// and (b) a continuous multi-rail power trace, which the powermon stack
// then samples and integrates — exactly the signal path of the paper's
// physical setup (Fig. 3). Ground truth follows the physics the paper's
// model idealizes (rate limits, power cap, constant power) plus the
// second-order effects it reports (ramp transients, noise, OS bursts,
// cap-region efficiency droop).

#include <optional>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/memory.hpp"
#include "powermon/trace.hpp"
#include "sim/kernel.hpp"
#include "sim/noise.hpp"
#include "sim/power_governor.hpp"
#include "stats/rng.hpp"

namespace archline::sim {

/// Per-flop costs for one precision.
struct FlopCosts {
  double tau = 0.0;  ///< s/flop at sustained peak
  double eps = 0.0;  ///< J/flop
};

/// Per-byte costs and capacity for one memory level.
struct LevelCosts {
  double tau_byte = 0.0;       ///< s/B at sustained bandwidth
  double eps_byte = 0.0;       ///< J/B for a READ byte
  double capacity_bytes = 0.0; ///< 0 = unbounded (DRAM)

  /// Energy of a written byte relative to a read byte. The paper's model
  /// "does not differentiate reads and writes" and treats eps_mem as
  /// their average (§V-B); the simulator CAN differentiate (writes cost
  /// ~1.2-2x on real DRAM), which lets the rw-split ablation measure the
  /// bias that averaging introduces.
  double write_energy_factor = 1.0;
};

/// Per-access costs for the random (pointer-chase) path.
struct RandomCosts {
  double tau_access = 0.0;  ///< s/access at sustained rate
  double eps_access = 0.0;  ///< J/access
};

struct SimConfig {
  std::string name;

  FlopCosts sp;
  std::optional<FlopCosts> dp;

  LevelCosts dram;
  std::optional<LevelCosts> l1;
  std::optional<LevelCosts> l2;
  std::optional<RandomCosts> random;

  double pi1 = 0.0;       ///< constant power [W]
  double delta_pi = core::kUncapped;  ///< usable power cap [W]

  NoiseModel noise;
  std::vector<powermon::RailSplit> rails;
  double ramp_time_s = 1e-3;  ///< power ramp at kernel start

  void validate() const;
};

/// The outcome of one simulated kernel execution.
struct RunResult {
  KernelDesc kernel;
  double true_time = 0.0;              ///< noisy wall time [s]
  double true_energy = 0.0;            ///< exact integral of the trace [J]
  core::Regime regime = core::Regime::Compute;
  double utilization = 1.0;            ///< governor utilization
  powermon::Capture capture;           ///< multi-rail ground-truth trace
};

class SimMachine {
 public:
  explicit SimMachine(SimConfig cfg);

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return cfg_.name; }

  /// Executes a kernel, producing time + power trace with all nonideality
  /// and noise applied. Deterministic given the rng state.
  [[nodiscard]] RunResult run(const KernelDesc& kernel,
                              stats::Rng& rng) const;

  /// Captures the machine at rest for `duration` seconds: a constant
  /// pi1-level trace (plus noise and any OS interference). This is the
  /// paper's idle-power measurement (Table I column 6 parentheticals).
  [[nodiscard]] powermon::Capture idle_capture(double duration,
                                               stats::Rng& rng) const;

  /// Noise-free execution time (physics only: rate limits + governor +
  /// droop). Used by tests to compare against core::roofline.
  [[nodiscard]] double ideal_time(const KernelDesc& kernel) const;

  /// Noise-free total energy over the run (active + pi1 * time; droop
  /// applied, ramp ignored).
  [[nodiscard]] double ideal_energy(const KernelDesc& kernel) const;

  /// Byte costs used for a kernel's level; throws if the level is absent.
  [[nodiscard]] const LevelCosts& level_costs(core::MemLevel level) const;

  /// The level a working set of the given size actually lands in when the
  /// kernel targets `requested`: a footprint larger than the requested
  /// cache level's capacity spills outward (L1 -> L2 -> DRAM), exactly
  /// what mis-sized cache microbenchmarks suffer on real hardware.
  [[nodiscard]] core::MemLevel effective_level(
      core::MemLevel requested, double working_set_bytes) const;

  /// True if this machine supports the kernel (precision, level, pattern).
  [[nodiscard]] bool supports(const KernelDesc& kernel) const noexcept;

 private:
  struct Demand {
    double t_flop = 0.0;
    double t_mem = 0.0;
    double active_energy = 0.0;
  };
  /// Full-rate times and active energy for the kernel (pre-governor).
  [[nodiscard]] Demand demand(const KernelDesc& kernel) const;
  /// Governor + droop applied; returns {time, active_energy, decision}.
  struct Governed {
    double time = 0.0;
    double active_energy = 0.0;
    GovernorDecision decision;
  };
  [[nodiscard]] Governed governed(const KernelDesc& kernel) const;

  SimConfig cfg_;
};

}  // namespace archline::sim
