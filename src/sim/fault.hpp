#pragma once
// Deterministic fault injection for the serve TCP event loop.
//
// FaultyTransport sits in the serve::SocketOps seam (TcpOptions::
// socket_ops) and perturbs the loop's accept/recv/send calls from a
// seeded script: reads split at arbitrary byte offsets, writes cut
// short, spurious EAGAINs, mid-frame connection resets, and accept
// failures. Every perturbation the kernel or a hostile peer could
// produce at the syscall boundary becomes a reproducible unit-test
// input — the regression harness for the connection-lifecycle bug
// class fixed in the epoll rewrite (dropped final un-terminated line,
// per-line vs total-buffer too_large, half-close ordering).
//
// Determinism contract: a FaultyTransport draws from one stats::Rng
// (PCG32) seeded by FaultScript::seed, consumed in call order. The
// event loop is single-threaded, so call order is deterministic given
// a deterministic peer; identical seeds + identical traffic =>
// identical fault sequences.
//
// Safety: the loop is level-triggered, so injected EAGAINs and short
// counts are always recoverable — epoll re-fires until the real fd
// drains. Injected resets intentionally are NOT recoverable; that is
// the point of a reset.

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/tcp.hpp"
#include "stats/rng.hpp"

namespace archline::sim {

/// Per-syscall fault probabilities, all in [0, 1]. Defaults are all
/// zero: a default FaultScript is a transparent pass-through.
struct FaultScript {
  std::uint64_t seed = 1;

  /// P(recv is capped at a uniform length in [1, n)): splits framed
  /// requests at arbitrary byte offsets, including inside a JSON token.
  double split_read = 0.0;
  /// P(send is capped at a uniform length in [1, n)): partial writes,
  /// forcing the loop through its EPOLLOUT re-arm path mid-response.
  double short_write = 0.0;
  /// P(recv/send returns -1 with EAGAIN even though the fd is ready).
  double eagain = 0.0;
  /// P(recv/send returns -1 with ECONNRESET): a mid-frame reset. The
  /// real fd is untouched; the loop's destroy path closes it.
  double reset = 0.0;
  /// P(accept returns -1 with EMFILE). The pending connection stays in
  /// the backlog; the level-triggered listen fd re-fires, so admission
  /// is delayed, never lost.
  double accept_fail = 0.0;
  /// Hard cap on bytes moved per recv/send (0 = unlimited). Set to 1
  /// for full byte-at-a-time torture independent of the probabilities.
  std::size_t max_chunk = 0;
};

/// Counts of injected faults and forwarded calls — atomics because
/// tests read them from outside the event-loop thread.
struct FaultCounters {
  std::atomic<std::uint64_t> recv_calls{0};
  std::atomic<std::uint64_t> send_calls{0};
  std::atomic<std::uint64_t> accept_calls{0};
  std::atomic<std::uint64_t> split_reads{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> eagains{0};
  std::atomic<std::uint64_t> resets{0};
  std::atomic<std::uint64_t> accept_failures{0};

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return split_reads.load() + short_writes.load() + eagains.load() +
           resets.load() + accept_failures.load();
  }
};

/// serve::SocketOps decorator applying a FaultScript to an inner
/// implementation (the real kernel API by default). Not thread-safe by
/// design: it must only be called from the event-loop thread, which is
/// already the SocketOps contract. Counters may be read from anywhere.
class FaultyTransport final : public serve::SocketOps {
 public:
  explicit FaultyTransport(FaultScript script);
  FaultyTransport(FaultScript script, serve::SocketOps& inner);

  [[nodiscard]] int accept(int listen_fd) noexcept override;
  [[nodiscard]] ssize_t recv(int fd, char* buf,
                             std::size_t len) noexcept override;
  [[nodiscard]] ssize_t send(int fd, const char* buf,
                             std::size_t len) noexcept override;
  /// Scatter-gather send with the same fault model as send(): one
  /// reset/eagain roll per call, then a short-write cut applied to the
  /// TOTAL gathered length — so writev batching still gets torn at
  /// arbitrary byte offsets, including inside a reply and between two
  /// batched replies.
  [[nodiscard]] ssize_t sendv(int fd, const struct iovec* iov,
                              int iovcnt) noexcept override;

  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }

 private:
  /// One Bernoulli draw. Skips the RNG entirely at p == 0 so a
  /// pass-through script consumes no randomness (scripts stay
  /// comparable when one probability is toggled).
  [[nodiscard]] bool roll(double p) noexcept;

  /// Applies max_chunk and, with probability p, a uniform cut in
  /// [1, len). Never returns 0 — a zero-length recv would read as EOF.
  [[nodiscard]] std::size_t maybe_cut(std::size_t len, double p,
                                      std::atomic<std::uint64_t>& hit)
      noexcept;

  FaultScript script_;
  serve::SocketOps& inner_;
  stats::Rng rng_;
  FaultCounters counters_;
};

/// FaultyTransport for sharded event loops (TcpOptions::shards > 1,
/// where every shard thread calls the SocketOps seam concurrently):
/// each calling thread lazily gets its OWN FaultyTransport child,
/// seeded `script.seed + k * 1000003` in first-call order, so every
/// shard sees an independent deterministic fault stream and no RNG
/// state is ever shared across threads.
///
/// Determinism is per-thread, not global: which connections land on
/// which shard (and therefore which stream perturbs them) depends on
/// kernel REUSEPORT hashing / accept order. Campaigns against sharded
/// loops assert protocol correctness under faults, not byte-identical
/// fault placement across runs — use a single shard (or one
/// FaultyTransport) when the exact fault sequence must replay.
class ShardedFaultyTransport final : public serve::SocketOps {
 public:
  explicit ShardedFaultyTransport(FaultScript script);
  ShardedFaultyTransport(FaultScript script, serve::SocketOps& inner);

  [[nodiscard]] int accept(int listen_fd) noexcept override;
  [[nodiscard]] ssize_t recv(int fd, char* buf,
                             std::size_t len) noexcept override;
  [[nodiscard]] ssize_t send(int fd, const char* buf,
                             std::size_t len) noexcept override;
  [[nodiscard]] ssize_t sendv(int fd, const struct iovec* iov,
                              int iovcnt) noexcept override;

  /// Aggregated fault totals across every per-thread child (plain
  /// values, safe to compare in tests after the loop has stopped).
  struct Totals {
    std::uint64_t recv_calls = 0;
    std::uint64_t send_calls = 0;
    std::uint64_t accept_calls = 0;
    std::uint64_t split_reads = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t eagains = 0;
    std::uint64_t resets = 0;
    std::uint64_t accept_failures = 0;

    [[nodiscard]] std::uint64_t injected() const noexcept {
      return split_reads + short_writes + eagains + resets + accept_failures;
    }
  };
  [[nodiscard]] Totals totals() const;

  /// Number of distinct threads that have called through so far.
  [[nodiscard]] std::size_t thread_count() const;

 private:
  /// The calling thread's child, created on first use. A mutex-guarded
  /// id lookup per call — fine for fault campaigns, which measure
  /// correctness, not throughput.
  [[nodiscard]] FaultyTransport& child() noexcept;

  FaultScript script_;
  serve::SocketOps& inner_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<FaultyTransport>>>
      children_;
};

}  // namespace archline::sim
