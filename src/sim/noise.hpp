#pragma once
// Nonideality and noise models for simulated machines.
//
// Three effects, each tied to a phenomenon the paper reports:
//  * multiplicative Gaussian measurement noise on run time and power
//    (ordinary run-to-run variation on all platforms);
//  * OS interference: random lognormal power bursts (the NUC GPU, whose
//    Windows-only OpenCL driver left no user-level power management —
//    §V-C footnote 5);
//  * cap-region efficiency droop: when the power governor throttles, real
//    hardware shows utilization-dependent per-op energy instead of the
//    model's constants (the Arndale GPU's mid-intensity mismatch, §V-C).

#include "stats/rng.hpp"

namespace archline::sim {

struct NoiseModel {
  double time_rel_sd = 0.01;   ///< relative sd of run-time noise
  double power_rel_sd = 0.01;  ///< relative sd of steady-power noise

  /// OS interference bursts per second (0 disables).
  double os_burst_rate_hz = 0.0;
  double os_burst_watts = 0.0;       ///< mean burst amplitude
  double os_burst_duration_s = 2e-3; ///< mean burst length

  /// Cap-region efficiency droop strength eta in [0, 1): when throttled to
  /// utilization u < 1, per-op energy inflates by (1 + eta * (1 - u)).
  double cap_droop_eta = 0.0;

  /// Draws a multiplicative noise factor exp(N(0, sd)) (lognormal keeps
  /// times/powers positive and is symmetric in log space).
  [[nodiscard]] static double factor(stats::Rng& rng, double sd) {
    if (sd <= 0.0) return 1.0;
    return rng.lognormal(0.0, sd);
  }
};

}  // namespace archline::sim
