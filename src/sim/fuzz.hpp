#pragma once
// Structure-aware protocol fuzzer for the serve request path.
//
// The campaign mutates lines from the golden corpus (real requests for
// every endpoint, so mutants start structurally close to valid) and
// replays them through Server::handle_into in-process — no sockets, no
// forked target — asserting the protocol contract from protocol.hpp:
// handle_line never throws and never crashes, and every reply is one
// line of valid JSON that is either {"ok":true,...} or {"ok":false,
// "error":<known code>,...}. Run under ASan+UBSan (the CI fuzz-smoke
// stage) the "no crash/UB" half of the contract is machine-checked too.
//
// Reproducibility: iteration k of a campaign draws every random choice
// from stats::Rng(seed, k) — its own PCG32 stream. A finding therefore
// reproduces byte-identically from (seed, k) alone, independent of how
// many iterations ran before it: `serve_fuzz --seed S --begin k
// --iters 1` rebuilds the exact input.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/rng.hpp"

namespace archline::serve {
class Server;
}

namespace archline::sim {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 50000;
  /// First iteration index (the campaign covers [begin, begin +
  /// iterations)); lets a rerun jump straight to a finding's index.
  std::size_t begin = 0;
  /// Mutations stacked per generated input, uniform in [1, max].
  int max_mutations = 4;
  /// Stop after this many findings (0 = collect all).
  std::size_t max_findings = 16;
};

/// One contract violation: the input line that produced it and why the
/// reply was unacceptable.
struct FuzzFinding {
  std::size_t iteration = 0;  ///< absolute index; reproduces the input
  std::string input;
  std::string reply;
  std::string why;
};

struct FuzzReport {
  std::size_t iterations = 0;
  std::size_t ok_replies = 0;     ///< parsed with "ok":true
  std::size_t error_replies = 0;  ///< parsed with "ok":false, known code
  std::vector<FuzzFinding> findings;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// The mutation engine, exposed for the JSON round-trip test and for
/// rebuilding a finding's input from (seed, iteration): picks a corpus
/// line and stacks 1..max_mutations random operators (truncate, splice
/// with another corpus line, byte flip/insert/delete — including NUL
/// and newline bytes — bracket/quote structure flips, digit-run
/// replacement with oversized numbers, string-field inflation, deep
///-nesting injection). Deterministic in (corpus, rng state).
[[nodiscard]] std::string mutate_line(const std::vector<std::string>& corpus,
                                      stats::Rng& rng, int max_mutations);

/// Is `reply` an acceptable protocol response? Valid one-line JSON
/// object with a boolean "ok"; when false, "error" must be one of the
/// protocol's stable codes. On rejection fills `why` (may be null).
[[nodiscard]] bool reply_acceptable(std::string_view reply,
                                    std::string* why);

/// Runs the campaign against `server` (started or not — replies are
/// evaluated synchronously on this thread via handle_into, same cache
/// and metrics path as the worker pool). The corpus must be non-empty.
[[nodiscard]] FuzzReport run_fuzz(serve::Server& server,
                                  const std::vector<std::string>& corpus,
                                  const FuzzOptions& options);

/// Loads a corpus file (one request per line, blank lines skipped).
/// Returns an empty vector when the file cannot be read.
[[nodiscard]] std::vector<std::string> load_corpus(const std::string& path);

}  // namespace archline::sim
