#include "sim/factory.hpp"

namespace archline::sim {

namespace {

LevelCosts level_from(const platforms::EnergyPoint& pt, double capacity) {
  return LevelCosts{.tau_byte = 1.0 / pt.throughput,
                    .eps_byte = pt.energy_per_op,
                    .capacity_bytes = capacity};
}

std::vector<powermon::RailSplit> rails_for(platforms::DeviceClass c) {
  switch (c) {
    case platforms::DeviceClass::ServerCpu:
      return powermon::cpu_rails();
    case platforms::DeviceClass::DesktopGpu:
    case platforms::DeviceClass::Manycore:
      return powermon::discrete_gpu_rails();
    case platforms::DeviceClass::MobileCpu:
    case platforms::DeviceClass::MobileGpu:
      return powermon::mobile_board_rails();
  }
  return powermon::mobile_board_rails();
}

}  // namespace

double default_l1_capacity(platforms::DeviceClass c) noexcept {
  switch (c) {
    case platforms::DeviceClass::ServerCpu: return 32.0 * 1024;
    case platforms::DeviceClass::MobileCpu: return 32.0 * 1024;
    case platforms::DeviceClass::DesktopGpu: return 48.0 * 1024;  // shared mem
    case platforms::DeviceClass::MobileGpu: return 32.0 * 1024;   // scratchpad
    case platforms::DeviceClass::Manycore: return 32.0 * 1024;
  }
  return 32.0 * 1024;
}

double default_l2_capacity(platforms::DeviceClass c) noexcept {
  switch (c) {
    case platforms::DeviceClass::ServerCpu: return 256.0 * 1024;
    case platforms::DeviceClass::MobileCpu: return 512.0 * 1024;
    case platforms::DeviceClass::DesktopGpu: return 1536.0 * 1024;
    case platforms::DeviceClass::MobileGpu: return 256.0 * 1024;
    case platforms::DeviceClass::Manycore: return 512.0 * 1024;
  }
  return 256.0 * 1024;
}

NonidealityProfile default_nonidealities(const platforms::PlatformSpec& spec) {
  NonidealityProfile p;
  p.noise.time_rel_sd = 0.008;
  p.noise.power_rel_sd = 0.008;
  if (spec.name == "NUC GPU") {
    // §V-C fn. 5: Windows-only OpenCL driver, no user-level power
    // management -> OS interference dominates measurement variability.
    p.noise.os_burst_rate_hz = 60.0;
    p.noise.os_burst_watts = 2.5;
    p.noise.os_burst_duration_s = 4e-3;
    p.noise.time_rel_sd = 0.02;
    p.noise.power_rel_sd = 0.02;
  }
  if (spec.name == "Arndale GPU") {
    // §V-C: mid-intensity capping mismatch suggests active
    // efficiency scaling with utilization even at fixed clocks.
    p.noise.cap_droop_eta = 0.12;
  }
  if (spec.device_class == platforms::DeviceClass::MobileCpu ||
      spec.device_class == platforms::DeviceClass::MobileGpu) {
    p.ramp_time_s = 2e-3;  // slower VRM/governor response on dev boards
  }
  return p;
}

SimMachine make_machine(const platforms::PlatformSpec& spec) {
  return make_machine(spec, default_nonidealities(spec));
}

SimMachine make_machine(const platforms::PlatformSpec& spec,
                        const NonidealityProfile& profile) {
  SimConfig cfg;
  cfg.name = spec.name;
  cfg.sp = FlopCosts{.tau = 1.0 / spec.flop_sp.throughput,
                     .eps = spec.flop_sp.energy_per_op};
  if (spec.flop_dp)
    cfg.dp = FlopCosts{.tau = 1.0 / spec.flop_dp->throughput,
                       .eps = spec.flop_dp->energy_per_op};
  cfg.dram = level_from(spec.mem_stream, 0.0);
  if (spec.mem_l1)
    cfg.l1 = level_from(*spec.mem_l1,
                        default_l1_capacity(spec.device_class));
  if (spec.mem_l2)
    cfg.l2 = level_from(*spec.mem_l2,
                        default_l2_capacity(spec.device_class));
  if (spec.mem_rand)
    cfg.random = RandomCosts{.tau_access = 1.0 / spec.mem_rand->throughput,
                             .eps_access = spec.mem_rand->energy_per_op};
  cfg.pi1 = spec.pi1;
  cfg.delta_pi = spec.delta_pi;
  cfg.noise = profile.noise;
  cfg.ramp_time_s = profile.ramp_time_s;
  cfg.rails = rails_for(spec.device_class);
  return SimMachine(std::move(cfg));
}

}  // namespace archline::sim
