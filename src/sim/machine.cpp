#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archline::sim {

namespace {

/// A transient OS-interference power burst (triangular in time).
struct Burst {
  double t = 0.0;        ///< center time
  double watts = 0.0;    ///< peak extra power
  double duration = 0.0; ///< full base width
};

/// Sums a piecewise-linear base trace with triangular bursts into a new
/// piecewise-linear trace (breakpoints = union of both sets).
powermon::PowerTrace compose(const powermon::PowerTrace& base,
                             const std::vector<Burst>& bursts, double t_end) {
  std::vector<double> knots;
  for (const powermon::TracePoint& p : base.points()) knots.push_back(p.t);
  for (const Burst& b : bursts) {
    knots.push_back(b.t - 0.5 * b.duration);
    knots.push_back(b.t);
    knots.push_back(b.t + 0.5 * b.duration);
  }
  std::sort(knots.begin(), knots.end());
  knots.erase(std::unique(knots.begin(), knots.end()), knots.end());

  const auto burst_value = [&bursts](double t) {
    double acc = 0.0;
    for (const Burst& b : bursts) {
      const double half = 0.5 * b.duration;
      const double dist = std::abs(t - b.t);
      if (dist < half && half > 0.0)
        acc += b.watts * (1.0 - dist / half);
    }
    return acc;
  };

  powermon::PowerTrace out;
  for (const double t : knots) {
    if (t < 0.0 || t > t_end) continue;
    out.add_point(t, base.value(t) + burst_value(t));
  }
  return out;
}

}  // namespace

void SimConfig::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("SimConfig(" + name + "): " + what);
  };
  if (name.empty()) fail("empty name");
  if (!(sp.tau > 0.0) || !(sp.eps > 0.0)) fail("bad SP flop costs");
  if (dp && (!(dp->tau > 0.0) || !(dp->eps > 0.0))) fail("bad DP flop costs");
  if (!(dram.tau_byte > 0.0) || !(dram.eps_byte > 0.0))
    fail("bad DRAM costs");
  for (const LevelCosts* lc : {&dram, l1 ? &*l1 : nullptr,
                               l2 ? &*l2 : nullptr})
    if (lc && !(lc->write_energy_factor > 0.0))
      fail("non-positive write energy factor");
  if (l1 && (!(l1->tau_byte > 0.0) || !(l1->eps_byte > 0.0)))
    fail("bad L1 costs");
  if (l2 && (!(l2->tau_byte > 0.0) || !(l2->eps_byte > 0.0)))
    fail("bad L2 costs");
  if (random && (!(random->tau_access > 0.0) || !(random->eps_access > 0.0)))
    fail("bad random-access costs");
  if (!(pi1 >= 0.0)) fail("negative pi1");
  if (!(delta_pi > 0.0)) fail("non-positive delta_pi");
  if (rails.empty()) fail("no measurement rails");
  if (!(ramp_time_s >= 0.0)) fail("negative ramp time");
}

void KernelDesc::validate() const {
  if (flops < 0.0 || bytes < 0.0 || accesses < 0.0)
    throw std::invalid_argument("KernelDesc(" + label + "): negative work");
  if (pattern == core::AccessPattern::Random && accesses <= 0.0)
    throw std::invalid_argument("KernelDesc(" + label +
                                "): random kernel needs accesses");
  if (write_fraction < 0.0 || write_fraction > 1.0)
    throw std::invalid_argument("KernelDesc(" + label +
                                "): write_fraction outside [0, 1]");
  if (flops == 0.0 && bytes == 0.0 && accesses == 0.0)
    throw std::invalid_argument("KernelDesc(" + label + "): empty kernel");
}

SimMachine::SimMachine(SimConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

const LevelCosts& SimMachine::level_costs(core::MemLevel level) const {
  switch (level) {
    case core::MemLevel::L1:
      if (cfg_.l1) return *cfg_.l1;
      break;
    case core::MemLevel::L2:
      if (cfg_.l2) return *cfg_.l2;
      break;
    case core::MemLevel::DRAM:
      return cfg_.dram;
  }
  throw std::invalid_argument(cfg_.name + ": level " +
                              std::string(core::to_string(level)) +
                              " not present");
}

bool SimMachine::supports(const KernelDesc& kernel) const noexcept {
  if (kernel.precision == core::Precision::Double && !cfg_.dp &&
      kernel.flops > 0.0)
    return false;
  if (kernel.pattern == core::AccessPattern::Random && !cfg_.random)
    return false;
  switch (kernel.level) {
    case core::MemLevel::L1:
      if (!cfg_.l1) return false;
      break;
    case core::MemLevel::L2:
      if (!cfg_.l2) return false;
      break;
    case core::MemLevel::DRAM:
      break;
  }
  return true;
}

core::MemLevel SimMachine::effective_level(core::MemLevel requested,
                                           double working_set_bytes) const {
  // Spill applies only on capacity overflow of an EXISTING level;
  // targeting an absent level stays an error (supports()/demand() throw).
  const auto overflows = [&](const std::optional<LevelCosts>& lc) {
    return lc && lc->capacity_bytes > 0.0 &&
           working_set_bytes > lc->capacity_bytes;
  };
  core::MemLevel level = requested;
  if (level == core::MemLevel::L1 && overflows(cfg_.l1))
    level = cfg_.l2 ? core::MemLevel::L2 : core::MemLevel::DRAM;
  if (level == core::MemLevel::L2 && overflows(cfg_.l2))
    level = core::MemLevel::DRAM;
  return level;
}

SimMachine::Demand SimMachine::demand(const KernelDesc& kernel) const {
  kernel.validate();
  if (!supports(kernel))
    throw std::invalid_argument(cfg_.name + ": unsupported kernel '" +
                                kernel.label + "'");
  const FlopCosts& fc =
      kernel.precision == core::Precision::Single ? cfg_.sp : *cfg_.dp;

  Demand d;
  d.t_flop = kernel.flops * fc.tau;
  if (kernel.pattern == core::AccessPattern::Random) {
    d.t_mem = kernel.accesses * cfg_.random->tau_access;
    d.active_energy = kernel.flops * fc.eps +
                      kernel.accesses * cfg_.random->eps_access;
  } else {
    // A working set that outgrows the targeted cache spills outward.
    const core::MemLevel level =
        effective_level(kernel.level, kernel.working_set_bytes);
    const LevelCosts& lc = level_costs(level);
    d.t_mem = kernel.bytes * lc.tau_byte;
    // Written bytes may cost more energy than read bytes.
    const double per_byte =
        lc.eps_byte *
        (1.0 + (lc.write_energy_factor - 1.0) * kernel.write_fraction);
    d.active_energy = kernel.flops * fc.eps + kernel.bytes * per_byte;
  }
  return d;
}

SimMachine::Governed SimMachine::governed(const KernelDesc& kernel) const {
  const Demand d = demand(kernel);
  GovernorDecision dec =
      govern(d.t_flop, d.t_mem, d.active_energy, cfg_.delta_pi);

  double active_energy = d.active_energy;
  // Cap-region efficiency droop: throttled hardware does not keep per-op
  // energy constant (§V-C, Arndale GPU). Inflating the active energy while
  // staying power-limited lengthens the run proportionally.
  if (dec.regime == core::Regime::PowerCap && cfg_.noise.cap_droop_eta > 0.0) {
    const double inflate =
        1.0 + cfg_.noise.cap_droop_eta * (1.0 - dec.utilization);
    active_energy *= inflate;
    dec.time = active_energy / cfg_.delta_pi;
    dec.utilization = std::max(d.t_flop, d.t_mem) / dec.time;
  }
  return Governed{.time = dec.time, .active_energy = active_energy,
                  .decision = dec};
}

double SimMachine::ideal_time(const KernelDesc& kernel) const {
  return governed(kernel).time;
}

double SimMachine::ideal_energy(const KernelDesc& kernel) const {
  const Governed g = governed(kernel);
  return g.active_energy + cfg_.pi1 * g.time;
}

powermon::Capture SimMachine::idle_capture(double duration,
                                           stats::Rng& rng) const {
  if (!(duration > 0.0))
    throw std::invalid_argument(cfg_.name + ": idle duration must be > 0");
  const double level =
      cfg_.pi1 * NoiseModel::factor(rng, cfg_.noise.power_rel_sd);
  powermon::PowerTrace base;
  base.add_constant(duration, level);

  std::vector<Burst> bursts;
  if (cfg_.noise.os_burst_rate_hz > 0.0) {
    double t = rng.exponential(cfg_.noise.os_burst_rate_hz);
    while (t < duration && bursts.size() < 10000) {
      bursts.push_back(Burst{
          .t = t,
          .watts = cfg_.noise.os_burst_watts * NoiseModel::factor(rng, 0.5),
          .duration = cfg_.noise.os_burst_duration_s *
                      NoiseModel::factor(rng, 0.5)});
      t += rng.exponential(cfg_.noise.os_burst_rate_hz);
    }
  }
  const powermon::PowerTrace device =
      bursts.empty() ? base : compose(base, bursts, duration);
  return powermon::split_across_rails(device, cfg_.rails, 0.0, duration);
}

RunResult SimMachine::run(const KernelDesc& kernel, stats::Rng& rng) const {
  const Governed g = governed(kernel);

  // Run-to-run variation: wall time and steady active power each get a
  // multiplicative lognormal factor.
  const double time =
      g.time * NoiseModel::factor(rng, cfg_.noise.time_rel_sd);
  const double active_power = (g.active_energy / time) *
                              NoiseModel::factor(rng, cfg_.noise.power_rel_sd);

  // Base trace: pi1 floor, ramp up to steady power, hold to the end.
  const double ramp = std::min(cfg_.ramp_time_s, 0.1 * time);
  powermon::PowerTrace base;
  base.add_point(0.0, cfg_.pi1);
  base.add_point(ramp, cfg_.pi1 + active_power);
  base.add_point(time, cfg_.pi1 + active_power);

  // OS interference bursts (Poisson arrivals, lognormal amplitude).
  std::vector<Burst> bursts;
  if (cfg_.noise.os_burst_rate_hz > 0.0) {
    double t = rng.exponential(cfg_.noise.os_burst_rate_hz);
    while (t < time && bursts.size() < 10000) {
      Burst b;
      b.t = t;
      b.watts = cfg_.noise.os_burst_watts *
                NoiseModel::factor(rng, 0.5);
      b.duration = cfg_.noise.os_burst_duration_s *
                   NoiseModel::factor(rng, 0.5);
      bursts.push_back(b);
      t += rng.exponential(cfg_.noise.os_burst_rate_hz);
    }
  }

  const powermon::PowerTrace device =
      bursts.empty() ? base : compose(base, bursts, time);

  RunResult r;
  r.kernel = kernel;
  r.true_time = time;
  r.regime = g.decision.regime;
  r.utilization = g.decision.utilization;
  r.capture = powermon::split_across_rails(device, cfg_.rails, 0.0, time);
  r.true_energy = r.capture.true_energy();
  return r;
}

}  // namespace archline::sim
