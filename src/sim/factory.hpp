#pragma once
// Ground-truth simulated machines for the paper's twelve platforms.
//
// The factory turns a platforms::PlatformSpec (Table I constants) into a
// SimMachine whose physics reproduces that platform, including the
// per-platform nonidealities §V-C reports: OS-interference noise on the
// NUC GPU and cap-region efficiency droop on the Arndale GPU.

#include "platforms/spec.hpp"
#include "sim/machine.hpp"

namespace archline::sim {

/// Nonideality profile applied on top of the Table I constants.
struct NonidealityProfile {
  NoiseModel noise;
  double ramp_time_s = 1e-3;
};

/// Default nonideality profile for a platform (by name/class).
[[nodiscard]] NonidealityProfile default_nonidealities(
    const platforms::PlatformSpec& spec);

/// Builds the ground-truth machine for a Table I platform.
[[nodiscard]] SimMachine make_machine(const platforms::PlatformSpec& spec);

/// Same with an explicit nonideality profile (e.g. noise-free for tests).
[[nodiscard]] SimMachine make_machine(const platforms::PlatformSpec& spec,
                                      const NonidealityProfile& profile);

/// Plausible cache capacities for working-set sizing, by device class.
[[nodiscard]] double default_l1_capacity(platforms::DeviceClass c) noexcept;
[[nodiscard]] double default_l2_capacity(platforms::DeviceClass c) noexcept;

}  // namespace archline::sim
