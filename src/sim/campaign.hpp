#pragma once
// sim::Campaign — deterministic million-event traffic campaigns with
// SLO assertions for the serve stack.
//
// A campaign is a discrete-event simulation in VIRTUAL time: tens of
// thousands of virtual connections draw request instants from pluggable
// arrival processes (sim/arrivals.hpp), shape their bytes with client
// behaviors (pipelined, slow-loris byte-drip, partial-frame-then-reset,
// idle-camper), and push real protocol lines through a real
// serve::Server — every request is parsed, dispatched, cached, and
// (for observe/refit traffic) fed to the online-fit store by the
// production code, on the campaign thread, under a sim::SimClock. Only
// the *scheduling* is modeled: admission lanes, worker occupancy,
// service times, deadlines, and idle reaping replay the server's
// queueing discipline in virtual nanoseconds, so a ten-virtual-minute
// million-request campaign costs seconds of wall clock and is
// bit-reproducible from its seed.
//
// What is real vs. modeled:
//   real     protocol parse/dispatch (serve::handle_line via
//            Server::handle_into), response cache incl. generation-
//            scoped invalidation, online-fit ingest/refit, admission
//            classification (serve::classify_line), reply bytes.
//   modeled  time: arrival instants, lane queueing, worker service
//            times (per class / per cache outcome, seeded jitter),
//            reply delivery, deadlines, idle timeouts, resets.
//
// Campaigns end in a machine-checkable CampaignReport (exact per-
// endpoint latency quantiles in virtual time, loss/overload/deadline
// accounting, cache stats, queue depth peaks, drain-clean shutdown) and
// an assert_slo() API so ctest cases pin "p99 <= X, zero lost replies,
// all connections accounted for" exactly and reproducibly from a seed.
// See docs/TESTING.md "Traffic campaigns".

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/arrivals.hpp"

namespace archline::sim {

/// How a virtual connection turns arrival instants into bytes on the
/// wire.
enum class Behavior : std::uint8_t {
  /// Sends each request whole the instant it is generated; keeps any
  /// number of requests in flight (open loop).
  Pipelined = 0,
  /// Drips each request's bytes over a drawn interval, so the frame
  /// completes long after the first byte — the slow-loris shape that
  /// ties up connection slots without tripping idle reaping.
  SlowLoris = 1,
  /// Sends a handful of normal requests, then an un-terminated partial
  /// frame, then resets the connection — in-flight replies have nowhere
  /// to go and must be accounted, never leaked.
  PartialReset = 2,
  /// Sends one request after connecting, then camps silently — the
  /// connection-slot squatter that idle reaping exists to evict.
  IdleCamper = 3,
};

[[nodiscard]] const char* behavior_name(Behavior b) noexcept;

/// Relative weights (need not sum to 1) for assigning behaviors to
/// connections. Default: everyone is a well-behaved pipeliner.
struct BehaviorMix {
  double pipelined = 1.0;
  double slow_loris = 0.0;
  double partial_reset = 0.0;
  double idle_camper = 0.0;
};

/// Relative weights over the request vocabulary (the loadgen scenario
/// pools): predict / predict_batch / observe / params / policy_advise /
/// refit, plus a sequential codec-style GOP trace (predicts with a
/// policy_advise at each GOP head) and malformed JSON lines.
struct WorkloadMix {
  double predict = 1.0;
  double predict_batch = 0.0;
  double observe = 0.0;
  double params = 0.0;
  double policy_advise = 0.0;
  double refit = 0.0;
  double trace = 0.0;
  double bad_json = 0.0;
};

/// Virtual service-time model, in virtual nanoseconds. Values are
/// costs *on a worker*, drawn per executed request with multiplicative
/// uniform jitter in [1, 1 + jitter_frac). Defaults approximate the
/// measured shape of the real server (BENCH_serve.json): sub-µs cache
/// hits, µs-scale light misses, ms-scale heavy work.
struct ServiceModel {
  std::uint64_t cached_hit_ns = 400;
  std::uint64_t light_miss_ns = 6'000;
  std::uint64_t heavy_miss_ns = 2'000'000;
  std::uint64_t error_reply_ns = 1'500;
  double jitter_frac = 0.10;
};

struct CampaignOptions {
  std::uint64_t seed = 1;
  int connections = 1000;
  /// Arrival horizon: requests are generated in [0, virtual_seconds);
  /// the drain phase afterwards runs queued work to completion.
  double virtual_seconds = 10.0;
  /// Connection opens are spread uniformly over this ramp.
  double open_ramp_s = 1.0;

  ArrivalSpec arrivals = ArrivalSpec::poisson(10.0);
  /// Per-connection phase offsets are drawn uniformly in
  /// [0, phase_spread_s) — 0 keeps OnOff bursts fleet-synchronized.
  double phase_spread_s = 0.0;
  BehaviorMix behaviors;
  WorkloadMix workload;
  ServiceModel service;

  // ---- modeled server resources (the queueing discipline) ----
  int workers = 4;
  int heavy_workers = 1;  ///< workers also eligible for the heavy lane
  std::size_t light_capacity = 1024;
  std::size_t heavy_capacity = 64;
  int deadline_ms = 0;        ///< light-lane queue deadline; 0 = none
  int heavy_deadline_ms = 0;  ///< heavy override; 0 = deadline_ms
  std::size_t max_connections = 0;  ///< admission cap; 0 = unlimited
  int idle_timeout_ms = 0;          ///< idle reaping; 0 = off
  /// One-way reply network delay, virtual seconds.
  double reply_delay_s = 0.0;

  // ---- behavior shape knobs ----
  /// Mean time a slow-loris spends dribbling one request (drawn
  /// uniformly in [0.5, 1.5) of this per request).
  double slow_loris_drip_s = 2.0;
  /// Delay between a partial frame and the client's reset.
  double partial_reset_after_s = 0.5;

  // ---- request pools (cache-key diversity) ----
  int predict_keys = 64;
  int batch_keys = 16;
  int observe_keys = 12;

  // ---- the real serve::Server underneath ----
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Online-fit solver budget for refit traffic. The production
  /// defaults (4096-tuple window, 8000 NM evaluations) make every
  /// synchronous refit cost real milliseconds; a campaign with
  /// thousands of refits bounds the budget so the *code path* is
  /// exercised at a wall-clock cost that scales.
  std::size_t online_window_capacity = 256;
  int online_nm_evaluations = 200;
  int online_lm_iterations = 10;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Exact latency quantiles over one reply population (virtual ns,
/// nearest-rank on the fully recorded sample — no histogram binning).
struct LatencyStats {
  std::uint64_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t max_ns = 0;

  friend bool operator==(const LatencyStats&, const LatencyStats&) = default;
};

/// The machine-checkable outcome of a campaign. Every counter is exact;
/// two runs with equal options produce equal reports (and equal
/// to_json() bytes) — pinned by test.
struct CampaignReport {
  std::uint64_t seed = 0;
  double virtual_seconds = 0.0;
  /// Virtual instant the last event settled (>= virtual_seconds once
  /// the drain is included).
  double drained_at_s = 0.0;

  // ---- connections ----
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_refused = 0;  ///< admission cap
  std::uint64_t closed_clean = 0;
  std::uint64_t reset_by_client = 0;
  std::uint64_t idle_closed = 0;

  // ---- requests / replies ----
  std::uint64_t requests_sent = 0;    ///< transmissions begun (incl. partial)
  std::uint64_t requests_framed = 0;  ///< complete lines reaching the server
  std::uint64_t replies_delivered = 0;
  /// Replies whose connection was reset before delivery. Counted, never
  /// silently lost.
  std::uint64_t replies_abandoned = 0;
  /// Framed requests that never produced a reply — 0 or the server
  /// dropped work on the floor.
  std::uint64_t dropped_replies = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  /// Error replies by wire code ("bad_request", "unknown_platform",
  /// ...; includes "overloaded" / "deadline_exceeded" for one total
  /// error view, field-compatible with serve_loadgen --json).
  std::map<std::string, std::uint64_t> errors_by_code;

  // ---- latency (executed replies only; shed load is counted above) --
  LatencyStats total;
  std::map<std::string, LatencyStats> endpoints;  ///< by wire type

  // ---- server internals ----
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale = 0;
  double cache_hit_rate = 0.0;
  std::uint64_t max_light_depth = 0;
  std::uint64_t max_heavy_depth = 0;

  // ---- shutdown ----
  /// True when the drain finished with empty lanes, no in-flight work,
  /// zero dropped replies, and every connection in a terminal state.
  bool drain_clean = false;
  /// opened + refused == closed_clean + reset_by_client + idle_closed
  /// + refused (every connection reached exactly one terminal state).
  bool connections_accounted = false;

  std::uint64_t events_processed = 0;

  /// One-line JSON rendering with a fixed field order — the artifact
  /// CI archives; byte-identical across same-seed runs.
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const CampaignReport&,
                         const CampaignReport&) = default;
};

/// Service-level objectives a report must meet. Unset checks (0 /
/// negative / empty) are skipped, so a spec names exactly the bounds a
/// test pins.
struct SloSpec {
  /// Upper bound on total.p99_ns over executed replies (0 = unchecked).
  std::uint64_t max_total_p99_ns = 0;
  /// Per-endpoint p99 bounds by wire type, e.g. {"predict", 50'000}.
  std::map<std::string, std::uint64_t> max_endpoint_p99_ns;
  /// Max fraction of framed requests answered "overloaded"
  /// (< 0 = unchecked).
  double max_overloaded_frac = -1.0;
  /// Max deadline_exceeded count (UINT64_MAX = unchecked).
  std::uint64_t max_deadline_exceeded = UINT64_MAX;
  /// Minimum cache hit rate (< 0 = unchecked).
  double min_cache_hit_rate = -1.0;
  bool require_zero_dropped = true;
  bool require_drain_clean = true;
  bool require_connections_accounted = true;
};

/// Every SLO violation, one human-readable line each ("predict p99
/// 81920ns > 50000ns"); empty = the report meets the spec. Tests
/// EXPECT this empty so the failure message lists every broken bound.
[[nodiscard]] std::vector<std::string> assert_slo(const CampaignReport& report,
                                                  const SloSpec& slo);

/// Runs one campaign to completion (arrival horizon + drain) and
/// returns its report. Construction builds the request pools; run() may
/// be called once.
class Campaign {
 public:
  explicit Campaign(CampaignOptions options);
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  [[nodiscard]] CampaignReport run();

 private:
  struct Impl;
  Impl* impl_;
};

/// Named campaign presets shared by the ctest suite, the
/// archline_campaign CLI, and CI (steady / burst / diurnal /
/// slow-loris / adversarial / churn / million). Throws
/// std::invalid_argument for an unknown name.
[[nodiscard]] CampaignOptions campaign_scenario(const std::string& name);

/// The preset names, for --help and error messages.
[[nodiscard]] std::vector<std::string> campaign_scenario_names();

}  // namespace archline::sim
