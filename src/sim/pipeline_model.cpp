#include "sim/pipeline_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archline::sim {

namespace {

void check_config(const TuningTraits& traits, const TuneConfig& c) {
  if (c.unroll < 1 || c.unroll > traits.max_unroll)
    throw std::invalid_argument("TuneConfig: unroll out of range");
  if (c.vector_width < 1 || c.vector_width > traits.max_vector)
    throw std::invalid_argument("TuneConfig: vector width out of range");
}

/// Raw (unnormalized) flop-side throughput factor of a config.
double raw_flop(const TuningTraits& t, const TuneConfig& c) {
  const double u = static_cast<double>(c.unroll);
  double f = u / (u + t.loop_overhead);
  if (t.fma_required && !c.fma) f *= 0.5;
  f *= static_cast<double>(c.vector_width) / t.max_vector;
  if (!c.asm_tuned) f *= 1.0 - t.asm_gain;
  return f;
}

/// Raw memory-side throughput factor.
double raw_mem(const TuningTraits& t, const TuneConfig& c) {
  const double u = static_cast<double>(c.unroll);
  double f = u / (u + 0.5 * t.loop_overhead);
  // Wide vector loads matter for bandwidth too, though less sharply.
  f *= 0.5 + 0.5 * static_cast<double>(c.vector_width) / t.max_vector;
  if (!c.prefetch) f *= 1.0 - t.prefetch_gain;
  if (!c.asm_tuned) f *= 1.0 - 0.5 * t.asm_gain;
  return f;
}

}  // namespace

TuneConfig best_config(const TuningTraits& traits) noexcept {
  return TuneConfig{.unroll = traits.max_unroll, .fma = true,
                    .vector_width = traits.max_vector, .prefetch = true,
                    .asm_tuned = true};
}

double flop_efficiency(const TuningTraits& traits, const TuneConfig& config) {
  check_config(traits, config);
  const double best = raw_flop(traits, best_config(traits));
  return traits.best_flop_fraction * raw_flop(traits, config) / best;
}

double mem_efficiency(const TuningTraits& traits, const TuneConfig& config) {
  check_config(traits, config);
  const double best = raw_mem(traits, best_config(traits));
  return traits.best_mem_fraction * raw_mem(traits, config) / best;
}

TuningTraits traits_for(const platforms::PlatformSpec& spec,
                        core::Precision precision) {
  TuningTraits t;
  t.best_flop_fraction = spec.sustained_flop_fraction(precision);
  t.best_mem_fraction = spec.sustained_bandwidth_fraction();
  switch (spec.device_class) {
    case platforms::DeviceClass::ServerCpu:
      t.max_vector = precision == core::Precision::Single ? 8 : 4;
      t.loop_overhead = 2.0;
      t.asm_gain = 0.08;
      break;
    case platforms::DeviceClass::MobileCpu:
      t.max_vector = precision == core::Precision::Single ? 4 : 2;
      t.loop_overhead = 3.0;  // shallower pipelines, pricier branches
      t.asm_gain = 0.15;
      break;
    case platforms::DeviceClass::DesktopGpu:
      t.max_vector = 32;  // warp-level SIMT
      t.loop_overhead = 1.0;
      t.asm_gain = 0.12;  // SASS-level scheduling
      t.prefetch_gain = 0.15;
      break;
    case platforms::DeviceClass::MobileGpu:
      t.max_vector = 16;
      t.loop_overhead = 1.5;
      t.asm_gain = 0.20;  // immature OpenCL compilers
      t.prefetch_gain = 0.20;
      break;
    case platforms::DeviceClass::Manycore:
      t.max_vector = precision == core::Precision::Single ? 16 : 8;
      t.loop_overhead = 4.0;  // in-order cores need deep unrolling
      t.asm_gain = 0.10;
      t.prefetch_gain = 0.35;
      break;
  }
  return t;
}

}  // namespace archline::sim
