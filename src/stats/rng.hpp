#pragma once
// Deterministic pseudo-random number generation for archline.
//
// Every stochastic component in the library (simulator noise, bootstrap
// resampling, multi-start optimization) takes an explicit Rng so that
// experiments are exactly reproducible from a seed. The generator is PCG32
// (O'Neill, 2014): 64-bit state, 32-bit output, period 2^64, passes
// BigCrush at this size; small, fast, and implemented here from scratch.

#include <cstdint>
#include <limits>

namespace archline::stats {

/// splitmix64 step; used to expand a user seed into PCG32 state/stream.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// PCG32 (XSH-RR variant) uniform random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions, though archline uses only the
/// distributions defined below for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Seeds state and stream from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  /// Seeds with an explicit stream id; distinct streams are independent.
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 32 uniform random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0. Unbiased (rejection method).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Standard normal deviate (Box-Muller with caching).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sd) noexcept;

  /// Log-normal deviate: exp(Normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential deviate with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Derives an independent child generator (for parallel substreams).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;  // stream selector; must be odd
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace archline::stats
