#pragma once
// Percentile bootstrap confidence intervals.
//
// Used to attach uncertainty to the medians of the model-error
// distributions (Fig. 4) and to fitted-parameter estimates in tests.

#include <functional>
#include <span>

#include "stats/rng.hpp"

namespace archline::stats {

struct BootstrapInterval {
  double lo = 0.0;       ///< lower percentile bound
  double hi = 0.0;       ///< upper percentile bound
  double estimate = 0.0; ///< statistic on the original sample

  [[nodiscard]] bool contains(double v) const noexcept {
    return v >= lo && v <= hi;
  }
};

/// Statistic over a sample (e.g. stats::median).
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap CI at the given confidence level (default 95%).
/// Resamples `xs` with replacement `replicates` times.
[[nodiscard]] BootstrapInterval bootstrap_ci(std::span<const double> xs,
                                             const Statistic& stat, Rng& rng,
                                             int replicates = 1000,
                                             double confidence = 0.95);

}  // namespace archline::stats
