#pragma once
// Descriptive statistics: moments, quantiles, and boxplot summaries.
//
// These back the paper's Fig. 4 (error-distribution boxplots: median and
// 25%/75% quantiles) and the summary statistics quoted in §V.

#include <cstddef>
#include <span>
#include <vector>

namespace archline::stats {

/// Arithmetic mean. Returns 0 for an empty input.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased (n-1) sample variance. Returns 0 for fewer than two values.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Unbiased sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Sample minimum / maximum. Input must be non-empty.
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Quantile with linear interpolation (R type-7, the R/NumPy default).
/// p must lie in [0, 1]; input must be non-empty (need not be sorted).
[[nodiscard]] double quantile(std::span<const double> xs, double p);

/// Median (type-7 quantile at p = 0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// Five-number summary plus mean, as used for boxplots.
struct FiveNumberSummary {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;

  /// Inter-quartile range q75 - q25.
  [[nodiscard]] double iqr() const noexcept { return q75 - q25; }
};

/// Computes the five-number summary of a non-empty sample.
[[nodiscard]] FiveNumberSummary summarize(std::span<const double> xs);

/// Element-wise relative error (a - b) / b for paired samples.
/// Used for the paper's (model - measured) / measured error metric.
/// Throws std::invalid_argument on length mismatch or zero denominator.
[[nodiscard]] std::vector<double> relative_errors(
    std::span<const double> model, std::span<const double> measured);

/// Geometric mean of strictly positive values.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Root-mean-square of a sample. Returns 0 for an empty input.
[[nodiscard]] double rms(std::span<const double> xs) noexcept;

}  // namespace archline::stats
