#pragma once
// Correlation coefficients.
//
// §V-C of the paper reports a correlation of about -0.6 between the
// constant-power fraction pi1/(pi1 + delta_pi) and peak energy efficiency
// across the 12 platforms; these functions reproduce that computation.

#include <span>
#include <vector>

namespace archline::stats {

/// Pearson product-moment correlation. Requires two samples of equal
/// length >= 2 with non-zero variance; throws std::invalid_argument else.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

/// Mid-ranks of a sample (1-based; ties share the average rank).
[[nodiscard]] std::vector<double> ranks(std::span<const double> xs);

}  // namespace archline::stats
