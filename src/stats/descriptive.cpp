#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archline::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (const double x : xs) {
    const double d = x - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument("quantile: p outside [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = (static_cast<double>(sorted.size()) - 1.0) * p;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

FiveNumberSummary summarize(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("summarize: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto q = [&sorted](double p) {
    const double h = (static_cast<double>(sorted.size()) - 1.0) * p;
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double frac = h - std::floor(h);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  FiveNumberSummary s;
  s.min = sorted.front();
  s.q25 = q(0.25);
  s.median = q(0.5);
  s.q75 = q(0.75);
  s.max = sorted.back();
  s.mean = mean(sorted);
  s.count = sorted.size();
  return s;
}

std::vector<double> relative_errors(std::span<const double> model,
                                    std::span<const double> measured) {
  if (model.size() != measured.size())
    throw std::invalid_argument("relative_errors: length mismatch");
  std::vector<double> errs;
  errs.reserve(model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (measured[i] == 0.0)
      throw std::invalid_argument("relative_errors: zero measured value");
    errs.push_back((model[i] - measured[i]) / measured[i]);
  }
  return errs;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geometric_mean: empty sample");
  double log_acc = 0.0;
  for (const double x : xs) {
    if (!(x > 0.0))
      throw std::invalid_argument("geometric_mean: non-positive value");
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double rms(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace archline::stats
