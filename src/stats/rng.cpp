#include "stats/rng.hpp"

#include <cmath>
#include <numbers>

namespace archline::stats {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : state_(0), inc_(0) {
  std::uint64_t sm = seed;
  const std::uint64_t init_state = splitmix64(sm);
  const std::uint64_t init_stream = splitmix64(sm);
  *this = Rng(init_state, init_stream);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  (void)operator()();
  state_ += seed;
  (void)operator()();
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() noexcept {
  // 53 random bits mapped to [0, 1).
  const std::uint64_t hi = static_cast<std::uint64_t>(operator()()) << 21;
  const std::uint64_t lo = static_cast<std::uint64_t>(operator()()) >> 11;
  return static_cast<double>(hi + lo) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Lemire-style rejection on 64-bit draws keeps the result unbiased.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t hi = static_cast<std::uint64_t>(operator()()) << 32;
    const std::uint64_t draw = hi | operator()();
    if (draw >= threshold) return draw % n;
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sd) noexcept {
  return mean + sd * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::split() noexcept {
  const std::uint64_t hi = static_cast<std::uint64_t>(operator()()) << 32;
  const std::uint64_t seed = hi | operator()();
  const std::uint64_t hi2 = static_cast<std::uint64_t>(operator()()) << 32;
  const std::uint64_t stream = hi2 | operator()();
  return Rng(seed, stream);
}

}  // namespace archline::stats
