#pragma once
// Two-sample Kolmogorov-Smirnov test.
//
// The paper uses the two-sample K-S test (at p < 0.05) to decide whether the
// "uncapped" and "capped" model error distributions differ per platform
// (Fig. 4, platforms marked "**"). This implements the classic test from
// scratch: the exact sup-distance between empirical CDFs and the asymptotic
// Kolmogorov distribution for the p-value.

#include <span>

namespace archline::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup_x |F1(x) - F2(x)|
  double p_value = 1.0;    ///< asymptotic two-sided p-value
  /// Convenience: reject the null "same distribution" at this level.
  [[nodiscard]] bool significant(double alpha = 0.05) const noexcept {
    return p_value < alpha;
  }
};

/// Survival function of the Kolmogorov distribution,
/// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
/// Returns 1 for lambda <= 0.
[[nodiscard]] double kolmogorov_survival(double lambda) noexcept;

/// Two-sample K-S test. Inputs need not be sorted; both must be non-empty.
/// Uses the asymptotic p-value with the small-sample correction of
/// Stephens (lambda = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D).
[[nodiscard]] KsResult ks_two_sample(std::span<const double> a,
                                     std::span<const double> b);

}  // namespace archline::stats
