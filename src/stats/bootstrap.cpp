#include "stats/bootstrap.hpp"

#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace archline::stats {

BootstrapInterval bootstrap_ci(std::span<const double> xs,
                               const Statistic& stat, Rng& rng,
                               int replicates, double confidence) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_ci: empty sample");
  if (replicates < 2)
    throw std::invalid_argument("bootstrap_ci: need >= 2 replicates");
  if (!(confidence > 0.0 && confidence < 1.0))
    throw std::invalid_argument("bootstrap_ci: confidence outside (0, 1)");

  std::vector<double> stats_out;
  stats_out.reserve(static_cast<std::size_t>(replicates));
  std::vector<double> resample(xs.size());
  for (int r = 0; r < replicates; ++r) {
    for (double& v : resample) v = xs[rng.below(xs.size())];
    stats_out.push_back(stat(resample));
  }
  const double alpha = 1.0 - confidence;
  BootstrapInterval ci;
  ci.lo = quantile(stats_out, alpha / 2.0);
  ci.hi = quantile(stats_out, 1.0 - alpha / 2.0);
  ci.estimate = stat(xs);
  return ci;
}

}  // namespace archline::stats
