#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace archline::stats {

double kolmogorov_survival(double lambda) noexcept {
  if (lambda <= 0.0) return 1.0;
  // The alternating series converges extremely fast for lambda > ~0.3;
  // below that the survival probability is essentially 1.
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        sign * std::exp(-2.0 * static_cast<double>(k) *
                        static_cast<double>(k) * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-12 * std::max(1e-300, std::abs(sum))) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  return std::clamp(q, 0.0, 1.0);
}

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("ks_two_sample: empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  // Merge walk over the pooled order statistics, tracking the CDF gap.
  while (ia < sa.size() && ib < sb.size()) {
    const double xa = sa[ia];
    const double xb = sb[ib];
    const double x = std::min(xa, xb);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::abs(fa - fb));
  }

  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  return KsResult{.statistic = d, .p_value = kolmogorov_survival(lambda)};
}

}  // namespace archline::stats
