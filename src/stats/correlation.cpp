#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace archline::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("pearson: length mismatch");
  if (x.size() < 2) throw std::invalid_argument("pearson: need >= 2 points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0)
    throw std::invalid_argument("pearson: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Mid-rank for the tie group [i, j] (1-based ranks).
    const double mid =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = mid;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("spearman: length mismatch");
  const std::vector<double> rx = ranks(x);
  const std::vector<double> ry = ranks(y);
  return pearson(rx, ry);
}

}  // namespace archline::stats
