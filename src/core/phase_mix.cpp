#include "core/phase_mix.hpp"

#include <stdexcept>

#include "core/roofline.hpp"

namespace archline::core {

Phase make_phase(std::string label, double flops, double intensity) {
  if (!(flops > 0.0) || !(intensity > 0.0))
    throw std::invalid_argument("make_phase: flops and intensity > 0");
  return Phase{.label = std::move(label),
               .work = Workload::from_intensity(flops, intensity)};
}

double mix_time(const MachineParams& m, std::span<const Phase> phases) {
  double acc = 0.0;
  for (const Phase& p : phases) acc += time(m, p.work);
  return acc;
}

double mix_energy(const MachineParams& m, std::span<const Phase> phases) {
  double acc = 0.0;
  for (const Phase& p : phases) acc += energy(m, p.work);
  return acc;
}

double mix_avg_power(const MachineParams& m, std::span<const Phase> phases) {
  const double t = mix_time(m, phases);
  if (!(t > 0.0)) return m.pi1;
  return mix_energy(m, phases) / t;
}

double mix_intensity(std::span<const Phase> phases) {
  double flops = 0.0;
  double bytes = 0.0;
  for (const Phase& p : phases) {
    flops += p.work.flops;
    bytes += p.work.bytes;
  }
  if (!(bytes > 0.0))
    throw std::invalid_argument("mix_intensity: zero byte traffic");
  return flops / bytes;
}

std::vector<PhaseBreakdown> mix_breakdown(const MachineParams& m,
                                          std::span<const Phase> phases) {
  const double total_t = mix_time(m, phases);
  const double total_e = mix_energy(m, phases);
  std::vector<PhaseBreakdown> out;
  out.reserve(phases.size());
  for (const Phase& p : phases) {
    PhaseBreakdown b;
    b.label = p.label;
    b.seconds = time(m, p.work);
    b.joules = energy(m, p.work);
    b.time_share = total_t > 0.0 ? b.seconds / total_t : 0.0;
    b.energy_share = total_e > 0.0 ? b.joules / total_e : 0.0;
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace archline::core
