#pragma once
// Structure-of-arrays batch kernels over the roofline/energy model.
//
// The scalar functions in roofline.hpp evaluate one (machine, workload)
// pair per call; sweeps and batch endpoints need thousands. These
// kernels evaluate a whole workload batch or intensity grid against one
// machine (or one metric across many machines) in a single pass over
// contiguous arrays, with per-machine derived constants hoisted out of
// the loop and the loop bodies written so the max-of-three time law,
// the linear energy form, and the power-cap clamp auto-vectorize under
// -O2. predict_batch and metric_curves additionally have an explicit
// AVX2 path (mul/add/div/max/cmp/blend only — never FMA), selected at
// runtime via cpuid and overridable with ARCHLINE_KERNEL_PATH.
//
// CONTRACT — bit identity. Every kernel, on every path, produces
// outputs bit-identical to the scalar roofline.hpp functions:
//
//   predict_batch[i]  == time()/energy()/avg_power()/regime() and the
//                        derived flops/t, flops/e ratios of the serve
//                        layer's add_prediction()
//   metric_curves[i]  == avg_power_closed_form()/performance()/
//                        energy_efficiency()/regime_at()
//   metric_value_machines[i] == metric_value()
//
// The golden-reply corpus (tests/data/) and the response cache both pin
// reply bytes, so "close" is not good enough; tests/test_kernels.cpp
// asserts the identity over random machines on every path. The rules
// that make it hold:
//
//   * identical operation order and associativity as the scalar code
//     (hoisting a per-machine subexpression is safe — same expression,
//     evaluated once — but reassociating a per-element one is not);
//   * no FMA contraction: the AVX2 translation unit is compiled with
//     -mavx2 only, and multiplies/adds stay separate intrinsics;
//   * uncapped machines (delta_pi == inf) take a machine-level branch
//     instead of arithmetic that would produce inf/inf.

#include <cstddef>
#include <span>
#include <vector>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"

namespace archline::core {

/// SoA workload batch: element i is the workload (flops[i], bytes[i]).
struct WorkloadBatch {
  std::vector<double> flops;
  std::vector<double> bytes;

  [[nodiscard]] std::size_t size() const noexcept { return flops.size(); }
  void clear() noexcept {
    flops.clear();
    bytes.clear();
  }
  void reserve(std::size_t n) {
    flops.reserve(n);
    bytes.reserve(n);
  }
  void push_back(const Workload& w) {
    flops.push_back(w.flops);
    bytes.push_back(w.bytes);
  }
};

/// SoA prediction outputs, field-for-field the serve layer's
/// add_prediction(): performance is flops/time, efficiency flops/energy.
struct PredictionBatch {
  std::vector<double> intensity;
  std::vector<double> time_s;
  std::vector<double> energy_j;
  std::vector<double> avg_power_w;
  std::vector<double> performance;
  std::vector<double> efficiency;
  std::vector<Regime> regime;

  [[nodiscard]] std::size_t size() const noexcept { return time_s.size(); }
  void resize(std::size_t n);
};

/// SoA closed-form metric curves on an intensity grid — one lane per
/// intensity, matching avg_power_closed_form / performance /
/// energy_efficiency / regime_at.
struct MetricCurve {
  std::vector<double> power;
  std::vector<double> performance;
  std::vector<double> efficiency;
  std::vector<Regime> regime;

  [[nodiscard]] std::size_t size() const noexcept { return power.size(); }
  void resize(std::size_t n);
};

// ---------------------------------------------------------------------------
// Runtime dispatch

enum class KernelPath { Scalar, Avx2 };

[[nodiscard]] const char* to_string(KernelPath path) noexcept;

/// True when the AVX2 translation unit was compiled in (kernels_avx2.cpp
/// rather than the stub). Defined by whichever of the two the build
/// selected.
[[nodiscard]] bool avx2_compiled_in() noexcept;

/// True when the AVX2 kernels are both compiled in and supported by the
/// CPU we are running on — i.e. calling the *_avx2 entry points is safe.
[[nodiscard]] bool avx2_available() noexcept;

/// The path the dispatching wrappers use. Resolved once on first use:
/// AVX2 when available, unless ARCHLINE_KERNEL_PATH=scalar forces the
/// portable path (ARCHLINE_KERNEL_PATH=avx2 is honored only when
/// available; any other value falls back to scalar).
[[nodiscard]] KernelPath active_kernel_path() noexcept;

/// Pure resolution rule behind active_kernel_path(), exposed so tests
/// can cover the env-override table without mutating process state.
[[nodiscard]] KernelPath resolve_kernel_path(const char* env,
                                             bool avx2_ok) noexcept;

// ---------------------------------------------------------------------------
// Kernels
//
// The un-suffixed entry points dispatch on active_kernel_path(); the
// _scalar/_avx2 variants are exposed so the equivalence tests can pin
// both paths explicitly. When AVX2 is not compiled in, the _avx2
// variants delegate to scalar.

/// Eqs. (1)–(3) + regime for every workload element against one machine.
void predict_batch(const MachineParams& m, const WorkloadBatch& in,
                   PredictionBatch& out);
void predict_batch_scalar(const MachineParams& m, const WorkloadBatch& in,
                          PredictionBatch& out);
void predict_batch_avx2(const MachineParams& m, const WorkloadBatch& in,
                        PredictionBatch& out);

/// Closed-form power/performance/efficiency/regime for one machine over
/// an intensity grid (the scenario_sweep / throttle_sweep shape).
void metric_curves(const MachineParams& m, std::span<const double> intensities,
                   MetricCurve& out);
void metric_curves_scalar(const MachineParams& m,
                          std::span<const double> intensities,
                          MetricCurve& out);
void metric_curves_avx2(const MachineParams& m,
                        std::span<const double> intensities, MetricCurve& out);

/// One closed-form metric for MANY machines at ONE intensity (the
/// sensitivity / crossover-matrix shape). Auto-vectorized only: the
/// machine count is small (6 params x 2 directions, or one platform
/// table), so an explicit SIMD path would not measurably pay.
void metric_value_machines(std::span<const MachineParams> machines,
                           Metric metric, double intensity, double* out);

}  // namespace archline::core
