#include "core/droop_model.hpp"

#include <algorithm>

namespace archline::core {

namespace {

struct DroopState {
  double time = 0.0;
  double active_energy = 0.0;
};

/// The shared physics: throttle, then inflate active energy by the
/// utilization shortfall and stretch the run accordingly.
DroopState evaluate(const MachineParams& m, double eta, const Workload& w) {
  const double t_flop = w.flops * m.tau_flop;
  const double t_mem = w.bytes * m.tau_mem;
  const double t_free = std::max(t_flop, t_mem);
  double active = w.flops * m.eps_flop + w.bytes * m.eps_mem;
  const double t_cap = m.uncapped() ? 0.0 : active / m.delta_pi;

  DroopState s;
  if (t_cap > t_free && eta > 0.0) {
    const double u0 = t_free > 0.0 ? t_free / t_cap : 1.0;
    active *= 1.0 + eta * (1.0 - u0);
    s.time = active / m.delta_pi;
  } else {
    s.time = std::max(t_free, t_cap);
  }
  s.active_energy = active;
  return s;
}

}  // namespace

double DroopModel::time(const Workload& w) const noexcept {
  return evaluate(machine, eta, w).time;
}

double DroopModel::energy(const Workload& w) const noexcept {
  const DroopState s = evaluate(machine, eta, w);
  return s.active_energy + machine.pi1 * s.time;
}

double DroopModel::avg_power(const Workload& w) const noexcept {
  const DroopState s = evaluate(machine, eta, w);
  return s.time > 0.0 ? (s.active_energy + machine.pi1 * s.time) / s.time
                      : machine.pi1;
}

double DroopModel::performance(double intensity) const noexcept {
  const Workload w = Workload::from_intensity(1e12, intensity);
  return w.flops / time(w);
}

}  // namespace archline::core
