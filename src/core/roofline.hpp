#pragma once
// The extended ("capped") energy roofline model — paper §III, eqs. (1)-(7).
//
// Given MachineParams and a workload (W flops, Q bytes, or equivalently
// total flops at intensity I = W/Q), these functions predict best-case
// execution time, energy, average power, and the execution regime. Setting
// delta_pi = kUncapped recovers the authors' prior model [Choi et al.,
// IPDPS 2013], which the paper's Fig. 4 compares against.

#include "core/machine_params.hpp"

namespace archline::core {

/// Which term of eq. (3)'s max dominates execution.
enum class Regime {
  Compute,   ///< W * tau_flop dominates ("F" in Fig. 6)
  Memory,    ///< Q * tau_mem dominates ("M")
  PowerCap,  ///< (W eps_flop + Q eps_mem) / delta_pi dominates ("C")
};

[[nodiscard]] const char* regime_name(Regime r) noexcept;
[[nodiscard]] char regime_letter(Regime r) noexcept;  // 'F', 'M', 'C'

/// Best-case execution time, eq. (3):
///   T = max(W tau_flop, Q tau_mem, (W eps_flop + Q eps_mem) / delta_pi).
[[nodiscard]] double time(const MachineParams& m, const Workload& w) noexcept;

/// Total energy, eq. (1): E = W eps_flop + Q eps_mem + pi1 * T.
[[nodiscard]] double energy(const MachineParams& m,
                            const Workload& w) noexcept;

/// Average power E / T. Equals avg_power_closed_form for all inputs
/// (verified by property tests).
[[nodiscard]] double avg_power(const MachineParams& m,
                               const Workload& w) noexcept;

/// The regime selected by eq. (3)'s max for this workload. Ties resolve
/// in the order PowerCap > Memory > Compute (the cap "explains" equality).
[[nodiscard]] Regime regime(const MachineParams& m,
                            const Workload& w) noexcept;

// ---- Intensity-parameterized forms ---------------------------------------

/// Time per flop at intensity I, eq. (4):
///   T/W = tau_flop * max(1, B_tau / I, (pi_flop/delta_pi)(1 + B_eps/I)).
[[nodiscard]] double time_per_flop(const MachineParams& m,
                                   double intensity) noexcept;

/// Energy per flop at intensity I, eq. (2) divided by W:
///   E/W = eps_flop (1 + B_eps / I) + pi1 * (T/W).
[[nodiscard]] double energy_per_flop(const MachineParams& m,
                                     double intensity) noexcept;

/// Performance W/T [flop/s] at intensity I.
[[nodiscard]] double performance(const MachineParams& m,
                                 double intensity) noexcept;

/// Energy efficiency W/E [flop/J] at intensity I.
[[nodiscard]] double energy_efficiency(const MachineParams& m,
                                       double intensity) noexcept;

/// Achieved memory bandwidth Q/T [B/s] at intensity I.
[[nodiscard]] double bandwidth(const MachineParams& m,
                               double intensity) noexcept;

/// Average power at intensity I via the closed form, eq. (7):
///   P = pi1 + { pi_flop + pi_mem * B_tau / I        if I >= B_tau+
///             { pi_flop * I / B_tau + pi_mem        if I <= B_tau-
///             { delta_pi                            otherwise.
[[nodiscard]] double avg_power_closed_form(const MachineParams& m,
                                           double intensity) noexcept;

/// Regime at intensity I (PowerCap iff B_tau- < I < B_tau+ under an
/// insufficient cap; boundary ties as in regime()).
[[nodiscard]] Regime regime_at(const MachineParams& m,
                               double intensity) noexcept;

// ---- Cross-machine comparison --------------------------------------------

/// Metric selector for crossover searches.
enum class Metric { Performance, EnergyEfficiency, Power };

/// Evaluates the chosen metric at intensity I.
[[nodiscard]] double metric_value(const MachineParams& m, Metric metric,
                                  double intensity) noexcept;

/// Finds an intensity in [lo, hi] where machines a and b tie on `metric`
/// (ratio crosses 1), by bisection on log2(I). Returns a negative value if
/// the ratio does not change sides over the bracket.
[[nodiscard]] double crossover_intensity(const MachineParams& a,
                                         const MachineParams& b, Metric metric,
                                         double lo = 1.0 / 64.0,
                                         double hi = 512.0);

}  // namespace archline::core
