#pragma once
// "What-if" scenario machinery — paper §V-D.
//
// Three scenario families:
//   * power throttling: scale the usable cap to delta_pi / k (Fig. 6, 7);
//   * aggregation: a hypothetical node built from n copies of a building
//     block (Fig. 1's "47 x Arndale GPU" system);
//   * power bounding: reduce a big block's node power to a bound and ask
//     how many small blocks match that bound and how they compare (§V-D-j).

#include <span>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/operating_point.hpp"
#include "core/roofline.hpp"

namespace archline::core {

/// Returns a machine identical to `m` but with usable power delta_pi / k.
/// k must be >= 1. pi1 and all per-op costs stay fixed (the paper's
/// assumption in §V-D-i).
[[nodiscard]] MachineParams with_cap_scaled(const MachineParams& m, double k);

/// Returns a machine identical to `m` but with the usable cap replaced by
/// an absolute wattage.
[[nodiscard]] MachineParams with_cap(const MachineParams& m,
                                     double delta_pi_watts);

/// An aggregate of n identical building blocks: n-fold throughputs
/// (tau / n), n-fold powers (n * pi1, n * delta_pi), unchanged per-op
/// energies. Interconnect costs are explicitly ignored, as in the paper's
/// best-case analysis (§I-A). n must be >= 1.
[[nodiscard]] MachineParams aggregate(const MachineParams& m, int n);

/// Smallest n such that n blocks' maximum power >= target (using
/// pi1 + delta_pi per block as the per-node power budget, the basis of the
/// paper's "47 x Arndale GPU" figure). Returns 0 if target <= 0.
[[nodiscard]] int blocks_to_match_power(const MachineParams& block,
                                        double target_watts);

/// One row of a throttling sweep (Fig. 6/7): intensity + the modeled
/// power / performance / energy-efficiency at a given cap divisor.
struct ThrottlePoint {
  double intensity = 0.0;
  double cap_divisor = 1.0;   ///< k; cap = delta_pi / k
  double power = 0.0;         ///< [W]
  double performance = 0.0;   ///< [flop/s]
  double efficiency = 0.0;    ///< [flop/J]
  Regime regime = Regime::Compute;
};

/// Sweeps intensity (log2 grid) x cap divisors; the raw material of
/// Figs. 6, 7a, 7b.
[[nodiscard]] std::vector<ThrottlePoint> throttle_sweep(
    const MachineParams& m, const std::vector<double>& intensities,
    const std::vector<double>& cap_divisors);

/// Result of the §V-D power-bounding comparison.
struct PowerBoundComparison {
  double bound_watts = 0.0;        ///< per-node power bound
  double big_cap_divisor = 0.0;    ///< k needed to fit the big block under it
  double big_performance = 0.0;    ///< big block's flop/s at `intensity`, capped
  double big_slowdown = 0.0;       ///< vs. its own uncapped-cap performance
  int small_count = 0;             ///< blocks of the small platform matching bound
  double small_performance = 0.0;  ///< aggregate flop/s at `intensity`
  double speedup = 0.0;            ///< small aggregate / big capped
};

/// Reproduces §V-D-j: cap `big` to `bound_watts` total node power (by
/// reducing delta_pi; pi1 is not reducible), assemble `small` blocks to the
/// same bound, compare performance at `intensity`.
[[nodiscard]] PowerBoundComparison power_bound_comparison(
    const MachineParams& big, const MachineParams& small, double bound_watts,
    double intensity);

/// The abstract's operational claim: the model "suggests how, with
/// respect to intensity, operations should be throttled to meet a power
/// cap." At intensity I under usable power `cap_watts`, execution slows
/// by lambda = max(1, (pi_flop/cap)(1 + B_eps/I) / max(1, B_tau/I));
/// both engines then run at 1/lambda of the rate they would have had.
struct ThrottleRequirement {
  double intensity = 0.0;
  double cap_watts = 0.0;       ///< the usable-power budget applied
  double slowdown = 1.0;        ///< execution time inflation (>= 1)
  double flop_rate_fraction = 1.0;  ///< achieved / sustained flop rate
  double mem_rate_fraction = 1.0;   ///< achieved / sustained byte rate
  Regime regime = Regime::Compute;  ///< regime under the cap
};

/// Computes the required issue-rate reduction for machine `m` at
/// intensity I when its usable power is limited to `cap_watts`
/// (which may differ from m.delta_pi). cap_watts must be positive.
[[nodiscard]] ThrottleRequirement throttle_requirement(
    const MachineParams& m, double intensity, double cap_watts);

/// One row of an operating-point sweep: the workload's predicted
/// time/energy/power at a single DVFS state (the fourth scenario
/// family, added with the operating-point refactor).
struct OperatingPointOutcome {
  std::size_t point_index = 0;
  double freq_scale = 1.0;
  double time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double edp = 0.0;  ///< energy_j * time_s
  Regime regime = Regime::Compute;
};

/// Evaluates one workload at every point of a table, in table order —
/// the raw material behind policy_advise's plan rows and the
/// ext_dvfs_vs_cap bench's DVFS column.
[[nodiscard]] std::vector<OperatingPointOutcome> operating_point_sweep(
    const MachineParams& base, std::span<const OperatingPoint> points,
    const Workload& w);

}  // namespace archline::core
