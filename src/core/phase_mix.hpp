#pragma once
// Applications as mixes of phases.
//
// The paper abstracts a whole computation by one intensity; real
// applications interleave phases (setup SpMV, solve FFT, reduce...).
// Because the model's time and energy are additive over serial phases,
// a mix is itself analyzable — and the best building block for a mix can
// differ from the best block of every individual phase, which is the
// interesting design consequence this module exposes.

#include <span>
#include <string>
#include <vector>

#include "core/machine_params.hpp"

namespace archline::core {

/// One serial phase of an application.
struct Phase {
  std::string label;
  Workload work;
};

/// Builds a phase from total flops at an intensity.
[[nodiscard]] Phase make_phase(std::string label, double flops,
                               double intensity);

/// Total best-case execution time of the phases run back to back.
[[nodiscard]] double mix_time(const MachineParams& m,
                              std::span<const Phase> phases);

/// Total energy of the mix.
[[nodiscard]] double mix_energy(const MachineParams& m,
                                std::span<const Phase> phases);

/// Time-averaged power of the mix.
[[nodiscard]] double mix_avg_power(const MachineParams& m,
                                   std::span<const Phase> phases);

/// Aggregate intensity of the mix (total flops / total bytes). Note this
/// is NOT sufficient to predict the mix: running the phases at their own
/// intensities differs from one hypothetical kernel at the aggregate
/// intensity (tested; the difference is the cost of unexploited overlap).
[[nodiscard]] double mix_intensity(std::span<const Phase> phases);

/// Per-phase share of the mix's time and energy on a machine.
struct PhaseBreakdown {
  std::string label;
  double seconds = 0.0;
  double joules = 0.0;
  double time_share = 0.0;    ///< fraction of total time
  double energy_share = 0.0;  ///< fraction of total energy
};

[[nodiscard]] std::vector<PhaseBreakdown> mix_breakdown(
    const MachineParams& m, std::span<const Phase> phases);

}  // namespace archline::core
