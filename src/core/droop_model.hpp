#pragma once
// Utilization-dependent capping: the model extension the paper sketches
// for its own worst fit.
//
// §V-C, on the Arndale GPU: "the mismatch at mid-range intensities
// suggests we would need a different model of capping, perhaps one that
// [does] not assume constant time and energy costs per operation. That
// is, even with a fixed clock frequency, there may be active
// energy-efficiency scaling with respect to processor and memory
// utilization."
//
// This module implements exactly that extension: when the governor
// throttles execution to utilization u < 1, per-operation energy inflates
// by a factor (1 + eta * (1 - u)). With eta = 0 the extension reduces to
// the paper's capped model (verified by property tests). fit::fit_droop_eta
// recovers eta from measurements, and the ext_droop_model bench shows the
// extension closing the Arndale GPU's mid-intensity error.

#include "core/machine_params.hpp"
#include "core/roofline.hpp"

namespace archline::core {

/// The capped model of eqs. (1)-(3) extended with efficiency droop
/// strength eta >= 0.
struct DroopModel {
  MachineParams machine;
  double eta = 0.0;

  /// Execution time: as eq. (3), but when the cap binds, the active
  /// energy is first inflated by (1 + eta * (1 - u0)) where
  /// u0 = T_free / T_cap is the pre-droop utilization.
  [[nodiscard]] double time(const Workload& w) const noexcept;

  /// Total energy: inflated active energy plus pi1 * time.
  [[nodiscard]] double energy(const Workload& w) const noexcept;

  /// Average power energy/time.
  [[nodiscard]] double avg_power(const Workload& w) const noexcept;

  /// Performance 1 / (time per flop) at an intensity.
  [[nodiscard]] double performance(double intensity) const noexcept;
};

}  // namespace archline::core
