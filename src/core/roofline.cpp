#include "core/roofline.hpp"

#include <algorithm>
#include <cmath>

namespace archline::core {

const char* regime_name(Regime r) noexcept {
  switch (r) {
    case Regime::Compute: return "compute";
    case Regime::Memory: return "memory";
    case Regime::PowerCap: return "power-cap";
  }
  return "?";
}

char regime_letter(Regime r) noexcept {
  switch (r) {
    case Regime::Compute: return 'F';
    case Regime::Memory: return 'M';
    case Regime::PowerCap: return 'C';
  }
  return '?';
}

double time(const MachineParams& m, const Workload& w) noexcept {
  const double t_flop = w.flops * m.tau_flop;
  const double t_mem = w.bytes * m.tau_mem;
  const double t_cap =
      m.uncapped() ? 0.0
                   : (w.flops * m.eps_flop + w.bytes * m.eps_mem) / m.delta_pi;
  return std::max({t_flop, t_mem, t_cap});
}

double energy(const MachineParams& m, const Workload& w) noexcept {
  return w.flops * m.eps_flop + w.bytes * m.eps_mem + m.pi1 * time(m, w);
}

double avg_power(const MachineParams& m, const Workload& w) noexcept {
  const double t = time(m, w);
  if (t <= 0.0) return m.pi1;
  return energy(m, w) / t;
}

Regime regime(const MachineParams& m, const Workload& w) noexcept {
  const double t_flop = w.flops * m.tau_flop;
  const double t_mem = w.bytes * m.tau_mem;
  const double t_cap =
      m.uncapped() ? 0.0
                   : (w.flops * m.eps_flop + w.bytes * m.eps_mem) / m.delta_pi;
  const double t = std::max({t_flop, t_mem, t_cap});
  if (t_cap == t && !m.uncapped()) return Regime::PowerCap;
  if (t_mem == t) return Regime::Memory;
  return Regime::Compute;
}

double time_per_flop(const MachineParams& m, double intensity) noexcept {
  const double free_term = std::max(1.0, m.time_balance() / intensity);
  if (m.uncapped()) return m.tau_flop * free_term;
  const double cap_term = (m.pi_flop() / m.delta_pi) *
                          (1.0 + m.energy_balance() / intensity);
  return m.tau_flop * std::max(free_term, cap_term);
}

double energy_per_flop(const MachineParams& m, double intensity) noexcept {
  return m.eps_flop * (1.0 + m.energy_balance() / intensity) +
         m.pi1 * time_per_flop(m, intensity);
}

double performance(const MachineParams& m, double intensity) noexcept {
  return 1.0 / time_per_flop(m, intensity);
}

double energy_efficiency(const MachineParams& m, double intensity) noexcept {
  return 1.0 / energy_per_flop(m, intensity);
}

double bandwidth(const MachineParams& m, double intensity) noexcept {
  // Q/T = (W/I)/T = performance / I.
  return performance(m, intensity) / intensity;
}

double avg_power_closed_form(const MachineParams& m,
                             double intensity) noexcept {
  const double b_hi = m.balance_hi();
  const double b_lo = m.balance_lo();
  if (intensity >= b_hi)
    return m.pi1 + m.pi_flop() + m.pi_mem() * m.time_balance() / intensity;
  if (intensity <= b_lo)
    return m.pi1 + m.pi_flop() * intensity / m.time_balance() + m.pi_mem();
  return m.pi1 + m.delta_pi;
}

Regime regime_at(const MachineParams& m, double intensity) noexcept {
  return regime(m, Workload::from_intensity(1.0, intensity));
}

double metric_value(const MachineParams& m, Metric metric,
                    double intensity) noexcept {
  switch (metric) {
    case Metric::Performance: return performance(m, intensity);
    case Metric::EnergyEfficiency: return energy_efficiency(m, intensity);
    case Metric::Power: return avg_power_closed_form(m, intensity);
  }
  return 0.0;
}

double crossover_intensity(const MachineParams& a, const MachineParams& b,
                           Metric metric, double lo, double hi) {
  const auto gap = [&](double intensity) {
    return std::log(metric_value(a, metric, intensity)) -
           std::log(metric_value(b, metric, intensity));
  };
  double glo = gap(lo);
  double ghi = gap(hi);
  if (glo == 0.0) return lo;
  if (ghi == 0.0) return hi;
  if ((glo > 0.0) == (ghi > 0.0)) return -1.0;  // no sign change in bracket
  double llo = std::log2(lo);
  double lhi = std::log2(hi);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (llo + lhi);
    const double gm = gap(std::exp2(mid));
    if (gm == 0.0) return std::exp2(mid);
    if ((gm > 0.0) == (glo > 0.0)) {
      llo = mid;
      glo = gm;
    } else {
      lhi = mid;
    }
    if (lhi - llo < 1e-12) break;
  }
  return std::exp2(0.5 * (llo + lhi));
}

}  // namespace archline::core
