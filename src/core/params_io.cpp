#include "core/params_io.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace archline::core {

namespace {

std::string format_value(double v) {
  if (std::isinf(v)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_value(const std::string& s) {
  if (s == "inf") return kUncapped;
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
    ++pos;
  if (pos != s.size())
    throw std::invalid_argument("machine_from_text: bad number '" + s + "'");
  return v;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string to_text(const MachineParams& m, const std::string& name) {
  std::ostringstream out;
  if (!name.empty()) out << "# " << name << '\n';
  out << "tau_flop = " << format_value(m.tau_flop) << '\n';
  out << "eps_flop = " << format_value(m.eps_flop) << '\n';
  out << "tau_mem = " << format_value(m.tau_mem) << '\n';
  out << "eps_mem = " << format_value(m.eps_mem) << '\n';
  out << "pi1 = " << format_value(m.pi1) << '\n';
  out << "delta_pi = " << format_value(m.delta_pi) << '\n';
  return out.str();
}

MachineParams machine_from_text(const std::string& text) {
  std::map<std::string, double> values;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("machine_from_text: malformed line '" +
                                  stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    static const std::set<std::string> kKnown = {
        "tau_flop", "eps_flop", "tau_mem", "eps_mem", "pi1", "delta_pi"};
    if (!kKnown.contains(key)) continue;  // tolerate foreign keys
    const std::string value = trim(stripped.substr(eq + 1));
    values[key] = parse_value(value);
  }

  MachineParams m;
  const auto require = [&values](const char* key) {
    const auto it = values.find(key);
    if (it == values.end())
      throw std::invalid_argument(
          std::string("machine_from_text: missing key '") + key + "'");
    return it->second;
  };
  m.tau_flop = require("tau_flop");
  m.eps_flop = require("eps_flop");
  m.tau_mem = require("tau_mem");
  m.eps_mem = require("eps_mem");
  m.pi1 = require("pi1");
  m.delta_pi = require("delta_pi");
  m.validate("machine_from_text");
  return m;
}

}  // namespace archline::core
