#include "core/random_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archline::core {

void RandomAccessMachine::validate() const {
  if (!(tau_access > 0.0) || !std::isfinite(tau_access))
    throw std::invalid_argument("RandomAccessMachine: bad tau_access");
  if (!(eps_access > 0.0) || !std::isfinite(eps_access))
    throw std::invalid_argument("RandomAccessMachine: bad eps_access");
  if (!(pi1 >= 0.0))
    throw std::invalid_argument("RandomAccessMachine: negative pi1");
  if (!(delta_pi > 0.0))
    throw std::invalid_argument("RandomAccessMachine: bad delta_pi");
}

bool RandomAccessMachine::power_consistent() const noexcept {
  return pi_rand() <= delta_pi;
}

double RandomAccessMachine::time(double accesses) const noexcept {
  return accesses / access_rate();
}

double RandomAccessMachine::energy(double accesses) const noexcept {
  return accesses * eps_access + pi1 * time(accesses);
}

double RandomAccessMachine::effective_energy_per_access() const noexcept {
  return eps_access + pi1 / access_rate();
}

double RandomAccessMachine::accesses_per_joule() const noexcept {
  return 1.0 / effective_energy_per_access();
}

double RandomAccessMachine::avg_power() const noexcept {
  const double attributed = eps_access * access_rate();
  return pi1 + (delta_pi == kUncapped ? attributed
                                      : std::min(attributed, delta_pi));
}

}  // namespace archline::core
