#include "core/scenarios.hpp"

#include <cmath>
#include <stdexcept>

#include "core/kernels.hpp"

namespace archline::core {

MachineParams with_cap_scaled(const MachineParams& m, double k) {
  if (!(k >= 1.0))
    throw std::invalid_argument("with_cap_scaled: divisor must be >= 1");
  MachineParams out = m;
  if (!m.uncapped()) out.delta_pi = m.delta_pi / k;
  return out;
}

MachineParams with_cap(const MachineParams& m, double delta_pi_watts) {
  if (!(delta_pi_watts > 0.0))
    throw std::invalid_argument("with_cap: cap must be positive");
  MachineParams out = m;
  out.delta_pi = delta_pi_watts;
  return out;
}

MachineParams aggregate(const MachineParams& m, int n) {
  if (n < 1) throw std::invalid_argument("aggregate: need n >= 1");
  const double dn = static_cast<double>(n);
  MachineParams out = m;
  out.tau_flop = m.tau_flop / dn;
  out.tau_mem = m.tau_mem / dn;
  out.pi1 = m.pi1 * dn;
  if (!m.uncapped()) out.delta_pi = m.delta_pi * dn;
  return out;
}

int blocks_to_match_power(const MachineParams& block, double target_watts) {
  if (!(target_watts > 0.0)) return 0;
  const double per_block = block.pi1 + (block.uncapped()
                                            ? block.pi_flop() + block.pi_mem()
                                            : block.delta_pi);
  if (!(per_block > 0.0))
    throw std::invalid_argument("blocks_to_match_power: zero block power");
  return static_cast<int>(std::ceil(target_watts / per_block - 1e-9));
}

std::vector<ThrottlePoint> throttle_sweep(
    const MachineParams& m, const std::vector<double>& intensities,
    const std::vector<double>& cap_divisors) {
  std::vector<ThrottlePoint> out;
  out.reserve(intensities.size() * cap_divisors.size());
  // One batch-kernel call per cap level evaluates the whole intensity
  // grid (bit-identical to the per-point closed forms; kernels.hpp).
  MetricCurve curve;
  for (const double k : cap_divisors) {
    const MachineParams capped = with_cap_scaled(m, k);
    metric_curves(capped, intensities, curve);
    for (std::size_t i = 0; i < intensities.size(); ++i) {
      ThrottlePoint p;
      p.intensity = intensities[i];
      p.cap_divisor = k;
      p.power = curve.power[i];
      p.performance = curve.performance[i];
      p.efficiency = curve.efficiency[i];
      p.regime = curve.regime[i];
      out.push_back(p);
    }
  }
  return out;
}

ThrottleRequirement throttle_requirement(const MachineParams& m,
                                         double intensity,
                                         double cap_watts) {
  if (!(cap_watts > 0.0))
    throw std::invalid_argument("throttle_requirement: cap must be > 0");
  if (!(intensity > 0.0))
    throw std::invalid_argument("throttle_requirement: intensity must be > 0");
  const MachineParams capped = with_cap(m, cap_watts);

  ThrottleRequirement r;
  r.intensity = intensity;
  r.cap_watts = cap_watts;
  r.regime = regime_at(capped, intensity);

  // Free (cap-ignoring) execution: per-flop time tau_flop*max(1, B/I).
  const double free_term = std::max(1.0, m.time_balance() / intensity);
  const double capped_term = time_per_flop(capped, intensity) / m.tau_flop;
  r.slowdown = capped_term / free_term;

  // Under maximal overlap the free schedule runs flops at
  // 1/max(1, B/I) of sustained rate and memory at 1/max(1, I/B);
  // throttling divides both by the slowdown.
  r.flop_rate_fraction = 1.0 / (free_term * r.slowdown);
  r.mem_rate_fraction =
      1.0 / (std::max(1.0, intensity / m.time_balance()) * r.slowdown);
  return r;
}

std::vector<OperatingPointOutcome> operating_point_sweep(
    const MachineParams& base, std::span<const OperatingPoint> points,
    const Workload& w) {
  std::vector<OperatingPointOutcome> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MachineParams m = apply_operating_point(base, points[i]);
    OperatingPointOutcome o;
    o.point_index = i;
    o.freq_scale = points[i].freq_scale;
    o.time_s = time(m, w);
    o.energy_j = energy(m, w);
    o.avg_power_w = avg_power(m, w);
    o.edp = o.energy_j * o.time_s;
    o.regime = regime(m, w);
    out.push_back(o);
  }
  return out;
}

PowerBoundComparison power_bound_comparison(const MachineParams& big,
                                            const MachineParams& small,
                                            double bound_watts,
                                            double intensity) {
  if (!(bound_watts > big.pi1))
    throw std::invalid_argument(
        "power_bound_comparison: bound below big block's constant power");
  PowerBoundComparison r;
  r.bound_watts = bound_watts;

  // Reduce the big block's usable power so pi1 + delta_pi' == bound.
  const double new_cap = bound_watts - big.pi1;
  const double base_cap =
      big.uncapped() ? big.pi_flop() + big.pi_mem() : big.delta_pi;
  r.big_cap_divisor = base_cap / new_cap;
  const MachineParams big_capped = with_cap(big, new_cap);
  r.big_performance = performance(big_capped, intensity);
  r.big_slowdown = r.big_performance / performance(big, intensity);

  r.small_count = blocks_to_match_power(small, bound_watts);
  if (r.small_count > 0) {
    const MachineParams cluster = aggregate(small, r.small_count);
    r.small_performance = performance(cluster, intensity);
    r.speedup = r.small_performance / r.big_performance;
  }
  return r;
}

}  // namespace archline::core
