#pragma once
// First-class modeling of random-access (pointer-chasing) workloads.
//
// Table I's last column gives per-access time and energy (eps_rand,
// sustained Macc/s) for platforms measured with the paper's §IV-f
// benchmark; §VI highlights that "random memory access is on the Xeon Phi
// at least one order of magnitude less energy per access than any other
// platform, suggesting its utility on highly irregular data processing
// workloads." This module gives those constants the same analytical
// treatment the streaming model gets: effective rates/efficiencies
// including the constant-power charge and the power cap.

#include "core/machine_params.hpp"

namespace archline::core {

/// Per-access costs of the pointer-chase path plus the machine's power
/// context (pi1, delta_pi).
struct RandomAccessMachine {
  double tau_access = 0.0;  ///< s/access at sustained rate
  double eps_access = 0.0;  ///< J/access (includes full line transfer)
  double pi1 = 0.0;         ///< W
  double delta_pi = kUncapped;  ///< W

  void validate() const;

  // ---- Derived -------------------------------------------------------

  /// Nominal power attribution of the chase at full rate,
  /// eps_access / tau_access [W]. NOTE: because eps_rand is an INCLUSIVE
  /// cost ("the additional energy required to complete one additional
  /// instance", §V-B) it can attribute energy beyond the usable-power
  /// envelope: in Table I, eps_rand x rate exceeds delta_pi on the
  /// GTX 680, APU GPU and Arndale CPU. So this is an accounting quantity,
  /// not an instantaneous electrical power — see power_consistent().
  [[nodiscard]] double pi_rand() const noexcept {
    return eps_access / tau_access;
  }

  /// Whether the nominal attribution also works as an instantaneous
  /// power (pi_rand <= delta_pi). False on the three platforms above.
  [[nodiscard]] bool power_consistent() const noexcept;

  /// Achieved access rate [acc/s] — the measured sustained engine rate
  /// (dependent loads are latency-bound; the governor did not limit them
  /// on any Table I platform, cf. power_consistent()).
  [[nodiscard]] double access_rate() const noexcept {
    return 1.0 / tau_access;
  }

  /// Time for n dependent accesses [s].
  [[nodiscard]] double time(double accesses) const noexcept;

  /// Total energy for n accesses (inclusive attribution), constant power
  /// included [J].
  [[nodiscard]] double energy(double accesses) const noexcept;

  /// Effective energy per access including the constant-power charge:
  /// eps_access + pi1 / access_rate [J] — the random-access analogue of
  /// §V-B's effective stream energy.
  [[nodiscard]] double effective_energy_per_access() const noexcept;

  /// Accesses per joule, 1 / effective_energy_per_access.
  [[nodiscard]] double accesses_per_joule() const noexcept;

  /// Average electrical power while chasing [W]: the attribution, clamped
  /// to the physical ceiling pi1 + delta_pi.
  [[nodiscard]] double avg_power() const noexcept;
};

}  // namespace archline::core
