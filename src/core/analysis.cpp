#include "core/analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "core/scenarios.hpp"

namespace archline::core {

double peak_flops_per_joule(const MachineParams& m) noexcept {
  return 1.0 / (m.eps_flop + m.pi1 * m.tau_flop);
}

double peak_bytes_per_joule(const MachineParams& m) noexcept {
  return 1.0 / (m.eps_mem + m.pi1 * m.tau_mem);
}

double effective_stream_energy_per_byte(const MachineParams& m) noexcept {
  return m.eps_mem + m.pi1 * m.tau_mem;
}

double constant_energy_per_byte(const MachineParams& m) noexcept {
  return m.pi1 * m.tau_mem;
}

double constant_power_fraction(const MachineParams& m) noexcept {
  const double usable =
      m.uncapped() ? m.pi_flop() + m.pi_mem() : m.delta_pi;
  return m.pi1 / (m.pi1 + usable);
}

double power_reduction_factor(const MachineParams& m, double k) {
  if (m.uncapped())
    throw std::invalid_argument(
        "power_reduction_factor: machine has no cap to scale");
  const MachineParams reduced = with_cap_scaled(m, k);
  return m.max_power() / reduced.max_power();
}

EfficiencySummary summarize_efficiency(const MachineParams& m) {
  EfficiencySummary s;
  s.peak_flops_per_joule = peak_flops_per_joule(m);
  s.peak_bytes_per_joule = peak_bytes_per_joule(m);
  s.sustained_flops = m.peak_flops();
  s.sustained_bandwidth = m.peak_bandwidth();
  s.pi1 = m.pi1;
  s.delta_pi = m.uncapped() ? m.pi_flop() + m.pi_mem() : m.delta_pi;
  s.constant_fraction = constant_power_fraction(m);
  s.balance_lo = m.balance_lo();
  s.balance = m.time_balance();
  s.balance_hi = m.balance_hi();
  return s;
}

std::vector<double> intensity_grid(double lo, double hi,
                                   int points_per_octave) {
  if (!(lo > 0.0) || !(hi >= lo))
    throw std::invalid_argument("intensity_grid: need 0 < lo <= hi");
  if (points_per_octave < 1)
    throw std::invalid_argument("intensity_grid: points_per_octave >= 1");
  std::vector<double> grid;
  const double llo = std::log2(lo);
  const double lhi = std::log2(hi);
  const double step = 1.0 / static_cast<double>(points_per_octave);
  for (double l = llo; l < lhi + step * 0.5; l += step)
    grid.push_back(std::exp2(std::min(l, lhi)));
  return grid;
}

}  // namespace archline::core
