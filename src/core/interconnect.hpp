#pragma once
// Interconnection-network overhead for aggregated building blocks.
//
// The paper's Fig. 1 aggregate ("47 x Arndale GPU") is explicitly a best
// case: "this best-case ignores the significant costs of an
// interconnection network" (§I-A), and §V-D notes that node-level power
// headroom "leaves more relative power for other power overheads,
// including the network and cooling." This module quantifies that caveat:
// a simple network model charges each block a constant power overhead
// (NIC/switch share) and a parallel-efficiency factor on aggregate
// throughput, so the Fig. 1 comparison can be re-run under increasingly
// honest assumptions.

#include "core/machine_params.hpp"

namespace archline::core {

struct NetworkModel {
  /// Constant power drawn per block for NIC + switch share [W].
  double per_block_watts = 0.0;

  /// Fraction of ideal aggregate throughput retained (communication /
  /// load-imbalance efficiency), in (0, 1].
  double parallel_efficiency = 1.0;

  void validate() const;
};

/// An n-block aggregate with network costs applied: throughputs scale by
/// n * parallel_efficiency, pi1 gains n * per_block_watts, per-op
/// energies are unchanged (the network energy is folded into the power
/// overhead, matching the model's treatment of peripherals in pi1).
[[nodiscard]] MachineParams aggregate_with_network(const MachineParams& block,
                                                   int n,
                                                   const NetworkModel& net);

/// Largest n whose total power (pi1 + delta_pi + network overhead per
/// block) fits under `budget_watts`. Returns 0 if even one block does
/// not fit.
[[nodiscard]] int blocks_within_budget(const MachineParams& block,
                                       const NetworkModel& net,
                                       double budget_watts);

/// The network overhead [W] at which an aggregate of small blocks stops
/// beating `big` at the given intensity, holding parallel efficiency
/// fixed: bisects on per_block_watts in [0, watt_hi]. Returns a negative
/// value if the aggregate never wins even with a free network, or
/// watt_hi if it still wins at the bracket's top.
[[nodiscard]] double break_even_network_watts(
    const MachineParams& big, const MachineParams& small, double intensity,
    double parallel_efficiency = 1.0, double watt_hi = 10.0);

}  // namespace archline::core
