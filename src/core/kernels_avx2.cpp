// Explicit AVX2 lanes for the two hot kernels. Compiled with -mavx2
// ONLY — never -mfma: FMA contraction would change rounding and break
// the bit-identity contract in kernels.hpp. Every vector statement
// below mirrors one scalar statement in kernels_impl.hpp, in the same
// order, using only mul/add/div/max/cmp/blend; remainder tails reuse
// the shared scalar row bodies.
//
// Tie behavior of _mm256_max_pd (returns the second operand when equal)
// differs from std::max (returns the first) only in which *bit pattern*
// of an equal pair survives; all inputs here are products/quotients of
// non-negative finite values, so equal lanes are bit-equal and the
// results match.

#include <immintrin.h>

#include "core/kernels.hpp"
#include "core/kernels_impl.hpp"

namespace archline::core {

bool avx2_compiled_in() noexcept { return true; }

namespace {

/// Per-lane regime bytes from the (t_cap == t) and (t_mem == t) masks,
/// honoring the scalar tie order PowerCap > Memory > Compute.
inline void store_regimes(int cap_mask, int mem_mask, std::size_t n,
                          Regime* out) {
  for (std::size_t l = 0; l < n; ++l) {
    const int bit = 1 << l;
    out[l] = (cap_mask & bit)   ? Regime::PowerCap
             : (mem_mask & bit) ? Regime::Memory
                                : Regime::Compute;
  }
}

}  // namespace

void predict_batch_avx2(const MachineParams& m, const WorkloadBatch& in,
                        PredictionBatch& out) {
  const std::size_t n = in.size();
  out.resize(n);
  const detail::PredictConsts c(m);
  const double* f = in.flops.data();
  const double* b = in.bytes.data();

  const __m256d tau_flop = _mm256_set1_pd(c.tau_flop);
  const __m256d tau_mem = _mm256_set1_pd(c.tau_mem);
  const __m256d eps_flop = _mm256_set1_pd(c.eps_flop);
  const __m256d eps_mem = _mm256_set1_pd(c.eps_mem);
  const __m256d pi1 = _mm256_set1_pd(c.pi1);
  const __m256d delta_pi = _mm256_set1_pd(c.delta_pi);
  const __m256d zero = _mm256_setzero_pd();

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vf = _mm256_loadu_pd(f + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d t_flop = _mm256_mul_pd(vf, tau_flop);
    const __m256d t_mem = _mm256_mul_pd(vb, tau_mem);
    const __m256d lin = _mm256_add_pd(_mm256_mul_pd(vf, eps_flop),
                                      _mm256_mul_pd(vb, eps_mem));
    const __m256d t_cap =
        c.capped ? _mm256_div_pd(lin, delta_pi) : zero;
    const __m256d t =
        _mm256_max_pd(_mm256_max_pd(t_flop, t_mem), t_cap);
    const __m256d e = _mm256_add_pd(lin, _mm256_mul_pd(pi1, t));
    // avg_power: pi1 where t <= 0, else e/t (the masked lanes' e/t may
    // be inf/NaN; they are blended away, matching the scalar branch).
    const __m256d t_le0 = _mm256_cmp_pd(t, zero, _CMP_LE_OQ);
    const __m256d power =
        _mm256_blendv_pd(_mm256_div_pd(e, t), pi1, t_le0);

    _mm256_storeu_pd(out.intensity.data() + i, _mm256_div_pd(vf, vb));
    _mm256_storeu_pd(out.time_s.data() + i, t);
    _mm256_storeu_pd(out.energy_j.data() + i, e);
    _mm256_storeu_pd(out.avg_power_w.data() + i, power);
    _mm256_storeu_pd(out.performance.data() + i, _mm256_div_pd(vf, t));
    _mm256_storeu_pd(out.efficiency.data() + i, _mm256_div_pd(vf, e));

    const int cap_mask =
        c.capped
            ? _mm256_movemask_pd(_mm256_cmp_pd(t_cap, t, _CMP_EQ_OQ))
            : 0;
    const int mem_mask =
        _mm256_movemask_pd(_mm256_cmp_pd(t_mem, t, _CMP_EQ_OQ));
    store_regimes(cap_mask, mem_mask, 4, out.regime.data() + i);
  }
  if (i < n)
    detail::predict_rows(c, f + i, b + i, n - i, out.intensity.data() + i,
                         out.time_s.data() + i, out.energy_j.data() + i,
                         out.avg_power_w.data() + i,
                         out.performance.data() + i,
                         out.efficiency.data() + i, out.regime.data() + i);
}

void metric_curves_avx2(const MachineParams& m,
                        std::span<const double> intensities,
                        MetricCurve& out) {
  const std::size_t n = intensities.size();
  out.resize(n);
  const detail::CurveConsts c(m);
  const double* I = intensities.data();

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d tau_flop = _mm256_set1_pd(c.tau_flop);
  const __m256d tau_mem = _mm256_set1_pd(c.tau_mem);
  const __m256d eps_flop = _mm256_set1_pd(c.eps_flop);
  const __m256d eps_mem = _mm256_set1_pd(c.eps_mem);
  const __m256d pi1 = _mm256_set1_pd(c.pi1);
  const __m256d delta_pi = _mm256_set1_pd(c.delta_pi);
  const __m256d tb = _mm256_set1_pd(c.tb);
  const __m256d beps = _mm256_set1_pd(c.beps);
  const __m256d pi_flop = _mm256_set1_pd(c.pi_flop);
  const __m256d pi_mem = _mm256_set1_pd(c.pi_mem);
  const __m256d b_hi = _mm256_set1_pd(c.b_hi);
  const __m256d b_lo = _mm256_set1_pd(c.b_lo);
  const __m256d hi_c0 = _mm256_set1_pd(c.hi_c0);
  const __m256d hi_c1 = _mm256_set1_pd(c.hi_c1);
  const __m256d mid = _mm256_set1_pd(c.mid);
  const __m256d cap_coef = _mm256_set1_pd(c.cap_coef);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vI = _mm256_loadu_pd(I + i);

    // power: select hi / lo / mid with the scalar precedence (hi wins).
    const __m256d hi_v =
        _mm256_add_pd(hi_c0, _mm256_div_pd(hi_c1, vI));
    const __m256d lo_v = _mm256_add_pd(
        _mm256_add_pd(pi1, _mm256_div_pd(_mm256_mul_pd(pi_flop, vI), tb)),
        pi_mem);
    const __m256d m_hi = _mm256_cmp_pd(vI, b_hi, _CMP_GE_OQ);
    const __m256d m_lo = _mm256_cmp_pd(vI, b_lo, _CMP_LE_OQ);
    __m256d power = _mm256_blendv_pd(mid, lo_v, m_lo);
    power = _mm256_blendv_pd(power, hi_v, m_hi);
    _mm256_storeu_pd(out.power.data() + i, power);

    // performance / efficiency via time_per_flop.
    const __m256d free_term = _mm256_max_pd(one, _mm256_div_pd(tb, vI));
    const __m256d shared = _mm256_add_pd(one, _mm256_div_pd(beps, vI));
    __m256d tpf;
    if (c.capped) {
      const __m256d cap_term = _mm256_mul_pd(cap_coef, shared);
      tpf = _mm256_mul_pd(tau_flop, _mm256_max_pd(free_term, cap_term));
    } else {
      tpf = _mm256_mul_pd(tau_flop, free_term);
    }
    _mm256_storeu_pd(out.performance.data() + i, _mm256_div_pd(one, tpf));
    const __m256d epf = _mm256_add_pd(_mm256_mul_pd(eps_flop, shared),
                                      _mm256_mul_pd(pi1, tpf));
    _mm256_storeu_pd(out.efficiency.data() + i, _mm256_div_pd(one, epf));

    // regime_at: unit workload, bytes = 1/I first (see kernels_impl).
    const __m256d bytes = _mm256_div_pd(one, vI);
    const __m256d t_flop = tau_flop;
    const __m256d t_mem = _mm256_mul_pd(bytes, tau_mem);
    const __m256d lin =
        _mm256_add_pd(eps_flop, _mm256_mul_pd(bytes, eps_mem));
    const __m256d t_cap =
        c.capped ? _mm256_div_pd(lin, delta_pi) : zero;
    const __m256d t =
        _mm256_max_pd(_mm256_max_pd(t_flop, t_mem), t_cap);
    const int cap_mask =
        c.capped
            ? _mm256_movemask_pd(_mm256_cmp_pd(t_cap, t, _CMP_EQ_OQ))
            : 0;
    const int mem_mask =
        _mm256_movemask_pd(_mm256_cmp_pd(t_mem, t, _CMP_EQ_OQ));
    store_regimes(cap_mask, mem_mask, 4, out.regime.data() + i);
  }
  if (i < n)
    detail::curve_rows(c, I + i, n - i, out.power.data() + i,
                       out.performance.data() + i, out.efficiency.data() + i,
                       out.regime.data() + i);
}

}  // namespace archline::core
