#include "core/operating_point.hpp"

#include <cmath>
#include <stdexcept>

namespace archline::core {

void OperatingPoint::validate() const {
  if (!(freq_scale > 0.0) || !std::isfinite(freq_scale))
    throw std::invalid_argument(
        "OperatingPoint: freq_scale must be positive and finite");
  if (!(energy_scale > 0.0) || !std::isfinite(energy_scale))
    throw std::invalid_argument(
        "OperatingPoint: energy_scale must be positive and finite");
  if (pi1_watts >= 0.0 && !std::isfinite(pi1_watts))
    throw std::invalid_argument("OperatingPoint: pi1_watts must be finite");
  if (!(idle_watts >= 0.0) || !std::isfinite(idle_watts))
    throw std::invalid_argument(
        "OperatingPoint: idle_watts must be >= 0 and finite");
}

double dvfs_energy_scale(double leakage_fraction, double s) noexcept {
  return leakage_fraction + (1.0 - leakage_fraction) * s * s;
}

MachineParams apply_operating_point(const MachineParams& m,
                                    const OperatingPoint& p) {
  p.validate();
  MachineParams out = m;
  out.tau_flop = m.tau_flop / p.freq_scale;
  out.eps_flop = m.eps_flop * p.energy_scale;
  if (p.scale_memory) {
    out.tau_mem = m.tau_mem / p.freq_scale;
    out.eps_mem = m.eps_mem * p.energy_scale;
  }
  if (p.pi1_watts >= 0.0) out.pi1 = p.pi1_watts;
  return out;
}

const OperatingPoint& OperatingPointTable::nominal() const {
  if (points.empty())
    throw std::invalid_argument("OperatingPointTable: empty table");
  return points.back();
}

double OperatingPointTable::park_watts() const noexcept {
  double park = 0.0;
  bool first = true;
  for (const OperatingPoint& p : points) {
    if (first || p.idle_watts < park) park = p.idle_watts;
    first = false;
  }
  return park;
}

void OperatingPointTable::validate() const {
  if (points.empty())
    throw std::invalid_argument("OperatingPointTable: empty table");
  double prev = 0.0;
  for (const OperatingPoint& p : points) {
    p.validate();
    if (!(p.freq_scale > prev))
      throw std::invalid_argument(
          "OperatingPointTable: freq_scale must be strictly increasing");
    prev = p.freq_scale;
  }
}

std::vector<MachineParams> machines_at_points(
    const MachineParams& base, std::span<const OperatingPoint> points) {
  std::vector<MachineParams> machines;
  machines.reserve(points.size());
  for (const OperatingPoint& p : points)
    machines.push_back(apply_operating_point(base, p));
  return machines;
}

}  // namespace archline::core
