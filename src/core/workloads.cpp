#include "core/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/roofline.hpp"

namespace archline::core {

double WorkloadProfile::representative_intensity() const noexcept {
  return std::sqrt(intensity_lo * intensity_hi);
}

double WorkloadProfile::representative_intensity(Precision p) const noexcept {
  const double sp = representative_intensity();
  // Same flop count, double the bytes per word: intensity halves.
  return p == Precision::Single ? sp : sp / 2.0;
}

namespace {

std::vector<WorkloadProfile> build_library() {
  return {
      WorkloadProfile{
          .name = "SpMV",
          .description = "large sparse matrix-vector multiply (paper §I-A)",
          .intensity_lo = 0.25,
          .intensity_hi = 0.5},
      WorkloadProfile{
          .name = "FFT",
          .description = "large fast Fourier transform (paper §I-A)",
          .intensity_lo = 2.0,
          .intensity_hi = 4.0},
      WorkloadProfile{
          .name = "DGEMM",
          .description = "blocked dense matrix multiply, cache-tiled",
          .intensity_lo = 16.0,
          .intensity_hi = 64.0},
      WorkloadProfile{
          .name = "Stencil",
          .description = "7-point stencil sweep, streaming with reuse",
          .intensity_lo = 0.5,
          .intensity_hi = 1.0},
      WorkloadProfile{
          .name = "STREAM",
          .description = "pure bandwidth: copy/scale/add/triad",
          .intensity_lo = 1.0 / 16.0,
          .intensity_hi = 1.0 / 4.0},
      WorkloadProfile{
          .name = "GraphTraversal",
          .description = "BFS-like edge chasing; latency-bound random "
                         "access (paper §IV-f)",
          .intensity_lo = 1.0 / 16.0,
          .intensity_hi = 1.0 / 8.0,
          .pattern = AccessPattern::Random},
      WorkloadProfile{
          .name = "NBody",
          .description = "direct n-body force evaluation, compute-bound",
          .intensity_lo = 64.0,
          .intensity_hi = 256.0},
  };
}

const std::vector<WorkloadProfile>& library() {
  static const std::vector<WorkloadProfile> kLibrary = build_library();
  return kLibrary;
}

}  // namespace

std::span<const WorkloadProfile> workload_library() { return library(); }

const WorkloadProfile& workload(const std::string& name) {
  for (const WorkloadProfile& w : library())
    if (w.name == name) return w;
  throw std::out_of_range("unknown workload: " + name);
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(library().size());
  for (const WorkloadProfile& w : library()) names.push_back(w.name);
  return names;
}

std::vector<WorkloadRanking> rank_machines(
    const WorkloadProfile& profile,
    std::span<const std::pair<std::string, MachineParams>> machines,
    RankBy by) {
  const double intensity = profile.representative_intensity();
  std::vector<WorkloadRanking> out;
  out.reserve(machines.size());
  for (const auto& [name, m] : machines) {
    WorkloadRanking r;
    r.machine_name = name;
    r.performance = performance(m, intensity);
    r.efficiency = energy_efficiency(m, intensity);
    r.power = avg_power_closed_form(m, intensity);
    r.regime = regime_at(m, intensity);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [by](const WorkloadRanking& a, const WorkloadRanking& b) {
              switch (by) {
                case RankBy::Performance:
                  return a.performance > b.performance;
                case RankBy::Efficiency:
                  return a.efficiency > b.efficiency;
                case RankBy::PerformancePerWatt:
                  return a.performance / a.power > b.performance / b.power;
              }
              return false;
            });
  return out;
}

}  // namespace archline::core
