// Portable stand-in for kernels_avx2.cpp, selected by the build when
// the target is not x86-64 or when ARCHLINE_DISABLE_AVX2=ON (the CI
// no-AVX2 leg). The _avx2 entry points stay linkable — they delegate to
// the scalar kernels — and avx2_compiled_in() reports false so the
// dispatcher never prefers them.

#include "core/kernels.hpp"

namespace archline::core {

bool avx2_compiled_in() noexcept { return false; }

void predict_batch_avx2(const MachineParams& m, const WorkloadBatch& in,
                        PredictionBatch& out) {
  predict_batch_scalar(m, in, out);
}

void metric_curves_avx2(const MachineParams& m,
                        std::span<const double> intensities,
                        MetricCurve& out) {
  metric_curves_scalar(m, intensities, out);
}

}  // namespace archline::core
