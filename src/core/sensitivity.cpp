#include "core/sensitivity.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"

namespace archline::core {

const char* to_string(Param p) noexcept {
  switch (p) {
    case Param::TauFlop: return "tau_flop";
    case Param::EpsFlop: return "eps_flop";
    case Param::TauMem: return "tau_mem";
    case Param::EpsMem: return "eps_mem";
    case Param::Pi1: return "pi1";
    case Param::DeltaPi: return "delta_pi";
  }
  return "?";
}

MachineParams with_param_scaled(const MachineParams& m, Param p,
                                double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("with_param_scaled: factor must be > 0");
  MachineParams out = m;
  switch (p) {
    case Param::TauFlop: out.tau_flop *= factor; break;
    case Param::EpsFlop: out.eps_flop *= factor; break;
    case Param::TauMem: out.tau_mem *= factor; break;
    case Param::EpsMem: out.eps_mem *= factor; break;
    case Param::Pi1: out.pi1 *= factor; break;
    case Param::DeltaPi:
      if (!out.uncapped()) out.delta_pi *= factor;
      break;
  }
  return out;
}

double elasticity(const MachineParams& m, Param p, Metric metric,
                  double intensity, double log_step) {
  if (!(log_step > 0.0))
    throw std::invalid_argument("elasticity: log_step must be > 0");
  // pi1 can be zero (no constant power); elasticity to it is then 0.
  if (p == Param::Pi1 && m.pi1 == 0.0) return 0.0;
  if (p == Param::DeltaPi && m.uncapped()) return 0.0;
  const double up = std::exp(log_step);
  const double down = std::exp(-log_step);
  const double hi =
      metric_value(with_param_scaled(m, p, up), metric, intensity);
  const double lo =
      metric_value(with_param_scaled(m, p, down), metric, intensity);
  return (std::log(hi) - std::log(lo)) / (2.0 * log_step);
}

Param SensitivityProfile::dominant() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (std::abs(values[i]) > std::abs(values[best])) best = i;
  return kAllParams[best];
}

SensitivityProfile sensitivity_profile(const MachineParams& m, Metric metric,
                                       double intensity) {
  SensitivityProfile s;
  s.intensity = intensity;
  s.metric = metric;
  // Batch shape: the 12 perturbed machines (6 params x up/down, minus
  // the guarded ones) are built first, evaluated in ONE
  // metric_value_machines call, then combined into central differences.
  // Guards and step match elasticity() so the two stay bit-identical
  // (tests/test_kernels.cpp pins this).
  constexpr double kLogStep = 1e-4;  // elasticity()'s default log_step
  const double up = std::exp(kLogStep);
  const double down = std::exp(-kLogStep);
  std::vector<MachineParams> machines;
  machines.reserve(2 * kAllParams.size());
  std::array<bool, kAllParams.size()> guarded{};
  for (std::size_t i = 0; i < kAllParams.size(); ++i) {
    const Param p = kAllParams[i];
    guarded[i] = (p == Param::Pi1 && m.pi1 == 0.0) ||
                 (p == Param::DeltaPi && m.uncapped());
    if (guarded[i]) continue;
    machines.push_back(with_param_scaled(m, p, up));
    machines.push_back(with_param_scaled(m, p, down));
  }
  std::vector<double> values(machines.size());
  metric_value_machines(machines, metric, intensity, values.data());
  std::size_t next = 0;
  for (std::size_t i = 0; i < kAllParams.size(); ++i) {
    if (guarded[i]) {
      s.values[i] = 0.0;
      continue;
    }
    const double hi = values[next++];
    const double lo = values[next++];
    s.values[i] = (std::log(hi) - std::log(lo)) / (2.0 * kLogStep);
  }
  return s;
}

std::vector<SensitivityProfile> sensitivity_over_points(
    const MachineParams& base, std::span<const OperatingPoint> points,
    Metric metric, double intensity) {
  std::vector<SensitivityProfile> out;
  out.reserve(points.size());
  for (const OperatingPoint& p : points)
    out.push_back(
        sensitivity_profile(apply_operating_point(base, p), metric, intensity));
  return out;
}

}  // namespace archline::core
