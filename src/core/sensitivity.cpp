#include "core/sensitivity.hpp"

#include <cmath>
#include <stdexcept>

namespace archline::core {

const char* to_string(Param p) noexcept {
  switch (p) {
    case Param::TauFlop: return "tau_flop";
    case Param::EpsFlop: return "eps_flop";
    case Param::TauMem: return "tau_mem";
    case Param::EpsMem: return "eps_mem";
    case Param::Pi1: return "pi1";
    case Param::DeltaPi: return "delta_pi";
  }
  return "?";
}

MachineParams with_param_scaled(const MachineParams& m, Param p,
                                double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("with_param_scaled: factor must be > 0");
  MachineParams out = m;
  switch (p) {
    case Param::TauFlop: out.tau_flop *= factor; break;
    case Param::EpsFlop: out.eps_flop *= factor; break;
    case Param::TauMem: out.tau_mem *= factor; break;
    case Param::EpsMem: out.eps_mem *= factor; break;
    case Param::Pi1: out.pi1 *= factor; break;
    case Param::DeltaPi:
      if (!out.uncapped()) out.delta_pi *= factor;
      break;
  }
  return out;
}

double elasticity(const MachineParams& m, Param p, Metric metric,
                  double intensity, double log_step) {
  if (!(log_step > 0.0))
    throw std::invalid_argument("elasticity: log_step must be > 0");
  // pi1 can be zero (no constant power); elasticity to it is then 0.
  if (p == Param::Pi1 && m.pi1 == 0.0) return 0.0;
  if (p == Param::DeltaPi && m.uncapped()) return 0.0;
  const double up = std::exp(log_step);
  const double down = std::exp(-log_step);
  const double hi =
      metric_value(with_param_scaled(m, p, up), metric, intensity);
  const double lo =
      metric_value(with_param_scaled(m, p, down), metric, intensity);
  return (std::log(hi) - std::log(lo)) / (2.0 * log_step);
}

Param SensitivityProfile::dominant() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (std::abs(values[i]) > std::abs(values[best])) best = i;
  return kAllParams[best];
}

SensitivityProfile sensitivity_profile(const MachineParams& m, Metric metric,
                                       double intensity) {
  SensitivityProfile s;
  s.intensity = intensity;
  s.metric = metric;
  for (std::size_t i = 0; i < kAllParams.size(); ++i)
    s.values[i] = elasticity(m, kAllParams[i], metric, intensity);
  return s;
}

}  // namespace archline::core
