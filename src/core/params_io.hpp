#pragma once
// Serialization of MachineParams to a small key = value text format, so
// fitted machines can be saved, diffed, and reloaded by tools and the
// examples. Self-contained (no CSV dependency); round-trip is exact to
// the printed precision (17 significant digits, i.e. lossless for
// double).

#include <string>

#include "core/machine_params.hpp"

namespace archline::core {

/// Serializes to lines of "key = value". Keys: tau_flop, eps_flop,
/// tau_mem, eps_mem, pi1, delta_pi (delta_pi prints "inf" when uncapped).
/// An optional name comment ("# name") leads the block.
[[nodiscard]] std::string to_text(const MachineParams& m,
                                  const std::string& name = "");

/// Parses the format written by to_text (unknown keys are ignored,
/// comments and blank lines skipped). Throws std::invalid_argument on a
/// malformed line or if any required key is missing, and validates the
/// result.
[[nodiscard]] MachineParams machine_from_text(const std::string& text);

}  // namespace archline::core
