#pragma once
// Energy-policy engine over DVFS operating points.
//
// Given a workload, a period (deadline), and an objective, evaluate the
// three classical execution plans at every operating point and
// recommend the (point, plan) pair minimizing the objective:
//
//   * race-to-idle: run the work flat out at point i, then park for the
//     remaining slack of the period at the table's deepest idle power.
//       T_busy = T_i (eq. 1 at point i),  E = E_i + (P - T_i) * park
//   * slow-and-steady: duty-cycle point i so execution fills the period
//     exactly — per-op dynamic energy is unchanged, but the running
//     constant power pi1_i is paid for the whole stretched window:
//       T_busy = P,  E = W eps_flop,i + Q eps_mem,i + pi1_i * P
//   * cap-throttled: the paper's §V-D mechanism — reduce the usable
//     power at point i so total power never exceeds the target, run to
//     completion under eq. (1)'s power-limited term, then park:
//       T_busy = T(cap_i),  E = E(cap_i) + (P - T_busy) * park
//
// "Racing to Idle" (arXiv 2507.20063) shows the race/steady winner
// flips with the idle-power floor; with this model the break-even is
// analytic (pinned in tests/test_policy.cpp): race-to-idle at point f
// beats slow-and-steady at point s exactly while
//   park < (dyn_s - dyn_f + pi1_s P - pi1_f T_f) / (P - T_f).
//
// With no period (period_s = 0) the plans coincide with plain
// run-to-completion at each point and the sweep reduces to picking the
// best operating point for the objective.

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "core/machine_params.hpp"
#include "core/operating_point.hpp"
#include "core/roofline.hpp"

namespace archline::core {

enum class Objective {
  MinEnergy,  ///< minimize total energy over the window
  MinTime,    ///< minimize time-to-completion (busy time)
  MinEdp,     ///< minimize energy x time-to-completion
  PowerCap,   ///< fastest completion whose average power fits the cap
};

[[nodiscard]] const char* to_string(Objective o) noexcept;

enum class PlanKind {
  RaceToIdle,
  SlowAndSteady,
  CapThrottled,
};

[[nodiscard]] const char* to_string(PlanKind k) noexcept;

struct PolicyRequest {
  Workload workload;
  Objective objective = Objective::MinEnergy;
  /// Period / deadline [s]. 0 means "no deadline": plans run to
  /// completion with no parked slack.
  double period_s = 0.0;
  /// Average-power budget [W]. Required (> 0) for Objective::PowerCap;
  /// when set it also enables cap-throttled plans for the other
  /// objectives.
  double power_cap_w = 0.0;

  /// Throws std::invalid_argument on a non-positive workload, a
  /// negative/non-finite period, or PowerCap without a positive cap.
  void validate() const;
};

/// One evaluated (operating point, plan) pair. Infeasible plans (the
/// point cannot meet the period, or the cap is below the point's
/// constant power) keep feasible = false and an infinite objective.
struct PlanEvaluation {
  std::size_t point_index = 0;
  PlanKind kind = PlanKind::RaceToIdle;
  bool feasible = false;
  double busy_s = 0.0;       ///< time-to-completion (active execution)
  double time_s = 0.0;       ///< full window (== period when one is set)
  double energy_j = 0.0;     ///< total over time_s, parked slack included
  double avg_power_w = 0.0;  ///< energy_j / time_s
  double edp = 0.0;          ///< energy_j * busy_s
  double objective_value = std::numeric_limits<double>::infinity();
  Regime regime = Regime::Compute;  ///< regime of the active execution
};

struct PolicyAdvice {
  PolicyRequest request;
  double park_watts = 0.0;
  /// Every (point, plan) evaluated: points in table order, plans in
  /// {race_to_idle, slow_and_steady, cap_throttled} order per point
  /// (cap-throttled rows only when a power cap was given).
  std::vector<PlanEvaluation> plans;
  /// Index into `plans` of the recommendation, or npos when no plan is
  /// feasible. Ties break toward the earlier row (slower point first,
  /// race-to-idle before slow-and-steady).
  std::size_t best = npos;

  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  [[nodiscard]] bool has_recommendation() const noexcept {
    return best != npos;
  }
  [[nodiscard]] const PlanEvaluation& recommended() const;
};

/// The engine, machines supplied per point (machines.size() must equal
/// points.size()). This is the form the serving layer uses: the online
/// snapshot carries pre-built per-point machines so learned constants
/// steer the recommendation.
[[nodiscard]] PolicyAdvice policy_advise(std::span<const MachineParams> machines,
                                         std::span<const OperatingPoint> points,
                                         double park_watts,
                                         const PolicyRequest& request);

/// Convenience: derive the per-point machines from a base machine and a
/// table (park power = table.park_watts()).
[[nodiscard]] PolicyAdvice policy_advise(const MachineParams& base,
                                         const OperatingPointTable& table,
                                         const PolicyRequest& request);

}  // namespace archline::core
