#include "core/machine_params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/units.hpp"

namespace archline::core {

double MachineParams::balance_hi() const noexcept {
  // B_tau+ = B_tau * max(1, pi_mem / (delta_pi - pi_flop))   (eq. 5)
  // When delta_pi <= pi_flop there is no headroom for memory at all while
  // running flops at rate; the interval degenerates to +infinity.
  const double headroom = delta_pi - pi_flop();
  if (uncapped()) return time_balance();
  if (headroom <= 0.0) return std::numeric_limits<double>::infinity();
  return time_balance() * std::max(1.0, pi_mem() / headroom);
}

double MachineParams::balance_lo() const noexcept {
  // B_tau- = B_tau * min(1, (delta_pi - pi_mem) / pi_flop)   (eq. 6)
  if (uncapped()) return time_balance();
  const double headroom = delta_pi - pi_mem();
  if (headroom <= 0.0) return 0.0;
  return time_balance() * std::min(1.0, headroom / pi_flop());
}

bool MachineParams::power_sufficient() const noexcept {
  return delta_pi >= pi_flop() + pi_mem();
}

double MachineParams::max_power() const noexcept {
  return pi1 + std::min(delta_pi, pi_flop() + pi_mem());
}

MachineParams MachineParams::without_cap() const noexcept {
  MachineParams p = *this;
  p.delta_pi = kUncapped;
  return p;
}

void MachineParams::validate(const std::string& context) const {
  const auto fail = [&context](const std::string& what) {
    throw std::invalid_argument(context + ": " + what);
  };
  const auto positive_finite = [&fail](double v, const char* name) {
    if (!(v > 0.0) || !std::isfinite(v))
      fail(std::string(name) + " must be positive and finite");
  };
  positive_finite(tau_flop, "tau_flop");
  positive_finite(eps_flop, "eps_flop");
  positive_finite(tau_mem, "tau_mem");
  positive_finite(eps_mem, "eps_mem");
  if (!(pi1 >= 0.0) || !std::isfinite(pi1))
    fail("pi1 must be non-negative and finite");
  if (!(delta_pi > 0.0)) fail("delta_pi must be positive");
}

MachineParams make_machine_gflops(double sustained_gflops, double pj_per_flop,
                                  double sustained_gbytes, double pj_per_byte,
                                  double pi1_watts, double delta_pi_watts) {
  MachineParams p;
  p.tau_flop = 1.0 / units::from_gflops(sustained_gflops);
  p.eps_flop = units::from_picojoules(pj_per_flop);
  p.tau_mem = 1.0 / units::from_gbytes(sustained_gbytes);
  p.eps_mem = units::from_picojoules(pj_per_byte);
  p.pi1 = pi1_watts;
  p.delta_pi = delta_pi_watts;
  p.validate("make_machine_gflops");
  return p;
}

}  // namespace archline::core
