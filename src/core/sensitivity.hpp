#pragma once
// Parameter sensitivity: which machine constant limits a workload?
//
// The paper's §V-C/§VI conclusion — "driving down pi1 would be the key
// factor for improving overall system power reconfigurability" — is a
// sensitivity statement. This module makes such statements quantitative
// for any (machine, metric, intensity): the logarithmic derivative
// d log(metric) / d log(parameter), i.e. the % change in the metric per
// % change in the parameter. Elasticities obey sanity identities the
// tests verify (e.g. deep in the memory-bound regime performance has
// elasticity -1 to tau_mem and 0 to tau_flop; energy elasticities to
// {eps_flop, eps_mem, pi1-charge} sum to -1 for efficiency).

#include <array>
#include <span>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/operating_point.hpp"
#include "core/roofline.hpp"

namespace archline::core {

enum class Param {
  TauFlop,
  EpsFlop,
  TauMem,
  EpsMem,
  Pi1,
  DeltaPi,
};

inline constexpr std::array<Param, 6> kAllParams = {
    Param::TauFlop, Param::EpsFlop, Param::TauMem,
    Param::EpsMem,  Param::Pi1,     Param::DeltaPi};

[[nodiscard]] const char* to_string(Param p) noexcept;

/// Returns a copy of `m` with one parameter multiplied by `factor`.
[[nodiscard]] MachineParams with_param_scaled(const MachineParams& m,
                                              Param p, double factor);

/// Elasticity d log(metric) / d log(param) at the given intensity,
/// via symmetric log-space differences (h = 1e-4 by default).
[[nodiscard]] double elasticity(const MachineParams& m, Param p,
                                Metric metric, double intensity,
                                double log_step = 1e-4);

/// Elasticities of one metric to all six parameters at an intensity.
struct SensitivityProfile {
  double intensity = 0.0;
  Metric metric = Metric::Performance;
  std::array<double, 6> values{};  ///< indexed as kAllParams

  [[nodiscard]] double operator[](Param p) const noexcept {
    return values[static_cast<std::size_t>(p)];
  }

  /// The parameter with the largest |elasticity| — "what limits me here".
  [[nodiscard]] Param dominant() const noexcept;
};

[[nodiscard]] SensitivityProfile sensitivity_profile(const MachineParams& m,
                                                     Metric metric,
                                                     double intensity);

/// Sensitivity swept across a DVFS ladder: the profile of the machine
/// at each operating point, in table order. Which constant dominates
/// typically shifts as the clock drops — flop-time limits fade, the
/// pi1 charge grows — and this makes that shift quantitative.
[[nodiscard]] std::vector<SensitivityProfile> sensitivity_over_points(
    const MachineParams& base, std::span<const OperatingPoint> points,
    Metric metric, double intensity);

}  // namespace archline::core
