#include "core/interconnect.hpp"

#include <cmath>
#include <stdexcept>

#include "core/roofline.hpp"
#include "core/scenarios.hpp"

namespace archline::core {

void NetworkModel::validate() const {
  if (!(per_block_watts >= 0.0))
    throw std::invalid_argument("NetworkModel: negative power overhead");
  if (!(parallel_efficiency > 0.0) || parallel_efficiency > 1.0)
    throw std::invalid_argument(
        "NetworkModel: parallel efficiency outside (0, 1]");
}

MachineParams aggregate_with_network(const MachineParams& block, int n,
                                     const NetworkModel& net) {
  net.validate();
  if (n < 1) throw std::invalid_argument("aggregate_with_network: n >= 1");
  const double dn = static_cast<double>(n);
  const double scale = dn * net.parallel_efficiency;
  MachineParams out = block;
  out.tau_flop = block.tau_flop / scale;
  out.tau_mem = block.tau_mem / scale;
  out.pi1 = block.pi1 * dn + net.per_block_watts * dn;
  if (!block.uncapped()) out.delta_pi = block.delta_pi * dn;
  return out;
}

int blocks_within_budget(const MachineParams& block, const NetworkModel& net,
                         double budget_watts) {
  net.validate();
  const double per_block =
      block.pi1 + net.per_block_watts +
      (block.uncapped() ? block.pi_flop() + block.pi_mem()
                        : block.delta_pi);
  if (!(per_block > 0.0))
    throw std::invalid_argument("blocks_within_budget: zero block power");
  return static_cast<int>(std::floor(budget_watts / per_block + 1e-9));
}

double break_even_network_watts(const MachineParams& big,
                                const MachineParams& small, double intensity,
                                double parallel_efficiency, double watt_hi) {
  const double budget = big.pi1 + big.delta_pi;
  const double big_perf = performance(big, intensity);

  const auto aggregate_wins = [&](double watts) {
    NetworkModel net{.per_block_watts = watts,
                     .parallel_efficiency = parallel_efficiency};
    const int n = blocks_within_budget(small, net, budget);
    if (n < 1) return false;
    const MachineParams agg = aggregate_with_network(small, n, net);
    return performance(agg, intensity) > big_perf;
  };

  if (!aggregate_wins(0.0)) return -1.0;
  if (aggregate_wins(watt_hi)) return watt_hi;
  double lo = 0.0;
  double hi = watt_hi;
  for (int iter = 0; iter < 100 && hi - lo > 1e-9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (aggregate_wins(mid)) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace archline::core
