#pragma once
// DVFS as an alternative power-reduction mechanism.
//
// The paper's §V-D studies meeting a power target by *capping* (throttle
// issue rates, per-op costs unchanged), citing Rountree et al.'s "Beyond
// DVFS" as the motivation for hardware-enforced bounds. This extension
// adds the mechanism the cap is contrasted against: voltage-frequency
// scaling, where slowing the clock by s also scales the dynamic part of
// per-op energy by ~s^2 (V roughly tracks f), while leakage and constant
// power do not scale. Comparing the two answers a question the paper
// leaves implicit: when does throttling beat down-clocking, and by how
// much, as a function of intensity?
//
// DvfsModel is the *continuous generator* behind the discrete
// OperatingPoint model (operating_point.hpp): dvfs_operating_point()
// materializes the state at one frequency scale, dvfs_ladder() a whole
// table of them. apply_dvfs() remains as the one-call form and is
// defined as apply_operating_point(m, dvfs_operating_point(model, s)) —
// bit-identical to its pre-refactor arithmetic.

#include <cstddef>

#include "core/machine_params.hpp"
#include "core/operating_point.hpp"

namespace archline::core {

struct DvfsModel {
  /// Fraction of per-op energy that does NOT scale with V^2 (leakage,
  /// short-circuit, uncore).
  double leakage_fraction = 0.3;

  /// Whether the memory system shares the scaled clock domain. Discrete
  /// DRAM usually does not; on-chip scratchpads often do.
  bool scale_memory = false;

  /// Lowest usable frequency scale (voltage floor).
  double min_scale = 0.2;

  void validate() const;
};

/// The discrete operating point this model generates at frequency scale
/// s in [min_scale, 1]: energy_scale = leakage + (1 - leakage) s^2,
/// label "<s>x". pi1/idle are left at their defaults (inherit / 0);
/// platform tables supply their own.
[[nodiscard]] OperatingPoint dvfs_operating_point(const DvfsModel& model,
                                                  double s);

/// A table of `count` (>= 2) evenly spaced points from min_scale to 1.
/// `idle_watts` is the park power stamped on every point.
[[nodiscard]] OperatingPointTable dvfs_ladder(const DvfsModel& model,
                                              std::size_t count,
                                              double idle_watts = 0.0);

/// The machine at frequency scale s in [min_scale, 1]: rates scale by s,
/// dynamic per-op energy by s^2, pi1 and delta_pi unchanged.
[[nodiscard]] MachineParams apply_dvfs(const MachineParams& m, double s,
                                       const DvfsModel& model);

/// Largest frequency scale whose worst-case average power (over all
/// intensities) fits under `target_watts`. Returns 1.0 when no scaling is
/// needed; throws std::invalid_argument when the target is below what
/// even min_scale reaches.
[[nodiscard]] double dvfs_scale_for_power(const MachineParams& m,
                                          const DvfsModel& model,
                                          double target_watts);

/// Head-to-head at one intensity: meet `target_watts` of worst-case node
/// power by capping (delta_pi reduced) vs by DVFS.
struct PowerMechanismComparison {
  double target_watts = 0.0;
  double intensity = 0.0;
  double cap_performance = 0.0;   ///< flop/s under the reduced cap
  double cap_efficiency = 0.0;    ///< flop/J
  double dvfs_performance = 0.0;  ///< flop/s at the reduced frequency
  double dvfs_efficiency = 0.0;
  double frequency_scale = 0.0;   ///< the s DVFS needed
  /// dvfs_efficiency / cap_efficiency: > 1 where down-clocking saves
  /// energy that throttling cannot.
  [[nodiscard]] double efficiency_advantage() const noexcept {
    return dvfs_efficiency / cap_efficiency;
  }
};

[[nodiscard]] PowerMechanismComparison compare_cap_vs_dvfs(
    const MachineParams& m, const DvfsModel& model, double target_watts,
    double intensity);

}  // namespace archline::core
