#pragma once
// Unit conventions and conversion constants.
//
// archline stores every physical quantity in base SI units as double:
//   time          seconds      [s]
//   energy        joules       [J]
//   power         watts        [W]
//   data volume   bytes        [B]
//   work          flop         (or another natural op; see paper fn. 3)
//   throughput    flop/s, B/s
//   intensity     flop/B
//
// Derived-unit values common in the paper (pJ/flop, Gflop/s, GB/s) are
// converted at construction/output boundaries with these constants.

namespace archline::units {

inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// pJ/flop (or pJ/B) -> J/flop (J/B).
[[nodiscard]] constexpr double from_picojoules(double pj) noexcept {
  return pj * kPico;
}
/// J -> pJ.
[[nodiscard]] constexpr double to_picojoules(double joules) noexcept {
  return joules / kPico;
}
/// nJ -> J.
[[nodiscard]] constexpr double from_nanojoules(double nj) noexcept {
  return nj * kNano;
}
/// Gflop/s -> flop/s.
[[nodiscard]] constexpr double from_gflops(double gflops) noexcept {
  return gflops * kGiga;
}
/// flop/s -> Gflop/s.
[[nodiscard]] constexpr double to_gflops(double flops) noexcept {
  return flops / kGiga;
}
/// GB/s -> B/s.
[[nodiscard]] constexpr double from_gbytes(double gb) noexcept {
  return gb * kGiga;
}
/// B/s -> GB/s.
[[nodiscard]] constexpr double to_gbytes(double bytes) noexcept {
  return bytes / kGiga;
}
/// Throughput (ops/s) -> cost per op (s/op). Throughput must be positive.
[[nodiscard]] constexpr double per_op_from_rate(double rate) noexcept {
  return 1.0 / rate;
}

}  // namespace archline::units
