#pragma once
// Shared memory-hierarchy vocabulary used across core, platforms, sim and
// microbench: which level a working set lives in and how it is accessed.

namespace archline::core {

/// Memory level a kernel's working set resides in (fig. 2 generalized to a
/// hierarchy; paper §IV-g). DRAM is the "slow memory" of the abstract model.
enum class MemLevel {
  L1,    ///< L1 cache (or GPU shared memory / scratchpad)
  L2,    ///< L2 cache
  DRAM,  ///< main memory
};

/// How the kernel touches its working set (paper §IV-e vs §IV-f).
enum class AccessPattern {
  Streaming,  ///< unit-stride, prefetch-friendly (intensity benchmark)
  Random,     ///< pointer chasing, defeats prefetch (random benchmark)
};

/// Floating-point precision of the flop stream.
enum class Precision {
  Single,
  Double,
};

[[nodiscard]] constexpr const char* to_string(MemLevel level) noexcept {
  switch (level) {
    case MemLevel::L1: return "L1";
    case MemLevel::L2: return "L2";
    case MemLevel::DRAM: return "DRAM";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::Streaming: return "streaming";
    case AccessPattern::Random: return "random";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Precision p) noexcept {
  switch (p) {
    case Precision::Single: return "single";
    case Precision::Double: return "double";
  }
  return "?";
}

/// Bytes per word for a precision (4 or 8).
[[nodiscard]] constexpr double word_bytes(Precision p) noexcept {
  return p == Precision::Single ? 4.0 : 8.0;
}

}  // namespace archline::core
