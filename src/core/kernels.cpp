#include "core/kernels.hpp"

#include <cstdlib>
#include <cstring>

#include "core/kernels_impl.hpp"

namespace archline::core {

void PredictionBatch::resize(std::size_t n) {
  intensity.resize(n);
  time_s.resize(n);
  energy_j.resize(n);
  avg_power_w.resize(n);
  performance.resize(n);
  efficiency.resize(n);
  regime.resize(n);
}

void MetricCurve::resize(std::size_t n) {
  power.resize(n);
  performance.resize(n);
  efficiency.resize(n);
  regime.resize(n);
}

const char* to_string(KernelPath path) noexcept {
  switch (path) {
    case KernelPath::Scalar: return "scalar";
    case KernelPath::Avx2: return "avx2";
  }
  return "?";
}

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool avx2_available() noexcept { return avx2_compiled_in() && cpu_has_avx2(); }

KernelPath resolve_kernel_path(const char* env, bool avx2_ok) noexcept {
  if (env != nullptr) {
    if (std::strcmp(env, "avx2") == 0)
      return avx2_ok ? KernelPath::Avx2 : KernelPath::Scalar;
    // "scalar" and anything unrecognized both force the portable path:
    // a typo must never silently re-enable SIMD.
    return KernelPath::Scalar;
  }
  return avx2_ok ? KernelPath::Avx2 : KernelPath::Scalar;
}

KernelPath active_kernel_path() noexcept {
  static const KernelPath path =
      resolve_kernel_path(std::getenv("ARCHLINE_KERNEL_PATH"),
                          avx2_available());
  return path;
}

void predict_batch_scalar(const MachineParams& m, const WorkloadBatch& in,
                          PredictionBatch& out) {
  const std::size_t n = in.size();
  out.resize(n);
  const detail::PredictConsts c(m);
  detail::predict_rows(c, in.flops.data(), in.bytes.data(), n,
                       out.intensity.data(), out.time_s.data(),
                       out.energy_j.data(), out.avg_power_w.data(),
                       out.performance.data(), out.efficiency.data(),
                       out.regime.data());
}

void metric_curves_scalar(const MachineParams& m,
                          std::span<const double> intensities,
                          MetricCurve& out) {
  const std::size_t n = intensities.size();
  out.resize(n);
  const detail::CurveConsts c(m);
  detail::curve_rows(c, intensities.data(), n, out.power.data(),
                     out.performance.data(), out.efficiency.data(),
                     out.regime.data());
}

void predict_batch(const MachineParams& m, const WorkloadBatch& in,
                   PredictionBatch& out) {
  if (active_kernel_path() == KernelPath::Avx2)
    predict_batch_avx2(m, in, out);
  else
    predict_batch_scalar(m, in, out);
}

void metric_curves(const MachineParams& m, std::span<const double> intensities,
                   MetricCurve& out) {
  if (active_kernel_path() == KernelPath::Avx2)
    metric_curves_avx2(m, intensities, out);
  else
    metric_curves_scalar(m, intensities, out);
}

namespace {

/// SoA chunk width for the machine-batch metric kernel. 16 doubles per
/// field keeps every working array in L1 while giving the
/// auto-vectorizer full-width loops.
constexpr std::size_t kMachineChunk = 16;

void power_machines_chunk(const MachineParams* ms, std::size_t n,
                          double intensity, double* out) {
  double pi1[kMachineChunk], pi_flop[kMachineChunk], pi_mem[kMachineChunk];
  double tb[kMachineChunk], b_hi[kMachineChunk], b_lo[kMachineChunk];
  double mid[kMachineChunk];
  for (std::size_t i = 0; i < n; ++i) {
    const MachineParams& m = ms[i];
    pi1[i] = m.pi1;
    pi_flop[i] = m.pi_flop();
    pi_mem[i] = m.pi_mem();
    tb[i] = m.time_balance();
    b_hi[i] = m.balance_hi();
    b_lo[i] = m.balance_lo();
    mid[i] = m.pi1 + m.delta_pi;
  }
  for (std::size_t i = 0; i < n; ++i)
    out[i] = intensity >= b_hi[i]
                 ? (pi1[i] + pi_flop[i]) + (pi_mem[i] * tb[i]) / intensity
             : intensity <= b_lo[i]
                 ? (pi1[i] + (pi_flop[i] * intensity) / tb[i]) + pi_mem[i]
                 : mid[i];
}

void perf_eff_machines_chunk(const MachineParams* ms, std::size_t n,
                             double intensity, bool want_efficiency,
                             double* out) {
  double tau_flop[kMachineChunk], eps_flop[kMachineChunk];
  double pi1[kMachineChunk], tb[kMachineChunk], beps[kMachineChunk];
  double cap_coef[kMachineChunk];
  bool capped[kMachineChunk];
  for (std::size_t i = 0; i < n; ++i) {
    const MachineParams& m = ms[i];
    tau_flop[i] = m.tau_flop;
    eps_flop[i] = m.eps_flop;
    pi1[i] = m.pi1;
    tb[i] = m.time_balance();
    beps[i] = m.energy_balance();
    capped[i] = !m.uncapped();
    cap_coef[i] = capped[i] ? m.pi_flop() / m.delta_pi : 0.0;
  }
  double tpf[kMachineChunk];
  for (std::size_t i = 0; i < n; ++i) {
    const double free_term = std::max(1.0, tb[i] / intensity);
    const double cap_term = cap_coef[i] * (1.0 + beps[i] / intensity);
    tpf[i] = capped[i] ? tau_flop[i] * std::max(free_term, cap_term)
                       : tau_flop[i] * free_term;
  }
  if (!want_efficiency) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 1.0 / tpf[i];
    return;
  }
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        1.0 / (eps_flop[i] * (1.0 + beps[i] / intensity) + pi1[i] * tpf[i]);
}

}  // namespace

void metric_value_machines(std::span<const MachineParams> machines,
                           Metric metric, double intensity, double* out) {
  std::size_t done = 0;
  while (done < machines.size()) {
    const std::size_t n = std::min(kMachineChunk, machines.size() - done);
    const MachineParams* ms = machines.data() + done;
    switch (metric) {
      case Metric::Power:
        power_machines_chunk(ms, n, intensity, out + done);
        break;
      case Metric::Performance:
        perf_eff_machines_chunk(ms, n, intensity, /*want_efficiency=*/false,
                                out + done);
        break;
      case Metric::EnergyEfficiency:
        perf_eff_machines_chunk(ms, n, intensity, /*want_efficiency=*/true,
                                out + done);
        break;
    }
    done += n;
  }
}

}  // namespace archline::core
