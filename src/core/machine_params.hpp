#pragma once
// The abstract machine of the paper's §III: four fundamental time/energy
// costs, constant power pi1, and the usable-power cap delta_pi.
//
// MachineParams is the central value type of archline. Everything else —
// roofline predictions, what-if scenarios, fitting, the simulator — is
// expressed in terms of it.

#include <limits>
#include <string>

namespace archline::core {

/// Work performed by an abstract algorithm: W flops and Q bytes moved
/// between slow and fast memory (fig. 2 of the paper).
struct Workload {
  double flops = 0.0;  ///< W, flop
  double bytes = 0.0;  ///< Q, B

  /// Operational intensity I = W / Q [flop/B]. Q must be positive.
  [[nodiscard]] double intensity() const noexcept { return flops / bytes; }

  /// Builds a workload of `flops` total flop at intensity I.
  [[nodiscard]] static Workload from_intensity(double flops,
                                               double intensity) noexcept {
    return Workload{.flops = flops, .bytes = flops / intensity};
  }
};

/// Sentinel for an uncapped machine (the paper's prior model [3], [4]).
inline constexpr double kUncapped = std::numeric_limits<double>::infinity();

/// Fundamental machine parameters (paper §III-a).
///
/// Invariants (checked by validate()): all costs positive and finite;
/// pi1 >= 0; delta_pi > 0 (possibly infinite = uncapped).
struct MachineParams {
  double tau_flop = 0.0;  ///< time per flop [s/flop]; 1 / sustained flop/s
  double eps_flop = 0.0;  ///< energy per flop [J/flop]
  double tau_mem = 0.0;   ///< time per byte [s/B]; 1 / sustained B/s
  double eps_mem = 0.0;   ///< energy per byte [J/B]
  double pi1 = 0.0;       ///< constant power [W]
  double delta_pi = kUncapped;  ///< usable power above pi1 [W]

  // ---- Derived quantities (paper §III) ------------------------------

  /// Peak flop power pi_flop = eps_flop / tau_flop [W].
  [[nodiscard]] double pi_flop() const noexcept { return eps_flop / tau_flop; }

  /// Peak memory power pi_mem = eps_mem / tau_mem [W].
  [[nodiscard]] double pi_mem() const noexcept { return eps_mem / tau_mem; }

  /// Time balance B_tau = tau_mem / tau_flop [flop/B]: the machine's
  /// intrinsic flop:Byte ratio.
  [[nodiscard]] double time_balance() const noexcept {
    return tau_mem / tau_flop;
  }

  /// Energy balance B_eps = eps_mem / eps_flop [flop/B].
  [[nodiscard]] double energy_balance() const noexcept {
    return eps_mem / eps_flop;
  }

  /// Upper throttled balance point B_tau+ (paper eq. 5).
  [[nodiscard]] double balance_hi() const noexcept;

  /// Lower throttled balance point B_tau- (paper eq. 6).
  [[nodiscard]] double balance_lo() const noexcept;

  /// True when delta_pi >= pi_flop + pi_mem: enough usable power to run
  /// flops and memory at full rate simultaneously (then B- = B = B+).
  [[nodiscard]] bool power_sufficient() const noexcept;

  /// True when delta_pi is the kUncapped sentinel.
  [[nodiscard]] bool uncapped() const noexcept {
    return delta_pi == kUncapped;
  }

  /// Maximum achievable average system power pi1 + min(delta_pi,
  /// pi_flop + pi_mem) [W].
  [[nodiscard]] double max_power() const noexcept;

  /// Sustained peak throughputs implied by the time costs.
  [[nodiscard]] double peak_flops() const noexcept { return 1.0 / tau_flop; }
  [[nodiscard]] double peak_bandwidth() const noexcept {
    return 1.0 / tau_mem;
  }

  /// Returns a copy with the cap removed (the paper's prior model).
  [[nodiscard]] MachineParams without_cap() const noexcept;

  /// Throws std::invalid_argument (with `context` in the message) if any
  /// invariant is violated.
  void validate(const std::string& context = "MachineParams") const;
};

/// Convenience constructor from the units the paper's Table I uses:
/// sustained Gflop/s, pJ/flop, sustained GB/s, pJ/B, watts.
[[nodiscard]] MachineParams make_machine_gflops(
    double sustained_gflops, double pj_per_flop, double sustained_gbytes,
    double pj_per_byte, double pi1_watts, double delta_pi_watts = kUncapped);

}  // namespace archline::core
