#pragma once
// Higher-level analytical quantities derived from the model — the numbers
// the paper quotes in figure annotations and §V-B/§V-C prose.

#include <vector>

#include "core/machine_params.hpp"

namespace archline::core {

/// Peak energy efficiency at I -> infinity:
///   1 / (eps_flop + pi1 * tau_flop)  [flop/J].
/// This is the "16 Gflop/J" style headline of Fig. 5.
[[nodiscard]] double peak_flops_per_joule(const MachineParams& m) noexcept;

/// Peak data-movement efficiency at I -> 0:
///   1 / (eps_mem + pi1 * tau_mem)  [B/J]  ("1.3 GB/J" in Fig. 5).
[[nodiscard]] double peak_bytes_per_joule(const MachineParams& m) noexcept;

/// Effective energy to stream one byte, including the constant-power
/// charge: eps_mem + pi1 * tau_mem [J/B]. The §V-B worked example — this is
/// what inverts the Xeon Phi / GTX Titan / Arndale ordering.
[[nodiscard]] double effective_stream_energy_per_byte(
    const MachineParams& m) noexcept;

/// The constant-power charge alone, pi1 * tau_mem [J/B].
[[nodiscard]] double constant_energy_per_byte(const MachineParams& m) noexcept;

/// Fraction of maximum power that is constant: pi1 / (pi1 + delta_pi).
/// §V-C: > 50% on 7 of the paper's 12 platforms; correlates ~ -0.6 with
/// peak energy efficiency. For uncapped machines uses pi_flop + pi_mem as
/// the usable-power proxy.
[[nodiscard]] double constant_power_fraction(const MachineParams& m) noexcept;

/// Power reduction actually achieved when the cap shrinks by k:
///   max_power(delta_pi) / max_power(delta_pi / k).
/// Always <= k because pi1 does not scale (Fig. 6 discussion).
[[nodiscard]] double power_reduction_factor(const MachineParams& m, double k);

/// Summary block matching a Fig. 5 panel annotation.
struct EfficiencySummary {
  double peak_flops_per_joule = 0.0;  ///< flop/J at I -> inf
  double peak_bytes_per_joule = 0.0;  ///< B/J at I -> 0
  double sustained_flops = 0.0;       ///< flop/s (1 / tau_flop)
  double sustained_bandwidth = 0.0;   ///< B/s (1 / tau_mem)
  double pi1 = 0.0;                   ///< W
  double delta_pi = 0.0;              ///< W
  double constant_fraction = 0.0;     ///< pi1 / (pi1 + delta_pi)
  double balance_lo = 0.0;            ///< B_tau-
  double balance = 0.0;               ///< B_tau
  double balance_hi = 0.0;            ///< B_tau+
};

[[nodiscard]] EfficiencySummary summarize_efficiency(const MachineParams& m);

/// Log2-spaced intensity grid from `lo` to `hi` inclusive with
/// `points_per_octave` samples per doubling (>= 1).
[[nodiscard]] std::vector<double> intensity_grid(double lo, double hi,
                                                 int points_per_octave = 4);

}  // namespace archline::core
