#include "core/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/scenarios.hpp"

namespace archline::core {

const char* to_string(Objective o) noexcept {
  switch (o) {
    case Objective::MinEnergy: return "min_energy";
    case Objective::MinTime: return "min_time";
    case Objective::MinEdp: return "min_edp";
    case Objective::PowerCap: return "power_cap";
  }
  return "?";
}

const char* to_string(PlanKind k) noexcept {
  switch (k) {
    case PlanKind::RaceToIdle: return "race_to_idle";
    case PlanKind::SlowAndSteady: return "slow_and_steady";
    case PlanKind::CapThrottled: return "cap_throttled";
  }
  return "?";
}

void PolicyRequest::validate() const {
  if (!(workload.flops > 0.0) || !(workload.bytes > 0.0))
    throw std::invalid_argument("PolicyRequest: workload must be positive");
  if (!(period_s >= 0.0) || !std::isfinite(period_s))
    throw std::invalid_argument(
        "PolicyRequest: period_s must be >= 0 and finite");
  if (!(power_cap_w >= 0.0) || !std::isfinite(power_cap_w))
    throw std::invalid_argument(
        "PolicyRequest: power_cap_w must be >= 0 and finite");
  if (objective == Objective::PowerCap && !(power_cap_w > 0.0))
    throw std::invalid_argument(
        "PolicyRequest: power_cap objective needs power_cap_w > 0");
}

const PlanEvaluation& PolicyAdvice::recommended() const {
  if (best == npos)
    throw std::logic_error("PolicyAdvice: no feasible plan to recommend");
  return plans[best];
}

namespace {

/// Slight slack on the period/cap comparisons so a plan engineered to
/// land exactly on the boundary is not rejected by the last ulp.
constexpr double kBoundTol = 1e-12;

double objective_value_of(const PlanEvaluation& e, const PolicyRequest& req) {
  switch (req.objective) {
    case Objective::MinEnergy: return e.energy_j;
    case Objective::MinTime: return e.busy_s;
    case Objective::MinEdp: return e.edp;
    case Objective::PowerCap: return e.busy_s;
  }
  return e.energy_j;
}

/// Fills the derived fields shared by every plan shape: the full window
/// (period when set, else the busy time), parked-slack energy, average
/// power, EDP, feasibility vs. the period, and the objective value.
void finish_plan(PlanEvaluation& e, const PolicyRequest& req,
                 double park_watts, double run_energy_j) {
  const double period = req.period_s;
  e.feasible = period == 0.0 || e.busy_s <= period * (1.0 + kBoundTol);
  e.time_s = period > 0.0 ? std::max(period, e.busy_s) : e.busy_s;
  e.energy_j = run_energy_j + (e.time_s - e.busy_s) * park_watts;
  e.avg_power_w = e.energy_j / e.time_s;
  e.edp = e.energy_j * e.busy_s;
  if (req.objective == Objective::PowerCap &&
      e.avg_power_w > req.power_cap_w * (1.0 + kBoundTol))
    e.feasible = false;
  if (e.feasible) e.objective_value = objective_value_of(e, req);
}

}  // namespace

PolicyAdvice policy_advise(std::span<const MachineParams> machines,
                           std::span<const OperatingPoint> points,
                           double park_watts, const PolicyRequest& request) {
  request.validate();
  if (machines.size() != points.size())
    throw std::invalid_argument(
        "policy_advise: machines/points size mismatch");
  if (machines.empty())
    throw std::invalid_argument("policy_advise: no operating points");

  const Workload& w = request.workload;
  PolicyAdvice advice;
  advice.request = request;
  advice.park_watts = park_watts;
  const bool cap_plans = request.power_cap_w > 0.0;
  advice.plans.reserve(machines.size() * (cap_plans ? 3 : 2));

  for (std::size_t i = 0; i < machines.size(); ++i) {
    const MachineParams& m = machines[i];
    const double t_run = time(m, w);
    const double e_run = energy(m, w);
    const double dyn = w.flops * m.eps_flop + w.bytes * m.eps_mem;
    const Regime run_regime = regime(m, w);

    {
      PlanEvaluation e;
      e.point_index = i;
      e.kind = PlanKind::RaceToIdle;
      e.busy_s = t_run;
      e.regime = run_regime;
      finish_plan(e, request, park_watts, e_run);
      advice.plans.push_back(e);
    }
    {
      // Slow-and-steady stretches the issue rate so execution fills the
      // whole period: dynamic energy is rate-independent, the running
      // constant power is paid for the stretched window. Stretching
      // cannot finish FASTER than flat-out, so busy >= t_run always.
      PlanEvaluation e;
      e.point_index = i;
      e.kind = PlanKind::SlowAndSteady;
      e.busy_s = request.period_s > 0.0 ? std::max(request.period_s, t_run)
                                        : t_run;
      e.regime = run_regime;
      // The whole window is busy — no parked slack — so finish_plan's
      // slack term is zero by construction; energy is dyn + pi1 * busy.
      // A point that cannot meet the period stretches PAST it
      // (busy = t_run > period) and finish_plan marks it infeasible.
      finish_plan(e, request, park_watts, dyn + m.pi1 * e.busy_s);
      advice.plans.push_back(e);
    }
    if (cap_plans) {
      PlanEvaluation e;
      e.point_index = i;
      e.kind = PlanKind::CapThrottled;
      if (request.power_cap_w > m.pi1 * (1.0 + kBoundTol)) {
        // Throttle, never un-cap: the target can only reduce the
        // point's usable power.
        const MachineParams capped =
            with_cap(m, std::min(m.delta_pi, request.power_cap_w - m.pi1));
        e.busy_s = time(capped, w);
        e.regime = regime(capped, w);
        finish_plan(e, request, park_watts, energy(capped, w));
      }
      advice.plans.push_back(e);
    }
  }

  for (std::size_t i = 0; i < advice.plans.size(); ++i) {
    const PlanEvaluation& e = advice.plans[i];
    if (!e.feasible) continue;
    if (advice.best == PolicyAdvice::npos ||
        e.objective_value < advice.plans[advice.best].objective_value)
      advice.best = i;
  }
  return advice;
}

PolicyAdvice policy_advise(const MachineParams& base,
                           const OperatingPointTable& table,
                           const PolicyRequest& request) {
  table.validate();
  const std::vector<MachineParams> machines =
      machines_at_points(base, table.points);
  return policy_advise(machines, table.points, table.park_watts(), request);
}

}  // namespace archline::core
