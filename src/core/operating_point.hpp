#pragma once
// DVFS operating points: the discrete frequency/voltage states a
// platform can run at, promoted to a first-class model dimension.
//
// The paper's machine (§III) is a single MachineParams point — one
// frequency, one voltage. Real building blocks expose a ladder of
// P-states: slowing the clock by s stretches the per-op *times* by 1/s
// while the dynamic share of per-op *energy* shrinks by roughly s^2
// (voltage tracks frequency), and the constant/idle power follows its
// own, much flatter, curve. An OperatingPoint captures exactly those
// per-point facts; apply_operating_point() produces the MachineParams
// the eqs. (1)-(7) machinery consumes, so every existing prediction,
// scenario, and sensitivity tool works per point unchanged.
//
// The continuous DvfsModel of dvfs.hpp is now a *generator* of
// operating points (see dvfs_operating_point / dvfs_ladder); the policy
// engine (policy.hpp) evaluates execution plans across a table of them.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/machine_params.hpp"

namespace archline::core {

/// One discrete DVFS state.
struct OperatingPoint {
  std::string label;  ///< e.g. "0.70x"; stable across a table's lifetime

  /// Clock scale s relative to nominal: rates scale by s, per-op times
  /// by 1/s. Must be positive and finite; > 1 models a turbo state.
  double freq_scale = 1.0;

  /// Multiplier on the *dynamic* per-op energy (eps_flop, and eps_mem
  /// when scale_memory). For a leakage fraction L this is
  /// L + (1 - L) s^2 — see dvfs_energy_scale().
  double energy_scale = 1.0;

  /// Whether the memory system shares the scaled clock/voltage domain.
  /// Discrete DRAM usually does not; on-chip scratchpads often do.
  bool scale_memory = false;

  /// Constant power pi1 while *running* at this point [W]. Negative
  /// means "inherit the base machine's pi1" (the paper's constant).
  double pi1_watts = -1.0;

  /// Power drawn while *parked* (idle) at this point [W]. Race-to-idle
  /// plans pay this for the slack left in a period.
  double idle_watts = 0.0;

  /// Throws std::invalid_argument on non-finite / non-positive scales
  /// or a negative idle power.
  void validate() const;
};

/// The dynamic-energy multiplier of the standard leakage model:
/// leakage + (1 - leakage) * s^2. Shared by the OperatingPoint
/// generators and the legacy apply_dvfs() so the two stay bit-identical.
[[nodiscard]] double dvfs_energy_scale(double leakage_fraction,
                                       double s) noexcept;

/// The machine at an operating point: times stretched by 1/s, dynamic
/// energies scaled, pi1 replaced when the point carries its own.
/// delta_pi is untouched — the usable-power cap is an external limit,
/// not a property of the P-state.
[[nodiscard]] MachineParams apply_operating_point(const MachineParams& m,
                                                  const OperatingPoint& p);

/// A platform's ladder of operating points, ordered by ascending
/// freq_scale (validate() enforces strict ordering). The highest point
/// is the nominal state; the lowest point's idle_watts is the deepest
/// park power available to race-to-idle plans.
struct OperatingPointTable {
  std::vector<OperatingPoint> points;

  [[nodiscard]] bool empty() const noexcept { return points.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }

  /// The fastest point (table back). Table must be non-empty.
  [[nodiscard]] const OperatingPoint& nominal() const;

  /// Deepest idle power: the minimum idle_watts over all points.
  /// Returns 0 for an empty table.
  [[nodiscard]] double park_watts() const noexcept;

  /// Throws std::invalid_argument when empty, when any point fails its
  /// own validate(), or when freq_scale is not strictly increasing.
  void validate() const;
};

/// Machines for every point of a table, in table order.
[[nodiscard]] std::vector<MachineParams> machines_at_points(
    const MachineParams& base, std::span<const OperatingPoint> points);

}  // namespace archline::core
