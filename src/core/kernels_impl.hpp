#pragma once
// Internal row-wise kernel bodies shared by kernels.cpp (the portable
// path) and kernels_avx2.cpp (for its remainder tails). Keeping ONE
// definition of the scalar arithmetic is what makes the bit-identity
// contract in kernels.hpp auditable: the AVX2 lanes mirror these
// expressions intrinsic-for-operator, and the tails ARE these
// expressions.
//
// Everything here replicates roofline.cpp operation-for-operation; see
// the contract comment in kernels.hpp before touching any expression.

#include <algorithm>
#include <cstddef>

#include "core/machine_params.hpp"
#include "core/roofline.hpp"

namespace archline::core::detail {

/// Per-machine constants for predict rows, hoisted once per batch.
struct PredictConsts {
  double tau_flop, tau_mem, eps_flop, eps_mem, pi1, delta_pi;
  bool capped;

  explicit PredictConsts(const MachineParams& m) noexcept
      : tau_flop(m.tau_flop),
        tau_mem(m.tau_mem),
        eps_flop(m.eps_flop),
        eps_mem(m.eps_mem),
        pi1(m.pi1),
        delta_pi(m.delta_pi),
        capped(!m.uncapped()) {}
};

/// Rows [0, n) of the predict kernel: time()/energy()/avg_power()/
/// regime() plus add_prediction's derived ratios.
inline void predict_rows(const PredictConsts& c, const double* f,
                         const double* b, std::size_t n, double* intensity,
                         double* time_s, double* energy_j, double* avg_power_w,
                         double* performance, double* efficiency,
                         Regime* regime) {
  if (c.capped) {
    for (std::size_t i = 0; i < n; ++i) {
      const double t_flop = f[i] * c.tau_flop;
      const double t_mem = b[i] * c.tau_mem;
      // `lin` is the linear energy term W*eps_flop + Q*eps_mem — reused
      // by the cap time and the energy, exactly as roofline.cpp writes
      // the same expression in both places.
      const double lin = f[i] * c.eps_flop + b[i] * c.eps_mem;
      const double t_cap = lin / c.delta_pi;
      const double t = std::max(std::max(t_flop, t_mem), t_cap);
      const double e = lin + c.pi1 * t;
      intensity[i] = f[i] / b[i];
      time_s[i] = t;
      energy_j[i] = e;
      avg_power_w[i] = t <= 0.0 ? c.pi1 : e / t;
      performance[i] = f[i] / t;
      efficiency[i] = f[i] / e;
      regime[i] = t_cap == t   ? Regime::PowerCap
                  : t_mem == t ? Regime::Memory
                               : Regime::Compute;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double t_flop = f[i] * c.tau_flop;
      const double t_mem = b[i] * c.tau_mem;
      const double lin = f[i] * c.eps_flop + b[i] * c.eps_mem;
      // t_cap is identically 0 for uncapped machines; max against 0
      // keeps the value equal to max({t_flop, t_mem, 0.0}).
      const double t = std::max(std::max(t_flop, t_mem), 0.0);
      const double e = lin + c.pi1 * t;
      intensity[i] = f[i] / b[i];
      time_s[i] = t;
      energy_j[i] = e;
      avg_power_w[i] = t <= 0.0 ? c.pi1 : e / t;
      performance[i] = f[i] / t;
      efficiency[i] = f[i] / e;
      regime[i] = t_mem == t ? Regime::Memory : Regime::Compute;
    }
  }
}

/// Per-machine constants for the closed-form curve rows. Every field is
/// the same expression the MachineParams helpers compute at each scalar
/// call site — hoisting them changes how often they are evaluated,
/// never their bits.
struct CurveConsts {
  double tau_flop, eps_flop, eps_mem, pi1, delta_pi;
  double tau_mem;
  double tb;        ///< time_balance()    = tau_mem / tau_flop
  double beps;      ///< energy_balance()  = eps_mem / eps_flop
  double pi_flop;   ///< eps_flop / tau_flop
  double pi_mem;    ///< eps_mem / tau_mem
  double b_hi;      ///< balance_hi()
  double b_lo;      ///< balance_lo()
  double hi_c0;     ///< pi1 + pi_flop          (power, I >= b_hi branch)
  double hi_c1;     ///< pi_mem * time_balance  (power, I >= b_hi branch)
  double mid;       ///< pi1 + delta_pi         (power, capped interior)
  double cap_coef;  ///< pi_flop / delta_pi     (time_per_flop cap term)
  bool capped;

  explicit CurveConsts(const MachineParams& m) noexcept
      : tau_flop(m.tau_flop),
        eps_flop(m.eps_flop),
        eps_mem(m.eps_mem),
        pi1(m.pi1),
        delta_pi(m.delta_pi),
        tau_mem(m.tau_mem),
        tb(m.time_balance()),
        beps(m.energy_balance()),
        pi_flop(m.pi_flop()),
        pi_mem(m.pi_mem()),
        b_hi(m.balance_hi()),
        b_lo(m.balance_lo()),
        hi_c0(m.pi1 + m.pi_flop()),
        hi_c1(m.pi_mem() * m.time_balance()),
        mid(m.pi1 + m.delta_pi),
        cap_coef(m.pi_flop() / m.delta_pi),
        capped(!m.uncapped()) {}
};

/// Rows [0, n) of the metric-curve kernel: avg_power_closed_form(),
/// performance(), energy_efficiency(), regime_at().
inline void curve_rows(const CurveConsts& c, const double* I, std::size_t n,
                       double* power, double* performance, double* efficiency,
                       Regime* regime) {
  if (c.capped) {
    for (std::size_t i = 0; i < n; ++i) {
      // avg_power_closed_form: hi branch (pi1 + pi_flop) + pi_mem*tb/I,
      // lo branch (pi1 + pi_flop*I/tb) + pi_mem, else pi1 + delta_pi.
      power[i] = I[i] >= c.b_hi   ? c.hi_c0 + c.hi_c1 / I[i]
                 : I[i] <= c.b_lo ? (c.pi1 + (c.pi_flop * I[i]) / c.tb) +
                                        c.pi_mem
                                  : c.mid;
      // time_per_flop: tau_flop * max(free, cap); `shared` is the
      // (1 + B_eps/I) factor both the cap term and energy_per_flop use.
      const double free_term = std::max(1.0, c.tb / I[i]);
      const double shared = 1.0 + c.beps / I[i];
      const double cap_term = c.cap_coef * shared;
      const double tpf = c.tau_flop * std::max(free_term, cap_term);
      performance[i] = 1.0 / tpf;
      const double epf = c.eps_flop * shared + c.pi1 * tpf;
      efficiency[i] = 1.0 / epf;
    }
    for (std::size_t i = 0; i < n; ++i) {
      // regime_at: the unit workload (flops = 1, bytes = 1/I). The
      // bytes division happens FIRST, matching Workload::from_intensity
      // (tau_mem/I would round differently than (1/I)*tau_mem).
      const double bytes = 1.0 / I[i];
      const double t_flop = c.tau_flop;  // 1.0 * tau_flop exactly
      const double t_mem = bytes * c.tau_mem;
      const double lin = c.eps_flop + bytes * c.eps_mem;
      const double t_cap = lin / c.delta_pi;
      const double t = std::max(std::max(t_flop, t_mem), t_cap);
      regime[i] = t_cap == t   ? Regime::PowerCap
                  : t_mem == t ? Regime::Memory
                               : Regime::Compute;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      // Uncapped: b_hi == b_lo == tb, so the interior (pi1 + delta_pi =
      // inf) branch is unreachable and power is the hi/lo pair only.
      power[i] = I[i] >= c.b_hi
                     ? c.hi_c0 + c.hi_c1 / I[i]
                     : (c.pi1 + (c.pi_flop * I[i]) / c.tb) + c.pi_mem;
      const double free_term = std::max(1.0, c.tb / I[i]);
      const double shared = 1.0 + c.beps / I[i];
      const double tpf = c.tau_flop * free_term;
      performance[i] = 1.0 / tpf;
      const double epf = c.eps_flop * shared + c.pi1 * tpf;
      efficiency[i] = 1.0 / epf;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double bytes = 1.0 / I[i];
      const double t_flop = c.tau_flop;
      const double t_mem = bytes * c.tau_mem;
      const double t = std::max(std::max(t_flop, t_mem), 0.0);
      regime[i] = t_mem == t ? Regime::Memory : Regime::Compute;
    }
  }
}

}  // namespace archline::core::detail
