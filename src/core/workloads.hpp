#pragma once
// A library of named workload profiles.
//
// The paper reasons about algorithms purely through operational intensity
// and access pattern: "a large sparse matrix-vector multiply is roughly
// 0.25-0.5 flop:Byte in single-precision and a large FFT is 2-4
// flop:Byte" (§I-A); pointer chasing stands in for "a sparse matrix or
// other graph computation" (§IV-f); footnote 3 allows substituting
// comparisons or traversed edges for flops. This module packages those
// archetypes so examples and studies can ask questions like "which
// building block should run SpMV?" without hand-picking intensities.

#include <span>
#include <string>
#include <vector>

#include "core/machine_params.hpp"
#include "core/memory.hpp"
#include "core/roofline.hpp"

namespace archline::core {

/// A named algorithm archetype characterized by its intensity range.
struct WorkloadProfile {
  std::string name;         ///< e.g. "SpMV"
  std::string description;  ///< one-line characterization
  double intensity_lo = 0.0;  ///< flop:Byte at single precision
  double intensity_hi = 0.0;
  AccessPattern pattern = AccessPattern::Streaming;

  /// Geometric midpoint of the intensity range — the single number used
  /// when one representative intensity is needed.
  [[nodiscard]] double representative_intensity() const noexcept;

  /// Intensity at the other precision: byte traffic doubles in double
  /// precision for the same flop count, halving intensity.
  [[nodiscard]] double representative_intensity(Precision p) const noexcept;
};

/// Built-in profiles: SpMV, FFT, DGEMM-like dense linear algebra,
/// 7-point stencil, STREAM, graph traversal (random access), N-body.
[[nodiscard]] std::span<const WorkloadProfile> workload_library();

/// Lookup by name (case-sensitive); throws std::out_of_range if unknown.
[[nodiscard]] const WorkloadProfile& workload(const std::string& name);

/// All profile names in library order.
[[nodiscard]] std::vector<std::string> workload_names();

/// One machine's predicted standing on a profile.
struct WorkloadRanking {
  std::string machine_name;
  double performance = 0.0;  ///< flop/s at the representative intensity
  double efficiency = 0.0;   ///< flop/J
  double power = 0.0;        ///< W
  Regime regime = Regime::Compute;
};

/// Ranks machines on a profile by the chosen metric (descending).
enum class RankBy { Performance, Efficiency, PerformancePerWatt };

[[nodiscard]] std::vector<WorkloadRanking> rank_machines(
    const WorkloadProfile& profile,
    std::span<const std::pair<std::string, MachineParams>> machines,
    RankBy by = RankBy::Efficiency);

}  // namespace archline::core
