#include "core/dvfs.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/roofline.hpp"
#include "core/scenarios.hpp"

namespace archline::core {

void DvfsModel::validate() const {
  if (!(leakage_fraction >= 0.0) || leakage_fraction >= 1.0)
    throw std::invalid_argument("DvfsModel: leakage outside [0, 1)");
  if (!(min_scale > 0.0) || min_scale > 1.0)
    throw std::invalid_argument("DvfsModel: min_scale outside (0, 1]");
}

OperatingPoint dvfs_operating_point(const DvfsModel& model, double s) {
  model.validate();
  if (!(s >= model.min_scale) || s > 1.0)
    throw std::invalid_argument(
        "dvfs_operating_point: scale outside [min_scale, 1]");
  OperatingPoint p;
  char label[32];
  std::snprintf(label, sizeof label, "%.2fx", s);
  p.label = label;
  p.freq_scale = s;
  p.energy_scale = dvfs_energy_scale(model.leakage_fraction, s);
  p.scale_memory = model.scale_memory;
  return p;
}

OperatingPointTable dvfs_ladder(const DvfsModel& model, std::size_t count,
                                double idle_watts) {
  model.validate();
  if (count < 2)
    throw std::invalid_argument("dvfs_ladder: need at least 2 points");
  if (!(idle_watts >= 0.0))
    throw std::invalid_argument("dvfs_ladder: idle_watts must be >= 0");
  OperatingPointTable table;
  table.points.reserve(count);
  const double span = 1.0 - model.min_scale;
  for (std::size_t i = 0; i < count; ++i) {
    // Endpoint-exact spacing: the first point is min_scale, the last is
    // exactly 1.0 (no accumulated rounding past the generator's domain).
    const double s = i + 1 == count
                         ? 1.0
                         : model.min_scale + span * static_cast<double>(i) /
                                                 static_cast<double>(count - 1);
    OperatingPoint p = dvfs_operating_point(model, s);
    p.idle_watts = idle_watts;
    table.points.push_back(std::move(p));
  }
  table.validate();
  return table;
}

MachineParams apply_dvfs(const MachineParams& m, double s,
                         const DvfsModel& model) {
  return apply_operating_point(m, dvfs_operating_point(model, s));
}

namespace {

/// Worst-case average node power over intensity: the power curve peaks at
/// pi1 + min(delta_pi, pi_flop + pi_mem).
double worst_case_power(const MachineParams& m) noexcept {
  return m.max_power();
}

}  // namespace

double dvfs_scale_for_power(const MachineParams& m, const DvfsModel& model,
                            double target_watts) {
  model.validate();
  if (worst_case_power(m) <= target_watts) return 1.0;
  if (worst_case_power(apply_dvfs(m, model.min_scale, model)) >
      target_watts)
    throw std::invalid_argument(
        "dvfs_scale_for_power: target unreachable at the voltage floor");
  double lo = model.min_scale;
  double hi = 1.0;
  for (int iter = 0; iter < 100 && hi - lo > 1e-10; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (worst_case_power(apply_dvfs(m, mid, model)) > target_watts)
      hi = mid;
    else
      lo = mid;
  }
  return lo;
}

PowerMechanismComparison compare_cap_vs_dvfs(const MachineParams& m,
                                             const DvfsModel& model,
                                             double target_watts,
                                             double intensity) {
  if (!(target_watts > m.pi1))
    throw std::invalid_argument(
        "compare_cap_vs_dvfs: target below constant power");

  PowerMechanismComparison r;
  r.target_watts = target_watts;
  r.intensity = intensity;

  // Mechanism 1: cap. Reduce delta_pi so pi1 + delta_pi == target.
  const MachineParams capped = with_cap(m, target_watts - m.pi1);
  r.cap_performance = performance(capped, intensity);
  r.cap_efficiency = energy_efficiency(capped, intensity);

  // Mechanism 2: DVFS at the largest scale that fits the target.
  r.frequency_scale = dvfs_scale_for_power(m, model, target_watts);
  const MachineParams scaled = apply_dvfs(m, r.frequency_scale, model);
  r.dvfs_performance = performance(scaled, intensity);
  r.dvfs_efficiency = energy_efficiency(scaled, intensity);
  return r;
}

}  // namespace archline::core
