#pragma once
// PlatformSpec: one row of the paper's Table I.
//
// A spec records both the vendor-claimed peaks (columns 3-5) and the
// empirically fitted constants (columns 6-13) with their sustained
// throughputs. Converters produce core::MachineParams for any precision /
// memory level / access pattern, which is how the rest of the library
// consumes a platform.

#include <cstddef>
#include <optional>
#include <string>

#include "core/machine_params.hpp"
#include "core/memory.hpp"
#include "core/operating_point.hpp"
#include "core/random_model.hpp"

namespace archline::platforms {

/// Broad device class; drives simulator nonideality defaults and the
/// tuning-search configuration space.
enum class DeviceClass {
  ServerCpu,
  MobileCpu,
  DesktopGpu,
  MobileGpu,
  Manycore,  ///< Xeon Phi
};

[[nodiscard]] const char* to_string(DeviceClass c) noexcept;

/// An energy cost constant paired with the sustained throughput at which it
/// was measured (the parenthetical values of Table I columns 8-13).
struct EnergyPoint {
  double energy_per_op = 0.0;  ///< J per flop / byte / access
  double throughput = 0.0;     ///< sustained ops per second
};

/// One of the paper's twelve evaluation platforms.
struct PlatformSpec {
  std::string name;        ///< e.g. "GTX Titan"
  std::string processor;   ///< e.g. "NVIDIA GK110 (Kepler)"
  int process_nm = 0;      ///< lithography node, 0 if unknown
  DeviceClass device_class = DeviceClass::ServerCpu;

  // Vendor's claimed peaks (Table I columns 3-5), SI units.
  double peak_sp_flops = 0.0;  ///< flop/s, single precision
  double peak_dp_flops = 0.0;  ///< flop/s, double precision; 0 if absent
  double peak_bandwidth = 0.0; ///< B/s

  // Empirical power (columns 6-7).
  double pi1 = 0.0;            ///< fitted constant power [W]
  double idle_power = 0.0;     ///< observed idle power [W]
  double delta_pi = 0.0;       ///< fitted usable power cap [W]
  bool pi1_below_idle = false; ///< Table I note 1: fitted pi1 < idle ("*")

  // Energy constants and sustained throughputs (columns 8-13).
  EnergyPoint flop_sp;                  ///< eps_s
  std::optional<EnergyPoint> flop_dp;   ///< eps_d; absent on some GPUs
  EnergyPoint mem_stream;               ///< eps_mem (DRAM streaming)
  std::optional<EnergyPoint> mem_l1;    ///< eps_L1 (or scratchpad)
  std::optional<EnergyPoint> mem_l2;    ///< eps_L2
  std::optional<EnergyPoint> mem_rand;  ///< eps_rand, per *access*

  /// Fig. 4 ground truth: did the paper's K-S test mark this platform "**"
  /// (capped vs uncapped error distributions differ at p < .05)?
  bool ks_significant_in_paper = false;

  /// The platform's DVFS ladder, ascending freq_scale with the nominal
  /// (1.0x) state last. Table I measures only the nominal point, so the
  /// ladder is synthesized per device class from the fitted pi1 /
  /// idle_power constants (default_operating_points); an empty table is
  /// legal for hand-built specs and means "nominal only".
  core::OperatingPointTable operating_points;

  // ---- Derived views ------------------------------------------------

  [[nodiscard]] bool has_double() const noexcept {
    return flop_dp.has_value();
  }

  /// Sustained fraction of the vendor peak ("[81%]" in Fig. 5).
  [[nodiscard]] double sustained_flop_fraction(
      core::Precision p = core::Precision::Single) const;
  [[nodiscard]] double sustained_bandwidth_fraction() const;

  /// MachineParams at the DRAM level for the given precision, with the
  /// fitted cap. Throws if the precision is unsupported on this platform.
  [[nodiscard]] core::MachineParams machine(
      core::Precision p = core::Precision::Single) const;

  /// Same, but with the cap removed (the prior, uncapped model).
  [[nodiscard]] core::MachineParams machine_uncapped(
      core::Precision p = core::Precision::Single) const;

  /// MachineParams whose memory side is the given cache level. Throws if
  /// that level was not measured on this platform.
  [[nodiscard]] core::MachineParams machine_at_level(
      core::MemLevel level, core::Precision p = core::Precision::Single) const;

  /// The energy point for a memory level; throws if absent.
  [[nodiscard]] const EnergyPoint& level_point(core::MemLevel level) const;
  [[nodiscard]] bool has_level(core::MemLevel level) const noexcept;

  /// Random-access cost per access [J] and sustained accesses/s.
  [[nodiscard]] const EnergyPoint& random_access() const;
  [[nodiscard]] bool has_random_access() const noexcept {
    return mem_rand.has_value();
  }

  /// Random-access machine (pointer-chase costs + this platform's power
  /// context). Throws if random access was not measured.
  [[nodiscard]] core::RandomAccessMachine random_machine() const;

  /// MachineParams at one operating point of this spec's ladder (index
  /// into operating_points.points). Throws when the index is out of
  /// range or the precision unsupported.
  [[nodiscard]] core::MachineParams machine_at_point(
      std::size_t point_index,
      core::Precision p = core::Precision::Single) const;

  /// Checks internal consistency (positive costs, eps_L1 <= eps_L2 <=
  /// eps_mem where present, sustained <= claimed peak with small slack,
  /// a valid operating-point ladder when one is present).
  void validate() const;
};

/// The synthesized DVFS ladder for a device class: four points whose
/// frequency span, leakage fraction, and count reflect typical governor
/// tables for the class. Per point, the constant and idle powers follow
/// the mild voltage-tracking model pi(s) = pi * ((1 - L) + L s^2) — the
/// leakage share of the constant power scales with V^2, the rest (DRAM
/// refresh, VRMs, fans) does not. The nominal point inherits pi1
/// exactly, so every existing nominal-point prediction is unchanged.
[[nodiscard]] core::OperatingPointTable default_operating_points(
    DeviceClass c, double pi1, double idle_power);

}  // namespace archline::platforms
