#include "platforms/spec.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace archline::platforms {

const char* to_string(DeviceClass c) noexcept {
  switch (c) {
    case DeviceClass::ServerCpu: return "server CPU";
    case DeviceClass::MobileCpu: return "mobile CPU";
    case DeviceClass::DesktopGpu: return "desktop GPU";
    case DeviceClass::MobileGpu: return "mobile GPU";
    case DeviceClass::Manycore: return "manycore";
  }
  return "?";
}

double PlatformSpec::sustained_flop_fraction(core::Precision p) const {
  if (p == core::Precision::Single)
    return flop_sp.throughput / peak_sp_flops;
  if (!flop_dp)
    throw std::invalid_argument(name + ": no double-precision support");
  return flop_dp->throughput / peak_dp_flops;
}

double PlatformSpec::sustained_bandwidth_fraction() const {
  return mem_stream.throughput / peak_bandwidth;
}

core::MachineParams PlatformSpec::machine(core::Precision p) const {
  const EnergyPoint& fp = [&]() -> const EnergyPoint& {
    if (p == core::Precision::Single) return flop_sp;
    if (!flop_dp)
      throw std::invalid_argument(name + ": no double-precision support");
    return *flop_dp;
  }();
  core::MachineParams m;
  m.tau_flop = 1.0 / fp.throughput;
  m.eps_flop = fp.energy_per_op;
  m.tau_mem = 1.0 / mem_stream.throughput;
  m.eps_mem = mem_stream.energy_per_op;
  m.pi1 = pi1;
  m.delta_pi = delta_pi;
  m.validate(name);
  return m;
}

core::MachineParams PlatformSpec::machine_uncapped(core::Precision p) const {
  return machine(p).without_cap();
}

bool PlatformSpec::has_level(core::MemLevel level) const noexcept {
  switch (level) {
    case core::MemLevel::L1: return mem_l1.has_value();
    case core::MemLevel::L2: return mem_l2.has_value();
    case core::MemLevel::DRAM: return true;
  }
  return false;
}

const EnergyPoint& PlatformSpec::level_point(core::MemLevel level) const {
  switch (level) {
    case core::MemLevel::L1:
      if (mem_l1) return *mem_l1;
      break;
    case core::MemLevel::L2:
      if (mem_l2) return *mem_l2;
      break;
    case core::MemLevel::DRAM:
      return mem_stream;
  }
  throw std::invalid_argument(name + ": level " +
                              std::string(core::to_string(level)) +
                              " not measured");
}

core::MachineParams PlatformSpec::machine_at_level(core::MemLevel level,
                                                   core::Precision p) const {
  core::MachineParams m = machine(p);
  const EnergyPoint& pt = level_point(level);
  m.tau_mem = 1.0 / pt.throughput;
  m.eps_mem = pt.energy_per_op;
  m.validate(name + "@" + core::to_string(level));
  return m;
}

core::MachineParams PlatformSpec::machine_at_point(std::size_t point_index,
                                                   core::Precision p) const {
  if (point_index >= operating_points.size())
    throw std::out_of_range(name + ": no operating point " +
                            std::to_string(point_index));
  return core::apply_operating_point(machine(p),
                                     operating_points.points[point_index]);
}

const EnergyPoint& PlatformSpec::random_access() const {
  if (!mem_rand)
    throw std::invalid_argument(name + ": random access not measured");
  return *mem_rand;
}

core::RandomAccessMachine PlatformSpec::random_machine() const {
  const EnergyPoint& pt = random_access();
  core::RandomAccessMachine m;
  m.tau_access = 1.0 / pt.throughput;
  m.eps_access = pt.energy_per_op;
  m.pi1 = pi1;
  m.delta_pi = delta_pi;
  m.validate();
  return m;
}

void PlatformSpec::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument(name + ": " + what);
  };
  const auto check_point = [&fail](const EnergyPoint& pt, const char* label) {
    if (!(pt.energy_per_op > 0.0) || !std::isfinite(pt.energy_per_op))
      fail(std::string(label) + ": energy must be positive");
    if (!(pt.throughput > 0.0) || !std::isfinite(pt.throughput))
      fail(std::string(label) + ": throughput must be positive");
  };
  if (name.empty()) fail("empty name");
  if (!(peak_sp_flops > 0.0)) fail("missing single-precision peak");
  if (!(peak_bandwidth > 0.0)) fail("missing bandwidth peak");
  if (!(pi1 > 0.0)) fail("pi1 must be positive");
  if (!(delta_pi > 0.0)) fail("delta_pi must be positive");
  check_point(flop_sp, "flop_sp");
  check_point(mem_stream, "mem_stream");
  if (flop_dp) {
    check_point(*flop_dp, "flop_dp");
    if (!(peak_dp_flops > 0.0)) fail("dp energy given but no dp peak");
  }
  if (mem_l1) check_point(*mem_l1, "mem_l1");
  if (mem_l2) check_point(*mem_l2, "mem_l2");
  if (mem_rand) check_point(*mem_rand, "mem_rand");

  // Paper §V-B sanity property: eps_L1 <= eps_L2 <= eps_mem (inclusive
  // costs grow as data moves farther out), on every platform in Table I.
  if (mem_l1 && mem_l2 &&
      mem_l1->energy_per_op > mem_l2->energy_per_op)
    fail("eps_L1 > eps_L2 violates inclusive-cost ordering");
  if (mem_l2 && mem_l2->energy_per_op > mem_stream.energy_per_op)
    fail("eps_L2 > eps_mem violates inclusive-cost ordering");
  if (mem_l1 && mem_l1->energy_per_op > mem_stream.energy_per_op)
    fail("eps_L1 > eps_mem violates inclusive-cost ordering");

  // Sustained peaks cannot exceed claims (allow 1% measurement slack).
  if (flop_sp.throughput > peak_sp_flops * 1.01)
    fail("sustained SP flops exceed vendor claim");
  if (flop_dp && flop_dp->throughput > peak_dp_flops * 1.01)
    fail("sustained DP flops exceed vendor claim");
  if (mem_stream.throughput > peak_bandwidth * 1.01)
    fail("sustained bandwidth exceeds vendor claim");

  // The ladder (when present) must be internally consistent and end at
  // the nominal 1.0x state Table I was measured at.
  if (!operating_points.empty()) {
    try {
      operating_points.validate();
    } catch (const std::exception& e) {
      fail(e.what());
    }
    if (operating_points.nominal().freq_scale != 1.0)
      fail("operating-point ladder must end at the nominal 1.0x state");
  }
}

core::OperatingPointTable default_operating_points(DeviceClass c, double pi1,
                                                   double idle_power) {
  // Per-class ladder shape: frequency scales and the leakage fraction
  // L of the dynamic-energy model. Mobile parts reach deeper floors
  // (wide DVFS ranges), desktop GPUs and the Phi idle hot and shallow.
  struct ClassLadder {
    double scales[4];
    double leakage;
  };
  const ClassLadder ladder = [&]() -> ClassLadder {
    switch (c) {
      case DeviceClass::ServerCpu:
        return {{0.50, 0.70, 0.85, 1.0}, 0.30};
      case DeviceClass::MobileCpu:
        return {{0.40, 0.60, 0.80, 1.0}, 0.20};
      case DeviceClass::DesktopGpu:
        return {{0.55, 0.70, 0.85, 1.0}, 0.35};
      case DeviceClass::MobileGpu:
        return {{0.35, 0.55, 0.80, 1.0}, 0.25};
      case DeviceClass::Manycore:
        return {{0.60, 0.75, 0.90, 1.0}, 0.40};
    }
    return {{0.50, 0.70, 0.85, 1.0}, 0.30};
  }();

  core::OperatingPointTable table;
  table.points.reserve(4);
  for (double s : ladder.scales) {
    core::OperatingPoint p;
    char label[32];
    std::snprintf(label, sizeof label, "%.2fx", s);
    p.label = label;
    p.freq_scale = s;
    p.energy_scale = core::dvfs_energy_scale(ladder.leakage, s);
    p.scale_memory = false;  // DRAM keeps its own clock on every class
    // Constant/idle power: the leakage share tracks V^2, the rest does
    // not — pi(s) = pi * ((1 - L) + L s^2). Nominal inherits exactly.
    const double power_scale = (1.0 - ladder.leakage) + ladder.leakage * s * s;
    p.pi1_watts = s == 1.0 ? -1.0 : pi1 * power_scale;
    p.idle_watts = idle_power * power_scale;
    table.points.push_back(std::move(p));
  }
  table.validate();
  return table;
}

}  // namespace archline::platforms
