#include "platforms/spec.hpp"

#include <cmath>
#include <stdexcept>

namespace archline::platforms {

const char* to_string(DeviceClass c) noexcept {
  switch (c) {
    case DeviceClass::ServerCpu: return "server CPU";
    case DeviceClass::MobileCpu: return "mobile CPU";
    case DeviceClass::DesktopGpu: return "desktop GPU";
    case DeviceClass::MobileGpu: return "mobile GPU";
    case DeviceClass::Manycore: return "manycore";
  }
  return "?";
}

double PlatformSpec::sustained_flop_fraction(core::Precision p) const {
  if (p == core::Precision::Single)
    return flop_sp.throughput / peak_sp_flops;
  if (!flop_dp)
    throw std::invalid_argument(name + ": no double-precision support");
  return flop_dp->throughput / peak_dp_flops;
}

double PlatformSpec::sustained_bandwidth_fraction() const {
  return mem_stream.throughput / peak_bandwidth;
}

core::MachineParams PlatformSpec::machine(core::Precision p) const {
  const EnergyPoint& fp = [&]() -> const EnergyPoint& {
    if (p == core::Precision::Single) return flop_sp;
    if (!flop_dp)
      throw std::invalid_argument(name + ": no double-precision support");
    return *flop_dp;
  }();
  core::MachineParams m;
  m.tau_flop = 1.0 / fp.throughput;
  m.eps_flop = fp.energy_per_op;
  m.tau_mem = 1.0 / mem_stream.throughput;
  m.eps_mem = mem_stream.energy_per_op;
  m.pi1 = pi1;
  m.delta_pi = delta_pi;
  m.validate(name);
  return m;
}

core::MachineParams PlatformSpec::machine_uncapped(core::Precision p) const {
  return machine(p).without_cap();
}

bool PlatformSpec::has_level(core::MemLevel level) const noexcept {
  switch (level) {
    case core::MemLevel::L1: return mem_l1.has_value();
    case core::MemLevel::L2: return mem_l2.has_value();
    case core::MemLevel::DRAM: return true;
  }
  return false;
}

const EnergyPoint& PlatformSpec::level_point(core::MemLevel level) const {
  switch (level) {
    case core::MemLevel::L1:
      if (mem_l1) return *mem_l1;
      break;
    case core::MemLevel::L2:
      if (mem_l2) return *mem_l2;
      break;
    case core::MemLevel::DRAM:
      return mem_stream;
  }
  throw std::invalid_argument(name + ": level " +
                              std::string(core::to_string(level)) +
                              " not measured");
}

core::MachineParams PlatformSpec::machine_at_level(core::MemLevel level,
                                                   core::Precision p) const {
  core::MachineParams m = machine(p);
  const EnergyPoint& pt = level_point(level);
  m.tau_mem = 1.0 / pt.throughput;
  m.eps_mem = pt.energy_per_op;
  m.validate(name + "@" + core::to_string(level));
  return m;
}

const EnergyPoint& PlatformSpec::random_access() const {
  if (!mem_rand)
    throw std::invalid_argument(name + ": random access not measured");
  return *mem_rand;
}

core::RandomAccessMachine PlatformSpec::random_machine() const {
  const EnergyPoint& pt = random_access();
  core::RandomAccessMachine m;
  m.tau_access = 1.0 / pt.throughput;
  m.eps_access = pt.energy_per_op;
  m.pi1 = pi1;
  m.delta_pi = delta_pi;
  m.validate();
  return m;
}

void PlatformSpec::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument(name + ": " + what);
  };
  const auto check_point = [&fail](const EnergyPoint& pt, const char* label) {
    if (!(pt.energy_per_op > 0.0) || !std::isfinite(pt.energy_per_op))
      fail(std::string(label) + ": energy must be positive");
    if (!(pt.throughput > 0.0) || !std::isfinite(pt.throughput))
      fail(std::string(label) + ": throughput must be positive");
  };
  if (name.empty()) fail("empty name");
  if (!(peak_sp_flops > 0.0)) fail("missing single-precision peak");
  if (!(peak_bandwidth > 0.0)) fail("missing bandwidth peak");
  if (!(pi1 > 0.0)) fail("pi1 must be positive");
  if (!(delta_pi > 0.0)) fail("delta_pi must be positive");
  check_point(flop_sp, "flop_sp");
  check_point(mem_stream, "mem_stream");
  if (flop_dp) {
    check_point(*flop_dp, "flop_dp");
    if (!(peak_dp_flops > 0.0)) fail("dp energy given but no dp peak");
  }
  if (mem_l1) check_point(*mem_l1, "mem_l1");
  if (mem_l2) check_point(*mem_l2, "mem_l2");
  if (mem_rand) check_point(*mem_rand, "mem_rand");

  // Paper §V-B sanity property: eps_L1 <= eps_L2 <= eps_mem (inclusive
  // costs grow as data moves farther out), on every platform in Table I.
  if (mem_l1 && mem_l2 &&
      mem_l1->energy_per_op > mem_l2->energy_per_op)
    fail("eps_L1 > eps_L2 violates inclusive-cost ordering");
  if (mem_l2 && mem_l2->energy_per_op > mem_stream.energy_per_op)
    fail("eps_L2 > eps_mem violates inclusive-cost ordering");
  if (mem_l1 && mem_l1->energy_per_op > mem_stream.energy_per_op)
    fail("eps_L1 > eps_mem violates inclusive-cost ordering");

  // Sustained peaks cannot exceed claims (allow 1% measurement slack).
  if (flop_sp.throughput > peak_sp_flops * 1.01)
    fail("sustained SP flops exceed vendor claim");
  if (flop_dp && flop_dp->throughput > peak_dp_flops * 1.01)
    fail("sustained DP flops exceed vendor claim");
  if (mem_stream.throughput > peak_bandwidth * 1.01)
    fail("sustained bandwidth exceeds vendor claim");
}

}  // namespace archline::platforms
