#pragma once
// The twelve evaluation platforms of the paper's Table I, as published.
//
// These constants are the paper's fitted ground truth; the simulator
// (sim/factory) instantiates machines from them, and bench/table1 checks
// that our fitting pipeline recovers them from simulated measurements.

#include <span>
#include <string_view>
#include <vector>

#include "platforms/spec.hpp"

namespace archline::platforms {

/// All 12 platforms, in Table I row order:
/// Desktop CPU, NUC CPU, NUC GPU, APU CPU, APU GPU, GTX 580, GTX 680,
/// GTX Titan, Xeon Phi, PandaBoard ES, Arndale CPU, Arndale GPU.
[[nodiscard]] std::span<const PlatformSpec> all_platforms();

/// Lookup by exact name; throws std::out_of_range if unknown.
[[nodiscard]] const PlatformSpec& platform(const std::string& name);

/// Allocation-free lookup by exact name; nullptr if unknown. The
/// serving hot path uses this with names viewed out of request buffers.
[[nodiscard]] const PlatformSpec* find_platform(std::string_view name)
    noexcept;

/// True if a platform with this name exists.
[[nodiscard]] bool has_platform(const std::string& name);

/// Names of all platforms, in Table I order.
[[nodiscard]] std::vector<std::string> platform_names();

/// Platforms sorted by decreasing peak energy efficiency (the Fig. 5
/// panel order: GTX Titan first, Desktop CPU last).
[[nodiscard]] std::vector<const PlatformSpec*> by_peak_efficiency();

}  // namespace archline::platforms
