#include "platforms/platform_db.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/analysis.hpp"
#include "core/units.hpp"

namespace archline::platforms {

namespace {

using units::from_gbytes;
using units::from_gflops;
using units::from_nanojoules;
using units::from_picojoules;
using units::kMega;

/// EnergyPoint from Table I notation: pJ per op, sustained Gop/s.
EnergyPoint pj_point(double pj, double gops) {
  return EnergyPoint{.energy_per_op = from_picojoules(pj),
                     .throughput = gops * 1e9};
}

/// Random-access point: nJ per access, sustained Macc/s.
EnergyPoint rand_point(double nj, double macc) {
  return EnergyPoint{.energy_per_op = from_nanojoules(nj),
                     .throughput = macc * kMega};
}

std::vector<PlatformSpec> build_table1() {
  std::vector<PlatformSpec> t;
  t.reserve(12);

  {
    PlatformSpec p;
    p.name = "Desktop CPU";
    p.processor = "Intel Core i7-950 (Nehalem)";
    p.process_nm = 45;
    p.device_class = DeviceClass::ServerCpu;
    p.peak_sp_flops = from_gflops(107.0);
    p.peak_dp_flops = from_gflops(53.3);
    p.peak_bandwidth = from_gbytes(25.6);
    p.pi1 = 122.0;
    p.idle_power = 79.9;
    p.delta_pi = 44.2;
    p.flop_sp = pj_point(371.0, 99.4);
    p.flop_dp = pj_point(670.0, 49.7);
    p.mem_stream = pj_point(795.0, 19.1);
    p.mem_l1 = pj_point(135.0, 201.0);
    p.mem_l2 = pj_point(168.0, 120.0);
    p.mem_rand = rand_point(108.0, 149.0);
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "NUC CPU";
    p.processor = "Intel Core i3-3217U (Ivy Bridge)";
    p.process_nm = 22;
    p.device_class = DeviceClass::MobileCpu;
    p.peak_sp_flops = from_gflops(57.6);
    p.peak_dp_flops = from_gflops(28.8);
    p.peak_bandwidth = from_gbytes(25.6);
    p.pi1 = 16.5;
    p.idle_power = 13.2;
    p.delta_pi = 7.37;
    p.flop_sp = pj_point(14.7, 55.6);
    p.flop_dp = pj_point(24.3, 27.9);
    p.mem_stream = pj_point(418.0, 17.9);
    p.mem_l1 = pj_point(8.75, 201.0);
    p.mem_l2 = pj_point(14.3, 103.0);
    p.mem_rand = rand_point(54.6, 55.3);
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "NUC GPU";
    p.processor = "Intel HD 4000 (Ivy Bridge)";
    p.process_nm = 22;
    p.device_class = DeviceClass::MobileGpu;
    p.peak_sp_flops = from_gflops(269.0);
    p.peak_bandwidth = from_gbytes(25.6);
    p.pi1 = 10.1;
    p.idle_power = 13.2;
    p.pi1_below_idle = true;
    p.delta_pi = 17.7;
    p.flop_sp = pj_point(76.1, 268.0);
    p.mem_stream = pj_point(837.0, 15.4);
    // OpenCL driver deficiencies prevented cache/random microbenchmarks on
    // the HD 4000 (Table I note 2).
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "APU CPU";
    p.processor = "AMD E2-1800 (Bobcat)";
    p.process_nm = 40;
    p.device_class = DeviceClass::MobileCpu;
    p.peak_sp_flops = from_gflops(13.6);
    p.peak_dp_flops = from_gflops(5.10);
    p.peak_bandwidth = from_gbytes(10.7);
    p.pi1 = 20.1;
    p.idle_power = 11.8;
    p.delta_pi = 1.39;
    p.flop_sp = pj_point(33.5, 13.4);
    p.flop_dp = pj_point(119.0, 5.05);
    p.mem_stream = pj_point(435.0, 3.32);
    p.mem_l1 = pj_point(84.0, 25.8);
    p.mem_l2 = pj_point(138.0, 11.6);
    p.mem_rand = rand_point(75.6, 8.03);
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "APU GPU";
    p.processor = "AMD HD 7340 (Zacate)";
    p.process_nm = 40;
    p.device_class = DeviceClass::MobileGpu;
    p.peak_sp_flops = from_gflops(109.0);
    p.peak_bandwidth = from_gbytes(10.7);
    p.pi1 = 15.6;
    p.idle_power = 11.8;
    p.delta_pi = 3.23;
    p.flop_sp = pj_point(5.82, 104.0);
    p.mem_stream = pj_point(333.0, 8.70);
    p.mem_l1 = pj_point(6.47, 46.0);  // software-managed scratchpad
    p.mem_rand = rand_point(45.8, 115.0);
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "GTX 580";
    p.processor = "NVIDIA GF100 (Fermi)";
    p.process_nm = 40;
    p.device_class = DeviceClass::DesktopGpu;
    p.peak_sp_flops = from_gflops(1580.0);
    p.peak_dp_flops = from_gflops(198.0);
    p.peak_bandwidth = from_gbytes(192.0);
    p.pi1 = 122.0;
    p.idle_power = 148.0;
    p.pi1_below_idle = true;
    p.delta_pi = 146.0;
    p.flop_sp = pj_point(99.7, 1400.0);
    p.flop_dp = pj_point(213.0, 196.0);
    p.mem_stream = pj_point(513.0, 171.0);
    p.mem_l1 = pj_point(149.0, 761.0);
    p.mem_l2 = pj_point(257.0, 284.0);
    p.mem_rand = rand_point(112.0, 977.0);
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "GTX 680";
    p.processor = "NVIDIA GK104 (Kepler)";
    p.process_nm = 28;
    p.device_class = DeviceClass::DesktopGpu;
    p.peak_sp_flops = from_gflops(3530.0);
    p.peak_dp_flops = from_gflops(147.0);
    p.peak_bandwidth = from_gbytes(192.0);
    p.pi1 = 66.4;
    p.idle_power = 100.0;
    p.pi1_below_idle = true;
    p.delta_pi = 145.0;
    p.flop_sp = pj_point(43.2, 3030.0);
    p.flop_dp = pj_point(263.0, 147.0);
    p.mem_stream = pj_point(437.0, 158.0);
    p.mem_l1 = pj_point(51.0, 1150.0);  // Kepler: shared memory, not L1
    p.mem_l2 = pj_point(195.0, 297.0);
    p.mem_rand = rand_point(184.0, 1420.0);
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "GTX Titan";
    p.processor = "NVIDIA GK110 (Kepler)";
    p.process_nm = 28;
    p.device_class = DeviceClass::DesktopGpu;
    p.peak_sp_flops = from_gflops(4990.0);
    p.peak_dp_flops = from_gflops(1660.0);
    p.peak_bandwidth = from_gbytes(288.0);
    p.pi1 = 123.0;
    p.idle_power = 72.9;
    p.delta_pi = 164.0;
    p.flop_sp = pj_point(30.4, 4020.0);
    p.flop_dp = pj_point(93.9, 1600.0);
    p.mem_stream = pj_point(267.0, 239.0);
    p.mem_l1 = pj_point(24.4, 1610.0);  // shared memory
    p.mem_l2 = pj_point(195.0, 297.0);
    p.mem_rand = rand_point(48.0, 968.0);
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "Xeon Phi";
    p.processor = "Intel 5110P (KNC)";
    p.process_nm = 22;
    p.device_class = DeviceClass::Manycore;
    p.peak_sp_flops = from_gflops(2020.0);
    p.peak_dp_flops = from_gflops(1010.0);
    p.peak_bandwidth = from_gbytes(320.0);
    p.pi1 = 180.0;
    p.idle_power = 90.0;
    p.delta_pi = 36.1;
    p.flop_sp = pj_point(6.05, 2020.0);
    p.flop_dp = pj_point(12.4, 1010.0);
    p.mem_stream = pj_point(136.0, 181.0);
    p.mem_l1 = pj_point(2.19, 2890.0);
    p.mem_l2 = pj_point(8.65, 591.0);
    p.mem_rand = rand_point(5.11, 706.0);
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "PandaBoard ES";
    p.processor = "TI OMAP4460 (Cortex-A9)";
    p.process_nm = 45;
    p.device_class = DeviceClass::MobileCpu;
    p.peak_sp_flops = from_gflops(9.60);
    p.peak_dp_flops = from_gflops(3.60);
    p.peak_bandwidth = from_gbytes(3.20);
    p.pi1 = 3.48;
    p.idle_power = 2.74;
    p.delta_pi = 1.19;
    p.flop_sp = pj_point(37.2, 9.47);
    p.flop_dp = pj_point(302.0, 3.02);
    p.mem_stream = pj_point(810.0, 1.28);
    p.mem_l1 = pj_point(79.5, 18.4);
    p.mem_l2 = pj_point(134.0, 4.12);
    p.mem_rand = rand_point(60.9, 12.1);
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "Arndale CPU";
    p.processor = "Samsung Exynos 5 (Cortex-A15)";
    p.process_nm = 32;
    p.device_class = DeviceClass::MobileCpu;
    p.peak_sp_flops = from_gflops(27.2);
    p.peak_dp_flops = from_gflops(6.80);
    p.peak_bandwidth = from_gbytes(12.8);
    p.pi1 = 5.50;
    p.idle_power = 1.72;
    p.delta_pi = 2.01;
    p.flop_sp = pj_point(107.0, 15.8);
    p.flop_dp = pj_point(275.0, 3.97);
    p.mem_stream = pj_point(386.0, 3.94);
    p.mem_l1 = pj_point(76.3, 50.8);
    p.mem_l2 = pj_point(248.0, 15.2);
    p.mem_rand = rand_point(138.0, 14.8);
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }
  {
    PlatformSpec p;
    p.name = "Arndale GPU";
    p.processor = "ARM Mali T-604 (Exynos 5)";
    p.process_nm = 32;
    p.device_class = DeviceClass::MobileGpu;
    p.peak_sp_flops = from_gflops(72.0);
    p.peak_bandwidth = from_gbytes(12.8);
    p.pi1 = 1.28;
    p.idle_power = 1.72;
    p.pi1_below_idle = true;
    p.delta_pi = 4.83;
    p.flop_sp = pj_point(84.2, 33.0);
    p.mem_stream = pj_point(518.0, 8.39);
    p.mem_l1 = pj_point(71.4, 33.4);  // software-managed scratchpad
    p.mem_rand = rand_point(125.0, 33.6);
    p.ks_significant_in_paper = true;
    t.push_back(std::move(p));
  }

  // Every Table I platform gets its class's synthesized DVFS ladder,
  // anchored on the row's fitted pi1 and measured idle power.
  for (PlatformSpec& p : t)
    p.operating_points =
        default_operating_points(p.device_class, p.pi1, p.idle_power);

  for (const PlatformSpec& p : t) p.validate();
  return t;
}

const std::vector<PlatformSpec>& table1() {
  static const std::vector<PlatformSpec> kTable = build_table1();
  return kTable;
}

}  // namespace

std::span<const PlatformSpec> all_platforms() { return table1(); }

const PlatformSpec& platform(const std::string& name) {
  for (const PlatformSpec& p : table1())
    if (p.name == name) return p;
  throw std::out_of_range("unknown platform: " + name);
}

const PlatformSpec* find_platform(std::string_view name) noexcept {
  for (const PlatformSpec& p : table1())
    if (p.name == name) return &p;
  return nullptr;
}

bool has_platform(const std::string& name) {
  for (const PlatformSpec& p : table1())
    if (p.name == name) return true;
  return false;
}

std::vector<std::string> platform_names() {
  std::vector<std::string> names;
  names.reserve(table1().size());
  for (const PlatformSpec& p : table1()) names.push_back(p.name);
  return names;
}

std::vector<const PlatformSpec*> by_peak_efficiency() {
  std::vector<const PlatformSpec*> order;
  order.reserve(table1().size());
  for (const PlatformSpec& p : table1()) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const PlatformSpec* a, const PlatformSpec* b) {
              return core::peak_flops_per_joule(a->machine()) >
                     core::peak_flops_per_joule(b->machine());
            });
  return order;
}

}  // namespace archline::platforms
