#pragma once
// Measurement channels: the DC rails a device draws power from.
//
// The paper's setup (Fig. 3) intercepts every rail feeding the device under
// test: mobile boards via their DC power brick; CPUs via the ATX 12 V CPU
// connector plus motherboard input (for DRAM); high-end GPUs via the PCIe
// slot (custom interposer) plus the 6-pin and 8-pin PCIe power connectors.

#include <string>
#include <vector>

namespace archline::powermon {

/// Where a channel's probe physically sits.
enum class ProbeKind {
  PowerMon,        ///< PowerMon 2 inline DC probe
  PcieInterposer,  ///< custom PCIe slot interposer
};

/// One measured DC rail.
struct Channel {
  std::string name;         ///< e.g. "PCIe 8-pin"
  double nominal_volts = 12.0;
  ProbeKind probe = ProbeKind::PowerMon;
};

/// Standard rail sets used by the paper's three wiring configurations.
/// Fractions say how the device's total power splits across rails; they
/// sum to 1.
struct RailSplit {
  Channel channel;
  double fraction = 1.0;
};

/// Mobile/dev boards: single DC brick channel.
[[nodiscard]] std::vector<RailSplit> mobile_board_rails();

/// CPU systems: ATX 12 V CPU plug + motherboard input (DRAM power).
[[nodiscard]] std::vector<RailSplit> cpu_rails();

/// Discrete GPUs: PCIe slot via interposer (<= 75 W share) + 6-pin + 8-pin.
[[nodiscard]] std::vector<RailSplit> discrete_gpu_rails();

}  // namespace archline::powermon
