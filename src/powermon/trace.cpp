#include "powermon/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archline::powermon {

void PowerTrace::add_point(double t, double watts) {
  if (!std::isfinite(t) || !std::isfinite(watts))
    throw std::invalid_argument("PowerTrace: non-finite point");
  if (watts < 0.0)
    throw std::invalid_argument("PowerTrace: negative power");
  if (!points_.empty() && t < points_.back().t)
    throw std::invalid_argument("PowerTrace: time must be non-decreasing");
  points_.push_back(TracePoint{.t = t, .watts = watts});
}

void PowerTrace::add_constant(double duration, double watts) {
  if (!(duration >= 0.0))
    throw std::invalid_argument("PowerTrace: negative duration");
  const double t0 = points_.empty() ? 0.0 : points_.back().t;
  add_point(t0, watts);
  add_point(t0 + duration, watts);
}

void PowerTrace::add_ramp(double duration, double watts) {
  if (!(duration >= 0.0))
    throw std::invalid_argument("PowerTrace: negative duration");
  if (points_.empty())
    throw std::invalid_argument("PowerTrace: ramp needs a starting point");
  add_point(points_.back().t + duration, watts);
}

double PowerTrace::value(double t) const noexcept {
  if (points_.empty()) return 0.0;
  if (t <= points_.front().t) return points_.front().watts;
  if (t >= points_.back().t) return points_.back().watts;
  // First breakpoint strictly after t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const TracePoint& p) { return value < p.t; });
  const TracePoint& hi = *it;
  const TracePoint& lo = *(it - 1);
  if (hi.t == lo.t) return hi.watts;
  const double frac = (t - lo.t) / (hi.t - lo.t);
  return lo.watts + frac * (hi.watts - lo.watts);
}

double PowerTrace::integral(double t0, double t1) const noexcept {
  if (points_.empty() || !(t1 > t0)) return 0.0;
  double acc = 0.0;
  // Collect segment boundaries clipped to [t0, t1]; the function is linear
  // between consecutive clipped breakpoints, so trapezoid is exact.
  double prev_t = t0;
  double prev_w = value(t0);
  for (const TracePoint& p : points_) {
    if (p.t <= t0) continue;
    if (p.t >= t1) break;
    acc += 0.5 * (prev_w + value(p.t)) * (p.t - prev_t);
    prev_t = p.t;
    prev_w = value(p.t);
  }
  acc += 0.5 * (prev_w + value(t1)) * (t1 - prev_t);
  return acc;
}

double PowerTrace::total_energy() const noexcept {
  return integral(start_time(), end_time());
}

double PowerTrace::start_time() const noexcept {
  return points_.empty() ? 0.0 : points_.front().t;
}

double PowerTrace::end_time() const noexcept {
  return points_.empty() ? 0.0 : points_.back().t;
}

double PowerTrace::duration() const noexcept {
  return end_time() - start_time();
}

PowerTrace PowerTrace::scaled(double factor) const {
  if (!(factor >= 0.0))
    throw std::invalid_argument("PowerTrace::scaled: negative factor");
  PowerTrace out;
  for (const TracePoint& p : points_) out.add_point(p.t, p.watts * factor);
  return out;
}

double Capture::true_energy() const noexcept {
  double acc = 0.0;
  for (const Rail& r : rails) acc += r.trace.integral(window_begin, window_end);
  return acc;
}

double Capture::true_avg_power() const noexcept {
  const double span = window_end - window_begin;
  if (!(span > 0.0)) return 0.0;
  return true_energy() / span;
}

Capture split_across_rails(const PowerTrace& device,
                           const std::vector<RailSplit>& rails,
                           double window_begin, double window_end) {
  if (rails.empty())
    throw std::invalid_argument("split_across_rails: no rails");
  double total = 0.0;
  for (const RailSplit& r : rails) total += r.fraction;
  if (std::abs(total - 1.0) > 1e-6)
    throw std::invalid_argument(
        "split_across_rails: fractions must sum to 1");
  Capture cap;
  cap.window_begin = window_begin;
  cap.window_end = window_end;
  cap.rails.reserve(rails.size());
  for (const RailSplit& r : rails)
    cap.rails.push_back(Capture::Rail{.channel = r.channel,
                                      .trace = device.scaled(r.fraction)});
  return cap;
}

}  // namespace archline::powermon
