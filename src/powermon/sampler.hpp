#pragma once
// Simulated PowerMon 2 sampling front-end.
//
// PowerMon 2 (Bedard et al., SoutheastCon 2010) samples DC voltage and
// current inline at 1024 Hz per channel, up to 8 channels, with an
// aggregate budget of 3072 Hz: beyond three active channels the firmware
// round-robins, so the effective per-channel rate drops to 3072/n. Each
// sample is a 12-bit ADC reading of voltage and current whose product is
// the reported instantaneous power. We reproduce those artifacts —
// rate derating, quantization, and timestamp jitter — because they bound
// how well any downstream analysis can do.

#include <cstddef>
#include <vector>

#include "powermon/trace.hpp"
#include "stats/rng.hpp"

namespace archline::powermon {

struct SamplerConfig {
  double per_channel_hz = 1024.0;  ///< nominal per-channel rate
  double aggregate_hz = 3072.0;    ///< firmware budget across channels
  std::size_t max_channels = 8;
  int adc_bits = 12;               ///< ADC resolution for V and I
  double adc_full_scale_volts = 26.0;   ///< PowerMon 2 input range
  double adc_full_scale_amps = 40.0;
  double timestamp_jitter_s = 20e-6;    ///< uniform +/- jitter per sample
  bool quantize = true;                 ///< disable for ideal sampling

  /// Probability of losing any individual sample (serial-link hiccups on
  /// the real device). Lost samples simply never appear in the stream;
  /// the integrators must cope with ragged channels. 0 disables.
  double dropout_rate = 0.0;
};

/// One timestamped sample on one channel.
struct Sample {
  double t = 0.0;      ///< reported timestamp [s]
  double volts = 0.0;  ///< quantized voltage reading
  double amps = 0.0;   ///< quantized current reading

  [[nodiscard]] double watts() const noexcept { return volts * amps; }
};

/// All samples captured on one channel.
struct ChannelSamples {
  Channel channel;
  double effective_hz = 0.0;  ///< rate after aggregate derating
  std::vector<Sample> samples;
};

/// A sampled capture: per-channel sample streams over the kernel window.
struct SampledCapture {
  std::vector<ChannelSamples> channels;
  double window_begin = 0.0;
  double window_end = 0.0;
};

/// Effective per-channel rate under the aggregate budget.
[[nodiscard]] double effective_rate(const SamplerConfig& cfg,
                                    std::size_t active_channels);

/// Samples every rail of `capture` over its kernel window.
/// Throws std::invalid_argument if the capture exceeds max_channels or the
/// window is empty.
[[nodiscard]] SampledCapture sample(const Capture& capture,
                                    const SamplerConfig& cfg,
                                    stats::Rng& rng);

}  // namespace archline::powermon
