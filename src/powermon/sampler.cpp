#include "powermon/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archline::powermon {

namespace {

/// Quantizes `value` onto a `bits`-bit grid spanning [0, full_scale].
double quantize_adc(double value, int bits, double full_scale) {
  const double levels = std::exp2(bits) - 1.0;
  const double clamped = std::clamp(value, 0.0, full_scale);
  const double code = std::round(clamped / full_scale * levels);
  return code / levels * full_scale;
}

}  // namespace

double effective_rate(const SamplerConfig& cfg, std::size_t active_channels) {
  if (active_channels == 0)
    throw std::invalid_argument("effective_rate: no channels");
  const double budget_share =
      cfg.aggregate_hz / static_cast<double>(active_channels);
  return std::min(cfg.per_channel_hz, budget_share);
}

SampledCapture sample(const Capture& capture, const SamplerConfig& cfg,
                      stats::Rng& rng) {
  if (capture.rails.empty())
    throw std::invalid_argument("sample: capture has no rails");
  if (capture.rails.size() > cfg.max_channels)
    throw std::invalid_argument("sample: more rails than sampler channels");
  if (!(capture.window_end > capture.window_begin))
    throw std::invalid_argument("sample: empty measurement window");

  const double rate = effective_rate(cfg, capture.rails.size());
  const double dt = 1.0 / rate;

  SampledCapture out;
  out.window_begin = capture.window_begin;
  out.window_end = capture.window_end;
  out.channels.reserve(capture.rails.size());

  for (const Capture::Rail& rail : capture.rails) {
    ChannelSamples cs;
    cs.channel = rail.channel;
    cs.effective_hz = rate;
    const double volts = rail.channel.nominal_volts;
    for (double t = capture.window_begin; t <= capture.window_end;
         t += dt) {
      if (cfg.dropout_rate > 0.0 && rng.uniform() < cfg.dropout_rate)
        continue;  // sample lost in transit
      // The device is probed at a jittered true time but the record keeps
      // the nominal timestamp, as real sampling hardware does.
      const double jitter = rng.uniform(-cfg.timestamp_jitter_s,
                                        cfg.timestamp_jitter_s);
      const double true_t =
          std::clamp(t + jitter, capture.window_begin, capture.window_end);
      const double watts = rail.trace.value(true_t);
      const double amps = volts > 0.0 ? watts / volts : 0.0;
      Sample s;
      s.t = t;
      if (cfg.quantize) {
        s.volts = quantize_adc(volts, cfg.adc_bits, cfg.adc_full_scale_volts);
        s.amps = quantize_adc(amps, cfg.adc_bits, cfg.adc_full_scale_amps);
      } else {
        s.volts = volts;
        s.amps = amps;
      }
      cs.samples.push_back(s);
    }
    if (cs.samples.empty())
      throw std::invalid_argument("sample: window shorter than one period");
    out.channels.push_back(std::move(cs));
  }
  return out;
}

}  // namespace archline::powermon
