#pragma once
// PowerTrace: continuous-time instantaneous power of one rail, represented
// as a piecewise-linear function of time. This is the simulator's ground
// truth; the Sampler discretizes it the way PowerMon 2 would.

#include <vector>

#include "powermon/channel.hpp"

namespace archline::powermon {

/// A (time, power) breakpoint.
struct TracePoint {
  double t = 0.0;      ///< seconds since capture start
  double watts = 0.0;  ///< instantaneous power
};

/// Piecewise-linear power over time. Breakpoints must be added in
/// non-decreasing time order; between breakpoints power interpolates
/// linearly, outside the span it extrapolates as constant.
class PowerTrace {
 public:
  PowerTrace() = default;

  /// Appends a breakpoint; throws std::invalid_argument if time goes
  /// backwards or power is negative/non-finite.
  void add_point(double t, double watts);

  /// Appends a constant-power segment of the given duration starting at
  /// the current end (or t = 0 if empty).
  void add_constant(double duration, double watts);

  /// Appends a linear ramp from the current end power to `watts` over
  /// `duration`.
  void add_ramp(double duration, double watts);

  /// Instantaneous power at time t.
  [[nodiscard]] double value(double t) const noexcept;

  /// Exact integral of power over [t0, t1] (analytic, trapezoid on the
  /// piecewise-linear segments) — the true energy in joules.
  [[nodiscard]] double integral(double t0, double t1) const noexcept;

  /// Full-span exact energy.
  [[nodiscard]] double total_energy() const noexcept;

  [[nodiscard]] double start_time() const noexcept;
  [[nodiscard]] double end_time() const noexcept;
  [[nodiscard]] double duration() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<TracePoint>& points() const noexcept {
    return points_;
  }

  /// Returns a copy with every power value scaled by `factor` (rail
  /// splitting).
  [[nodiscard]] PowerTrace scaled(double factor) const;

 private:
  std::vector<TracePoint> points_;
};

/// A capture: one trace per measured rail plus the workload window the
/// measurement covers.
struct Capture {
  struct Rail {
    Channel channel;
    PowerTrace trace;
  };
  std::vector<Rail> rails;
  double window_begin = 0.0;  ///< start of the timed kernel region [s]
  double window_end = 0.0;    ///< end of the timed kernel region [s]

  /// Exact total energy across rails over the kernel window.
  [[nodiscard]] double true_energy() const noexcept;

  /// Exact average power across rails over the kernel window.
  [[nodiscard]] double true_avg_power() const noexcept;
};

/// Splits a single device trace across rails according to the split
/// fractions (which must sum to ~1), producing a Capture.
[[nodiscard]] Capture split_across_rails(const PowerTrace& device,
                                         const std::vector<RailSplit>& rails,
                                         double window_begin,
                                         double window_end);

}  // namespace archline::powermon
