#include "powermon/integrator.hpp"

#include <cmath>
#include <stdexcept>

namespace archline::powermon {

bool Measurement::consistent(double tol) const noexcept {
  return std::abs(joules - avg_watts * seconds) <=
         tol * std::max(1.0, std::abs(joules));
}

Measurement integrate_mean(const SampledCapture& capture) {
  if (capture.channels.empty())
    throw std::invalid_argument("integrate_mean: no channels");
  const double span = capture.window_end - capture.window_begin;
  if (!(span > 0.0))
    throw std::invalid_argument("integrate_mean: empty window");

  double total_watts = 0.0;
  for (const ChannelSamples& ch : capture.channels) {
    if (ch.samples.empty())
      throw std::invalid_argument("integrate_mean: channel with no samples");
    double acc = 0.0;
    for (const Sample& s : ch.samples) acc += s.watts();
    total_watts += acc / static_cast<double>(ch.samples.size());
  }
  Measurement m;
  m.seconds = span;
  m.avg_watts = total_watts;
  m.joules = total_watts * span;
  return m;
}

Measurement integrate_trapezoid(const SampledCapture& capture) {
  if (capture.channels.empty())
    throw std::invalid_argument("integrate_trapezoid: no channels");
  const double span = capture.window_end - capture.window_begin;
  if (!(span > 0.0))
    throw std::invalid_argument("integrate_trapezoid: empty window");

  double total_joules = 0.0;
  for (const ChannelSamples& ch : capture.channels) {
    const auto& xs = ch.samples;
    if (xs.size() < 2)
      throw std::invalid_argument(
          "integrate_trapezoid: need >= 2 samples per channel");
    double acc = 0.0;
    // Extend the first/last samples to the window edges so the estimate
    // covers the full span.
    acc += xs.front().watts() * (xs.front().t - capture.window_begin);
    for (std::size_t i = 1; i < xs.size(); ++i)
      acc += 0.5 * (xs[i - 1].watts() + xs[i].watts()) *
             (xs[i].t - xs[i - 1].t);
    acc += xs.back().watts() * (capture.window_end - xs.back().t);
    total_joules += acc;
  }
  Measurement m;
  m.seconds = span;
  m.joules = total_joules;
  m.avg_watts = total_joules / span;
  return m;
}

}  // namespace archline::powermon
