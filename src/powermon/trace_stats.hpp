#pragma once
// Statistics over sampled power streams.
//
// The paper's Fig. 5 annotations report measured peak power as a
// fraction of pi1 + delta_pi ("[99%]"); that peak is a property of the
// raw sample stream, not of per-run averages. This module computes such
// stream-level quantities from a SampledCapture: instantaneous total
// power percentiles, the peak, time above a threshold, and the start-up
// ramp duration.

#include "powermon/sampler.hpp"

namespace archline::powermon {

struct TraceStats {
  double peak_watts = 0.0;      ///< max instantaneous total power
  double median_watts = 0.0;    ///< p50 of instantaneous total power
  double p95_watts = 0.0;       ///< p95
  double min_watts = 0.0;       ///< min (the idle/ramp floor)
  double mean_watts = 0.0;      ///< same as the mean-power integrator
  std::size_t samples = 0;      ///< time points used

  /// Fraction of the window with total power above `threshold` (set at
  /// computation time; see time_above_fraction).
  double above_threshold_fraction = 0.0;

  /// Time from window start until total power first reaches 90% of its
  /// steady (median) level — the measurement's view of the ramp.
  double ramp_seconds = 0.0;
};

/// Computes stream statistics on the total (summed across channels)
/// instantaneous power. Channels may have ragged sample counts (dropout,
/// derating); samples are aligned by nearest timestamp on the first
/// channel's grid. `threshold` feeds above_threshold_fraction.
/// Throws std::invalid_argument on an empty capture.
[[nodiscard]] TraceStats compute_trace_stats(const SampledCapture& capture,
                                             double threshold = 0.0);

}  // namespace archline::powermon
