#include "powermon/trace_stats.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace archline::powermon {

TraceStats compute_trace_stats(const SampledCapture& capture,
                               double threshold) {
  if (capture.channels.empty() || capture.channels[0].samples.empty())
    throw std::invalid_argument("compute_trace_stats: empty capture");

  // Total power on the first channel's time grid; other channels
  // contribute their nearest sample (streams can be ragged).
  const auto& base = capture.channels[0].samples;
  std::vector<double> totals;
  totals.reserve(base.size());
  for (const Sample& s : base) {
    double total = s.watts();
    for (std::size_t c = 1; c < capture.channels.size(); ++c) {
      const auto& xs = capture.channels[c].samples;
      if (xs.empty()) continue;
      // Nearest sample by timestamp (streams are sorted).
      const auto it = std::lower_bound(
          xs.begin(), xs.end(), s.t,
          [](const Sample& a, double t) { return a.t < t; });
      const Sample* nearest = it != xs.end() ? &*it : &xs.back();
      if (it != xs.begin()) {
        const Sample* prev = &*(it - 1);
        if (it == xs.end() || s.t - prev->t < it->t - s.t) nearest = prev;
      }
      total += nearest->watts();
    }
    totals.push_back(total);
  }

  TraceStats st;
  st.samples = totals.size();
  st.peak_watts = stats::max(totals);
  st.min_watts = stats::min(totals);
  st.median_watts = stats::median(totals);
  st.p95_watts = stats::quantile(totals, 0.95);
  st.mean_watts = stats::mean(totals);

  if (threshold > 0.0) {
    std::size_t above = 0;
    for (const double w : totals)
      if (w > threshold) ++above;
    st.above_threshold_fraction =
        static_cast<double>(above) / static_cast<double>(totals.size());
  }

  // Ramp: first time total power reaches 90% of the steady level.
  const double target = 0.9 * st.median_watts;
  st.ramp_seconds = 0.0;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    if (totals[i] >= target) {
      st.ramp_seconds = base[i].t - capture.window_begin;
      break;
    }
  }
  return st;
}

}  // namespace archline::powermon
