#include "powermon/channel.hpp"

namespace archline::powermon {

std::vector<RailSplit> mobile_board_rails() {
  return {
      RailSplit{.channel = {.name = "DC brick", .nominal_volts = 5.0,
                            .probe = ProbeKind::PowerMon},
                .fraction = 1.0},
  };
}

std::vector<RailSplit> cpu_rails() {
  return {
      RailSplit{.channel = {.name = "ATX 12V CPU", .nominal_volts = 12.0,
                            .probe = ProbeKind::PowerMon},
                .fraction = 0.8},
      RailSplit{.channel = {.name = "Motherboard/DRAM", .nominal_volts = 12.0,
                            .probe = ProbeKind::PowerMon},
                .fraction = 0.2},
  };
}

std::vector<RailSplit> discrete_gpu_rails() {
  return {
      RailSplit{.channel = {.name = "PCIe slot", .nominal_volts = 12.0,
                            .probe = ProbeKind::PcieInterposer},
                .fraction = 0.25},
      RailSplit{.channel = {.name = "PCIe 6-pin", .nominal_volts = 12.0,
                            .probe = ProbeKind::PowerMon},
                .fraction = 0.30},
      RailSplit{.channel = {.name = "PCIe 8-pin", .nominal_volts = 12.0,
                            .probe = ProbeKind::PowerMon},
                .fraction = 0.45},
  };
}

}  // namespace archline::powermon
