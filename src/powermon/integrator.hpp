#pragma once
// Energy/average-power estimation from sampled captures — the measurement
// arithmetic of the paper's §IV-h:
//
//   "Assuming uniform samples, we compute the average power as the average
//    of the instantaneous power over all samples. For systems that draw
//    from multiple power sources ... we sum the average powers to get
//    total power. Total energy is then the average power times the
//    execution time."

#include "powermon/sampler.hpp"

namespace archline::powermon {

/// A finished measurement of one kernel run.
struct Measurement {
  double seconds = 0.0;    ///< measured execution time
  double joules = 0.0;     ///< estimated total energy
  double avg_watts = 0.0;  ///< estimated average power

  /// Energy/time consistency: joules == avg_watts * seconds by
  /// construction for the paper's estimator.
  [[nodiscard]] bool consistent(double tol = 1e-9) const noexcept;
};

/// The paper's estimator: per-channel mean instantaneous power, summed
/// across channels, times the window duration.
[[nodiscard]] Measurement integrate_mean(const SampledCapture& capture);

/// Reference estimator: trapezoidal integration of the samples (more
/// accurate for non-stationary traces; used in tests to bound the error of
/// the mean estimator).
[[nodiscard]] Measurement integrate_trapezoid(const SampledCapture& capture);

}  // namespace archline::powermon
