#pragma once
// Parameter uncertainty for fitted machines, by bootstrap over
// observations.
//
// The paper reports point estimates ("statistically significant
// estimates", §V-A) without intervals; this module adds them: resample
// the observation set with replacement, refit, and take percentile
// intervals per parameter. Besides honest error bars, the interval
// widths expose exactly the identifiability structure Table I hides —
// delta_pi's interval explodes on platforms whose cap barely binds.

#include <array>
#include <cstdint>
#include <span>

#include "fit/model_fit.hpp"
#include "stats/bootstrap.hpp"

namespace archline::fit {

/// Percentile CIs for the six DRAM/SP machine parameters.
struct FitConfidence {
  FitResult point;  ///< the fit on the full data
  stats::BootstrapInterval tau_flop;
  stats::BootstrapInterval eps_flop;
  stats::BootstrapInterval tau_mem;
  stats::BootstrapInterval eps_mem;
  stats::BootstrapInterval pi1;
  stats::BootstrapInterval delta_pi;
  int replicates = 0;

  /// Relative interval half-width ((hi-lo)/2) / estimate per parameter —
  /// the "how well determined" score.
  [[nodiscard]] std::array<double, 6> relative_halfwidths() const;
};

struct BootstrapFitOptions {
  FitOptions fit;
  int replicates = 60;
  double confidence = 0.95;
  std::uint64_t seed = 7;
};

/// Bootstraps fit_observations over `obs`. Throws on insufficient data
/// (same rule as fit_observations) or replicates < 8.
[[nodiscard]] FitConfidence bootstrap_fit(
    std::span<const microbench::Observation> obs,
    const BootstrapFitOptions& options = {});

}  // namespace archline::fit
