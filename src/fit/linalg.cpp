#include "fit/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace archline::fit {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Mat Mat::identity(std::size_t n) {
  Mat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> matvec(const Mat& a, std::span<const double> x) {
  if (x.size() != a.cols()) throw std::invalid_argument("matvec: dim mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Mat gram(const Mat& a) {
  Mat g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) acc += a(r, i) * a(r, j);
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

std::vector<double> matvec_transposed(const Mat& a,
                                      std::span<const double> y) {
  if (y.size() != a.rows())
    throw std::invalid_argument("matvec_transposed: dim mismatch");
  std::vector<double> x(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) x[c] += a(r, c) * y[r];
  return x;
}

std::vector<double> cholesky_solve(const Mat& s, std::span<const double> b) {
  const std::size_t n = s.rows();
  if (s.cols() != n || b.size() != n)
    throw std::invalid_argument("cholesky_solve: dim mismatch");

  // Lower-triangular factor L with S = L L^T.
  Mat l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = s(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (!(acc > 0.0))
          throw std::runtime_error("cholesky_solve: not positive definite");
        l(i, j) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  // Forward substitution L z = b.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * z[k];
    z[i] = acc / l(i, i);
  }
  // Back substitution L^T x = z.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = z[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
  return x;
}

double norm2(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (const double v : x) acc += v * v;
  return acc;
}

double norm(std::span<const double> x) noexcept { return std::sqrt(norm2(x)); }

}  // namespace archline::fit
