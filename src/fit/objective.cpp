#include "fit/objective.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/roofline.hpp"

namespace archline::fit {

std::size_t parameter_count(ModelKind kind) noexcept {
  return kind == ModelKind::Capped ? 6 : 5;
}

std::vector<double> pack(const core::MachineParams& m, ModelKind kind) {
  std::vector<double> x = {std::log(m.tau_flop), std::log(m.eps_flop),
                           std::log(m.tau_mem), std::log(m.eps_mem),
                           std::log(std::max(m.pi1, 1e-6))};
  if (kind == ModelKind::Capped) x.push_back(std::log(m.delta_pi));
  return x;
}

core::MachineParams unpack(std::span<const double> x, ModelKind kind) {
  if (x.size() != parameter_count(kind))
    throw std::invalid_argument("unpack: wrong parameter count");
  core::MachineParams m;
  m.tau_flop = std::exp(x[0]);
  m.eps_flop = std::exp(x[1]);
  m.tau_mem = std::exp(x[2]);
  m.eps_mem = std::exp(x[3]);
  m.pi1 = std::exp(x[4]);
  m.delta_pi = kind == ModelKind::Capped ? std::exp(x[5]) : core::kUncapped;
  return m;
}

std::vector<double> time_energy_residuals(
    const core::MachineParams& m,
    std::span<const microbench::Observation> obs) {
  std::vector<double> r;
  r.reserve(3 * obs.size());
  for (const microbench::Observation& o : obs) {
    const core::Workload w = o.kernel.workload();
    const double t_model = core::time(m, w);
    const double e_model = core::energy(m, w);
    r.push_back(t_model / o.seconds - 1.0);
    r.push_back(e_model / o.joules - 1.0);
    r.push_back((e_model / t_model) / o.watts - 1.0);
  }
  return r;
}

double sum_squared_residuals(const core::MachineParams& m,
                             std::span<const microbench::Observation> obs) {
  double acc = 0.0;
  for (const double v : time_energy_residuals(m, obs)) acc += v * v;
  return acc;
}

PredictionErrors prediction_errors(
    const core::MachineParams& m,
    std::span<const microbench::Observation> obs) {
  PredictionErrors e;
  e.time.reserve(obs.size());
  e.energy.reserve(obs.size());
  e.power.reserve(obs.size());
  e.performance.reserve(obs.size());
  for (const microbench::Observation& o : obs) {
    const core::Workload w = o.kernel.workload();
    const double t_model = core::time(m, w);
    const double e_model = core::energy(m, w);
    const double p_model = core::avg_power(m, w);
    e.time.push_back(t_model / o.seconds - 1.0);
    e.energy.push_back(e_model / o.joules - 1.0);
    e.power.push_back(p_model / o.watts - 1.0);
    // Performance prediction error: (W/T_model) / (W/t) - 1.
    e.performance.push_back(o.seconds / t_model - 1.0);
  }
  return e;
}

MeasuredThroughput measure_throughput(
    std::span<const microbench::Observation> obs) {
  if (obs.empty())
    throw std::invalid_argument("measure_throughput: no observations");
  // Average repeats of the same kernel first (noise de-biasing: a raw min
  // over noisy repeats is systematically fast), then take the best kernel.
  struct Acc {
    double t_per_flop = 0.0;
    double t_per_byte = 0.0;
    int count = 0;
  };
  std::map<std::string, Acc> by_kernel;
  for (const microbench::Observation& o : obs) {
    Acc& a = by_kernel[o.kernel.label];
    if (o.kernel.flops > 0.0) a.t_per_flop += o.seconds / o.kernel.flops;
    if (o.kernel.bytes > 0.0) a.t_per_byte += o.seconds / o.kernel.bytes;
    ++a.count;
  }
  MeasuredThroughput t;
  t.tau_flop = std::numeric_limits<double>::infinity();
  t.tau_mem = std::numeric_limits<double>::infinity();
  for (const auto& [label, acc] : by_kernel) {
    if (acc.count == 0) continue;
    if (acc.t_per_flop > 0.0)
      t.tau_flop = std::min(t.tau_flop, acc.t_per_flop / acc.count);
    if (acc.t_per_byte > 0.0)
      t.tau_mem = std::min(t.tau_mem, acc.t_per_byte / acc.count);
  }
  if (!std::isfinite(t.tau_flop) || !std::isfinite(t.tau_mem))
    throw std::invalid_argument(
        "measure_throughput: need both flop and byte work in the sweep");
  return t;
}

core::MachineParams initial_guess(
    std::span<const microbench::Observation> obs, ModelKind kind) {
  if (obs.size() < 4)
    throw std::invalid_argument("initial_guess: need >= 4 observations");

  double tau_flop = std::numeric_limits<double>::infinity();
  double tau_mem = std::numeric_limits<double>::infinity();
  double min_watts = std::numeric_limits<double>::infinity();
  double max_watts = 0.0;
  const microbench::Observation* lo_i = &obs.front();
  const microbench::Observation* hi_i = &obs.front();
  for (const microbench::Observation& o : obs) {
    if (o.kernel.flops > 0.0)
      tau_flop = std::min(tau_flop, o.seconds / o.kernel.flops);
    if (o.kernel.bytes > 0.0)
      tau_mem = std::min(tau_mem, o.seconds / o.kernel.bytes);
    min_watts = std::min(min_watts, o.watts);
    max_watts = std::max(max_watts, o.watts);
    if (o.intensity() < lo_i->intensity()) lo_i = &o;
    if (o.intensity() > hi_i->intensity()) hi_i = &o;
  }

  core::MachineParams m;
  m.tau_flop = tau_flop;
  m.tau_mem = tau_mem;
  m.pi1 = 0.7 * min_watts;
  m.delta_pi = kind == ModelKind::Capped
                   ? std::max(max_watts - m.pi1, 0.05 * max_watts)
                   : core::kUncapped;

  // Energy constants from the sweep extremes: at high intensity nearly all
  // active energy is flops; at low intensity nearly all is traffic.
  const double ef_est =
      (hi_i->joules - m.pi1 * hi_i->seconds) / std::max(hi_i->kernel.flops,
                                                        1.0);
  m.eps_flop = std::max(ef_est, 1e-15);
  const double em_est = (lo_i->joules - m.pi1 * lo_i->seconds -
                         m.eps_flop * lo_i->kernel.flops) /
                        std::max(lo_i->kernel.bytes, 1.0);
  m.eps_mem = std::max(em_est, 1e-15);
  m.validate("initial_guess");
  return m;
}

}  // namespace archline::fit
