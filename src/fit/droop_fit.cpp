#include "fit/droop_fit.hpp"

#include <cmath>
#include <stdexcept>

namespace archline::fit {

double droop_sum_squared_residuals(
    const core::DroopModel& model,
    std::span<const microbench::Observation> obs) {
  double acc = 0.0;
  for (const microbench::Observation& o : obs) {
    const core::Workload w = o.kernel.workload();
    const double rt = model.time(w) / o.seconds - 1.0;
    const double re = model.energy(w) / o.joules - 1.0;
    acc += rt * rt + re * re;
  }
  return acc;
}

double fit_droop_eta(const core::MachineParams& machine,
                     std::span<const microbench::Observation> obs,
                     double eta_max) {
  if (obs.empty()) throw std::invalid_argument("fit_droop_eta: no data");
  if (!(eta_max > 0.0))
    throw std::invalid_argument("fit_droop_eta: eta_max must be > 0");

  const auto objective = [&](double eta) {
    return droop_sum_squared_residuals(
        core::DroopModel{.machine = machine, .eta = eta}, obs);
  };

  // Golden-section search on [0, eta_max]; the objective is smooth and
  // unimodal in eta (quadratic around the optimum).
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.0;
  double hi = eta_max;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = objective(x1);
  double f2 = objective(x2);
  for (int iter = 0; iter < 100 && (hi - lo) > 1e-10; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = objective(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = objective(x2);
    }
  }
  const double eta = 0.5 * (lo + hi);
  // Prefer the plain capped model when droop does not measurably help.
  return objective(eta) < objective(0.0) ? eta : 0.0;
}

}  // namespace archline::fit
