#pragma once
// The end-to-end fitting pipeline (paper §V-A): from a platform's
// microbenchmark SuiteData to statistically fitted model parameters —
// tau_flop, tau_mem, eps_flop, eps_mem, pi1, delta_pi, plus per-cache-level
// and random-access constants.
//
// Strategy: heuristic seed -> Nelder-Mead (handles the max() kinks) ->
// Levenberg-Marquardt polish. Double precision and cache levels are fitted
// conditionally on the DRAM/SP fit, mirroring how the paper's constants
// share one pi1/delta_pi per platform.

#include <optional>

#include "fit/objective.hpp"

namespace archline::fit {

struct FitOptions {
  ModelKind kind = ModelKind::Capped;
  int nm_evaluations = 20000;
  int lm_iterations = 120;

  /// Measured idle power [W]; 0 = unknown. When set, a weighted residual
  /// anchors pi1 near it. Without this anchor, pi1 trades off against
  /// eps_flop on machines where the constant-power charge dominates the
  /// per-flop energy (e.g. APU CPU: pi1*tau_flop ~ 40x eps_flop), exactly
  /// the ill-conditioning the paper sidesteps by measuring idle power
  /// separately (Table I column 6).
  double idle_watts_hint = 0.0;

  /// Relative weight of the idle anchor residual.
  double idle_weight = 4.0;

  /// Maximum observed average power over the sweep [W]; 0 = unknown.
  /// Wherever the cap binds, measured power plateaus at pi1 + delta_pi
  /// (the paper's Fig. 5 "[99%] of cap" annotations), so this anchors the
  /// cap level on platforms where throttling distorts the sweep too
  /// weakly for the time residuals to pin delta_pi (Xeon Phi's cap binds
  /// by only ~2%).
  double max_watts_hint = 0.0;

  /// Relative weight of the peak-power anchor residual.
  double max_watts_weight = 4.0;

  /// Robustness to corrupted measurements: after an initial fit, drop
  /// observations whose worst relative residual exceeds this multiple of
  /// the median absolute residual, then refit on the survivors.
  /// 0 disables (the default — the simulator produces no gross outliers;
  /// real campaigns do).
  double outlier_mad_threshold = 0.0;
};

/// Fitted per-flop costs for a second precision.
struct FlopFit {
  double tau_flop = 0.0;
  double eps_flop = 0.0;
};

/// Fitted per-byte costs for a cache level.
struct LevelFit {
  double tau_byte = 0.0;
  double eps_byte = 0.0;
};

/// Fitted per-access costs for the random path.
struct RandomFit {
  double tau_access = 0.0;
  double eps_access = 0.0;
};

struct FitResult {
  core::MachineParams machine;        ///< SP @ DRAM (capped or uncapped)
  std::optional<FlopFit> dp;          ///< double precision flops
  std::optional<LevelFit> l1;
  std::optional<LevelFit> l2;
  std::optional<RandomFit> random;

  ModelKind kind = ModelKind::Capped;
  double rss = 0.0;                   ///< DRAM/SP residual sum of squares
  std::size_t observations = 0;       ///< DRAM/SP points used
  bool converged = false;

  /// R^2 of log-performance predictions over the DRAM/SP sweep.
  double r_squared_perf = 0.0;
};

/// Fits the DRAM/SP machine (and, where data exists, DP, L1, L2, random)
/// from a platform's suite. Throws std::invalid_argument on insufficient
/// data.
[[nodiscard]] FitResult fit_machine(const microbench::SuiteData& data,
                                    const FitOptions& options = {});

/// Fits only from a flat span of observations (e.g. data loaded from CSV
/// by the fit_from_csv example). DRAM-level streaming points only.
[[nodiscard]] FitResult fit_observations(
    std::span<const microbench::Observation> obs,
    const FitOptions& options = {});

}  // namespace archline::fit
