#include "fit/bootstrap_fit.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace archline::fit {

std::array<double, 6> FitConfidence::relative_halfwidths() const {
  const auto rel = [](const stats::BootstrapInterval& ci) {
    return ci.estimate != 0.0 ? 0.5 * (ci.hi - ci.lo) / ci.estimate : 0.0;
  };
  return {rel(tau_flop), rel(eps_flop), rel(tau_mem),
          rel(eps_mem),  rel(pi1),      rel(delta_pi)};
}

FitConfidence bootstrap_fit(std::span<const microbench::Observation> obs,
                            const BootstrapFitOptions& options) {
  if (options.replicates < 8)
    throw std::invalid_argument("bootstrap_fit: need >= 8 replicates");
  if (!(options.confidence > 0.0 && options.confidence < 1.0))
    throw std::invalid_argument("bootstrap_fit: bad confidence");

  FitConfidence out;
  out.point = fit_observations(obs, options.fit);
  out.replicates = options.replicates;

  std::array<std::vector<double>, 6> samples;
  for (auto& s : samples)
    s.reserve(static_cast<std::size_t>(options.replicates));

  stats::Rng rng(options.seed);
  std::vector<microbench::Observation> resample(obs.size());
  int produced = 0;
  int attempts = 0;
  while (produced < options.replicates &&
         attempts < options.replicates * 3) {
    ++attempts;
    for (auto& o : resample) o = obs[rng.below(obs.size())];
    try {
      const FitResult r = fit_observations(resample, options.fit);
      samples[0].push_back(r.machine.tau_flop);
      samples[1].push_back(r.machine.eps_flop);
      samples[2].push_back(r.machine.tau_mem);
      samples[3].push_back(r.machine.eps_mem);
      samples[4].push_back(r.machine.pi1);
      samples[5].push_back(r.machine.delta_pi);
      ++produced;
    } catch (const std::exception&) {
      // A degenerate resample (e.g. all points from one intensity) can
      // fail to fit; draw again.
    }
  }
  if (produced < options.replicates / 2)
    throw std::runtime_error("bootstrap_fit: too many failed replicates");

  const double alpha = 1.0 - options.confidence;
  const auto interval = [&](const std::vector<double>& xs,
                            double estimate) {
    stats::BootstrapInterval ci;
    ci.lo = stats::quantile(xs, alpha / 2.0);
    ci.hi = stats::quantile(xs, 1.0 - alpha / 2.0);
    ci.estimate = estimate;
    return ci;
  };
  out.tau_flop = interval(samples[0], out.point.machine.tau_flop);
  out.eps_flop = interval(samples[1], out.point.machine.eps_flop);
  out.tau_mem = interval(samples[2], out.point.machine.tau_mem);
  out.eps_mem = interval(samples[3], out.point.machine.eps_mem);
  out.pi1 = interval(samples[4], out.point.machine.pi1);
  out.delta_pi = interval(samples[5], out.point.machine.delta_pi);
  return out;
}

}  // namespace archline::fit
