#include "fit/levmar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fit/linalg.hpp"

namespace archline::fit {

namespace {

/// Central-difference Jacobian of r at x.
Mat jacobian(const ResidualFn& r, std::span<const double> x,
             std::size_t m, double rel_step) {
  const std::size_t n = x.size();
  Mat j(m, n);
  std::vector<double> xp(x.begin(), x.end());
  for (std::size_t c = 0; c < n; ++c) {
    const double h = rel_step * std::max(1.0, std::abs(x[c]));
    const double saved = xp[c];
    xp[c] = saved + h;
    const std::vector<double> rp = r(xp);
    xp[c] = saved - h;
    const std::vector<double> rm = r(xp);
    xp[c] = saved;
    if (rp.size() != m || rm.size() != m)
      throw std::runtime_error("levmar: residual size changed");
    for (std::size_t i = 0; i < m; ++i)
      j(i, c) = (rp[i] - rm[i]) / (2.0 * h);
  }
  return j;
}

}  // namespace

LevmarResult levenberg_marquardt(const ResidualFn& residuals,
                                 std::span<const double> x0,
                                 const LevmarOptions& options) {
  if (x0.empty()) throw std::invalid_argument("levmar: empty start point");
  std::vector<double> x(x0.begin(), x0.end());
  std::vector<double> r = residuals(x);
  if (r.empty()) throw std::invalid_argument("levmar: no residuals");
  const std::size_t m = r.size();
  double rss = norm2(r);
  double lambda = options.initial_lambda;

  LevmarResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    const Mat j = jacobian(residuals, x, m, options.fd_step);
    const Mat jtj = gram(j);
    std::vector<double> jtr = matvec_transposed(j, r);

    // Gradient convergence: ||J^T r||_inf.
    double grad_inf = 0.0;
    for (const double g : jtr) grad_inf = std::max(grad_inf, std::abs(g));
    if (grad_inf < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Try damped steps, raising lambda until one decreases the RSS.
    bool stepped = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      Mat damped = jtj;
      for (std::size_t i = 0; i < damped.rows(); ++i)
        damped(i, i) += lambda * std::max(jtj(i, i), 1e-12);
      std::vector<double> step;
      try {
        // Solve (J^T J + lambda diag) step = -J^T r.
        std::vector<double> neg(jtr.size());
        for (std::size_t i = 0; i < jtr.size(); ++i) neg[i] = -jtr[i];
        step = cholesky_solve(damped, neg);
      } catch (const std::runtime_error&) {
        lambda *= options.lambda_up;
        continue;
      }

      std::vector<double> x_new(x.size());
      double step_rel = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_new[i] = x[i] + step[i];
        step_rel = std::max(step_rel, std::abs(step[i]) /
                                          std::max(1.0, std::abs(x[i])));
      }
      const std::vector<double> r_new = residuals(x_new);
      const double rss_new = norm2(r_new);
      if (std::isfinite(rss_new) && rss_new < rss) {
        x = std::move(x_new);
        r = r_new;
        rss = rss_new;
        lambda = std::max(lambda * options.lambda_down, 1e-14);
        stepped = true;
        if (step_rel < options.step_tolerance) result.converged = true;
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!stepped || result.converged) {
      if (!stepped) result.converged = true;  // no descent direction left
      break;
    }
  }

  result.x = std::move(x);
  result.rss = rss;
  return result;
}

}  // namespace archline::fit
