#pragma once
// Fitting the droop extension (core::DroopModel) to measurements.

#include <span>

#include "core/droop_model.hpp"
#include "microbench/suite.hpp"

namespace archline::fit {

/// Squared relative time/energy residuals of a droop model over the
/// observations (same residual convention as the base fit).
[[nodiscard]] double droop_sum_squared_residuals(
    const core::DroopModel& model,
    std::span<const microbench::Observation> obs);

/// Fits eta >= 0 by golden-section search, holding `machine` fixed at an
/// already-fitted base model. Returns the best eta in [0, eta_max].
[[nodiscard]] double fit_droop_eta(
    const core::MachineParams& machine,
    std::span<const microbench::Observation> obs, double eta_max = 1.0);

}  // namespace archline::fit
