#pragma once
// Small dense linear algebra for the fitting substrate.
//
// Levenberg-Marquardt needs only J^T J accumulation and a symmetric
// positive-definite solve of a handful of unknowns (<= 6 model
// parameters), so a compact row-major matrix with Cholesky is all we
// carry — implemented from scratch, no external dependencies.

#include <cstddef>
#include <span>
#include <vector>

namespace archline::fit {

/// Dense row-major matrix of doubles.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static Mat identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x. Dimensions must agree.
[[nodiscard]] std::vector<double> matvec(const Mat& a,
                                         std::span<const double> x);

/// A^T A (Gram matrix).
[[nodiscard]] Mat gram(const Mat& a);

/// A^T y.
[[nodiscard]] std::vector<double> matvec_transposed(const Mat& a,
                                                    std::span<const double> y);

/// Solves S x = b for symmetric positive-definite S via Cholesky.
/// Throws std::runtime_error if S is not positive definite.
[[nodiscard]] std::vector<double> cholesky_solve(const Mat& s,
                                                 std::span<const double> b);

/// Euclidean norm and squared norm.
[[nodiscard]] double norm2(std::span<const double> x) noexcept;
[[nodiscard]] double norm(std::span<const double> x) noexcept;

}  // namespace archline::fit
