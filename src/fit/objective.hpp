#pragma once
// Residual functions connecting the roofline model to measured
// observations, plus the parameter packing used by the optimizers.
//
// Parameters are optimized in log space: every model constant is a
// positive physical quantity, and log-parameterization both enforces that
// and equalizes scales across parameters that differ by 12 orders of
// magnitude (tau_flop in ps vs pi1 in watts).

#include <span>
#include <vector>

#include "core/machine_params.hpp"
#include "microbench/suite.hpp"

namespace archline::fit {

/// Which model the residuals evaluate (paper Fig. 4's comparison).
enum class ModelKind {
  Capped,    ///< this paper: eq. (3) with the delta_pi term
  Uncapped,  ///< prior model: T = max(W tau_flop, Q tau_mem)
};

/// Number of packed parameters (6 capped, 5 uncapped).
[[nodiscard]] std::size_t parameter_count(ModelKind kind) noexcept;

/// Packs machine parameters into log-space optimizer coordinates
/// [log tau_flop, log eps_flop, log tau_mem, log eps_mem, log pi1,
///  (log delta_pi)].
[[nodiscard]] std::vector<double> pack(const core::MachineParams& m,
                                       ModelKind kind);

/// Inverse of pack(). For Uncapped, delta_pi becomes core::kUncapped.
[[nodiscard]] core::MachineParams unpack(std::span<const double> x,
                                         ModelKind kind);

/// Relative residuals of predicted vs measured time, energy, and average
/// power, three per observation: (T/t - 1, E/e - 1, P/p - 1).
///
/// Power is E/T and thus analytically redundant, but including it weights
/// the fit toward reproducing the power curve's *shape* — which is what
/// separates a flat cap plateau from a rising memory-bound segment on
/// platforms where pi_mem ~ delta_pi (e.g. the APU GPU) and pins delta_pi
/// near the observed peak power when the cap barely binds (Xeon Phi).
[[nodiscard]] std::vector<double> time_energy_residuals(
    const core::MachineParams& m,
    std::span<const microbench::Observation> obs);

/// Sum of squared time_energy_residuals — the scalar objective for
/// Nelder-Mead seeding.
[[nodiscard]] double sum_squared_residuals(
    const core::MachineParams& m,
    std::span<const microbench::Observation> obs);

/// Per-observation relative prediction errors (model - measured)/measured
/// for the three quantities of interest — the raw material of Fig. 4.
struct PredictionErrors {
  std::vector<double> time;
  std::vector<double> energy;
  std::vector<double> power;
  std::vector<double> performance;  ///< flop/s errors (= -time/(1+time))
};

[[nodiscard]] PredictionErrors prediction_errors(
    const core::MachineParams& m,
    std::span<const microbench::Observation> obs);

/// Heuristic starting point for the DRAM fit, derived from the sweep's
/// extremes (bandwidth-bound and compute-bound ends).
[[nodiscard]] core::MachineParams initial_guess(
    std::span<const microbench::Observation> obs, ModelKind kind);

/// Directly measured sustained throughputs ("sustained peak" in the
/// paper's terms): the best observed flop rate and byte rate over the
/// sweep. The regression fixes tau_flop/tau_mem to these — per-op times
/// are NOT identifiable by regression alone on machines whose power cap
/// rides at or below the engine's demand (pi_mem >~ delta_pi on the
/// NUC CPU, APU GPU, ...), where the rate limit never binds.
struct MeasuredThroughput {
  double tau_flop = 0.0;  ///< s/flop from the fastest compute-bound point
  double tau_mem = 0.0;   ///< s/B from the fastest bandwidth-bound point
};

[[nodiscard]] MeasuredThroughput measure_throughput(
    std::span<const microbench::Observation> obs);

}  // namespace archline::fit
