#include "fit/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace archline::fit {

NelderMeadResult nelder_mead(const ObjectiveFn& f, std::span<const double> x0,
                             const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");

  // Adaptive parameters (Gao & Han): improve high-dimensional behaviour.
  const double dn = static_cast<double>(n);
  const double alpha = 1.0;               // reflection
  const double beta = 1.0 + 2.0 / dn;     // expansion
  const double gamma = 0.75 - 0.5 / dn;   // contraction
  const double delta = 1.0 - 1.0 / dn;    // shrink

  NelderMeadResult result;

  std::vector<std::vector<double>> simplex;
  std::vector<double> fvals;
  simplex.reserve(n + 1);
  fvals.reserve(n + 1);

  const auto eval = [&](std::span<const double> x) {
    ++result.evaluations;
    const double v = f(x);
    return std::isfinite(v) ? v : 1e300;
  };

  simplex.emplace_back(x0.begin(), x0.end());
  fvals.push_back(eval(simplex.back()));
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(x0.begin(), x0.end());
    const double step = options.initial_step *
                        std::max(1.0, std::abs(p[i]));
    p[i] += step;
    simplex.push_back(std::move(p));
    fvals.push_back(eval(simplex.back()));
  }

  std::vector<std::size_t> order(n + 1);

  while (result.evaluations < options.max_evaluations) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&fvals](std::size_t a,
                                                   std::size_t b) {
      return fvals[a] < fvals[b];
    });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    // Convergence: f-spread and simplex diameter.
    const double f_spread = fvals[worst] - fvals[best];
    double diameter = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      diameter = std::max(diameter, std::abs(simplex[worst][i] -
                                             simplex[best][i]));
    if (f_spread < options.f_tolerance && diameter < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v <= n; ++v) {
      if (v == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v][i];
    }
    for (double& c : centroid) c /= dn;

    const auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (std::size_t i = 0; i < n; ++i)
        p[i] = centroid[i] + coef * (centroid[i] - simplex[worst][i]);
      return p;
    };

    std::vector<double> reflected = blend(alpha);
    const double f_reflected = eval(reflected);

    if (f_reflected < fvals[best]) {
      std::vector<double> expanded = blend(alpha * beta);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = std::move(expanded);
        fvals[worst] = f_expanded;
      } else {
        simplex[worst] = std::move(reflected);
        fvals[worst] = f_reflected;
      }
    } else if (f_reflected < fvals[second_worst]) {
      simplex[worst] = std::move(reflected);
      fvals[worst] = f_reflected;
    } else {
      // Contraction: outside if the reflected point improved the worst.
      const bool outside = f_reflected < fvals[worst];
      std::vector<double> contracted =
          blend(outside ? alpha * gamma : -gamma);
      const double f_contracted = eval(contracted);
      const double reference = outside ? f_reflected : fvals[worst];
      if (f_contracted < reference) {
        simplex[worst] = std::move(contracted);
        fvals[worst] = f_contracted;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 0; v <= n; ++v) {
          if (v == best) continue;
          for (std::size_t i = 0; i < n; ++i)
            simplex[v][i] = simplex[best][i] +
                            delta * (simplex[v][i] - simplex[best][i]);
          fvals[v] = eval(simplex[v]);
        }
      }
    }
  }

  const auto best_it = std::min_element(fvals.begin(), fvals.end());
  const auto best_idx =
      static_cast<std::size_t>(std::distance(fvals.begin(), best_it));
  result.x = simplex[best_idx];
  result.fx = fvals[best_idx];
  return result;
}

}  // namespace archline::fit
