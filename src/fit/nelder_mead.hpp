#pragma once
// Nelder-Mead derivative-free simplex minimizer.
//
// Used to seed the Levenberg-Marquardt polish in model_fit: the roofline
// objective has max() kinks (regime boundaries) where gradients are
// undefined, which NM tolerates and LM does not. Standard adaptive
// parameters (Gao & Han 2012) for robustness in up to ~8 dimensions.

#include <functional>
#include <span>
#include <vector>

namespace archline::fit {

using ObjectiveFn = std::function<double(std::span<const double>)>;

struct NelderMeadOptions {
  int max_evaluations = 20000;
  double f_tolerance = 1e-12;  ///< stop when simplex f-spread drops below
  double x_tolerance = 1e-12;  ///< ... or simplex diameter does
  double initial_step = 0.25;  ///< per-coordinate initial simplex offset
};

struct NelderMeadResult {
  std::vector<double> x;     ///< best point found
  double fx = 0.0;           ///< objective at best point
  int evaluations = 0;
  bool converged = false;
};

/// Minimizes `f` starting from `x0`. Throws std::invalid_argument on an
/// empty start point.
[[nodiscard]] NelderMeadResult nelder_mead(const ObjectiveFn& f,
                                           std::span<const double> x0,
                                           const NelderMeadOptions& options =
                                               {});

}  // namespace archline::fit
