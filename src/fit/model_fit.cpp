#include "fit/model_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/roofline.hpp"
#include "fit/levmar.hpp"
#include "fit/nelder_mead.hpp"
#include "stats/descriptive.hpp"

namespace archline::fit {

namespace {

/// Optimizes the DRAM machine's energy/power constants against
/// observations, with the per-op times fixed to the directly measured
/// sustained throughputs (the paper's "sustained peak" values, Table I
/// parentheticals).
///
/// Rationale: tau_flop/tau_mem are not identifiable by regression alone —
/// on machines whose cap rides at or below an engine's demand
/// (pi_mem >~ delta_pi), the rate limit never binds and any faster tau
/// fits equally well. The remaining four (capped) or three (uncapped)
/// log-space parameters are searched multi-start NM -> LM: the objective
/// still has shallow local minima where a mildly binding cap is absorbed
/// into inflated energies, so the search restarts from several delta_pi /
/// pi1 perturbations and keeps the lowest residual.
core::MachineParams optimize_machine(
    std::span<const microbench::Observation> obs, ModelKind kind,
    const core::MachineParams& seed, const FitOptions& opt, double& rss_out,
    bool& converged_out) {
  const MeasuredThroughput taus = measure_throughput(obs);
  const bool capped = kind == ModelKind::Capped;

  // x = log [eps_flop, eps_mem, pi1, (delta_pi)]
  const auto decode = [&](std::span<const double> x) {
    core::MachineParams m;
    m.tau_flop = taus.tau_flop;
    m.tau_mem = taus.tau_mem;
    m.eps_flop = std::exp(x[0]);
    m.eps_mem = std::exp(x[1]);
    m.pi1 = std::exp(x[2]);
    m.delta_pi = capped ? std::exp(x[3]) : core::kUncapped;
    return m;
  };
  const auto encode = [&](const core::MachineParams& m) {
    std::vector<double> x = {std::log(m.eps_flop), std::log(m.eps_mem),
                             std::log(std::max(m.pi1, 1e-6))};
    if (capped) x.push_back(std::log(m.delta_pi));
    return x;
  };
  const auto residual_fn = [&](std::span<const double> x) {
    const core::MachineParams m = decode(x);
    std::vector<double> r = time_energy_residuals(m, obs);
    if (opt.idle_watts_hint > 0.0)
      r.push_back(opt.idle_weight * (m.pi1 / opt.idle_watts_hint - 1.0));
    if (capped && opt.max_watts_hint > 0.0)
      r.push_back(opt.max_watts_weight *
                  (m.max_power() / opt.max_watts_hint - 1.0));
    return r;
  };
  const auto scalar_objective = [&](std::span<const double> x) {
    double acc = 0.0;
    for (const double v : residual_fn(x)) acc += v * v;
    return acc;
  };

  // Seed construction. delta_pi has zero objective gradient once it
  // exceeds the fitted engines' combined demand (the cap stops binding
  // anywhere), so a start inside the right basin is essential: the direct
  // estimate max_watts - idle_watts is the cap level wherever the cap
  // binds at all, exactly the pi1 + delta_pi decomposition of the paper's
  // Fig. 5 annotations.
  core::MachineParams anchored = seed;
  if (opt.idle_watts_hint > 0.0) anchored.pi1 = opt.idle_watts_hint;
  if (capped && opt.max_watts_hint > opt.idle_watts_hint &&
      opt.idle_watts_hint > 0.0)
    anchored.delta_pi = opt.max_watts_hint - opt.idle_watts_hint;

  std::vector<core::MachineParams> seeds;
  seeds.push_back(anchored);
  if (capped) {
    for (const double cap_scale : {0.7, 1.4}) {
      core::MachineParams s = anchored;
      s.delta_pi = anchored.delta_pi * cap_scale;
      seeds.push_back(s);
    }
    seeds.push_back(seed);
    core::MachineParams s = seed;
    s.delta_pi = seed.delta_pi * 0.5;
    seeds.push_back(s);
  } else {
    core::MachineParams s = anchored;
    s.pi1 = anchored.pi1 * 1.3;
    seeds.push_back(s);
    seeds.push_back(seed);
  }

  double best_rss = std::numeric_limits<double>::infinity();
  std::vector<double> best_x;
  bool best_converged = false;
  for (const core::MachineParams& start : seeds) {
    NelderMeadOptions nm_opt;
    nm_opt.max_evaluations =
        opt.nm_evaluations / static_cast<int>(seeds.size());
    nm_opt.initial_step = 0.35;
    const NelderMeadResult nm =
        nelder_mead(scalar_objective, encode(start), nm_opt);

    LevmarOptions lm_opt;
    lm_opt.max_iterations = opt.lm_iterations;
    const LevmarResult lm = levenberg_marquardt(residual_fn, nm.x, lm_opt);
    if (lm.rss < best_rss) {
      best_rss = lm.rss;
      best_x = lm.x;
      best_converged = lm.converged || nm.converged;
    }
  }

  rss_out = best_rss;
  converged_out = best_converged;
  return decode(best_x);
}

/// Fits a 2-parameter memory side (tau_byte, eps_byte) holding the flop
/// side, pi1 and delta_pi fixed at the DRAM fit's values.
LevelFit fit_level(std::span<const microbench::Observation> obs,
                   const core::MachineParams& base, ModelKind kind,
                   const FitOptions& opt) {
  if (obs.size() < 2)
    throw std::invalid_argument("fit_level: need >= 2 observations");

  // Seed from the fastest per-byte point and a crude energy split.
  double tau0 = std::numeric_limits<double>::infinity();
  for (const microbench::Observation& o : obs)
    if (o.kernel.bytes > 0.0)
      tau0 = std::min(tau0, o.seconds / o.kernel.bytes);
  const microbench::Observation& lo =
      *std::min_element(obs.begin(), obs.end(),
                        [](const auto& a, const auto& b) {
                          return a.intensity() < b.intensity();
                        });
  double eps0 = (lo.joules - base.pi1 * lo.seconds -
                 base.eps_flop * lo.kernel.flops) /
                std::max(lo.kernel.bytes, 1.0);
  eps0 = std::max(eps0, 1e-15);

  const auto decode = [&](std::span<const double> x) {
    core::MachineParams m = base;
    m.tau_mem = std::exp(x[0]);
    m.eps_mem = std::exp(x[1]);
    if (kind == ModelKind::Uncapped) m.delta_pi = core::kUncapped;
    return m;
  };
  const auto residual_fn = [&](std::span<const double> x) {
    return time_energy_residuals(decode(x), obs);
  };
  const std::vector<double> x0 = {std::log(tau0), std::log(eps0)};

  // Two smooth-ish parameters: NM then LM, both cheap.
  const auto scalar = [&](std::span<const double> x) {
    return sum_squared_residuals(decode(x), obs);
  };
  NelderMeadOptions nm_opt;
  nm_opt.max_evaluations = opt.nm_evaluations / 4;
  const NelderMeadResult nm = nelder_mead(scalar, x0, nm_opt);
  LevmarOptions lm_opt;
  lm_opt.max_iterations = opt.lm_iterations;
  const LevmarResult lm = levenberg_marquardt(residual_fn, nm.x, lm_opt);
  return LevelFit{.tau_byte = std::exp(lm.x[0]),
                  .eps_byte = std::exp(lm.x[1])};
}

/// Closed-form random-access fit: tau from the access rate, eps from the
/// energy after subtracting the constant-power charge.
RandomFit fit_random(std::span<const microbench::Observation> obs,
                     const core::MachineParams& base) {
  if (obs.empty())
    throw std::invalid_argument("fit_random: no observations");
  std::vector<double> taus;
  std::vector<double> epss;
  for (const microbench::Observation& o : obs) {
    if (!(o.kernel.accesses > 0.0)) continue;
    taus.push_back(o.seconds / o.kernel.accesses);
    epss.push_back(
        std::max((o.joules - base.pi1 * o.seconds) / o.kernel.accesses,
                 1e-15));
  }
  if (taus.empty())
    throw std::invalid_argument("fit_random: no access counts");
  return RandomFit{.tau_access = stats::median(taus),
                   .eps_access = stats::median(epss)};
}

/// Fits a second precision's flop costs holding everything else fixed.
FlopFit fit_dp(std::span<const microbench::Observation> obs,
               const core::MachineParams& base, ModelKind kind,
               const FitOptions& opt) {
  if (obs.size() < 2)
    throw std::invalid_argument("fit_dp: need >= 2 observations");
  double tau0 = std::numeric_limits<double>::infinity();
  for (const microbench::Observation& o : obs)
    if (o.kernel.flops > 0.0)
      tau0 = std::min(tau0, o.seconds / o.kernel.flops);
  const microbench::Observation& hi =
      *std::max_element(obs.begin(), obs.end(),
                        [](const auto& a, const auto& b) {
                          return a.intensity() < b.intensity();
                        });
  double eps0 = (hi.joules - base.pi1 * hi.seconds) /
                std::max(hi.kernel.flops, 1.0);
  eps0 = std::max(eps0, 1e-15);

  const auto decode = [&](std::span<const double> x) {
    core::MachineParams m = base;
    m.tau_flop = std::exp(x[0]);
    m.eps_flop = std::exp(x[1]);
    if (kind == ModelKind::Uncapped) m.delta_pi = core::kUncapped;
    return m;
  };
  const auto residual_fn = [&](std::span<const double> x) {
    return time_energy_residuals(decode(x), obs);
  };
  const auto scalar = [&](std::span<const double> x) {
    return sum_squared_residuals(decode(x), obs);
  };
  const std::vector<double> x0 = {std::log(tau0), std::log(eps0)};
  NelderMeadOptions nm_opt;
  nm_opt.max_evaluations = opt.nm_evaluations / 4;
  const NelderMeadResult nm = nelder_mead(scalar, x0, nm_opt);
  LevmarOptions lm_opt;
  lm_opt.max_iterations = opt.lm_iterations;
  const LevmarResult lm = levenberg_marquardt(residual_fn, nm.x, lm_opt);
  return FlopFit{.tau_flop = std::exp(lm.x[0]),
                 .eps_flop = std::exp(lm.x[1])};
}

/// R^2 of log(performance) predictions over the sweep. (Log-time would be
/// nearly constant by construction — kernels are sized for equal duration —
/// so performance is the quantity with explanatory variance.)
double r_squared_log_perf(const core::MachineParams& m,
                          std::span<const microbench::Observation> obs) {
  std::vector<double> actual;
  std::vector<double> resid;
  actual.reserve(obs.size());
  for (const microbench::Observation& o : obs) {
    if (!(o.kernel.flops > 0.0)) continue;
    const double t_model = core::time(m, o.kernel.workload());
    const double log_perf_meas = std::log(o.kernel.flops / o.seconds);
    const double log_perf_model = std::log(o.kernel.flops / t_model);
    actual.push_back(log_perf_meas);
    resid.push_back(log_perf_meas - log_perf_model);
  }
  const double mu = stats::mean(actual);
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_tot += (actual[i] - mu) * (actual[i] - mu);
    ss_res += resid[i] * resid[i];
  }
  return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
}

}  // namespace

namespace {

/// Per-observation worst relative residual under a fitted machine.
std::vector<double> worst_residuals(
    const core::MachineParams& m,
    std::span<const microbench::Observation> obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const microbench::Observation& o : obs) {
    const core::Workload w = o.kernel.workload();
    const double rt = std::abs(core::time(m, w) / o.seconds - 1.0);
    const double re = std::abs(core::energy(m, w) / o.joules - 1.0);
    out.push_back(std::max(rt, re));
  }
  return out;
}

}  // namespace

FitResult fit_observations(std::span<const microbench::Observation> obs,
                           const FitOptions& options) {
  if (obs.size() < 6)
    throw std::invalid_argument("fit_observations: need >= 6 observations");
  FitResult result;
  result.kind = options.kind;
  result.observations = obs.size();

  const core::MachineParams seed = initial_guess(obs, options.kind);
  result.machine = optimize_machine(obs, options.kind, seed, options,
                                    result.rss, result.converged);

  // Optional robust passes: iteratively drop gross outliers relative to
  // the current fit's residual scale and refit on the survivors. Multiple
  // rounds matter — severe outliers wreck the first fit badly enough to
  // inflate every residual, so trimming converges stepwise.
  if (options.outlier_mad_threshold > 0.0) {
    std::vector<microbench::Observation> kept(obs.begin(), obs.end());
    for (int round = 0; round < 3 && kept.size() >= 8; ++round) {
      const std::vector<double> resid =
          worst_residuals(result.machine, kept);
      const double scale = std::max(stats::median(resid), 1e-6);
      // Severe outliers can wreck the fit so badly that every residual
      // inflates and the max/median ratio stays small; the 50% absolute
      // ceiling catches that regime (legitimate residuals in this
      // pipeline are percent-level), while the relative term and the 5%
      // floor protect clean data.
      const double cutoff = std::max(
          std::min(options.outlier_mad_threshold * scale, 0.5), 0.05);
      std::vector<microbench::Observation> survivors;
      survivors.reserve(kept.size());
      for (std::size_t i = 0; i < kept.size(); ++i)
        if (resid[i] <= cutoff) survivors.push_back(kept[i]);
      if (survivors.size() == kept.size() || survivors.size() < 6) break;
      kept = std::move(survivors);
      const core::MachineParams reseed = initial_guess(kept, options.kind);
      result.machine = optimize_machine(kept, options.kind, reseed,
                                        options, result.rss,
                                        result.converged);
    }
    result.observations = kept.size();
    result.machine.validate("fit_observations(robust)");
    result.r_squared_perf = r_squared_log_perf(result.machine, kept);
    return result;
  }

  result.machine.validate("fit_observations");
  result.r_squared_perf = r_squared_log_perf(result.machine, obs);
  return result;
}

FitResult fit_machine(const microbench::SuiteData& data,
                      const FitOptions& options) {
  FitOptions opt = options;
  if (opt.idle_watts_hint == 0.0) opt.idle_watts_hint = data.idle_watts;
  if (opt.max_watts_hint == 0.0)
    for (const microbench::Observation& o : data.dram_sp)
      opt.max_watts_hint = std::max(opt.max_watts_hint, o.watts);
  FitResult result = fit_observations(data.dram_sp, opt);
  if (!data.dram_dp.empty())
    result.dp = fit_dp(data.dram_dp, result.machine, opt.kind, opt);
  if (!data.l1.empty())
    result.l1 = fit_level(data.l1, result.machine, opt.kind, opt);
  if (!data.l2.empty())
    result.l2 = fit_level(data.l2, result.machine, opt.kind, opt);
  if (!data.random.empty())
    result.random = fit_random(data.random, result.machine);
  return result;
}

}  // namespace archline::fit
