#include "fit/online/snapshot.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/operating_point.hpp"
#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"

namespace archline::fit::online {

namespace {

/// Blend the solver's answer with the live RLS estimates: the solver is
/// authoritative for the time constants and the cap (the max() kink and
/// delta_pi are exactly what RLS cannot express), the RLS filter is
/// fresher for the linear energy constants. RLS values that are not yet
/// usable (early noise can drive an estimate <= 0) fall back to the
/// solver's.
core::MachineParams blend(const core::MachineParams& solved,
                          const RlsEstimate& rls) {
  core::MachineParams m = solved;
  const auto usable = [](double v) {
    return v > 0.0 && std::isfinite(v);
  };
  if (usable(rls.eps_flop)) m.eps_flop = rls.eps_flop;
  if (usable(rls.eps_mem)) m.eps_mem = rls.eps_mem;
  if (usable(rls.pi1)) m.pi1 = rls.pi1;
  return m;
}

}  // namespace

OnlineStore::OnlineStore(OnlineFitOptions options)
    : options_(options) {
  if (!(options_.forgetting > 0.0) || options_.forgetting > 1.0)
    options_.forgetting = 1.0;
  if (options_.window_capacity == 0) options_.window_capacity = 1;
  for (const platforms::PlatformSpec& spec : platforms::all_platforms())
    platforms_.push_back(
        std::make_unique<PlatformState>(std::string(spec.name), options_));
}

OnlineStore::PlatformState* OnlineStore::find(
    std::string_view platform) const noexcept {
  // Linear scan over a fixed table of < 20 names — same reasoning as
  // the endpoint registry.
  for (const auto& p : platforms_)
    if (p->name == platform) return p.get();
  return nullptr;
}

bool OnlineStore::known(std::string_view platform) const noexcept {
  return find(platform) != nullptr;
}

OnlineStore::PlatformRef OnlineStore::find_platform(
    std::string_view platform) const noexcept {
  return PlatformRef(find(platform));
}

std::uint64_t OnlineStore::observe(std::string_view platform,
                                   std::span<const Sample> batch) {
  return observe(find_platform(platform), batch);
}

std::uint64_t OnlineStore::observe(PlatformRef platform,
                                   std::span<const Sample> batch) {
  PlatformState* p = platform.state_;
  if (!p) return 0;
  std::lock_guard<std::mutex> lock(p->ingest_mutex);
  for (const Sample& s : batch) {
    p->rls.observe(s);
    if (p->window.size() < options_.window_capacity) {
      p->window.push_back(s);
    } else {
      p->window[p->window_next] = s;
      p->window_next = (p->window_next + 1) % options_.window_capacity;
    }
  }
  p->total += batch.size();
  observations_total_.fetch_add(batch.size(), std::memory_order_relaxed);
  return p->total;
}

std::shared_ptr<const ParamSnapshot> OnlineStore::published(
    std::string_view platform) const {
  const PlatformState* p = find(platform);
  if (!p) return nullptr;
  std::lock_guard<std::mutex> lock(p->snapshot_mutex);
  return p->snapshot;
}

std::uint64_t OnlineStore::observations(std::string_view platform) const {
  const PlatformState* p = find(platform);
  if (!p) return 0;
  std::lock_guard<std::mutex> lock(p->ingest_mutex);
  return p->total;
}

std::vector<std::string_view> OnlineStore::dirty_platforms() const {
  std::vector<std::string_view> out;
  for (const auto& p : platforms_) {
    std::lock_guard<std::mutex> lock(p->ingest_mutex);
    if (p->total > p->published_total &&
        p->window.size() >= options_.min_resolve_observations)
      out.push_back(p->name);
  }
  return out;
}

std::shared_ptr<const ParamSnapshot> OnlineStore::resolve(
    std::string_view platform) {
  PlatformState* p = find(platform);
  if (!p) return nullptr;

  // Copy the window and the filter state under the ingest lock; the
  // expensive solve below runs unlocked so `observe` stays O(1) even
  // while a re-solve is in flight.
  std::vector<Sample> window;
  RlsEstimate rls;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(p->ingest_mutex);
    window = p->window;
    rls = p->rls.estimate();
    total = p->total;
    p->published_total = p->total;
  }
  if (window.size() < options_.min_resolve_observations) return nullptr;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<microbench::Observation> obs;
  obs.reserve(window.size());
  char label[64];
  for (const Sample& s : window) {
    microbench::Observation o;
    o.kernel.flops = s.flops;
    o.kernel.bytes = s.bytes;
    // measure_throughput() averages repeats of the same kernel label
    // before taking the sustained-peak min. Streamed tuples carry no
    // label, so derive one from the workload shape: repeats of the same
    // (W, Q) de-noise each other while distinct workloads stay distinct
    // — an unlabeled window would collapse into ONE averaged
    // pseudo-kernel and turn tau into the sweep mean instead of the
    // observed peak.
    std::snprintf(label, sizeof label, "%.9g/%.9g", s.flops, s.bytes);
    o.kernel.label = label;
    o.seconds = s.seconds;
    o.joules = s.joules;
    o.watts = s.joules / s.seconds;
    obs.push_back(std::move(o));
  }
  fit::FitOptions opt;
  opt.kind = ModelKind::Capped;
  opt.nm_evaluations = options_.nm_evaluations;
  opt.lm_iterations = options_.lm_iterations;
  const fit::FitResult solved = fit::fit_observations(obs, opt);

  auto snapshot = std::make_shared<ParamSnapshot>();
  snapshot->machine = blend(solved.machine, rls);
  snapshot->rls = rls;
  snapshot->observations = total;
  snapshot->resolved = true;
  snapshot->rss = solved.rss;
  snapshot->r_squared = solved.r_squared_perf;
  snapshot->converged = solved.converged;
  snapshot->window_observations = solved.observations;
  // Per-operating-point overlay: the learned machine applied across the
  // platform's DVFS ladder, so downstream policy recommendations are
  // steered by the live constants without per-request re-derivation.
  if (const platforms::PlatformSpec* spec =
          platforms::find_platform(p->name)) {
    snapshot->op_machines = core::machines_at_points(
        snapshot->machine, spec->operating_points.points);
  }

  // Publish: epoch under the pointer mutex, generation after — a reader
  // that sees the new generation may briefly still load the old
  // snapshot, which only costs one extra cache re-evaluation, never a
  // stale-served reply (the cache stores the generation observed BEFORE
  // evaluation, so such an entry is already stale on arrival).
  {
    std::lock_guard<std::mutex> lock(p->snapshot_mutex);
    snapshot->epoch = ++p->epoch;
    p->snapshot = snapshot;
  }
  generation_.fetch_add(1, std::memory_order_release);
  resolves_.fetch_add(1, std::memory_order_relaxed);
  last_resolve_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count(),
      std::memory_order_relaxed);
  return snapshot;
}

OnlineStoreStats OnlineStore::stats() const {
  OnlineStoreStats s;
  s.observations = observations_total_.load(std::memory_order_relaxed);
  s.resolves = resolves_.load(std::memory_order_relaxed);
  s.generation = generation_.load(std::memory_order_acquire);
  for (const auto& p : platforms_) {
    std::lock_guard<std::mutex> lock(p->snapshot_mutex);
    if (p->epoch > 0) ++s.platforms_fitted;
  }
  const std::int64_t ns = last_resolve_ns_.load(std::memory_order_relaxed);
  s.last_resolve_s = ns < 0 ? -1.0 : static_cast<double>(ns) * 1e-9;
  return s;
}

}  // namespace archline::fit::online
