#pragma once
// Per-platform online estimation state and its epoch-tagged publication.
//
// OnlineStore is the server's first mutable-state subsystem, so its
// concurrency contract is spelled out here:
//
//   * Ingest (`observe`) takes only the one platform's ingest mutex,
//     updates the RLS filter and the bounded re-solve window, and
//     returns — O(1) per tuple, never blocked by a running re-solve.
//   * Publication is an atomic snapshot swap: a re-solve builds a fresh
//     immutable ParamSnapshot off to the side (the expensive
//     Nelder-Mead + Levenberg-Marquardt work happens with NO ingest
//     lock held), then swaps it in under a pointer mutex held for the
//     duration of a shared_ptr assignment only. Readers (`params`,
//     `predict` overlay) copy the shared_ptr under that same pointer
//     mutex — nanoseconds — and then read the immutable snapshot
//     lock-free. Readers never contend with the ingest path.
//   * Every publication bumps the platform's epoch and the store's
//     global generation. The generation rides in response-cache entries
//     (serve/cache.hpp) so cached parameter-dependent replies miss
//     after a publish.
//
// The platform set is fixed at construction (the Table I platform_db
// names), so the name -> state map itself is immutable and needs no
// lock.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/machine_params.hpp"
#include "fit/online/rls.hpp"

namespace archline::fit::online {

/// Immutable published estimate for one platform. Everything a reader
/// needs is captured at publish time; fields never change after the
/// swap.
struct ParamSnapshot {
  core::MachineParams machine;  ///< blended current-best (SP @ DRAM)
  RlsEstimate rls;              ///< linear estimates + uncertainty
  std::uint64_t epoch = 0;      ///< per-platform publish ordinal (1-based)
  std::uint64_t observations = 0;  ///< tuples ingested at publish time
  /// True when the nonlinear re-solve contributed (tau_*, delta_pi from
  /// the solver); false would mean an RLS-only publish, which the store
  /// never does today.
  bool resolved = false;
  double rss = 0.0;
  double r_squared = 0.0;
  bool converged = false;
  std::size_t window_observations = 0;  ///< tuples the solver saw
  /// The learned machine pre-applied at every point of the platform's
  /// DVFS ladder (platform_db order; empty when the platform has no
  /// ladder). Built once at publish time so policy_advise reads its
  /// per-point machines lock-free from the snapshot instead of
  /// re-deriving them per request.
  std::vector<core::MachineParams> op_machines;
};

struct OnlineFitOptions {
  /// RLS forgetting factor lambda in (0, 1]; effective memory is
  /// ~1/(1-lambda) observations.
  double forgetting = 0.998;
  /// Bounded window of recent tuples kept per platform for the
  /// nonlinear re-solve (ring buffer; oldest overwritten).
  std::size_t window_capacity = 4096;
  /// A re-solve needs at least this many windowed tuples; below it,
  /// resolve() refuses (returns null) instead of fitting noise.
  std::size_t min_resolve_observations = 6;
  /// Solver iteration budget for the background re-solve — smaller than
  /// the offline default because it runs repeatedly.
  int nm_evaluations = 8000;
  int lm_iterations = 60;
};

/// Monitoring counters for the "stats" endpoint.
struct OnlineStoreStats {
  std::uint64_t observations = 0;  ///< tuples ingested, all platforms
  std::uint64_t resolves = 0;      ///< completed re-solves
  std::uint64_t generation = 0;    ///< global publish counter
  std::uint64_t platforms_fitted = 0;  ///< platforms with epoch >= 1
  /// Wall-clock duration of the most recent re-solve; negative until
  /// one has run.
  double last_resolve_s = -1.0;
};

class OnlineStore {
  struct PlatformState;

 public:
  /// Opaque pre-resolved platform handle: the name lookup done once.
  /// The ingest hot path resolves the request's platform name a single
  /// time (find_platform) and feeds the handle to observe(), instead of
  /// paying one scan to validate the name and a second inside the
  /// string-keyed observe(). Handles stay valid for the store's
  /// lifetime (the platform set is fixed at construction and state
  /// addresses are stable). A default-constructed / not-found handle is
  /// falsy; observing through it is a no-op.
  class PlatformRef {
   public:
    PlatformRef() = default;
    [[nodiscard]] explicit operator bool() const noexcept {
      return state_ != nullptr;
    }

   private:
    friend class OnlineStore;
    explicit PlatformRef(PlatformState* state) noexcept : state_(state) {}
    PlatformState* state_ = nullptr;
  };

  explicit OnlineStore(OnlineFitOptions options = {});

  OnlineStore(const OnlineStore&) = delete;
  OnlineStore& operator=(const OnlineStore&) = delete;

  /// True when `platform` is a Table I name (the fixed key set).
  [[nodiscard]] bool known(std::string_view platform) const noexcept;

  /// Resolves a platform name to its handle (falsy for unknown names).
  [[nodiscard]] PlatformRef find_platform(
      std::string_view platform) const noexcept;

  /// Ingests a batch: O(1) per tuple under the platform's ingest mutex.
  /// Unknown platforms are ignored (the serve layer validates first and
  /// raises unknown_platform). Returns the platform's new tuple total.
  std::uint64_t observe(std::string_view platform,
                        std::span<const Sample> batch);

  /// Handle form of observe() — no name scan. Falsy handles return 0.
  std::uint64_t observe(PlatformRef platform, std::span<const Sample> batch);

  /// The platform's current published snapshot; null before the first
  /// publish or for unknown platforms. Lock-free to read after the
  /// pointer copy.
  [[nodiscard]] std::shared_ptr<const ParamSnapshot> published(
      std::string_view platform) const;

  /// Synchronous re-solve + publish for one platform: copies the window
  /// under the ingest lock, runs the full §V pipeline unlocked, blends
  /// with the live RLS estimates, swaps the snapshot in, bumps the
  /// epoch and global generation. Returns the new snapshot, or null
  /// when the window holds fewer than min_resolve_observations tuples.
  /// Throws only what fit::fit_observations throws (degenerate data).
  std::shared_ptr<const ParamSnapshot> resolve(std::string_view platform);

  /// Tuples ingested for one platform so far (0 for unknown names).
  [[nodiscard]] std::uint64_t observations(std::string_view platform) const;

  /// Global publish counter: bumped by every successful resolve() on
  /// any platform. The response cache stores this with
  /// parameter-dependent entries and treats a mismatch as a miss.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Platforms with tuples ingested since their last publish — the
  /// background resolver's work list.
  [[nodiscard]] std::vector<std::string_view> dirty_platforms() const;

  [[nodiscard]] OnlineStoreStats stats() const;

  [[nodiscard]] const OnlineFitOptions& options() const noexcept {
    return options_;
  }

 private:
  struct PlatformState {
    std::string name;

    mutable std::mutex ingest_mutex;  ///< guards everything below
    RlsFilter rls;
    std::vector<Sample> window;  ///< ring buffer, capacity-bounded
    std::size_t window_next = 0;  ///< ring write cursor
    std::uint64_t total = 0;      ///< tuples ingested lifetime
    std::uint64_t published_total = 0;  ///< `total` at last publish

    mutable std::mutex snapshot_mutex;  ///< guards the pointer only
    std::shared_ptr<const ParamSnapshot> snapshot;
    std::uint64_t epoch = 0;

    explicit PlatformState(std::string n, const OnlineFitOptions& o)
        : name(std::move(n)), rls(o.forgetting) {}
  };

  [[nodiscard]] PlatformState* find(std::string_view platform) const noexcept;

  OnlineFitOptions options_;
  /// Fixed at construction; unique_ptr keeps PlatformState addresses
  /// stable (it holds mutexes).
  std::vector<std::unique_ptr<PlatformState>> platforms_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> observations_total_{0};
  std::atomic<std::uint64_t> resolves_{0};
  std::atomic<std::int64_t> last_resolve_ns_{-1};
};

}  // namespace archline::fit::online
