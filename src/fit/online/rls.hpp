#pragma once
// Recursive least-squares (RLS) with exponential forgetting over the
// LINEAR part of the energy-roofline model.
//
// For a streaming observation (W flops, Q bytes, t seconds, E joules),
// the energy equation (paper eq. 4) is exactly linear in the per-event
// energy constants:
//
//   E = W*eps_flop + Q*eps_mem + t*pi1
//
// i.e. y = x^T theta with x = (W, Q, t) and theta = (eps_flop, eps_mem,
// pi1). RLS maintains theta and its 3x3 inverse-information matrix P in
// O(1) arithmetic per observation — no history is kept — and the
// forgetting factor lambda < 1 exponentially down-weights old tuples so
// the filter tracks parameter drift (DVFS changes, thermal aging).
//
// The TIME side (eq. 1) is t = max(W*tau_flop, Q*tau_mem): a kink, not
// a linear form. The filter tracks tau_flop / tau_mem as forgetting
// sustained peaks (the reciprocal of the best observed flop/byte rate,
// decayed by lambda per observation so a slowdown is eventually
// believed). The capped-model nonlinearity (delta_pi, eq. 5-7) cannot
// be estimated incrementally at all — that is the background
// re-solver's job (resolver.hpp), which runs the full Nelder-Mead +
// Levenberg-Marquardt pipeline over a bounded window.
//
// Numerical scaling: regressors are normalized to Gflop / GB internally
// (W, Q ~ 1e9 while t ~ 1e-1 would otherwise spread P's spectrum over
// ~20 decades); estimates are converted back on read.

#include <cstdint>

namespace archline::fit::online {

/// One streaming measurement tuple: what `observe` carries on the wire.
/// (The serve layer validates bytes/seconds/joules > 0, flops >= 0
/// before ingest.)
struct Sample {
  double flops = 0.0;
  double bytes = 0.0;
  double seconds = 0.0;
  double joules = 0.0;
};

/// Point estimates plus uncertainty, read out of the filter at
/// publication time. Standard errors come from the RLS covariance
/// sigma^2 * P with sigma^2 the forgetting-weighted innovation
/// variance; ci95 half-width is 1.96 * se.
struct RlsEstimate {
  double eps_flop = 0.0;  ///< J/flop
  double eps_mem = 0.0;   ///< J/byte
  double pi1 = 0.0;       ///< W (constant power)
  double se_eps_flop = 0.0;
  double se_eps_mem = 0.0;
  double se_pi1 = 0.0;
  double tau_flop = 0.0;  ///< s/flop sustained-peak reciprocal
  double tau_mem = 0.0;   ///< s/byte sustained-peak reciprocal
  std::uint64_t count = 0;       ///< tuples ingested
  double effective_count = 0.0;  ///< sum of forgetting weights
};

class RlsFilter {
 public:
  static constexpr int kDim = 3;  ///< (eps_flop, eps_mem, pi1)

  /// `forgetting` is lambda in (0, 1]: 1 = ordinary least squares
  /// (infinite memory), smaller = faster tracking / noisier estimates.
  /// The effective window is ~1/(1-lambda) observations.
  explicit RlsFilter(double forgetting = 0.998) noexcept;

  /// Ingests one tuple: one rank-1 update of theta and P, plus the
  /// sustained-peak decay. O(kDim^2) arithmetic, no allocation.
  void observe(const Sample& s) noexcept;

  /// Current estimates (cheap: a few divisions and square roots).
  [[nodiscard]] RlsEstimate estimate() const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double forgetting() const noexcept { return lambda_; }

  /// Back to the prior (used by tests; the serve layer never resets).
  void reset() noexcept;

 private:
  double lambda_;
  double theta_[kDim];        ///< scaled estimates (J/Gflop, J/GB, W)
  double p_[kDim][kDim];      ///< scaled inverse-information matrix
  double residual_ss_ = 0.0;  ///< forgetting-weighted squared innovations
  double weight_ = 0.0;       ///< sum of forgetting weights (ESS)
  double peak_flop_rate_ = 0.0;  ///< decayed max of W/t [flop/s]
  double peak_byte_rate_ = 0.0;  ///< decayed max of Q/t [B/s]
  std::uint64_t count_ = 0;
};

}  // namespace archline::fit::online
