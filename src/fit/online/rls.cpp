#include "fit/online/rls.hpp"

#include <cmath>

namespace archline::fit::online {

namespace {

/// Internal unit scale: regressors are (Gflop, GB, s) so theta lands in
/// O(0.01..100) for the paper's platforms and P stays well conditioned.
constexpr double kScale = 1e-9;

/// Prior covariance magnitude: large enough that the first kDim
/// observations dominate the prior completely, small enough that
/// x^T P x cannot overflow for any sane tuple.
constexpr double kPriorVariance = 1e6;

}  // namespace

RlsFilter::RlsFilter(double forgetting) noexcept
    : lambda_(forgetting > 0.0 && forgetting <= 1.0 ? forgetting : 1.0) {
  reset();
}

void RlsFilter::reset() noexcept {
  for (int i = 0; i < kDim; ++i) {
    theta_[i] = 0.0;
    for (int j = 0; j < kDim; ++j) p_[i][j] = i == j ? kPriorVariance : 0.0;
  }
  residual_ss_ = 0.0;
  weight_ = 0.0;
  peak_flop_rate_ = 0.0;
  peak_byte_rate_ = 0.0;
  count_ = 0;
}

void RlsFilter::observe(const Sample& s) noexcept {
  if (!(s.seconds > 0.0)) return;  // defensive; the wire layer validates
  const double x[kDim] = {s.flops * kScale, s.bytes * kScale, s.seconds};
  const double y = s.joules;

  // Gain k = P x / (lambda + x^T P x).
  double px[kDim];
  double xpx = 0.0;
  for (int i = 0; i < kDim; ++i) {
    px[i] = 0.0;
    for (int j = 0; j < kDim; ++j) px[i] += p_[i][j] * x[j];
    xpx += x[i] * px[i];
  }
  const double denom = lambda_ + xpx;
  // Innovation before the update; its square feeds the noise estimate.
  double predicted = 0.0;
  for (int i = 0; i < kDim; ++i) predicted += x[i] * theta_[i];
  const double innovation = y - predicted;

  for (int i = 0; i < kDim; ++i) {
    const double k = px[i] / denom;
    theta_[i] += k * innovation;
  }
  // P <- (P - k x^T P) / lambda, kept symmetric explicitly (the textbook
  // update loses symmetry to rounding after ~1e5 steps).
  for (int i = 0; i < kDim; ++i)
    for (int j = i; j < kDim; ++j) {
      const double v = (p_[i][j] - px[i] * px[j] / denom) / lambda_;
      p_[i][j] = v;
      p_[j][i] = v;
    }

  // Normalized innovation variance: e^2 * lambda / denom is the
  // standard forgetting-RLS noise estimator (the a-priori residual
  // shrunk by the gain), accumulated with the same forgetting.
  residual_ss_ =
      lambda_ * residual_ss_ + innovation * innovation * lambda_ / denom;
  weight_ = lambda_ * weight_ + 1.0;

  // Sustained peaks: decay then refresh. A rate near the platform's
  // ceiling refreshes the max every few tuples; after a real slowdown
  // the old peak decays away in ~1/(1-lambda) observations.
  peak_flop_rate_ *= lambda_;
  peak_byte_rate_ *= lambda_;
  if (s.flops > 0.0) {
    const double r = s.flops / s.seconds;
    if (r > peak_flop_rate_) peak_flop_rate_ = r;
  }
  if (s.bytes > 0.0) {
    const double r = s.bytes / s.seconds;
    if (r > peak_byte_rate_) peak_byte_rate_ = r;
  }
  ++count_;
}

RlsEstimate RlsFilter::estimate() const noexcept {
  RlsEstimate e;
  e.count = count_;
  e.effective_count = weight_;
  e.eps_flop = theta_[0] * kScale;
  e.eps_mem = theta_[1] * kScale;
  e.pi1 = theta_[2];
  // Residual degrees of freedom use the effective sample size so the
  // variance stays honest under heavy forgetting.
  const double dof = weight_ - static_cast<double>(kDim);
  const double sigma2 = dof > 1.0 ? residual_ss_ / dof : 0.0;
  const auto se = [&](int i) {
    const double v = sigma2 * p_[i][i];
    return v > 0.0 ? std::sqrt(v) : 0.0;
  };
  e.se_eps_flop = se(0) * kScale;
  e.se_eps_mem = se(1) * kScale;
  e.se_pi1 = se(2);
  e.tau_flop = peak_flop_rate_ > 0.0 ? 1.0 / peak_flop_rate_ : 0.0;
  e.tau_mem = peak_byte_rate_ > 0.0 ? 1.0 / peak_byte_rate_ : 0.0;
  return e;
}

}  // namespace archline::fit::online
