#pragma once
// The background re-solver: a single thread that periodically sweeps
// the OnlineStore for platforms with un-published observations and runs
// the full nonlinear re-solve (§V pipeline) for each, publishing a new
// epoch. This keeps the expensive Nelder-Mead + Levenberg-Marquardt
// work off the serve hot path entirely: `observe` never waits on a
// solve, and a forced synchronous "refit" request runs on the Heavy
// lane where the lane scheduler already bounds its impact.
//
// Lifecycle mirrors serve::Server: construct, start(), stop() (idempotent,
// also run by the destructor). poke() wakes the thread immediately —
// tests use it instead of waiting out the interval.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "fit/online/snapshot.hpp"

namespace archline::fit::online {

class BackgroundResolver {
 public:
  /// `interval_ms` is the sweep cadence; values < 1 are clamped to 1.
  /// The resolver does not start until start() is called.
  BackgroundResolver(OnlineStore& store, int interval_ms);

  ~BackgroundResolver();

  BackgroundResolver(const BackgroundResolver&) = delete;
  BackgroundResolver& operator=(const BackgroundResolver&) = delete;

  /// Spawns the sweep thread. Idempotent while running.
  void start();

  /// Signals the thread and joins it. Safe to call twice.
  void stop();

  /// Wakes the thread for an immediate sweep (tests, SIGUSR-style
  /// triggers). No-op when not running.
  void poke();

  /// Completed sweep rounds — tests poll this to know a full pass ran.
  [[nodiscard]] std::uint64_t sweeps() const noexcept {
    return sweeps_.load(std::memory_order_acquire);
  }

  /// Re-solves that threw (degenerate window data); the sweep skips the
  /// platform and retries next round once new tuples arrive.
  [[nodiscard]] std::uint64_t failed_resolves() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  OnlineStore& store_;
  int interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool poked_ = false;
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::thread thread_;
};

}  // namespace archline::fit::online
