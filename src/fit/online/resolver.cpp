#include "fit/online/resolver.hpp"

#include <chrono>
#include <exception>

namespace archline::fit::online {

BackgroundResolver::BackgroundResolver(OnlineStore& store, int interval_ms)
    : store_(store), interval_ms_(interval_ms < 1 ? 1 : interval_ms) {}

BackgroundResolver::~BackgroundResolver() { stop(); }

void BackgroundResolver::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  poked_ = false;
  thread_ = std::thread([this] { loop(); });
}

void BackgroundResolver::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
    cv_.notify_all();
  }
  // Joined outside the lock; a second stop() sees joinable() == false.
  thread_.join();
}

void BackgroundResolver::poke() {
  std::lock_guard<std::mutex> lock(mutex_);
  poked_ = true;
  cv_.notify_all();
}

void BackgroundResolver::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_ || poked_; });
      if (stop_) return;
      poked_ = false;
    }
    // Sweep outside the lifecycle lock: a solve can take milliseconds
    // and stop() must stay responsive (it is only checked between
    // platforms, so shutdown waits for at most one solve).
    for (const std::string_view platform : store_.dirty_platforms()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) return;
      }
      try {
        store_.resolve(platform);
      } catch (const std::exception&) {
        // Degenerate window (e.g. all tuples at one intensity): leave
        // the previous snapshot in place and retry after more data.
        failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sweeps_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace archline::fit::online
