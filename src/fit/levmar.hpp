#pragma once
// Levenberg-Marquardt nonlinear least squares with a numeric Jacobian.
//
// Polishes the Nelder-Mead seed in model_fit. Marquardt damping scales the
// diagonal of J^T J; the Jacobian comes from central differences, which is
// adequate because the roofline residuals are piecewise smooth and the seed
// lands inside the right regime cell.

#include <functional>
#include <span>
#include <vector>

namespace archline::fit {

/// Residual vector r(x); the optimizer minimizes ||r(x)||^2.
using ResidualFn =
    std::function<std::vector<double>(std::span<const double>)>;

struct LevmarOptions {
  int max_iterations = 200;
  double gradient_tolerance = 1e-12;  ///< stop on small ||J^T r||_inf
  double step_tolerance = 1e-14;      ///< stop on small relative step
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.25;
  double fd_step = 1e-6;  ///< relative central-difference step
};

struct LevmarResult {
  std::vector<double> x;
  double rss = 0.0;       ///< ||r||^2 at the solution
  int iterations = 0;
  bool converged = false;
};

/// Minimizes ||r(x)||^2 from `x0`. Throws std::invalid_argument on an
/// empty start point or empty residual vector.
[[nodiscard]] LevmarResult levenberg_marquardt(const ResidualFn& residuals,
                                               std::span<const double> x0,
                                               const LevmarOptions& options =
                                                   {});

}  // namespace archline::fit
