// Randomized property tests: model invariants over machines drawn from a
// wide random distribution, not just the twelve published platforms.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/roofline.hpp"
#include "core/droop_model.hpp"
#include "core/scenarios.hpp"
#include "stats/rng.hpp"

namespace {

namespace co = archline::core;
using archline::stats::Rng;

/// Draws a random but physically sensible machine: flop rates 1 Gflop/s
/// to 10 Tflop/s, bandwidths 1-500 GB/s, energies 1 pJ to 1 nJ per op,
/// pi1 up to 200 W, caps from "tight" to effectively unbounded.
co::MachineParams random_machine(Rng& rng) {
  co::MachineParams m;
  m.tau_flop = 1.0 / std::exp(rng.uniform(std::log(1e9), std::log(1e13)));
  m.tau_mem = 1.0 / std::exp(rng.uniform(std::log(1e9), std::log(5e11)));
  m.eps_flop = std::exp(rng.uniform(std::log(1e-12), std::log(1e-9)));
  m.eps_mem = std::exp(rng.uniform(std::log(1e-11), std::log(1e-9)));
  m.pi1 = rng.uniform(0.1, 200.0);
  const double demand = m.pi_flop() + m.pi_mem();
  m.delta_pi = demand * std::exp(rng.uniform(std::log(0.3), std::log(4.0)));
  m.validate("random_machine");
  return m;
}

constexpr int kMachines = 200;

TEST(RandomMachines, ClosedFormPowerAlwaysMatchesEnergyOverTime) {
  Rng rng(91);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    for (const double intensity : {0.01, 0.3, 1.0, 7.0, 100.0, 1e4}) {
      const co::Workload w = co::Workload::from_intensity(1e12, intensity);
      const double direct = co::avg_power(m, w);
      const double closed = co::avg_power_closed_form(m, intensity);
      ASSERT_NEAR(direct, closed, 1e-9 * closed)
          << "machine " << i << " I=" << intensity;
    }
  }
}

TEST(RandomMachines, BalanceIntervalAlwaysBracketsBalance) {
  Rng rng(92);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    ASSERT_LE(m.balance_lo(), m.time_balance() * (1 + 1e-12)) << i;
    ASSERT_GE(m.balance_hi(), m.time_balance() * (1 - 1e-12)) << i;
  }
}

TEST(RandomMachines, PowerBoundedByCapAndFloor) {
  Rng rng(93);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    for (const double intensity : {0.05, 0.9, 12.0, 3e3}) {
      const double p = co::avg_power_closed_form(m, intensity);
      ASSERT_GE(p, m.pi1 * (1 - 1e-12)) << i;
      ASSERT_LE(p, (m.pi1 + m.delta_pi) * (1 + 1e-12)) << i;
    }
  }
}

TEST(RandomMachines, MonotoneMetricsInIntensity) {
  Rng rng(94);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    double prev_perf = 0.0;
    double prev_eff = 0.0;
    for (double intensity = 1.0 / 64.0; intensity <= 4096.0;
         intensity *= 2.0) {
      const double perf = co::performance(m, intensity);
      const double eff = co::energy_efficiency(m, intensity);
      ASSERT_GE(perf, prev_perf * (1 - 1e-12)) << i;
      ASSERT_GE(eff, prev_eff * (1 - 1e-12)) << i;
      prev_perf = perf;
      prev_eff = eff;
    }
  }
}

TEST(RandomMachines, CapMonotonicityInDeltaPi) {
  // More usable power never hurts.
  Rng rng(95);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const co::MachineParams looser = co::with_cap(m, m.delta_pi * 2.0);
    for (const double intensity : {0.1, 1.0, 10.0, 1000.0}) {
      ASSERT_GE(co::performance(looser, intensity),
                co::performance(m, intensity) * (1 - 1e-12))
          << i;
      ASSERT_GE(co::energy_efficiency(looser, intensity),
                co::energy_efficiency(m, intensity) * (1 - 1e-12))
          << i;
    }
  }
}

TEST(RandomMachines, AggregationScalesPerformanceExactly) {
  Rng rng(96);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const co::MachineParams agg = co::aggregate(m, 13);
    for (const double intensity : {0.2, 5.0, 500.0})
      ASSERT_NEAR(co::performance(agg, intensity),
                  13.0 * co::performance(m, intensity),
                  1e-9 * co::performance(agg, intensity))
          << i;
  }
}

TEST(RandomMachines, EfficiencyPeaksBoundedByUncappedLimit) {
  Rng rng(97);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const double bound = co::peak_flops_per_joule(m);
    for (const double intensity : {0.1, 2.0, 50.0, 1e5})
      ASSERT_LE(co::energy_efficiency(m, intensity), bound * (1 + 1e-12))
          << i;
  }
}

TEST(RandomMachines, TimeSubadditiveUnderWorkloadSplit) {
  // Splitting a workload into two halves run back to back can never beat
  // running it fused (max is subadditive; throttling only adds).
  Rng rng(98);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const co::Workload whole{.flops = 2e12, .bytes = 4e11};
    const co::Workload flops_half{.flops = 2e12, .bytes = 1.0};
    const co::Workload bytes_half{.flops = 1.0, .bytes = 4e11};
    ASSERT_LE(co::time(m, whole),
              co::time(m, flops_half) + co::time(m, bytes_half) + 1e-12)
        << i;
  }
}


TEST(RandomMachines, DroopZeroEtaMatchesBaseModelEverywhere) {
  Rng rng(99);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const co::DroopModel d{.machine = m, .eta = 0.0};
    for (const double intensity : {0.1, 1.0, 20.0, 500.0}) {
      const co::Workload w = co::Workload::from_intensity(1e11, intensity);
      ASSERT_DOUBLE_EQ(d.time(w), co::time(m, w)) << i;
      ASSERT_DOUBLE_EQ(d.energy(w), co::energy(m, w)) << i;
    }
  }
}

TEST(RandomMachines, DroopNeverSpeedsUp) {
  Rng rng(100);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const co::DroopModel d{.machine = m, .eta = 0.2};
    for (const double intensity : {0.1, 1.0, 20.0, 500.0}) {
      const co::Workload w = co::Workload::from_intensity(1e11, intensity);
      ASSERT_GE(d.time(w), co::time(m, w) * (1 - 1e-12)) << i;
      ASSERT_GE(d.energy(w), co::energy(m, w) * (1 - 1e-12)) << i;
    }
  }
}

TEST(RandomMachines, ThrottleRequirementConsistentWithPerformance) {
  // 1/slowdown must equal the capped/free performance ratio.
  Rng rng(101);
  for (int i = 0; i < kMachines; ++i) {
    const co::MachineParams m = random_machine(rng);
    const double cap = m.delta_pi / 3.0;
    for (const double intensity : {0.2, 2.0, 50.0}) {
      const auto req = co::throttle_requirement(m, intensity, cap);
      const co::MachineParams uncapped = m.without_cap();
      const co::MachineParams capped = co::with_cap(m, cap);
      const double ratio = co::performance(capped, intensity) /
                           co::performance(uncapped, intensity);
      ASSERT_NEAR(1.0 / req.slowdown, ratio, 1e-9) << i;
    }
  }
}

}  // namespace
