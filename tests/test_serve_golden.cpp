// Golden-reply parity: every request shape the protocol supports, with
// its exact expected response bytes, captured in tests/data/. The
// protocol's replies are deterministic by design (fixed float
// formatting, fixed key order) — that is what makes the response cache
// and the loadgen replay-verification work — so any byte drift in a
// reply is an API break, caught here.
//
// Each CACHEABLE request runs through Server::handle_now TWICE: the
// first pass exercises the full parse -> registry dispatch -> render
// path (cache miss), the second must return the identical bytes from
// the cache. Non-cacheable endpoints (observe, refit) run ONCE — they
// mutate the online-fit store, so replaying them would put the server
// in a different state than the single-pass `--stdio` regeneration run
// that produced the expected replies. A reply-shape change that is
// intentional must regenerate the corpus by piping
// tests/data/serve_golden_requests.txt through
// `archline_serverd --stdio --serial --quiet` into
// serve_golden_replies.txt (--serial executes lines in input order,
// which the state-mutating observe/refit entries require).

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"
#include "serve_tcp_testlib.hpp"

#ifndef ARCHLINE_TEST_DATA_DIR
#error "ARCHLINE_TEST_DATA_DIR must point at tests/data"
#endif

namespace {

using namespace archline::serve;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// True when the request dispatches to a cacheable endpoint — i.e. the
/// replay on pass 2 is a pure function of the request. Malformed lines
/// and unknown types count as cacheable: their error replies never
/// mutate state, so replaying them is byte-stable either way.
bool replay_is_pure(const std::string& line) {
  try {
    const Json req = Json::parse(line);
    const Json* type = req.find("type");
    if (!type || !type->is_string()) return true;
    const Endpoint* e = Registry::instance().find(type->as_string_view());
    if (!e) return true;
    if (!e->cacheable) return false;
    // Per-request exemptions (fit with "seed_online") mutate state too:
    // replaying one would seed the online window twice.
    return !(e->cache_exempt && e->cache_exempt(req));
  } catch (const std::exception&) {
    return true;
  }
}

TEST(ServeGolden, EveryRequestShapeRepliesByteIdentically) {
  const std::string dir = ARCHLINE_TEST_DATA_DIR;
  const auto requests = read_lines(dir + "/serve_golden_requests.txt");
  const auto replies = read_lines(dir + "/serve_golden_replies.txt");
  ASSERT_FALSE(requests.empty()) << "corpus missing or unreadable";
  ASSERT_EQ(requests.size(), replies.size())
      << "corpus files out of sync — regenerate both";

  ServerOptions options;
  options.threads = 2;
  Server server(options);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Pass 1: full evaluation (cache miss).
    EXPECT_EQ(server.handle_now(requests[i]), replies[i])
        << "miss path diverged on line " << i + 1 << ": " << requests[i];
    // Pass 2: cached replay must be the same bytes. Skipped for
    // state-mutating endpoints (observe/refit) so the server walks the
    // exact state sequence of the single-pass regeneration run.
    if (replay_is_pure(requests[i])) {
      EXPECT_EQ(server.handle_now(requests[i]), replies[i])
          << "hit path diverged on line " << i + 1 << ": " << requests[i];
    }
  }

  // The corpus must exercise both hot paths: successful cacheable
  // replies (hits on pass 2) and error replies (never cached).
  const auto cache = server.cache_stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GT(server.metrics().snapshot().errors, 0u);
}

TEST(ServeGolden, ShardedTransportRepliesByteIdentically) {
  // The same corpus through a four-shard TCP front end. Replays run
  // closed-loop (send one line, await its reply) over a connection that
  // rotates every request, so deterministic handoff placement walks the
  // corpus across every shard — the state-mutating observe/refit lines
  // still execute in exactly the regeneration order, and shard-local
  // cache partitions must not change a single reply byte.
  const std::string dir = ARCHLINE_TEST_DATA_DIR;
  const auto requests = read_lines(dir + "/serve_golden_requests.txt");
  const auto replies = read_lines(dir + "/serve_golden_replies.txt");
  ASSERT_FALSE(requests.empty()) << "corpus missing or unreadable";
  ASSERT_EQ(requests.size(), replies.size());

  ServerOptions options;
  options.threads = 2;
  archline::serve::TcpOptions tcp;
  tcp.shards = 4;
  tcp.use_reuseport = false;  // round-robin: the corpus visits every shard
  serve_tcp_testlib::TcpTransport transport(options, tcp);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const int fd = serve_tcp_testlib::connect_to(transport.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve_tcp_testlib::send_all(fd, requests[i] + "\n"));
    const auto got = serve_tcp_testlib::read_lines(fd, 1);
    ::close(fd);
    ASSERT_EQ(got.size(), 1u) << "no reply on line " << i + 1;
    EXPECT_EQ(got[0], replies[i])
        << "sharded replay diverged on line " << i + 1 << ": " << requests[i];
  }
  const auto snap = transport.server().metrics().snapshot();
  ASSERT_EQ(snap.transport_shards, 4u);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_GT(snap.shards[s].requests, 0u)
        << "shard " << s << " never saw a corpus line";
}

}  // namespace
