// Golden-reply parity: every request shape the protocol supports, with
// its exact expected response bytes, captured in tests/data/. The
// protocol's replies are deterministic by design (fixed float
// formatting, fixed key order) — that is what makes the response cache
// and the loadgen replay-verification work — so any byte drift in a
// reply is an API break, caught here.
//
// Each request runs through Server::handle_now TWICE: the first pass
// exercises the full parse -> registry dispatch -> render path (cache
// miss), the second must return the identical bytes from the cache.
// A reply-shape change that is intentional must regenerate the corpus
// by piping tests/data/serve_golden_requests.txt through
// `archline_serverd --stdio --quiet` into serve_golden_replies.txt.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "serve/server.hpp"

#ifndef ARCHLINE_TEST_DATA_DIR
#error "ARCHLINE_TEST_DATA_DIR must point at tests/data"
#endif

namespace {

using namespace archline::serve;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(ServeGolden, EveryRequestShapeRepliesByteIdentically) {
  const std::string dir = ARCHLINE_TEST_DATA_DIR;
  const auto requests = read_lines(dir + "/serve_golden_requests.txt");
  const auto replies = read_lines(dir + "/serve_golden_replies.txt");
  ASSERT_FALSE(requests.empty()) << "corpus missing or unreadable";
  ASSERT_EQ(requests.size(), replies.size())
      << "corpus files out of sync — regenerate both";

  ServerOptions options;
  options.threads = 2;
  Server server(options);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Pass 1: full evaluation (cache miss).
    EXPECT_EQ(server.handle_now(requests[i]), replies[i])
        << "miss path diverged on line " << i + 1 << ": " << requests[i];
    // Pass 2: cached replay must be the same bytes.
    EXPECT_EQ(server.handle_now(requests[i]), replies[i])
        << "hit path diverged on line " << i + 1 << ": " << requests[i];
  }

  // The corpus must exercise both hot paths: successful cacheable
  // replies (hits on pass 2) and error replies (never cached).
  const auto cache = server.cache_stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GT(server.metrics().snapshot().errors, 0u);
}

}  // namespace
