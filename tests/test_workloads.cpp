// Tests for the named workload library and platform ranking.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/workloads.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

std::vector<std::pair<std::string, co::MachineParams>> all_machines() {
  std::vector<std::pair<std::string, co::MachineParams>> out;
  for (const pl::PlatformSpec& spec : pl::all_platforms())
    out.emplace_back(spec.name, spec.machine());
  return out;
}

TEST(WorkloadLibrary, ContainsPaperExamples) {
  // §I-A names SpMV and FFT with specific intensity ranges.
  const co::WorkloadProfile& spmv = co::workload("SpMV");
  EXPECT_DOUBLE_EQ(spmv.intensity_lo, 0.25);
  EXPECT_DOUBLE_EQ(spmv.intensity_hi, 0.5);
  const co::WorkloadProfile& fft = co::workload("FFT");
  EXPECT_DOUBLE_EQ(fft.intensity_lo, 2.0);
  EXPECT_DOUBLE_EQ(fft.intensity_hi, 4.0);
}

TEST(WorkloadLibrary, UnknownNameThrows) {
  EXPECT_THROW((void)co::workload("Quicksort"), std::out_of_range);
}

TEST(WorkloadLibrary, NamesMatchProfiles) {
  const auto names = co::workload_names();
  EXPECT_EQ(names.size(), co::workload_library().size());
  for (const std::string& n : names)
    EXPECT_EQ(co::workload(n).name, n);
}

TEST(WorkloadLibrary, GraphTraversalIsRandomAccess) {
  EXPECT_EQ(co::workload("GraphTraversal").pattern,
            co::AccessPattern::Random);
  EXPECT_EQ(co::workload("FFT").pattern, co::AccessPattern::Streaming);
}

TEST(WorkloadProfile, RepresentativeIntensityIsGeometricMid) {
  const co::WorkloadProfile& fft = co::workload("FFT");
  EXPECT_NEAR(fft.representative_intensity(), std::sqrt(8.0), 1e-12);
}

TEST(WorkloadProfile, DoublePrecisionHalvesIntensity) {
  const co::WorkloadProfile& fft = co::workload("FFT");
  EXPECT_NEAR(fft.representative_intensity(co::Precision::Double),
              fft.representative_intensity() / 2.0, 1e-12);
}

TEST(WorkloadProfile, IntensityOrderingAcrossLibrary) {
  // Sanity: STREAM < SpMV < Stencil < FFT < DGEMM < NBody.
  const auto rep = [](const char* n) {
    return co::workload(n).representative_intensity();
  };
  EXPECT_LT(rep("STREAM"), rep("SpMV"));
  EXPECT_LT(rep("SpMV"), rep("Stencil"));
  EXPECT_LT(rep("Stencil"), rep("FFT"));
  EXPECT_LT(rep("FFT"), rep("DGEMM"));
  EXPECT_LT(rep("DGEMM"), rep("NBody"));
}

TEST(RankMachines, SortedByChosenMetric) {
  const auto machines = all_machines();
  const auto ranked = co::rank_machines(co::workload("FFT"), machines,
                                        co::RankBy::Performance);
  ASSERT_EQ(ranked.size(), machines.size());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].performance, ranked[i].performance);
}

TEST(RankMachines, TitanWinsComputeBoundPerformance) {
  const auto ranked = co::rank_machines(co::workload("NBody"),
                                        all_machines(),
                                        co::RankBy::Performance);
  EXPECT_EQ(ranked.front().machine_name, "GTX Titan");
}

TEST(RankMachines, EfficiencyRankingDiffersFromPerformance) {
  // §I-A's whole point: the flop/J ranking at SpMV intensities is not
  // the flop/s ranking.
  const auto by_perf = co::rank_machines(co::workload("SpMV"),
                                         all_machines(),
                                         co::RankBy::Performance);
  const auto by_eff = co::rank_machines(co::workload("SpMV"),
                                        all_machines(),
                                        co::RankBy::Efficiency);
  EXPECT_NE(by_perf.front().machine_name, by_eff.front().machine_name);
}

TEST(RankMachines, ArndaleGpuTopsSpmvEfficiency) {
  // Fig. 1: the mobile GPU beats the desktop GPU in flop/J at
  // bandwidth-bound intensities.
  const auto ranked = co::rank_machines(co::workload("SpMV"),
                                        all_machines(),
                                        co::RankBy::Efficiency);
  std::size_t arndale = 99;
  std::size_t titan = 99;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].machine_name == "Arndale GPU") arndale = i;
    if (ranked[i].machine_name == "GTX Titan") titan = i;
  }
  EXPECT_LT(arndale, titan);
}

TEST(RankMachines, FillsAllFields) {
  const auto ranked =
      co::rank_machines(co::workload("FFT"), all_machines());
  for (const co::WorkloadRanking& r : ranked) {
    EXPECT_GT(r.performance, 0.0) << r.machine_name;
    EXPECT_GT(r.efficiency, 0.0) << r.machine_name;
    EXPECT_GT(r.power, 0.0) << r.machine_name;
  }
}

}  // namespace
