// Tests for the end-to-end fitting pipeline: parameter recovery from
// simulated measurements.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fit/model_fit.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace ft = archline::fit;
namespace co = archline::core;
namespace mb = archline::microbench;
namespace pl = archline::platforms;
namespace si = archline::sim;

mb::SuiteData make_suite(const std::string& platform, std::uint64_t seed,
                         bool full = true) {
  const si::SimMachine m = si::make_machine(pl::platform(platform));
  archline::stats::Rng rng(seed);
  mb::SuiteOptions opt;
  opt.repeats = 2;
  opt.target_seconds = 0.15;
  opt.include_double = full;
  opt.include_caches = full;
  opt.include_random = full;
  return mb::run_suite(m, opt, rng);
}

void expect_close(double got, double want, double rel, const char* what) {
  EXPECT_NEAR(got, want, rel * want) << what;
}

TEST(FitMachine, RecoversTitanParameters) {
  const mb::SuiteData data = make_suite("GTX Titan", 101);
  const ft::FitResult r = ft::fit_machine(data);
  const co::MachineParams truth = pl::platform("GTX Titan").machine();
  expect_close(r.machine.tau_flop, truth.tau_flop, 0.05, "tau_flop");
  expect_close(r.machine.eps_flop, truth.eps_flop, 0.10, "eps_flop");
  expect_close(r.machine.tau_mem, truth.tau_mem, 0.05, "tau_mem");
  expect_close(r.machine.eps_mem, truth.eps_mem, 0.10, "eps_mem");
  expect_close(r.machine.pi1, truth.pi1, 0.10, "pi1");
  expect_close(r.machine.delta_pi, truth.delta_pi, 0.15, "delta_pi");
  EXPECT_GT(r.r_squared_perf, 0.95);
}

TEST(FitMachine, RecoversDoublePrecisionCosts) {
  const mb::SuiteData data = make_suite("GTX Titan", 102);
  const ft::FitResult r = ft::fit_machine(data);
  ASSERT_TRUE(r.dp.has_value());
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  expect_close(1.0 / r.dp->tau_flop, spec.flop_dp->throughput, 0.05,
               "dp throughput");
  expect_close(r.dp->eps_flop, spec.flop_dp->energy_per_op, 0.15, "eps_d");
}

TEST(FitMachine, RecoversCacheLevels) {
  const mb::SuiteData data = make_suite("Xeon Phi", 103);
  const ft::FitResult r = ft::fit_machine(data);
  const pl::PlatformSpec& spec = pl::platform("Xeon Phi");
  ASSERT_TRUE(r.l1.has_value());
  ASSERT_TRUE(r.l2.has_value());
  expect_close(1.0 / r.l1->tau_byte, spec.mem_l1->throughput, 0.08,
               "L1 bandwidth");
  expect_close(r.l1->eps_byte, spec.mem_l1->energy_per_op, 0.4, "eps_L1");
  expect_close(1.0 / r.l2->tau_byte, spec.mem_l2->throughput, 0.08,
               "L2 bandwidth");
  expect_close(r.l2->eps_byte, spec.mem_l2->energy_per_op, 0.3, "eps_L2");
}

TEST(FitMachine, RecoversRandomAccessCosts) {
  const mb::SuiteData data = make_suite("Desktop CPU", 104);
  const ft::FitResult r = ft::fit_machine(data);
  const pl::PlatformSpec& spec = pl::platform("Desktop CPU");
  ASSERT_TRUE(r.random.has_value());
  expect_close(1.0 / r.random->tau_access, spec.mem_rand->throughput, 0.05,
               "access rate");
  expect_close(r.random->eps_access, spec.mem_rand->energy_per_op, 0.15,
               "eps_rand");
}

TEST(FitMachine, FittedLevelOrderingMatchesInclusiveCosts) {
  const mb::SuiteData data = make_suite("NUC CPU", 105);
  const ft::FitResult r = ft::fit_machine(data);
  ASSERT_TRUE(r.l1 && r.l2);
  EXPECT_LT(r.l1->eps_byte, r.l2->eps_byte);
  EXPECT_LT(r.l2->eps_byte, r.machine.eps_mem);
}

TEST(FitMachine, SkipsAbsentData) {
  const mb::SuiteData data = make_suite("NUC GPU", 106);
  const ft::FitResult r = ft::fit_machine(data);
  EXPECT_FALSE(r.dp.has_value());
  EXPECT_FALSE(r.l1.has_value());
  EXPECT_FALSE(r.l2.has_value());
  EXPECT_FALSE(r.random.has_value());
}

TEST(FitObservations, UncappedModelFitsWorseOnCapBoundPlatform) {
  // The NUC GPU spends most of its sweep power-capped; the uncapped model
  // cannot explain that region and must leave a larger residual.
  const mb::SuiteData data = make_suite("NUC GPU", 107, false);
  ft::FitOptions capped;
  capped.kind = ft::ModelKind::Capped;
  ft::FitOptions uncapped;
  uncapped.kind = ft::ModelKind::Uncapped;
  const ft::FitResult rc = ft::fit_observations(data.dram_sp, capped);
  const ft::FitResult ru = ft::fit_observations(data.dram_sp, uncapped);
  EXPECT_LT(rc.rss, 0.5 * ru.rss);
}

TEST(FitObservations, UncappedFitReturnsUncappedMachine) {
  const mb::SuiteData data = make_suite("Desktop CPU", 108, false);
  ft::FitOptions opt;
  opt.kind = ft::ModelKind::Uncapped;
  const ft::FitResult r = ft::fit_observations(data.dram_sp, opt);
  EXPECT_TRUE(r.machine.uncapped());
  EXPECT_EQ(r.kind, ft::ModelKind::Uncapped);
}

TEST(FitObservations, TooFewPointsThrows) {
  const mb::SuiteData data = make_suite("APU CPU", 109, false);
  const std::span<const mb::Observation> few(data.dram_sp.data(), 5);
  EXPECT_THROW((void)ft::fit_observations(few), std::invalid_argument);
}

TEST(FitObservations, DeterministicGivenSameData) {
  const mb::SuiteData data = make_suite("Arndale CPU", 110, false);
  const ft::FitResult a = ft::fit_observations(data.dram_sp);
  const ft::FitResult b = ft::fit_observations(data.dram_sp);
  EXPECT_DOUBLE_EQ(a.machine.tau_flop, b.machine.tau_flop);
  EXPECT_DOUBLE_EQ(a.rss, b.rss);
}

TEST(FitObservations, ReportsObservationCount) {
  const mb::SuiteData data = make_suite("APU GPU", 111, false);
  const ft::FitResult r = ft::fit_observations(data.dram_sp);
  EXPECT_EQ(r.observations, data.dram_sp.size());
}

}  // namespace
