// Tests for the two-sample Kolmogorov-Smirnov implementation.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/ks_test.hpp"
#include "stats/rng.hpp"

namespace {

namespace st = archline::stats;

TEST(KolmogorovSurvival, BoundaryValues) {
  EXPECT_DOUBLE_EQ(st::kolmogorov_survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(st::kolmogorov_survival(-1.0), 1.0);
  EXPECT_LT(st::kolmogorov_survival(10.0), 1e-12);
}

TEST(KolmogorovSurvival, KnownValues) {
  // Q(1.0) ~ 0.27, Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(st::kolmogorov_survival(1.0), 0.27, 0.01);
  EXPECT_NEAR(st::kolmogorov_survival(1.36), 0.049, 0.003);
}

TEST(KolmogorovSurvival, MonotoneDecreasing) {
  double prev = 1.0;
  for (double l = 0.1; l < 3.0; l += 0.1) {
    const double q = st::kolmogorov_survival(l);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(KsTwoSample, IdenticalSamplesStatZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const st::KsResult r = st::ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.significant());
}

TEST(KsTwoSample, DisjointSamplesStatOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  const st::KsResult r = st::ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
}

TEST(KsTwoSample, EmptyThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)st::ks_two_sample(a, empty), std::invalid_argument);
  EXPECT_THROW((void)st::ks_two_sample(empty, a), std::invalid_argument);
}

TEST(KsTwoSample, KnownSmallCase) {
  // F1 jumps at {1,2}, F2 at {1.5, 2.5}; max gap is 0.5.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.5, 2.5};
  const st::KsResult r = st::ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
}

TEST(KsTwoSample, SameDistributionRarelySignificant) {
  st::Rng rng(8);
  int false_positives = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(200);
    std::vector<double> b(200);
    for (double& x : a) x = rng.normal();
    for (double& x : b) x = rng.normal();
    if (st::ks_two_sample(a, b).significant()) ++false_positives;
  }
  // Expected ~2.5 at alpha = .05; allow generous headroom.
  EXPECT_LE(false_positives, 8);
}

TEST(KsTwoSample, ShiftedDistributionDetected) {
  st::Rng rng(9);
  std::vector<double> a(300);
  std::vector<double> b(300);
  for (double& x : a) x = rng.normal(0.0, 1.0);
  for (double& x : b) x = rng.normal(0.5, 1.0);
  const st::KsResult r = st::ks_two_sample(a, b);
  EXPECT_TRUE(r.significant());
  EXPECT_LT(r.p_value, 0.01);
}

TEST(KsTwoSample, ScaleChangeDetected) {
  st::Rng rng(10);
  std::vector<double> a(400);
  std::vector<double> b(400);
  for (double& x : a) x = rng.normal(0.0, 1.0);
  for (double& x : b) x = rng.normal(0.0, 2.0);
  EXPECT_TRUE(st::ks_two_sample(a, b).significant());
}

TEST(KsTwoSample, SymmetricInArguments) {
  st::Rng rng(11);
  std::vector<double> a(100);
  std::vector<double> b(150);
  for (double& x : a) x = rng.normal();
  for (double& x : b) x = rng.normal(0.2, 1.3);
  const st::KsResult r1 = st::ks_two_sample(a, b);
  const st::KsResult r2 = st::ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(r1.statistic, r2.statistic);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
}

TEST(KsTwoSample, UnsortedInputHandled) {
  const std::vector<double> a = {3.0, 1.0, 2.0};
  const std::vector<double> b = {2.5, 0.5, 1.5};
  const std::vector<double> a_sorted = {1.0, 2.0, 3.0};
  const std::vector<double> b_sorted = {0.5, 1.5, 2.5};
  EXPECT_DOUBLE_EQ(st::ks_two_sample(a, b).statistic,
                   st::ks_two_sample(a_sorted, b_sorted).statistic);
}

TEST(KsTwoSample, TiesHandled) {
  const std::vector<double> a = {1.0, 1.0, 1.0, 2.0};
  const std::vector<double> b = {1.0, 1.0, 2.0, 2.0};
  const st::KsResult r = st::ks_two_sample(a, b);
  EXPECT_NEAR(r.statistic, 0.25, 1e-12);
}

}  // namespace
