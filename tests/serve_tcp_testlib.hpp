#pragma once
// Shared fixtures for TCP transport tests (test_serve_tcp.cpp,
// test_sim_fault.cpp): a Server + TcpListener + event-loop thread
// bundle on an ephemeral port, and blocking client-side socket
// helpers. Linux-only, like the transport itself.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/tcp.hpp"

namespace serve_tcp_testlib {

/// Server + listener + event-loop thread with ephemeral port; tears
/// down gracefully (stop, join, shutdown) so every test also exercises
/// the drain path.
class TcpTransport {
 public:
  TcpTransport(archline::serve::ServerOptions server_options,
               archline::serve::TcpOptions tcp_options) {
    server_ = std::make_unique<archline::serve::Server>(server_options);
    server_->start();
    tcp_options.port = 0;  // ephemeral
    listener_ = std::make_unique<archline::serve::TcpListener>(*server_,
                                                               tcp_options);
    std::string error;
    opened_ = listener_->open(&error);
    EXPECT_TRUE(opened_) << error;
    if (opened_)
      loop_ = std::thread([this] { listener_->run(stop_); });
  }

  ~TcpTransport() {
    stop_.store(true, std::memory_order_release);
    if (loop_.joinable()) loop_.join();
    server_->shutdown();
  }

  [[nodiscard]] std::uint16_t port() const { return listener_->port(); }
  [[nodiscard]] archline::serve::Server& server() { return *server_; }

 private:
  std::unique_ptr<archline::serve::Server> server_;
  std::unique_ptr<archline::serve::TcpListener> listener_;
  std::atomic<bool> stop_{false};
  std::thread loop_;
  bool opened_ = false;
};

inline int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

inline bool send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads newline-delimited responses until `count` arrived or the peer
/// closed; returns what it got. Extracts at most `count` lines — extra
/// buffered bytes stay in `carry` for a later call (pass the same
/// string when splitting one pipelined reply across calls).
inline std::vector<std::string> read_lines(int fd, std::size_t count,
                                           std::string* carry = nullptr) {
  std::vector<std::string> lines;
  std::string local;
  std::string& buffer = carry ? *carry : local;
  char chunk[65536];
  for (;;) {
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && lines.size() < count;
         nl = buffer.find('\n', start)) {
      lines.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (lines.size() >= count) break;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return lines;
}

/// recv() until EOF (or error); true when the peer closed cleanly.
inline bool wait_for_eof(int fd) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return true;
    if (n < 0 && errno != EINTR) return false;
  }
}

}  // namespace serve_tcp_testlib
