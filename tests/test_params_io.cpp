// Tests for MachineParams text serialization.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/params_io.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

TEST(ParamsIo, RoundTripIsExact) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const co::MachineParams m = spec.machine();
    const co::MachineParams back =
        co::machine_from_text(co::to_text(m, spec.name));
    EXPECT_DOUBLE_EQ(back.tau_flop, m.tau_flop) << spec.name;
    EXPECT_DOUBLE_EQ(back.eps_flop, m.eps_flop) << spec.name;
    EXPECT_DOUBLE_EQ(back.tau_mem, m.tau_mem) << spec.name;
    EXPECT_DOUBLE_EQ(back.eps_mem, m.eps_mem) << spec.name;
    EXPECT_DOUBLE_EQ(back.pi1, m.pi1) << spec.name;
    EXPECT_DOUBLE_EQ(back.delta_pi, m.delta_pi) << spec.name;
  }
}

TEST(ParamsIo, UncappedSerializesAsInf) {
  const co::MachineParams m =
      pl::platform("GTX Titan").machine_uncapped();
  const std::string text = co::to_text(m);
  EXPECT_NE(text.find("delta_pi = inf"), std::string::npos);
  EXPECT_TRUE(co::machine_from_text(text).uncapped());
}

TEST(ParamsIo, NameBecomesComment) {
  const std::string text =
      co::to_text(pl::platform("Xeon Phi").machine(), "Xeon Phi");
  EXPECT_EQ(text.rfind("# Xeon Phi\n", 0), 0u);
}

TEST(ParamsIo, CommentsAndBlankLinesIgnored) {
  const co::MachineParams m = pl::platform("NUC CPU").machine();
  const std::string text =
      "# a comment\n\n" + co::to_text(m) + "\n# trailing\n";
  EXPECT_NO_THROW((void)co::machine_from_text(text));
}

TEST(ParamsIo, WhitespaceTolerant) {
  const std::string text =
      "tau_flop =  1e-11 \n eps_flop= 3e-11\ntau_mem = 4e-12\n"
      "eps_mem = 2.7e-10\npi1 = 123\ndelta_pi = 164\n";
  const co::MachineParams m = co::machine_from_text(text);
  EXPECT_DOUBLE_EQ(m.pi1, 123.0);
  EXPECT_DOUBLE_EQ(m.tau_flop, 1e-11);
}

TEST(ParamsIo, MissingKeyThrows) {
  const std::string text = "tau_flop = 1e-11\neps_flop = 3e-11\n";
  EXPECT_THROW((void)co::machine_from_text(text), std::invalid_argument);
}

TEST(ParamsIo, MalformedLineThrows) {
  EXPECT_THROW((void)co::machine_from_text("tau_flop 1e-11\n"),
               std::invalid_argument);
}

TEST(ParamsIo, BadNumberThrows) {
  const std::string text =
      "tau_flop = abc\neps_flop = 1\ntau_mem = 1\neps_mem = 1\n"
      "pi1 = 1\ndelta_pi = 1\n";
  EXPECT_THROW((void)co::machine_from_text(text), std::exception);
}

TEST(ParamsIo, InvalidMachineRejected) {
  // Parses fine but violates model invariants (negative pi1).
  const std::string text =
      "tau_flop = 1e-11\neps_flop = 3e-11\ntau_mem = 4e-12\n"
      "eps_mem = 2.7e-10\npi1 = -5\ndelta_pi = 164\n";
  EXPECT_THROW((void)co::machine_from_text(text), std::invalid_argument);
}

TEST(ParamsIo, UnknownKeysIgnored) {
  const co::MachineParams m = pl::platform("APU CPU").machine();
  const std::string text = co::to_text(m) + "vendor = AMD\n";
  EXPECT_NO_THROW((void)co::machine_from_text(text));
}

}  // namespace
