// Tests for the energy integrators: the paper's mean-power estimator and
// the trapezoidal reference.

#include <gtest/gtest.h>

#include <stdexcept>

#include "powermon/integrator.hpp"

namespace {

namespace pm = archline::powermon;
using archline::stats::Rng;

pm::SampledCapture sample_trace(const pm::PowerTrace& trace, double duration,
                                std::uint64_t seed = 1,
                                bool jitter = false) {
  pm::Capture cap;
  cap.rails.push_back({.channel = {.name = "x", .nominal_volts = 12.0},
                       .trace = trace});
  cap.window_begin = 0.0;
  cap.window_end = duration;
  Rng rng(seed);
  pm::SamplerConfig cfg;
  cfg.quantize = false;
  if (!jitter) cfg.timestamp_jitter_s = 0.0;
  return pm::sample(cap, cfg, rng);
}

TEST(IntegrateMean, ConstantPowerExact) {
  pm::PowerTrace t;
  t.add_constant(2.0, 50.0);
  const pm::Measurement m = pm::integrate_mean(sample_trace(t, 2.0));
  EXPECT_DOUBLE_EQ(m.seconds, 2.0);
  EXPECT_NEAR(m.avg_watts, 50.0, 1e-9);
  EXPECT_NEAR(m.joules, 100.0, 1e-6);
  EXPECT_TRUE(m.consistent());
}

TEST(IntegrateMean, RampCloseToTrueIntegral) {
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_point(1.0, 100.0);  // true energy 50 J
  const pm::Measurement m = pm::integrate_mean(sample_trace(t, 1.0));
  EXPECT_NEAR(m.joules, 50.0, 0.2);
}

TEST(IntegrateMean, MultiChannelSumsAveragePowers) {
  pm::PowerTrace t;
  t.add_constant(1.0, 30.0);
  pm::Capture cap;
  cap.rails.push_back({.channel = {.name = "a", .nominal_volts = 12.0},
                       .trace = t});
  cap.rails.push_back({.channel = {.name = "b", .nominal_volts = 12.0},
                       .trace = t});
  cap.window_end = 1.0;
  Rng rng(2);
  pm::SamplerConfig cfg;
  cfg.quantize = false;
  cfg.timestamp_jitter_s = 0.0;
  const pm::Measurement m = pm::integrate_mean(pm::sample(cap, cfg, rng));
  EXPECT_NEAR(m.avg_watts, 60.0, 1e-9);
}

TEST(IntegrateMean, EmptyCaptureThrows) {
  pm::SampledCapture cap;
  cap.window_end = 1.0;
  EXPECT_THROW((void)pm::integrate_mean(cap), std::invalid_argument);
}

TEST(IntegrateMean, EmptyWindowThrows) {
  pm::PowerTrace t;
  t.add_constant(1.0, 1.0);
  pm::SampledCapture cap = sample_trace(t, 1.0);
  cap.window_end = cap.window_begin;
  EXPECT_THROW((void)pm::integrate_mean(cap), std::invalid_argument);
}

TEST(IntegrateTrapezoid, ConstantPowerExact) {
  pm::PowerTrace t;
  t.add_constant(3.0, 40.0);
  const pm::Measurement m = pm::integrate_trapezoid(sample_trace(t, 3.0));
  EXPECT_NEAR(m.joules, 120.0, 1e-6);
  EXPECT_NEAR(m.avg_watts, 40.0, 1e-7);
}

TEST(IntegrateTrapezoid, RampExactForLinearTrace) {
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_point(1.0, 100.0);
  const pm::Measurement m = pm::integrate_trapezoid(sample_trace(t, 1.0));
  // Trapezoid is exact on piecewise-linear signals sampled without jitter.
  EXPECT_NEAR(m.joules, 50.0, 0.1);
}

TEST(IntegrateTrapezoid, NeedsTwoSamples) {
  pm::SampledCapture cap;
  cap.window_end = 1.0;
  pm::ChannelSamples ch;
  ch.samples.push_back({.t = 0.0, .volts = 12.0, .amps = 1.0});
  cap.channels.push_back(ch);
  EXPECT_THROW((void)pm::integrate_trapezoid(cap), std::invalid_argument);
}

TEST(Integrators, AgreeOnStationarySignal) {
  pm::PowerTrace t;
  t.add_constant(1.0, 75.0);
  const auto sampled = sample_trace(t, 1.0);
  const pm::Measurement mean = pm::integrate_mean(sampled);
  const pm::Measurement trap = pm::integrate_trapezoid(sampled);
  EXPECT_NEAR(mean.joules, trap.joules, 0.2);
}

TEST(Integrators, MeanEstimatorBiasBoundedOnTransient) {
  // A short high spike inside a long window: mean-of-samples handles it as
  // long as sampling resolves the spike.
  pm::PowerTrace t;
  t.add_point(0.0, 10.0);
  t.add_point(0.45, 10.0);
  t.add_point(0.5, 110.0);
  t.add_point(0.55, 10.0);
  t.add_point(1.0, 10.0);
  const double truth = t.total_energy();
  const pm::Measurement m = pm::integrate_mean(sample_trace(t, 1.0));
  EXPECT_NEAR(m.joules, truth, 0.05 * truth);
}

TEST(Measurement, ConsistencyHolds) {
  pm::Measurement m;
  m.seconds = 2.0;
  m.avg_watts = 5.0;
  m.joules = 10.0;
  EXPECT_TRUE(m.consistent());
  m.joules = 11.0;
  EXPECT_FALSE(m.consistent());
}

}  // namespace
