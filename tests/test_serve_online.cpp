// Serve-layer tests for the online-fitting ingest path: the observe /
// params / refit endpoints end to end, response-cache generation
// scoping (the stale-predict regression), and the live Server with the
// background resolver streaming >= 1k tuples.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "fit/model_fit.hpp"
#include "microbench/suite.hpp"
#include "platforms/platform_db.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "stats/rng.hpp"

namespace {

using namespace archline::serve;
namespace fitns = archline::fit;

// Stream generator: a machine deliberately far from the Table I
// "GTX Titan" spec, so learned replies visibly diverge from static ones.
constexpr double kTauFlop = 2e-11;
constexpr double kTauMem = 1.5e-10;
constexpr double kEpsFlop = 5e-11;
constexpr double kEpsMem = 4e-10;
constexpr double kPi1 = 3.0;

struct Tuple {
  double flops, bytes, seconds, joules;
};

// Noise rides on the measured energy only: noisy seconds would be an
// errors-in-variables regressor (see test_online_fit.cpp), which is a
// property of the data, not of the estimators under test here.
Tuple make_tuple(double flops, double intensity, double noise_sigma,
                 archline::stats::Rng& rng) {
  const double bytes = flops / intensity;
  const double t = std::max(flops * kTauFlop, bytes * kTauMem);
  const double e = flops * kEpsFlop + bytes * kEpsMem + kPi1 * t;
  return {flops, bytes, t, e * rng.lognormal(0.0, noise_sigma)};
}

/// Renders one observe request carrying `n` tuples.
std::string observe_line(const std::string& platform, std::span<const Tuple> batch) {
  std::ostringstream out;
  out.precision(17);
  out << R"({"type":"observe","platform":")" << platform
      << R"(","observations":[)";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i) out << ',';
    out << R"({"flops":)" << batch[i].flops << R"(,"bytes":)" << batch[i].bytes
        << R"(,"seconds":)" << batch[i].seconds << R"(,"joules":)"
        << batch[i].joules << '}';
  }
  out << "]}";
  return out.str();
}

std::vector<Tuple> make_batch(std::size_t n, double noise_sigma,
                              std::uint64_t seed) {
  static constexpr double kIntensities[] = {0.25, 0.5, 1, 2, 4, 8, 16, 32};
  static constexpr double kFlops[] = {5e7, 1e8, 2e8, 4e8};
  archline::stats::Rng rng(seed, 11);
  std::vector<Tuple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(make_tuple(kFlops[(i / 8) % 4], kIntensities[i % 8],
                             noise_sigma, rng));
  return out;
}

const char* kPredict =
    R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":8})";

ServerOptions test_options() {
  ServerOptions o;
  o.threads = 2;
  o.online.nm_evaluations = 2000;
  o.online.lm_iterations = 30;
  return o;
}

// The stale-cache regression this PR exists to prevent: a cached predict
// reply must NOT survive a model re-solve. Before generation scoping,
// the byte-identical request would keep hitting the pre-refit entry
// forever.
TEST(ServeOnline, CachedPredictGoesStaleAfterRefit) {
  Server server(test_options());
  const std::string before = server.handle_now(kPredict);
  EXPECT_EQ(server.handle_now(kPredict), before);  // plain cache hit
  EXPECT_EQ(server.cache_stats().hits, 1u);

  const auto batch = make_batch(16, 0.0, 3);
  EXPECT_TRUE(Json::parse(server.handle_now(observe_line("GTX Titan", batch)))
                  .bool_or("ok", false));
  const std::string refit =
      server.handle_now(R"({"type":"refit","platform":"GTX Titan"})");
  ASSERT_TRUE(Json::parse(refit).bool_or("ok", false)) << refit;
  EXPECT_EQ(server.online().generation(), 1u);

  const std::string after = server.handle_now(kPredict);
  EXPECT_NE(after, before)
      << "predict still serving the pre-refit generation from cache";
  const auto cache = server.cache_stats();
  EXPECT_GE(cache.stale, 1u) << "stale entry was not detected and evicted";
  // The post-refit reply is itself cacheable under the new generation.
  EXPECT_EQ(server.handle_now(kPredict), after);

  // Un-scoped endpoints ride out the generation bump: "platforms" does
  // not depend on learned parameters, so its entry survives the refit.
  const std::string platforms = server.handle_now(R"({"type":"platforms"})");
  const auto hits = server.cache_stats().hits;
  EXPECT_EQ(server.handle_now(R"({"type":"platforms"})"), platforms);
  EXPECT_EQ(server.cache_stats().hits, hits + 1);
}

TEST(ServeOnline, ParamsLifecycleAndValidation) {
  Server server(test_options());
  const char* kParams = R"({"type":"params","platform":"GTX Titan"})";

  const Json unfitted = Json::parse(server.handle_now(kParams));
  EXPECT_TRUE(unfitted.bool_or("ok", false));
  EXPECT_FALSE(unfitted.bool_or("fitted", true));

  const auto batch = make_batch(24, 0.002, 4);
  (void)server.handle_now(observe_line("GTX Titan", batch));
  (void)server.handle_now(R"({"type":"refit","platform":"GTX Titan"})");

  const Json fitted = Json::parse(server.handle_now(kParams));
  ASSERT_TRUE(fitted.bool_or("ok", false));
  EXPECT_TRUE(fitted.bool_or("fitted", false));
  EXPECT_EQ(fitted.number_or("epoch", 0), 1.0);
  EXPECT_EQ(fitted.number_or("observations", 0), 24.0);
  const Json* machine = fitted.find("machine");
  ASSERT_NE(machine, nullptr);
  // The learned linear constants land near the generator, far from the
  // Table I spec.
  const double eps_flop = machine->number_or("eps_flop", 0.0);
  EXPECT_LT(std::abs(eps_flop - kEpsFlop) / kEpsFlop, 0.10) << eps_flop;
  const Json* rls = fitted.find("rls");
  ASSERT_NE(rls, nullptr);
  const Json* row = rls->find("eps_flop");
  ASSERT_NE(row, nullptr);
  // CI bounds must bracket the point estimate.
  EXPECT_LE(row->number_or("ci95_lo", 1e300), row->number_or("value", 0.0));
  EXPECT_GE(row->number_or("ci95_hi", -1e300), row->number_or("value", 0.0));

  // Error shapes (full matrix golden-pinned; spot-check the codes here).
  EXPECT_EQ(Json::parse(server.handle_now(
                R"({"type":"observe","platform":"Nope","observations":[]})"))
                .string_or("error", ""),
            "unknown_platform");
  EXPECT_EQ(Json::parse(server.handle_now(
                R"({"type":"refit","platform":"Arndale GPU"})"))
                .string_or("error", ""),
            "fit_failed");
}

// The e2e acceptance path: a live server streams >= 1k tuples while the
// background resolver re-solves on its own cadence; afterwards the
// published parameters agree with an offline fit of the same stream and
// cached predictions reflect the new epoch.
TEST(ServeOnline, StreamingThousandTuplesWithBackgroundResolver) {
  ServerOptions options = test_options();
  options.refit_interval_ms = 5;
  Server server(options);
  server.start();
  ASSERT_NE(server.resolver(), nullptr);

  const std::string before = server.handle_now(kPredict);

  constexpr std::size_t kBatches = 33;
  constexpr std::size_t kBatchSize = 32;  // 1056 tuples total
  std::vector<Tuple> all;
  all.reserve(kBatches * kBatchSize);
  for (std::size_t b = 0; b < kBatches; ++b) {
    const auto batch = make_batch(kBatchSize, 0.002, 100 + b);
    const Json reply =
        Json::parse(server.handle_now(observe_line("GTX Titan", batch)));
    ASSERT_TRUE(reply.bool_or("ok", false));
    EXPECT_EQ(reply.number_or("accepted", 0),
              static_cast<double>(kBatchSize));
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(server.online().observations("GTX Titan"), all.size());

  // The resolver fires on its own thread; wait for a publish.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.online().generation() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GT(server.online().generation(), 0u)
      << "background resolver never published";
  EXPECT_GT(server.resolver()->sweeps(), 0u);

  // Force one final synchronous re-solve over the complete window so the
  // published snapshot covers every streamed tuple, then compare with an
  // offline fit of the identical data and options.
  const std::string refit =
      server.handle_now(R"({"type":"refit","platform":"GTX Titan"})");
  ASSERT_TRUE(Json::parse(refit).bool_or("ok", false)) << refit;
  const auto snap = server.online().published("GTX Titan");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->window_observations, all.size());

  std::vector<archline::microbench::Observation> obs;
  obs.reserve(all.size());
  char label[64];
  for (const Tuple& t : all) {
    archline::microbench::Observation o;
    o.kernel.flops = t.flops;
    o.kernel.bytes = t.bytes;
    // Mirror OnlineStore::resolve()'s workload-shape labeling so the
    // offline fit sees the identical kernel grouping.
    std::snprintf(label, sizeof label, "%.9g/%.9g", t.flops, t.bytes);
    o.kernel.label = label;
    o.seconds = t.seconds;
    o.joules = t.joules;
    o.watts = t.joules / t.seconds;
    obs.push_back(o);
  }
  fitns::FitOptions opt;
  opt.kind = fitns::ModelKind::Capped;
  opt.nm_evaluations = options.online.nm_evaluations;
  opt.lm_iterations = options.online.lm_iterations;
  const fitns::FitResult offline = fitns::fit_observations(obs, opt);
  // Same solver, same window, same budget: the time-side constants the
  // snapshot takes from the re-solve must match the offline run almost
  // exactly; the RLS-blended energy constants within a loose band.
  EXPECT_NEAR(snap->machine.tau_flop, offline.machine.tau_flop,
              1e-6 * std::abs(offline.machine.tau_flop));
  EXPECT_NEAR(snap->machine.tau_mem, offline.machine.tau_mem,
              1e-6 * std::abs(offline.machine.tau_mem));
  EXPECT_LT(std::abs(snap->machine.eps_flop - offline.machine.eps_flop) /
                offline.machine.eps_flop,
            0.30);
  // And both near the generator truth.
  EXPECT_LT(std::abs(snap->machine.eps_flop - kEpsFlop) / kEpsFlop, 0.10);
  EXPECT_LT(std::abs(snap->machine.pi1 - kPi1) / kPi1, 0.10);

  // Cached predictions reflect the new epoch.
  const std::string after = server.handle_now(kPredict);
  EXPECT_NE(after, before);
  EXPECT_EQ(server.handle_now(kPredict), after);

  // Metrics carry the online block.
  const Json stats = Json::parse(server.handle_now(R"({"type":"stats"})"));
  const Json* online = stats.find("online");
  ASSERT_NE(online, nullptr);
  EXPECT_EQ(online->number_or("observations", 0),
            static_cast<double>(all.size()));
  EXPECT_GE(online->number_or("resolves", 0), 1.0);
  EXPECT_GE(online->number_or("platforms_fitted", 0), 1.0);

  server.shutdown();
}

/// One "fit" request whose observations also seed the online window.
std::string seeded_fit_line(const std::string& platform,
                            std::span<const Tuple> batch) {
  std::ostringstream out;
  out.precision(17);
  out << R"({"type":"fit","platform":")" << platform
      << R"(","seed_online":true,"observations":[)";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i) out << ',';
    out << R"({"flops":)" << batch[i].flops << R"(,"bytes":)" << batch[i].bytes
        << R"(,"seconds":)" << batch[i].seconds << R"(,"joules":)"
        << batch[i].joules << '}';
  }
  out << "]}";
  return out.str();
}

// The seed_online satellite: a bulk calibration upload ("fit" with
// "seed_online": true) must land its tuples in the platform's online
// window, so a subsequent refit + params reflects exactly those tuples.
TEST(ServeOnline, SeededFitPrimesTheOnlineWindow) {
  Server server(test_options());
  const auto batch = make_batch(24, 0.0, 7);

  const Json fit = Json::parse(
      server.handle_now(seeded_fit_line("GTX Titan", batch)));
  ASSERT_TRUE(fit.bool_or("ok", false));
  EXPECT_EQ(fit.string_or("seeded_platform", ""), "GTX Titan");
  EXPECT_EQ(fit.number_or("seeded", 0), 24.0);
  EXPECT_EQ(server.online().observations("GTX Titan"), 24u);

  // The seeded tuples are the whole window: refit publishes a snapshot
  // fitted to them, and params reports their count and constants.
  ASSERT_TRUE(Json::parse(server.handle_now(
                  R"({"type":"refit","platform":"GTX Titan"})"))
                  .bool_or("ok", false));
  const Json params = Json::parse(
      server.handle_now(R"({"type":"params","platform":"GTX Titan"})"));
  ASSERT_TRUE(params.bool_or("ok", false));
  EXPECT_TRUE(params.bool_or("fitted", false));
  EXPECT_EQ(params.number_or("observations", 0), 24.0);
  const Json* machine = params.find("machine");
  ASSERT_NE(machine, nullptr);
  const double eps_flop = machine->number_or("eps_flop", 0.0);
  EXPECT_LT(std::abs(eps_flop - kEpsFlop) / kEpsFlop, 0.10) << eps_flop;
  // And the published machine matches the seeded fit's own solution on
  // the time constants (same solver, same data).
  const Json* fit_machine = fit.find("machine");
  ASSERT_NE(fit_machine, nullptr);
  EXPECT_NEAR(machine->number_or("tau_flop", 0.0),
              fit_machine->number_or("tau_flop", 1.0), 1e-6);

  // Seeding requests are cache-exempt: the byte-identical request must
  // re-execute (and re-seed), never replay from the response cache.
  const auto hits_before = server.cache_stats().hits;
  (void)server.handle_now(seeded_fit_line("GTX Titan", batch));
  EXPECT_EQ(server.cache_stats().hits, hits_before);
  EXPECT_EQ(server.online().observations("GTX Titan"), 48u);

  // Validation is up front: a seed against an unknown platform fails
  // before any fitting work, and a plain fit still caches.
  EXPECT_EQ(Json::parse(server.handle_now(
                R"({"type":"fit","platform":"Nope","seed_online":true,)"
                R"("observations":[{"flops":1,"bytes":1,"seconds":1,"joules":1}]})"))
                .string_or("error", ""),
            "unknown_platform");
}

// policy_advise rides the same generation scoping as predict: a cached
// recommendation must not survive a refit, and the post-refit
// recommendation must be computed from the snapshot's per-point
// machines.
TEST(ServeOnline, PolicyAdviseTracksTheLearnedModel) {
  Server server(test_options());
  const char* kAdvise =
      R"({"type":"policy_advise","platform":"GTX Titan",)"
      R"("objective":"min_energy","flops":1e12,"intensity":8,"period_s":60.0})";
  const std::string before = server.handle_now(kAdvise);
  ASSERT_TRUE(Json::parse(before).bool_or("ok", false)) << before;
  EXPECT_EQ(server.handle_now(kAdvise), before);  // cache hit
  EXPECT_GE(server.cache_stats().hits, 1u);

  const auto batch = make_batch(24, 0.0, 9);
  (void)server.handle_now(observe_line("GTX Titan", batch));
  ASSERT_TRUE(Json::parse(server.handle_now(
                  R"({"type":"refit","platform":"GTX Titan"})"))
                  .bool_or("ok", false));

  const std::string after = server.handle_now(kAdvise);
  EXPECT_NE(after, before)
      << "policy_advise still serving the pre-refit generation";

  // The reply's recommended energy must equal a hand-derived evaluation
  // against the published snapshot's per-point machines — the endpoint
  // and the core engine must agree to double precision.
  const auto snap = server.online().published("GTX Titan");
  ASSERT_NE(snap, nullptr);
  const auto& spec = archline::platforms::platform("GTX Titan");
  ASSERT_EQ(snap->op_machines.size(), spec.operating_points.size());
  archline::core::PolicyRequest preq;
  preq.workload =
      archline::core::Workload::from_intensity(1e12, 8.0);
  preq.objective = archline::core::Objective::MinEnergy;
  preq.period_s = 60.0;
  const archline::core::PolicyAdvice advice = archline::core::policy_advise(
      snap->op_machines, spec.operating_points.points,
      spec.operating_points.park_watts(), preq);
  ASSERT_TRUE(advice.has_recommendation());
  const Json reply = Json::parse(after);
  const Json* rec = reply.find("recommended");
  ASSERT_NE(rec, nullptr);
  EXPECT_NEAR(rec->number_or("energy_j", 0.0),
              advice.recommended().energy_j,
              1e-9 * advice.recommended().energy_j);
  EXPECT_EQ(rec->string_or("plan", ""),
            archline::core::to_string(advice.recommended().kind));
}

// Observe keeps flowing while synchronous refits run on other threads —
// the ingest path must never block on a solve (also a TSan target).
TEST(ServeOnline, ObserveRemainsLiveUnderConcurrentRefit) {
  ServerOptions options = test_options();
  options.online.nm_evaluations = 300;
  options.online.lm_iterations = 8;
  Server server(options);

  const auto seedbatch = make_batch(16, 0.002, 50);
  (void)server.handle_now(observe_line("GTX Titan", seedbatch));

  std::thread refitter([&] {
    for (int i = 0; i < 8; ++i)
      ASSERT_TRUE(Json::parse(server.handle_now(
                      R"({"type":"refit","platform":"GTX Titan"})"))
                      .bool_or("ok", false));
  });
  std::uint64_t accepted = 0;
  for (int b = 0; b < 100; ++b) {
    const auto batch = make_batch(8, 0.002, 200 + static_cast<std::uint64_t>(b));
    const Json reply =
        Json::parse(server.handle_now(observe_line("GTX Titan", batch)));
    ASSERT_TRUE(reply.bool_or("ok", false));
    accepted += static_cast<std::uint64_t>(reply.number_or("accepted", 0));
  }
  refitter.join();
  EXPECT_EQ(accepted, 800u);
  EXPECT_EQ(server.online().observations("GTX Titan"), 816u);
  EXPECT_GE(server.online().generation(), 8u);
}

}  // namespace
