// Metrics tests: latency-histogram quantiles pinned at bucket
// boundaries (including the clamp when rank lands beyond the last
// populated bucket — the old code invented a value one bucket past the
// histogram's range), connection lifecycle counters, and their
// rendering in the stats JSON and the human-readable summary.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace archline::serve;

// ---- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogram, EmptySnapshotReportsZero) {
  LatencyHistogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, QuantilesPinnedAtBucketBoundaries) {
  // All mass in bucket 10 ([2^10, 2^11) ns): q=0 is the lower edge,
  // q=1 the upper edge, q=0.5 the log-midpoint.
  LatencyHistogram::Snapshot snap;
  snap.counts[10] = 100;
  snap.total = 100;
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), std::exp2(10) * 1e-9);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), std::exp2(11) * 1e-9);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), std::exp2(10.5) * 1e-9);
}

TEST(LatencyHistogram, QuantileWalksAcrossBuckets) {
  // 50 samples in bucket 4, 50 in bucket 8: the median splits exactly
  // at bucket 4's upper edge and q=0.75 is bucket 8's log-midpoint.
  LatencyHistogram::Snapshot snap;
  snap.counts[4] = 50;
  snap.counts[8] = 50;
  snap.total = 100;
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), std::exp2(5) * 1e-9);
  EXPECT_DOUBLE_EQ(snap.quantile(0.75), std::exp2(8.5) * 1e-9);
}

TEST(LatencyHistogram, RankBeyondLastPopulatedBucketClampsToItsUpperEdge) {
  // Regression: with rank past the populated mass (total larger than
  // the bucket sum — the shape floating-point accumulation produces),
  // quantile() used to return exp2(kBuckets) ns, one bucket past the
  // histogram's own range. It must clamp to the top populated bucket's
  // upper edge instead.
  LatencyHistogram::Snapshot snap;
  snap.counts[10] = 100;
  snap.total = 200;  // rank(1.0) = 200 > 100 = walkable mass
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), std::exp2(11) * 1e-9);
  EXPECT_LT(snap.quantile(1.0),
            std::exp2(LatencyHistogram::kBuckets) * 1e-9);
}

TEST(LatencyHistogram, TopBucketClampStaysInRange) {
  // Even with mass in the very top bucket, the clamp is the histogram's
  // own upper edge, never past it.
  LatencyHistogram::Snapshot snap;
  snap.counts[LatencyHistogram::kBuckets - 1] = 1;
  snap.total = 5;  // rank lands beyond the single sample
  EXPECT_DOUBLE_EQ(snap.quantile(1.0),
                   std::exp2(LatencyHistogram::kBuckets) * 1e-9);
}

TEST(LatencyHistogram, RecordPlacesSamplesInPowerOfTwoBuckets) {
  LatencyHistogram h;
  h.record(1.5e-6);   // 1500 ns -> bucket 10
  h.record(3.0e-6);   // 3000 ns -> bucket 11
  h.record(0.0);      // clamps to bucket 0
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.counts[10], 1u);
  EXPECT_EQ(snap.counts[11], 1u);
  EXPECT_EQ(snap.counts[0], 1u);
}

// ---- Connection counters --------------------------------------------------

TEST(ServeMetrics, ConnectionLifecycleCounters) {
  Metrics m;
  m.on_connection_opened();
  m.on_connection_opened();
  m.on_connection_opened();
  m.on_connection_closed();
  m.on_connection_rejected();
  m.on_connection_idle_closed();
  m.on_deadline_exceeded();
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.connections_accepted, 3u);
  EXPECT_EQ(snap.connections_open, 2u);
  EXPECT_EQ(snap.connections_rejected, 1u);
  EXPECT_EQ(snap.connections_idle_closed, 1u);
  EXPECT_EQ(snap.deadline_exceeded, 1u);
}

TEST(ServeMetrics, StatsJsonCarriesConnectionAndDeadlineFields) {
  Metrics m;
  m.on_connection_opened();
  m.on_connection_rejected();
  m.on_deadline_exceeded();
  m.on_completed(RequestType::Predict, true, 1e-4);
  const Json stats = Json::parse(m.to_json(ShardedLruCache::Stats{}));
  const Json* conns = stats.find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_DOUBLE_EQ(conns->number_or("open", -1), 1.0);
  EXPECT_DOUBLE_EQ(conns->number_or("accepted", -1), 1.0);
  EXPECT_DOUBLE_EQ(conns->number_or("rejected", -1), 1.0);
  EXPECT_DOUBLE_EQ(conns->number_or("idle_closed", -1), 0.0);
  EXPECT_DOUBLE_EQ(stats.number_or("deadline_exceeded", -1), 1.0);
}

TEST(ServeMetrics, SummaryMentionsConnectionsAndDeadlines) {
  Metrics m;
  m.on_connection_opened();
  m.on_deadline_exceeded();
  const std::string text = m.summary(ShardedLruCache::Stats{});
  EXPECT_NE(text.find("connections"), std::string::npos);
  EXPECT_NE(text.find("1 open, 1 accepted"), std::string::npos);
  EXPECT_NE(text.find("deadlined    1"), std::string::npos);
}

}  // namespace
