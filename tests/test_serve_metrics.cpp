// Metrics tests: latency-histogram quantiles pinned at bucket
// boundaries (including the clamp when rank lands beyond the last
// populated bucket — the old code invented a value one bucket past the
// histogram's range), connection lifecycle counters, and their
// rendering in the stats JSON and the human-readable summary.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace archline::serve;

// ---- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogram, EmptySnapshotReportsZero) {
  LatencyHistogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, QuantilesPinnedAtBucketBoundaries) {
  // All mass in bucket 10 ([2^10, 2^11) ns): q=0 is the lower edge,
  // q=1 the upper edge, q=0.5 the log-midpoint.
  LatencyHistogram::Snapshot snap;
  snap.counts[10] = 100;
  snap.total = 100;
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), std::exp2(10) * 1e-9);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), std::exp2(11) * 1e-9);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), std::exp2(10.5) * 1e-9);
}

TEST(LatencyHistogram, QuantileWalksAcrossBuckets) {
  // 50 samples in bucket 4, 50 in bucket 8: the median splits exactly
  // at bucket 4's upper edge and q=0.75 is bucket 8's log-midpoint.
  LatencyHistogram::Snapshot snap;
  snap.counts[4] = 50;
  snap.counts[8] = 50;
  snap.total = 100;
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), std::exp2(5) * 1e-9);
  EXPECT_DOUBLE_EQ(snap.quantile(0.75), std::exp2(8.5) * 1e-9);
}

TEST(LatencyHistogram, RankBeyondLastPopulatedBucketClampsToItsUpperEdge) {
  // Regression: with rank past the populated mass (total larger than
  // the bucket sum — the shape floating-point accumulation produces),
  // quantile() used to return exp2(kBuckets) ns, one bucket past the
  // histogram's own range. It must clamp to the top populated bucket's
  // upper edge instead.
  LatencyHistogram::Snapshot snap;
  snap.counts[10] = 100;
  snap.total = 200;  // rank(1.0) = 200 > 100 = walkable mass
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), std::exp2(11) * 1e-9);
  EXPECT_LT(snap.quantile(1.0),
            std::exp2(LatencyHistogram::kBuckets) * 1e-9);
}

TEST(LatencyHistogram, TopBucketClampStaysInRange) {
  // Even with mass in the very top bucket, the clamp is the histogram's
  // own upper edge, never past it.
  LatencyHistogram::Snapshot snap;
  snap.counts[LatencyHistogram::kBuckets - 1] = 1;
  snap.total = 5;  // rank lands beyond the single sample
  EXPECT_DOUBLE_EQ(snap.quantile(1.0),
                   std::exp2(LatencyHistogram::kBuckets) * 1e-9);
}

TEST(LatencyHistogram, RecordPlacesSamplesInPowerOfTwoBuckets) {
  LatencyHistogram h;
  h.record(1.5e-6);   // 1500 ns -> bucket 10
  h.record(3.0e-6);   // 3000 ns -> bucket 11
  h.record(0.0);      // clamps to bucket 0
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.counts[10], 1u);
  EXPECT_EQ(snap.counts[11], 1u);
  EXPECT_EQ(snap.counts[0], 1u);
}

// ---- Connection counters --------------------------------------------------

TEST(ServeMetrics, ConnectionLifecycleCounters) {
  Metrics m;
  m.on_connection_opened();
  m.on_connection_opened();
  m.on_connection_opened();
  m.on_connection_closed();
  m.on_connection_rejected();
  m.on_connection_idle_closed();
  m.on_deadline_exceeded(kLightLane);
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.connections_accepted, 3u);
  EXPECT_EQ(snap.connections_open, 2u);
  EXPECT_EQ(snap.connections_rejected, 1u);
  EXPECT_EQ(snap.connections_idle_closed, 1u);
  EXPECT_EQ(snap.deadline_exceeded, 1u);
}

TEST(ServeMetrics, StatsJsonCarriesConnectionAndDeadlineFields) {
  Metrics m;
  m.on_connection_opened();
  m.on_connection_rejected();
  m.on_deadline_exceeded(kHeavyLane);
  m.on_completed(Registry::instance().find("predict"), true, 1e-4);
  const Json stats = Json::parse(m.to_json(ShardedLruCache::Stats{}));
  const Json* conns = stats.find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_DOUBLE_EQ(conns->number_or("open", -1), 1.0);
  EXPECT_DOUBLE_EQ(conns->number_or("accepted", -1), 1.0);
  EXPECT_DOUBLE_EQ(conns->number_or("rejected", -1), 1.0);
  EXPECT_DOUBLE_EQ(conns->number_or("idle_closed", -1), 0.0);
  EXPECT_DOUBLE_EQ(stats.number_or("deadline_exceeded", -1), 1.0);
}

TEST(ServeMetrics, SummaryMentionsConnectionsAndDeadlines) {
  Metrics m;
  m.on_connection_opened();
  m.on_deadline_exceeded(kLightLane);
  const std::string text = m.summary(ShardedLruCache::Stats{});
  EXPECT_NE(text.find("connections"), std::string::npos);
  EXPECT_NE(text.find("1 open, 1 accepted"), std::string::npos);
  EXPECT_NE(text.find("deadlined    1"), std::string::npos);
}

// ---- Per-lane and per-endpoint accounting ----------------------------------

TEST(ServeMetrics, LaneCountersStaySeparate) {
  Metrics m;
  m.on_rejected(kHeavyLane);
  m.on_rejected(kHeavyLane);
  m.on_rejected(kLightLane);
  m.on_deadline_exceeded(kHeavyLane);
  m.on_lane_depth(kLightLane, 5);
  m.on_lane_depth(kLightLane, 2);  // depth is a gauge, peak sticks at 5
  m.on_lane_depth(kHeavyLane, 7);
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.lanes[kLightLane].rejected, 1u);
  EXPECT_EQ(snap.lanes[kHeavyLane].rejected, 2u);
  EXPECT_EQ(snap.lanes[kHeavyLane].deadline_exceeded, 1u);
  EXPECT_EQ(snap.lanes[kLightLane].depth, 2u);
  EXPECT_EQ(snap.lanes[kLightLane].peak, 5u);
  EXPECT_EQ(snap.lanes[kHeavyLane].peak, 7u);
  // Aggregates: rejected/deadline sum, depth sums, peak is the max.
  EXPECT_EQ(snap.rejected, 3u);
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  EXPECT_EQ(snap.queue_depth, 9u);
  EXPECT_EQ(snap.queue_peak, 7u);
}

TEST(ServeMetrics, LatencyLandsInTheEndpointsClassHistogram) {
  Metrics m;
  const Endpoint* predict = Registry::instance().find("predict");
  const Endpoint* fit = Registry::instance().find("fit");
  ASSERT_NE(predict, nullptr);
  ASSERT_NE(fit, nullptr);
  m.on_completed(predict, true, 1e-6);  // Light
  m.on_completed(fit, true, 1e-3);      // Heavy
  m.on_completed(nullptr, false, 1e-6);  // pre-dispatch error -> Light
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.lanes[kLightLane].latency.total, 2u);
  EXPECT_EQ(snap.lanes[kHeavyLane].latency.total, 1u);
  EXPECT_EQ(snap.latency.total, 3u);
  EXPECT_EQ(snap.by_endpoint[predict->id], 1u);
  EXPECT_EQ(snap.by_endpoint[fit->id], 1u);
  EXPECT_EQ(snap.by_endpoint[Metrics::kInvalidSlot], 1u);
  EXPECT_EQ(snap.errors, 1u);
}

TEST(ServeMetrics, StatsJsonCarriesPerLaneSections) {
  Metrics m;
  m.on_rejected(kHeavyLane);
  m.on_completed(Registry::instance().find("fit"), true, 2e-3);
  const Json stats = Json::parse(m.to_json(ShardedLruCache::Stats{}));
  const Json* lanes = stats.find("lanes");
  ASSERT_NE(lanes, nullptr);
  const Json* heavy = lanes->find("heavy");
  ASSERT_NE(heavy, nullptr);
  EXPECT_DOUBLE_EQ(heavy->number_or("rejected", -1), 1.0);
  const Json* heavy_latency = heavy->find("latency");
  ASSERT_NE(heavy_latency, nullptr);
  EXPECT_DOUBLE_EQ(heavy_latency->number_or("count", -1), 1.0);
  const Json* light = lanes->find("light");
  ASSERT_NE(light, nullptr);
  EXPECT_DOUBLE_EQ(light->find("latency")->number_or("count", -1), 0.0);
  // by_type keys by endpoint name.
  EXPECT_DOUBLE_EQ(stats.find("by_type")->number_or("fit", -1), 1.0);
}

}  // namespace
