// Tests for the intensity microbenchmark generator.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/machine_params.hpp"
#include "microbench/intensity.hpp"

namespace {

namespace mb = archline::microbench;
namespace co = archline::core;

TEST(FlopsPerWord, ScalesWithPrecision) {
  EXPECT_DOUBLE_EQ(mb::flops_per_word(2.0, co::Precision::Single), 8.0);
  EXPECT_DOUBLE_EQ(mb::flops_per_word(2.0, co::Precision::Double), 16.0);
  EXPECT_DOUBLE_EQ(mb::flops_per_word(0.125, co::Precision::Single), 0.5);
}

TEST(IntensityKernel, FlopsMatchIntensityTimesBytes) {
  const auto k = mb::intensity_kernel(4.0, 1e9, co::Precision::Single,
                                      co::MemLevel::DRAM);
  EXPECT_DOUBLE_EQ(k.flops, 4e9);
  EXPECT_DOUBLE_EQ(k.bytes, 1e9);
  EXPECT_DOUBLE_EQ(k.intensity(), 4.0);
  EXPECT_EQ(k.pattern, co::AccessPattern::Streaming);
  EXPECT_EQ(k.level, co::MemLevel::DRAM);
}

TEST(IntensityKernel, LabelsCarryContext) {
  const auto k = mb::intensity_kernel(1.0, 1.0, co::Precision::Double,
                                      co::MemLevel::L2);
  EXPECT_NE(k.label.find("double"), std::string::npos);
  EXPECT_NE(k.label.find("L2"), std::string::npos);
}

TEST(IntensityKernel, RejectsBadArguments) {
  EXPECT_THROW((void)mb::intensity_kernel(0.0, 1.0, co::Precision::Single,
                                          co::MemLevel::DRAM),
               std::invalid_argument);
  EXPECT_THROW((void)mb::intensity_kernel(1.0, 0.0, co::Precision::Single,
                                          co::MemLevel::DRAM),
               std::invalid_argument);
}

TEST(DefaultGrid, CoversPaperRange) {
  const auto grid = mb::default_intensity_grid();
  EXPECT_DOUBLE_EQ(grid.front(), 0.125);
  EXPECT_NEAR(grid.back(), 512.0, 1e-9);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(BytesForDuration, MemoryBoundCase) {
  // tau_byte = 1 ns dominates at low intensity: 1 s -> 1e9 bytes.
  const double bytes = mb::bytes_for_duration(
      0.125, 1e-9, 1e-12, 1e-9, 1e-12, co::kUncapped, 1.0);
  EXPECT_NEAR(bytes, 1e9, 1.0);
}

TEST(BytesForDuration, ComputeBoundCase) {
  // At I = 100, flop time per byte = 100 ns dominates: 1 s -> 1e7 bytes.
  const double bytes = mb::bytes_for_duration(
      100.0, 1e-9, 1e-12, 1e-9, 1e-12, co::kUncapped, 1.0);
  EXPECT_NEAR(bytes, 1e7, 1.0);
}

TEST(BytesForDuration, CapBoundCase) {
  // Active power demand far above the cap: the cap term sizes the kernel.
  // I = 1: energy per byte = 1 nJ + 2 nJ = 3 nJ; cap 1 W -> 3 ns per byte.
  const double bytes = mb::bytes_for_duration(
      1.0, 1e-9, 1e-9, 1e-9, 2e-9, 1.0, 3.0);
  EXPECT_NEAR(bytes, 1e9, 1.0);
}

TEST(BytesForDuration, RejectsBadArguments) {
  EXPECT_THROW((void)mb::bytes_for_duration(0.0, 1.0, 1.0, 1.0, 1.0,
                                            co::kUncapped, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)mb::bytes_for_duration(1.0, 1.0, 1.0, 1.0, 1.0,
                                            co::kUncapped, 0.0),
               std::invalid_argument);
}

TEST(BytesForDuration, LongerTargetMeansMoreBytes) {
  const double one = mb::bytes_for_duration(1.0, 1e-9, 1e-12, 1e-9, 1e-12,
                                            co::kUncapped, 1.0);
  const double two = mb::bytes_for_duration(1.0, 1e-9, 1e-12, 1e-9, 1e-12,
                                            co::kUncapped, 2.0);
  EXPECT_NEAR(two, 2.0 * one, 1e-6);
}

}  // namespace
