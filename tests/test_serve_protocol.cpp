// Wire-protocol tests: JSON codec round-trips, malformed / truncated /
// oversized requests degrade to structured errors (never a crash), and
// each request type returns values consistent with calling the model
// stack directly.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "core/analysis.hpp"
#include "core/roofline.hpp"
#include "core/scenarios.hpp"
#include "core/sensitivity.hpp"
#include "platforms/platform_db.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace archline;
using serve::Json;

// ---- JSON codec -----------------------------------------------------------

TEST(ServeJson, RoundTripsScalars) {
  for (const char* doc :
       {"null", "true", "false", "0", "-1", "3.5", "1e9", "0.1",
        "\"hello\"", "\"\"", "[]", "{}"}) {
    const Json v = Json::parse(doc);
    EXPECT_EQ(Json::parse(v.dump()), v) << doc;
  }
}

TEST(ServeJson, RoundTripsNested) {
  const std::string doc =
      R"({"a":[1,2.5,{"b":"x","c":[true,null]}],"d":{"e":-0.001}})";
  const Json v = Json::parse(doc);
  // dump() is canonical: parse(dump(parse(x))) == parse(x) and the dump
  // of a dump is a fixed point.
  EXPECT_EQ(v.dump(), doc);
  EXPECT_EQ(Json::parse(v.dump()).dump(), doc);
}

TEST(ServeJson, NumberFormatRoundTripsDoubles) {
  for (const double x : {0.1, 1.0 / 3.0, 6.02e23, 1e-300, -0.0, 12345.678,
                         9.007199254740992e15}) {
    const std::string s = Json::format_number(x);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), x) << s;
  }
}

// format_number is DEFINED as "the first precision in 1..17 whose %.*g
// round-trips" but implemented without the probe loop (json.cpp). This
// pins the implementation to the definition byte-for-byte: edge values,
// every power of two and ten (the binade boundaries where shortest
// digits and %g probing can legitimately disagree), and a large random
// sample of bit patterns.
std::string reference_format(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

TEST(ServeJson, NumberFormatMatchesProbeLoopOracle) {
  const auto check = [](double v) {
    ASSERT_EQ(Json::format_number(v), reference_format(v))
        << "bits " << std::hex << std::bit_cast<std::uint64_t>(v);
  };
  for (const double v :
       {0.0, -0.0, 0.1, 0.5, 1e-5, 9.99999e-5, 1e15, 1e16,
        9007199254740991.0, 9007199254740993.0, 4.9406564584124654e-324,
        2.2250738585072014e-308, 1.7976931348623157e308, 1.0 / 3.0,
        0.30000000000000004, 6.02214076e23}) {
    check(v);
    check(-v);
  }
  for (int e = -320; e <= 308; ++e) {
    check(std::pow(10.0, e));
    check(3.0 * std::pow(10.0, e));
  }
  for (int e = -1070; e <= 1020; ++e) check(std::ldexp(1.0, e));
  std::mt19937_64 rng(12345);
  for (int i = 0; i < 200000; ++i) {
    const double v = std::bit_cast<double>(rng());
    if (std::isfinite(v)) check(v);
  }
}

TEST(ServeJson, IntegersPrintWithoutExponent) {
  EXPECT_EQ(Json(1e9).dump(), "1000000000");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7.0).dump(), "-7");
}

TEST(ServeJson, StringEscapes) {
  const Json v = Json::parse(R"("a\"b\\c\nd\u0041\u00e9\u20ac")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\ndA\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(Json::parse(v.dump()), v);
}

TEST(ServeJson, SurrogatePairDecodes) {
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(ServeJson, RejectsMalformed) {
  for (const char* doc :
       {"", "{", "[", "\"unterminated", "{\"a\":}", "{\"a\" 1}", "[1,]",
        "{,}", "tru", "nul", "01", "1.", "1e", "--1", "\"\\q\"",
        "\"\\ud800\"", "{\"a\":1}x", "[1] []", "\x01"}) {
    EXPECT_THROW((void)Json::parse(doc), serve::JsonError) << doc;
  }
}

TEST(ServeJson, RejectsExcessiveDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep, 64), serve::JsonError);
  EXPECT_NO_THROW((void)Json::parse(deep, 128));
}

TEST(ServeJson, ObjectSetOverwritesInPlace) {
  Json obj = Json::object();
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 3);
  EXPECT_EQ(obj.dump(), R"({"a":3,"b":2})");
}

// ---- Error handling: malformed requests never crash -----------------------

std::string body_of(std::string_view line) {
  return serve::handle_line(line).body;
}

TEST(ServeProtocol, MalformedRequestsReturnStructuredErrors) {
  for (const char* line :
       {"", "garbage", "{", "[1,2,3]", "42", "\"predict\"", "{}",
        R"({"type":42})", R"({"type":"warp_drive"})",
        R"({"type":"predict"})", R"({"type":"predict","platform":7})",
        R"({"type":"predict","platform":"GTX Titan"})",
        R"({"type":"predict","platform":"No Such","intensity":1})",
        R"({"type":"predict","platform":"GTX Titan","intensity":-2})",
        R"({"type":"predict","platform":"GTX Titan","bytes":0})",
        R"({"type":"fit"})", R"({"type":"fit","observations":3})",
        R"({"type":"fit","observations":[1]})",
        R"({"type":"scenario","platform":"GTX Titan"})",
        R"({"type":"scenario","kind":"nope","platform":"GTX Titan"})",
        R"({"type":"crossover","a":"GTX Titan"})"}) {
    const serve::Reply reply = serve::handle_line(line);
    EXPECT_FALSE(reply.ok) << line;
    EXPECT_FALSE(reply.cacheable) << line;
    const Json parsed = Json::parse(reply.body);  // must itself be valid JSON
    EXPECT_FALSE(parsed.bool_or("ok", true)) << line;
    EXPECT_TRUE(parsed.find("error")) << line;
    EXPECT_TRUE(parsed.find("message")) << line;
  }
}

TEST(ServeProtocol, TruncatedRequestIsParseError) {
  const std::string full =
      R"({"type":"predict","platform":"GTX Titan","intensity":4})";
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    const serve::Reply reply = serve::handle_line(full.substr(0, cut));
    EXPECT_FALSE(reply.ok) << cut;
    EXPECT_NO_THROW((void)Json::parse(reply.body)) << cut;
  }
}

TEST(ServeProtocol, OversizedRequestRejected) {
  serve::ProtocolLimits limits;
  limits.max_request_bytes = 64;
  const std::string big(1000, ' ');
  const serve::Reply reply = serve::handle_line(big, limits);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(Json::parse(reply.body).string_or("error", ""), "too_large");
}

TEST(ServeProtocol, ErrorsEchoRequestId) {
  const Json parsed = Json::parse(
      body_of(R"({"type":"predict","id":"req-17","platform":"No Such"})"));
  EXPECT_EQ(parsed.string_or("id", ""), "req-17");
  EXPECT_EQ(parsed.string_or("error", ""), "unknown_platform");
}

// ---- Request semantics ----------------------------------------------------

TEST(ServeProtocol, PredictMatchesDirectModelCall) {
  const core::MachineParams m = platforms::platform("GTX Titan").machine();
  const core::Workload w = core::Workload::from_intensity(1e9, 4.0);
  const serve::Reply reply = serve::handle_line(
      R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":4})");
  ASSERT_TRUE(reply.ok) << reply.body;
  EXPECT_TRUE(reply.cacheable);
  ASSERT_NE(reply.endpoint, nullptr);
  EXPECT_EQ(reply.endpoint->name, "predict");
  EXPECT_EQ(reply.endpoint->klass, serve::RequestClass::Light);
  const Json out = Json::parse(reply.body);
  EXPECT_DOUBLE_EQ(out.number_or("time_s", 0), core::time(m, w));
  EXPECT_DOUBLE_EQ(out.number_or("energy_j", 0), core::energy(m, w));
  EXPECT_DOUBLE_EQ(out.number_or("avg_power_w", 0), core::avg_power(m, w));
  EXPECT_EQ(out.string_or("regime", ""),
            core::regime_name(core::regime(m, w)));
}

TEST(ServeProtocol, PredictAcceptsInlineMachineAndModifiers) {
  // An inline machine with a cap divisor must match with_cap_scaled.
  const serve::Reply reply = serve::handle_line(
      R"({"type":"predict","machine":{"tau_flop":1e-12,"eps_flop":1e-10,)"
      R"("tau_mem":1e-11,"eps_mem":1e-9,"pi1":10,"delta_pi":100},)"
      R"("cap_divisor":4,"flops":1e9,"intensity":1})");
  ASSERT_TRUE(reply.ok) << reply.body;
  core::MachineParams m;
  m.tau_flop = 1e-12; m.eps_flop = 1e-10; m.tau_mem = 1e-11;
  m.eps_mem = 1e-9; m.pi1 = 10; m.delta_pi = 100;
  const core::MachineParams capped = core::with_cap_scaled(m, 4.0);
  const core::Workload w = core::Workload::from_intensity(1e9, 1.0);
  const Json out = Json::parse(reply.body);
  EXPECT_DOUBLE_EQ(out.number_or("time_s", 0), core::time(capped, w));
}

TEST(ServeProtocol, PredictDpAndUncapped) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"predict","platform":"Desktop CPU","precision":"dp",)"
      R"("uncapped":true,"intensity":8})");
  ASSERT_TRUE(reply.ok) << reply.body;
  const core::MachineParams m =
      platforms::platform("Desktop CPU")
          .machine_uncapped(core::Precision::Double);
  const core::Workload w = core::Workload::from_intensity(1e9, 8.0);
  EXPECT_DOUBLE_EQ(Json::parse(reply.body).number_or("time_s", 0),
                   core::time(m, w));
}

TEST(ServeProtocol, PredictUnsupportedPrecisionIsStructured) {
  // The NUC GPU has no DP energy point in Table I.
  const serve::Reply reply = serve::handle_line(
      R"({"type":"predict","platform":"NUC GPU","precision":"dp","intensity":1})");
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(Json::parse(reply.body).string_or("error", ""), "unsupported");
}

// ---- predict_batch --------------------------------------------------------

std::string batch_request(std::size_t elements) {
  std::string req =
      R"({"type":"predict_batch","platform":"GTX Titan","elements":[)";
  for (std::size_t i = 0; i < elements; ++i) {
    if (i != 0) req += ',';
    req += R"({"flops":1e9,"intensity":)";
    req += Json::format_number(0.125 * static_cast<double>(i + 1));
    req += '}';
  }
  req += "]}";
  return req;
}

TEST(ServeProtocol, PredictBatchRowsByteIdenticalToSinglePredicts) {
  const serve::Reply batch = serve::handle_line(batch_request(9));
  ASSERT_TRUE(batch.ok) << batch.body;
  EXPECT_TRUE(batch.cacheable);
  ASSERT_NE(batch.endpoint, nullptr);
  EXPECT_EQ(batch.endpoint->name, "predict_batch");
  const Json out = Json::parse(batch.body);
  EXPECT_EQ(out.number_or("count", 0), 9.0);
  const Json* results = out.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->as_array().size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    std::string single_req =
        R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":)";
    single_req += Json::format_number(0.125 * static_cast<double>(i + 1));
    single_req += '}';
    const serve::Reply single = serve::handle_line(single_req);
    ASSERT_TRUE(single.ok) << single.body;
    // The single reply's prediction block starts at "intensity" and runs
    // to the closing brace; the batch row must be THOSE bytes (dump() is
    // canonical, so parse+redump preserves them).
    const std::size_t start = single.body.find("\"intensity\"");
    ASSERT_NE(start, std::string::npos);
    const std::string block =
        "{" + single.body.substr(start, single.body.size() - start - 1) + "}";
    EXPECT_EQ(results->as_array()[i].dump(), block) << "element " << i;
  }
}

TEST(ServeProtocol, PredictBatchValidatesElements) {
  for (const char* line :
       {R"({"type":"predict_batch","platform":"GTX Titan"})",
        R"({"type":"predict_batch","platform":"GTX Titan","elements":3})",
        R"({"type":"predict_batch","platform":"GTX Titan","elements":[]})",
        R"({"type":"predict_batch","platform":"GTX Titan","elements":[7]})"}) {
    const serve::Reply reply = serve::handle_line(line);
    EXPECT_FALSE(reply.ok) << line;
    EXPECT_EQ(Json::parse(reply.body).string_or("error", ""), "bad_request")
        << line;
  }
  // Element errors are indexed so clients can find the bad row.
  const serve::Reply reply = serve::handle_line(
      R"({"type":"predict_batch","platform":"GTX Titan",)"
      R"("elements":[{"intensity":1},{"flops":1e9}]})");
  EXPECT_FALSE(reply.ok);
  const Json parsed = Json::parse(reply.body);
  EXPECT_EQ(parsed.string_or("error", ""), "bad_request");
  EXPECT_TRUE(parsed.string_or("message", "").find("element 1:") !=
              std::string::npos)
      << parsed.string_or("message", "");
}

TEST(ServeProtocol, PredictBatchEnforcesSizeLimit) {
  const serve::Reply reply = serve::handle_line(batch_request(1025));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(Json::parse(reply.body).string_or("error", ""), "too_large");
}

TEST(ServeProtocol, PredictBatchClassifiesByBatchSize) {
  // <= 64 elements: closed-form cheap, Light lane; above: Heavy. The
  // per-endpoint classifier reads the raw line (no parse).
  EXPECT_EQ(serve::classify_line(batch_request(1)), serve::RequestClass::Light);
  EXPECT_EQ(serve::classify_line(batch_request(64)),
            serve::RequestClass::Light);
  EXPECT_EQ(serve::classify_line(batch_request(256)),
            serve::RequestClass::Heavy);
}

TEST(ServeProtocol, CrossoverMatchesAnalysis) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"crossover","a":"GTX Titan","b":"Arndale CPU",)"
      R"("metric":"performance"})");
  ASSERT_TRUE(reply.ok) << reply.body;
  const Json out = Json::parse(reply.body);
  const double x = core::crossover_intensity(
      platforms::platform("GTX Titan").machine(),
      platforms::platform("Arndale CPU").machine(),
      core::Metric::Performance);
  EXPECT_EQ(out.bool_or("found", false), x > 0.0);
  if (x > 0.0) {
    EXPECT_DOUBLE_EQ(out.number_or("intensity", 0), x);
  }
}

TEST(ServeProtocol, ScenarioThrottleMatchesScenarios) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"scenario","kind":"throttle","platform":"GTX Titan",)"
      R"("intensity":2,"watts":80})");
  ASSERT_TRUE(reply.ok) << reply.body;
  const core::ThrottleRequirement r = core::throttle_requirement(
      platforms::platform("GTX Titan").machine(), 2.0, 80.0);
  const Json out = Json::parse(reply.body);
  EXPECT_DOUBLE_EQ(out.number_or("slowdown", 0), r.slowdown);
  EXPECT_DOUBLE_EQ(out.number_or("flop_rate_fraction", 0),
                   r.flop_rate_fraction);
}

TEST(ServeProtocol, ScenarioAggregateScalesNode) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"scenario","kind":"aggregate","platform":"Arndale GPU",)"
      R"("count":47,"flops":1e9,"intensity":4})");
  ASSERT_TRUE(reply.ok) << reply.body;
  const core::MachineParams node =
      core::aggregate(platforms::platform("Arndale GPU").machine(), 47);
  const core::Workload w = core::Workload::from_intensity(1e9, 4.0);
  const Json out = Json::parse(reply.body);
  EXPECT_DOUBLE_EQ(out.number_or("time_s", 0), core::time(node, w));
  EXPECT_DOUBLE_EQ(out.number_or("node_max_power_w", 0), node.max_power());
}

TEST(ServeProtocol, ScenarioPowerBoundMatchesScenarios) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"scenario","kind":"power_bound","big":"GTX Titan",)"
      R"("small":"Arndale GPU","watts":180,"intensity":4})");
  ASSERT_TRUE(reply.ok) << reply.body;
  const core::PowerBoundComparison c = core::power_bound_comparison(
      platforms::platform("GTX Titan").machine(),
      platforms::platform("Arndale GPU").machine(), 180.0, 4.0);
  const Json out = Json::parse(reply.body);
  EXPECT_EQ(static_cast<int>(out.number_or("small_count", 0)), c.small_count);
  EXPECT_DOUBLE_EQ(out.number_or("speedup", 0), c.speedup);
}

TEST(ServeProtocol, FitRecoversSyntheticMachine) {
  // Generate noiseless observations from a known machine; the fit
  // response must recover its parameters to a few percent.
  const core::MachineParams m = platforms::platform("Arndale GPU").machine();
  Json obs = Json::array();
  for (int p = 0; p < 12; ++p) {
    const double intensity = std::exp2(-4.0 + p);
    const core::Workload w = core::Workload::from_intensity(1e8, intensity);
    Json row = Json::object();
    row.set("flops", w.flops);
    row.set("bytes", w.bytes);
    row.set("seconds", core::time(m, w));
    row.set("joules", core::energy(m, w));
    obs.push_back(std::move(row));
  }
  Json req = Json::object();
  req.set("type", "fit");
  req.set("observations", std::move(obs));
  const serve::Reply reply = serve::handle_line(req.dump());
  ASSERT_TRUE(reply.ok) << reply.body;
  EXPECT_TRUE(reply.cacheable);
  const Json out = Json::parse(reply.body);
  const Json* fitted = out.find("machine");
  ASSERT_NE(fitted, nullptr);
  EXPECT_NEAR(fitted->number_or("tau_flop", 0) / m.tau_flop, 1.0, 0.05);
  EXPECT_NEAR(fitted->number_or("tau_mem", 0) / m.tau_mem, 1.0, 0.05);
  EXPECT_GT(out.number_or("r_squared_perf", 0), 0.99);
}

TEST(ServeProtocol, FitWithTooFewObservationsFails) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"fit","observations":[)"
      R"({"flops":1e9,"bytes":1e9,"seconds":1,"joules":10}]})");
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(Json::parse(reply.body).string_or("error", ""), "fit_failed");
}

TEST(ServeProtocol, PlatformsListsAllTwelve) {
  const serve::Reply reply = serve::handle_line(R"({"type":"platforms"})");
  ASSERT_TRUE(reply.ok) << reply.body;
  const Json out = Json::parse(reply.body);
  const Json* list = out.find("platforms");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->as_array().size(), platforms::all_platforms().size());
}

TEST(ServeProtocol, StatsIsFlaggedForServerSubstitution) {
  const serve::Reply reply = serve::handle_line(R"({"type":"stats"})");
  EXPECT_TRUE(reply.ok);
  ASSERT_NE(reply.endpoint, nullptr);
  EXPECT_TRUE(reply.endpoint->server_evaluated);
  EXPECT_TRUE(reply.body.empty());
  EXPECT_FALSE(reply.cacheable);
}

TEST(ServeProtocol, SensitivityMatchesDirectProfile) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"sensitivity","platform":"GTX Titan",)"
      R"("metric":"efficiency","intensity":4})");
  ASSERT_TRUE(reply.ok) << reply.body;
  EXPECT_TRUE(reply.cacheable);
  ASSERT_NE(reply.endpoint, nullptr);
  EXPECT_EQ(reply.endpoint->klass, serve::RequestClass::Light);
  const core::SensitivityProfile prof = core::sensitivity_profile(
      platforms::platform("GTX Titan").machine(),
      core::Metric::EnergyEfficiency, 4.0);
  const Json out = Json::parse(reply.body);
  const Json* el = out.find("elasticities");
  ASSERT_NE(el, nullptr);
  for (const core::Param p : core::kAllParams)
    EXPECT_DOUBLE_EQ(el->number_or(core::to_string(p), 1e99), prof[p])
        << core::to_string(p);
  EXPECT_EQ(out.string_or("dominant", ""), core::to_string(prof.dominant()));
}

TEST(ServeProtocol, ScenarioSweepMatchesThrottleSweep) {
  const serve::Reply reply = serve::handle_line(
      R"({"type":"scenario_sweep","platform":"GTX Titan",)"
      R"("intensities":[0.5,4],"cap_divisors":[1,2]})");
  ASSERT_TRUE(reply.ok) << reply.body;
  ASSERT_NE(reply.endpoint, nullptr);
  EXPECT_EQ(reply.endpoint->klass, serve::RequestClass::Heavy);
  const Json out = Json::parse(reply.body);
  EXPECT_EQ(static_cast<int>(out.number_or("points", 0)), 4);
  const Json* sweep = out.find("sweep");
  ASSERT_NE(sweep, nullptr);
  ASSERT_EQ(sweep->as_array().size(), 4u);
  // Spot-check one grid point against the core sweep.
  const auto points = core::throttle_sweep(
      platforms::platform("GTX Titan").machine(), {0.5, 4.0}, {1.0, 2.0});
  const Json& first = sweep->as_array().front();
  EXPECT_DOUBLE_EQ(first.number_or("intensity", 0), points.front().intensity);
  EXPECT_DOUBLE_EQ(first.number_or("power_w", 0), points.front().power);
  EXPECT_DOUBLE_EQ(first.number_or("performance_flops", 0),
                   points.front().performance);
}

TEST(ServeProtocol, ScenarioSweepRejectsOversizedGrid) {
  serve::ProtocolLimits limits;
  limits.max_sweep_points = 3;
  const serve::Reply reply = serve::handle_line(
      R"({"type":"scenario_sweep","platform":"GTX Titan",)"
      R"("intensities":[1,2],"cap_divisors":[1,2]})",
      limits);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(Json::parse(reply.body).string_or("error", ""), "too_large");
}

TEST(ServeProtocol, RegistryAssignsDenseStableIds) {
  // Ids are the cache tag and the metrics slot: they must be dense,
  // unique, and match registration order (core endpoints first).
  const serve::Registry& reg = serve::Registry::instance();
  EXPECT_GE(reg.size(), 8u);
  std::uint8_t expected = 0;
  for (const serve::Endpoint& e : reg) {
    EXPECT_EQ(e.id, expected++);
    EXPECT_EQ(reg.find(e.name), &e);
    EXPECT_EQ(reg.by_id(e.id), &e);
  }
  ASSERT_NE(reg.find("predict"), nullptr);
  EXPECT_EQ(reg.find("predict")->id, 0);
  ASSERT_NE(reg.find("fit"), nullptr);
  EXPECT_EQ(reg.find("fit")->klass, serve::RequestClass::Heavy);
  EXPECT_EQ(reg.find("no_such_endpoint"), nullptr);
  EXPECT_EQ(reg.by_id(255), nullptr);
}

TEST(ServeProtocol, ClassifyLineFindsTypeWithoutParsing) {
  using serve::classify_line;
  using serve::RequestClass;
  EXPECT_EQ(classify_line(R"({"type":"fit","observations":[]})"),
            RequestClass::Heavy);
  EXPECT_EQ(classify_line(R"({"type":"scenario_sweep"})"),
            RequestClass::Heavy);
  EXPECT_EQ(classify_line(R"({"type":"predict","intensity":1})"),
            RequestClass::Light);
  // "type" appearing as a VALUE must not fool the scanner: the needle
  // match requires a colon after the closing quote.
  EXPECT_EQ(classify_line(R"({"metric":"type","type":"fit"})"),
            RequestClass::Heavy);
  // Unknown / absent / malformed types default to Light (the full
  // parser produces the structured error cheaply).
  EXPECT_EQ(classify_line(R"({"type":"warp_drive"})"), RequestClass::Light);
  EXPECT_EQ(classify_line(R"({"intensity":1})"), RequestClass::Light);
  EXPECT_EQ(classify_line("garbage"), RequestClass::Light);
  EXPECT_EQ(classify_line(""), RequestClass::Light);
}

TEST(ServeProtocol, IdenticalRequestsProduceIdenticalBytes) {
  const char* line =
      R"({"type":"predict","platform":"Xeon Phi","intensity":2.5,"id":9})";
  const std::string a = body_of(line);
  const std::string b = body_of(line);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
