// Tests for stream-level power statistics.

#include <gtest/gtest.h>

#include <stdexcept>

#include "powermon/trace_stats.hpp"
#include "platforms/platform_db.hpp"
#include "sim/factory.hpp"

namespace {

namespace pm = archline::powermon;
namespace pl = archline::platforms;
namespace si = archline::sim;
using archline::stats::Rng;

pm::SampledCapture sampled_constant(double watts, double duration,
                                    std::size_t rails = 1) {
  pm::PowerTrace t;
  t.add_constant(duration, watts);
  std::vector<pm::RailSplit> split;
  for (std::size_t i = 0; i < rails; ++i)
    split.push_back({.channel = {.name = "r" + std::to_string(i),
                                 .nominal_volts = 12.0},
                     .fraction = 1.0 / static_cast<double>(rails)});
  const pm::Capture cap = pm::split_across_rails(t, split, 0.0, duration);
  Rng rng(3);
  pm::SamplerConfig cfg;
  cfg.quantize = false;
  cfg.timestamp_jitter_s = 0.0;
  return pm::sample(cap, cfg, rng);
}

TEST(TraceStats, ConstantSignalStatistics) {
  const pm::TraceStats st =
      pm::compute_trace_stats(sampled_constant(60.0, 0.5));
  EXPECT_NEAR(st.peak_watts, 60.0, 1e-9);
  EXPECT_NEAR(st.median_watts, 60.0, 1e-9);
  EXPECT_NEAR(st.mean_watts, 60.0, 1e-9);
  EXPECT_NEAR(st.min_watts, 60.0, 1e-9);
  EXPECT_GT(st.samples, 100u);
}

TEST(TraceStats, MultiRailSumsToTotal) {
  const pm::TraceStats st =
      pm::compute_trace_stats(sampled_constant(90.0, 0.25, 3));
  EXPECT_NEAR(st.peak_watts, 90.0, 1e-6);
}

TEST(TraceStats, ThresholdFraction) {
  // Half the window at 10 W, half at 100 W.
  pm::PowerTrace t;
  t.add_point(0.0, 10.0);
  t.add_point(0.5, 10.0);
  t.add_point(0.5, 100.0);
  t.add_point(1.0, 100.0);
  const pm::Capture cap = pm::split_across_rails(
      t, pm::mobile_board_rails(), 0.0, 1.0);
  Rng rng(4);
  pm::SamplerConfig cfg;
  cfg.quantize = false;
  cfg.timestamp_jitter_s = 0.0;
  const pm::TraceStats st =
      pm::compute_trace_stats(pm::sample(cap, cfg, rng), 50.0);
  EXPECT_NEAR(st.above_threshold_fraction, 0.5, 0.01);
}

TEST(TraceStats, RampDetection) {
  // 10 ms linear ramp from 0 to a 100 W plateau over a 1 s window: power
  // first reaches 90% of the median at ~9 ms.
  pm::PowerTrace t;
  t.add_point(0.0, 0.0);
  t.add_point(0.01, 100.0);
  t.add_point(1.0, 100.0);
  const pm::Capture cap = pm::split_across_rails(
      t, pm::mobile_board_rails(), 0.0, 1.0);
  Rng rng(5);
  pm::SamplerConfig cfg;
  cfg.quantize = false;
  cfg.timestamp_jitter_s = 0.0;
  const pm::TraceStats st =
      pm::compute_trace_stats(pm::sample(cap, cfg, rng));
  EXPECT_GT(st.ramp_seconds, 0.005);
  EXPECT_LT(st.ramp_seconds, 0.015);
}

TEST(TraceStats, EmptyCaptureThrows) {
  pm::SampledCapture cap;
  EXPECT_THROW((void)pm::compute_trace_stats(cap), std::invalid_argument);
}

TEST(TraceStats, SimulatedRunPeakNearCapOnCapBoundKernel) {
  // A throttled kernel's stream peak sits at ~pi1 + delta_pi.
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  const si::SimMachine machine = si::make_machine(spec);
  Rng rng(6);
  si::KernelDesc k;
  k.label = "cap-bound";
  const archline::core::Workload w =
      archline::core::Workload::from_intensity(4e11, 17.0);  // inside (B-, B+) ~ (13.8, 25.7)
  k.flops = w.flops;
  k.bytes = w.bytes;
  const si::RunResult r = machine.run(k, rng);
  ASSERT_EQ(r.regime, archline::core::Regime::PowerCap);
  const pm::TraceStats st = pm::compute_trace_stats(
      pm::sample(r.capture, pm::SamplerConfig{}, rng));
  EXPECT_NEAR(st.peak_watts, spec.pi1 + spec.delta_pi,
              0.05 * (spec.pi1 + spec.delta_pi));
}

TEST(TraceStats, RaggedChannelsHandled) {
  // Dropout produces ragged per-channel streams; stats must still work.
  pm::PowerTrace t;
  t.add_constant(0.5, 80.0);
  const pm::Capture cap = pm::split_across_rails(
      t, pm::discrete_gpu_rails(), 0.0, 0.5);
  Rng rng(7);
  pm::SamplerConfig cfg;
  cfg.dropout_rate = 0.4;
  cfg.quantize = false;
  const pm::TraceStats st =
      pm::compute_trace_stats(pm::sample(cap, cfg, rng));
  EXPECT_NEAR(st.mean_watts, 80.0, 2.0);
}

}  // namespace
