// The acceptance campaign (ctest label: campaign): 10,000 virtual
// connections push over a million virtual requests through the real
// protocol/dispatch/cache path under a mixed slow-loris +
// synchronized-burst + partial-reset + idle-camper adversary — twice —
// and the harness must (a) stay byte-identical across the two runs,
// (b) hold the SLO, (c) account for every connection and reply, all in
// seconds of wall clock. This is ISSUE/ROADMAP item 5(b)'s bar.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/campaign.hpp"

namespace {

using archline::sim::Campaign;
using archline::sim::CampaignOptions;
using archline::sim::CampaignReport;
using archline::sim::SloSpec;
using archline::sim::assert_slo;
using archline::sim::campaign_scenario;

TEST(CampaignMillion, MillionEventAdversaryIsReproducibleAndMeetsSlo) {
  const CampaignOptions options = [] {
    CampaignOptions o = campaign_scenario("million");
    o.seed = 20260808;
    return o;
  }();
  ASSERT_GE(options.connections, 10'000);

  Campaign first(options);
  const CampaignReport a = first.run();
  Campaign second(options);
  const CampaignReport b = second.run();

  // (a) bit-reproducible from the seed.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_json(), b.to_json());

  // Scale: ≥ 10k connections, ≥ 1M virtual requests, adversary active.
  EXPECT_EQ(a.connections_opened, 10'000u);
  EXPECT_GE(a.requests_sent, 1'000'000u);
  EXPECT_GT(a.reset_by_client, 0u);
  EXPECT_GT(a.idle_closed, 0u);

  // (b) the SLO: bounded predict p99, zero dropped replies, drain-clean
  // shutdown — asserted through the same API campaigns use in CI.
  SloSpec slo;
  slo.max_endpoint_p99_ns["predict"] = 1'000'000;  // 1ms, virtual
  slo.require_zero_dropped = true;
  slo.require_drain_clean = true;
  slo.require_connections_accounted = true;
  EXPECT_EQ(assert_slo(a, slo), std::vector<std::string>{});

  // (c) accounting identities, spelled out.
  EXPECT_EQ(a.requests_framed,
            a.replies_delivered + a.replies_abandoned + a.dropped_replies);
  EXPECT_EQ(a.connections_opened,
            a.closed_clean + a.reset_by_client + a.idle_closed);
}

}  // namespace
