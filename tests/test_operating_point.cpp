// Tests for the operating-point layer: point/table validation, the
// apply transform, equivalence with the legacy continuous apply_dvfs()
// path, ladder generation, and the per-platform default tables.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/dvfs.hpp"
#include "core/operating_point.hpp"
#include "core/roofline.hpp"
#include "platforms/platform_db.hpp"
#include "platforms/spec.hpp"
#include "stats/rng.hpp"

namespace {

namespace co = archline::core;
namespace pl = archline::platforms;

co::MachineParams titan() { return pl::platform("GTX Titan").machine(); }

co::OperatingPoint point(double s, double e) {
  co::OperatingPoint p;
  p.label = "test";
  p.freq_scale = s;
  p.energy_scale = e;
  return p;
}

TEST(OperatingPoint, ValidationRules) {
  EXPECT_NO_THROW(point(0.5, 0.5).validate());
  EXPECT_THROW(point(0.0, 0.5).validate(), std::invalid_argument);
  EXPECT_THROW(point(-1.0, 0.5).validate(), std::invalid_argument);
  EXPECT_THROW(point(0.5, 0.0).validate(), std::invalid_argument);
  co::OperatingPoint p = point(0.5, 0.5);
  p.idle_watts = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = point(0.5, 0.5);
  p.freq_scale = std::numeric_limits<double>::infinity();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // Turbo states (> 1) are legal.
  EXPECT_NO_THROW(point(1.25, 1.4).validate());
}

TEST(OperatingPoint, EnergyScaleModel) {
  EXPECT_DOUBLE_EQ(co::dvfs_energy_scale(0.3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(co::dvfs_energy_scale(0.3, 0.5), 0.3 + 0.7 * 0.25);
  EXPECT_DOUBLE_EQ(co::dvfs_energy_scale(0.0, 0.5), 0.25);
}

TEST(ApplyOperatingPoint, UnitPointIsIdentity) {
  const co::MachineParams m = titan();
  const co::MachineParams s = co::apply_operating_point(m, point(1.0, 1.0));
  EXPECT_DOUBLE_EQ(s.tau_flop, m.tau_flop);
  EXPECT_DOUBLE_EQ(s.eps_flop, m.eps_flop);
  EXPECT_DOUBLE_EQ(s.tau_mem, m.tau_mem);
  EXPECT_DOUBLE_EQ(s.eps_mem, m.eps_mem);
  EXPECT_DOUBLE_EQ(s.pi1, m.pi1);
  EXPECT_DOUBLE_EQ(s.delta_pi, m.delta_pi);
}

TEST(ApplyOperatingPoint, ScalesTimesAndDynamicEnergy) {
  const co::MachineParams m = titan();
  const co::MachineParams s = co::apply_operating_point(m, point(0.5, 0.475));
  EXPECT_DOUBLE_EQ(s.peak_flops(), 0.5 * m.peak_flops());
  EXPECT_DOUBLE_EQ(s.eps_flop, 0.475 * m.eps_flop);
  // Memory domain untouched unless the point opts in.
  EXPECT_DOUBLE_EQ(s.tau_mem, m.tau_mem);
  EXPECT_DOUBLE_EQ(s.eps_mem, m.eps_mem);
}

TEST(ApplyOperatingPoint, MemoryDomainOptIn) {
  co::OperatingPoint p = point(0.5, 0.475);
  p.scale_memory = true;
  const co::MachineParams s = co::apply_operating_point(titan(), p);
  EXPECT_DOUBLE_EQ(s.peak_bandwidth(), 0.5 * titan().peak_bandwidth());
  EXPECT_DOUBLE_EQ(s.eps_mem, 0.475 * titan().eps_mem);
}

TEST(ApplyOperatingPoint, Pi1InheritVsOverride) {
  const co::MachineParams m = titan();
  co::OperatingPoint p = point(0.7, 0.8);
  EXPECT_DOUBLE_EQ(co::apply_operating_point(m, p).pi1, m.pi1);  // inherit
  p.pi1_watts = 12.5;
  EXPECT_DOUBLE_EQ(co::apply_operating_point(m, p).pi1, 12.5);
  // delta_pi is an external limit, never a P-state property.
  EXPECT_DOUBLE_EQ(co::apply_operating_point(m, p).delta_pi, m.delta_pi);
}

TEST(ApplyOperatingPoint, MatchesLegacyApplyDvfsExactly) {
  // apply_dvfs() is now a thin wrapper over the operating-point
  // transform; the two must agree bit-for-bit so every pre-refactor
  // DVFS result (bisection included) is reproduced.
  const co::MachineParams m = titan();
  const co::DvfsModel model{.leakage_fraction = 0.3, .scale_memory = false,
                            .min_scale = 0.2};
  for (const double s : {0.2, 0.35, 0.5, 0.77, 0.9, 1.0}) {
    const co::MachineParams legacy = co::apply_dvfs(m, s, model);
    const co::MachineParams via_point =
        co::apply_operating_point(m, co::dvfs_operating_point(model, s));
    EXPECT_EQ(legacy.tau_flop, via_point.tau_flop) << "s=" << s;
    EXPECT_EQ(legacy.eps_flop, via_point.eps_flop) << "s=" << s;
    EXPECT_EQ(legacy.tau_mem, via_point.tau_mem) << "s=" << s;
    EXPECT_EQ(legacy.eps_mem, via_point.eps_mem) << "s=" << s;
    EXPECT_EQ(legacy.pi1, via_point.pi1) << "s=" << s;
    EXPECT_EQ(legacy.delta_pi, via_point.delta_pi) << "s=" << s;
  }
}

TEST(DvfsOperatingPoint, RejectsOutOfRangeScale) {
  const co::DvfsModel model;
  EXPECT_THROW((void)co::dvfs_operating_point(model, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)co::dvfs_operating_point(model, 1.1),
               std::invalid_argument);
}

TEST(DvfsLadder, EvenlySpacedAndValid) {
  const co::DvfsModel model{.leakage_fraction = 0.3, .scale_memory = false,
                            .min_scale = 0.2};
  const co::OperatingPointTable t = co::dvfs_ladder(model, 5, 2.0);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.points.front().freq_scale, 0.2);
  EXPECT_DOUBLE_EQ(t.points.back().freq_scale, 1.0);  // exactly nominal
  EXPECT_DOUBLE_EQ(t.nominal().freq_scale, 1.0);
  for (const co::OperatingPoint& p : t.points) {
    EXPECT_DOUBLE_EQ(p.energy_scale,
                     co::dvfs_energy_scale(0.3, p.freq_scale));
    EXPECT_DOUBLE_EQ(p.idle_watts, 2.0);
  }
  EXPECT_THROW((void)co::dvfs_ladder(model, 1), std::invalid_argument);
}

TEST(OperatingPointTable, ValidationAndParkWatts) {
  co::OperatingPointTable t;
  EXPECT_THROW(t.validate(), std::invalid_argument);  // empty
  EXPECT_DOUBLE_EQ(t.park_watts(), 0.0);
  t.points = {point(0.5, 0.4), point(1.0, 1.0)};
  t.points[0].idle_watts = 3.0;
  t.points[1].idle_watts = 7.0;
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.park_watts(), 3.0);
  EXPECT_DOUBLE_EQ(t.nominal().freq_scale, 1.0);
  // Non-ascending freq_scale is rejected.
  std::swap(t.points[0], t.points[1]);
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.points[0] = t.points[1];
  EXPECT_THROW(t.validate(), std::invalid_argument);  // equal scales
}

TEST(OperatingPointTable, SinglePointLadder) {
  co::OperatingPointTable t;
  t.points = {point(1.0, 1.0)};
  t.points[0].idle_watts = 4.5;
  t.points[0].pi1_watts = 11.0;
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.size(), 1u);
  // With one point it is simultaneously the nominal state and the
  // deepest park state.
  EXPECT_DOUBLE_EQ(t.nominal().freq_scale, 1.0);
  EXPECT_DOUBLE_EQ(t.park_watts(), 4.5);
  const std::vector<co::MachineParams> ms =
      co::machines_at_points(titan(), t.points);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_DOUBLE_EQ(ms[0].pi1, 11.0);
}

TEST(OperatingPointTable, DuplicateFrequencyScalesRejectedAnywhere) {
  // A duplicate anywhere in the ladder — not just adjacent to the
  // front — must fail strict-ascent validation, even when every point
  // is individually valid.
  for (std::size_t dup = 1; dup < 4; ++dup) {
    co::OperatingPointTable t;
    t.points = {point(0.25, 0.2), point(0.5, 0.4), point(0.75, 0.7),
                point(1.0, 1.0)};
    t.points[dup].freq_scale = t.points[dup - 1].freq_scale;
    EXPECT_THROW(t.validate(), std::invalid_argument) << "dup at " << dup;
  }
}

TEST(OperatingPointTable, ParkWattsIgnoresPi1Overrides) {
  // park_watts is the deepest *idle* power; the running constant power
  // pi1 — overridden or inherited — must not leak into it.
  co::OperatingPointTable t;
  t.points = {point(0.5, 0.4), point(0.75, 0.7), point(1.0, 1.0)};
  t.points[0].idle_watts = 6.0;
  t.points[0].pi1_watts = 1.0;  // running power below every idle_watts
  t.points[1].idle_watts = 2.0;
  t.points[1].pi1_watts = 40.0;
  t.points[2].idle_watts = 9.0;
  t.points[2].pi1_watts = -1.0;  // inherit
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.park_watts(), 2.0);
  // The overrides still reach the per-point machines.
  const co::MachineParams base = titan();
  const std::vector<co::MachineParams> ms =
      co::machines_at_points(base, t.points);
  EXPECT_DOUBLE_EQ(ms[0].pi1, 1.0);
  EXPECT_DOUBLE_EQ(ms[1].pi1, 40.0);
  EXPECT_DOUBLE_EQ(ms[2].pi1, base.pi1);
}

TEST(OperatingPointTable, ParkWattsPropertyOnRandomLadders) {
  // Property, over seeded random ladders mixing pi1 overrides and
  // inherits: validate() accepts strictly ascending scales, park_watts
  // equals the minimum idle_watts, nominal() is the fastest point, and
  // breaking the ascent anywhere is rejected.
  archline::stats::Rng rng(2026, 5);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(8));
    co::OperatingPointTable t;
    double scale = 0.0;
    double min_idle = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      scale += 0.05 + rng.uniform(0.0, 0.45);  // strictly ascending
      co::OperatingPoint p = point(scale, rng.uniform(0.1, 1.5));
      p.idle_watts = rng.uniform(0.0, 20.0);
      p.pi1_watts = rng.uniform() < 0.5 ? -1.0 : rng.uniform(0.5, 50.0);
      min_idle = std::min(min_idle, p.idle_watts);
      t.points.push_back(p);
    }
    ASSERT_NO_THROW(t.validate()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(t.park_watts(), min_idle) << "trial " << trial;
    EXPECT_DOUBLE_EQ(t.nominal().freq_scale, scale) << "trial " << trial;
    if (n >= 2) {
      const std::size_t at = 1 + rng.below(static_cast<std::uint64_t>(n - 1));
      co::OperatingPointTable broken = t;
      broken.points[at].freq_scale = broken.points[at - 1].freq_scale;
      EXPECT_THROW(broken.validate(), std::invalid_argument)
          << "trial " << trial << " flat at " << at;
      broken.points[at].freq_scale = broken.points[at - 1].freq_scale - 0.01;
      EXPECT_THROW(broken.validate(), std::invalid_argument)
          << "trial " << trial << " descent at " << at;
    }
  }
}

TEST(MachinesAtPoints, TableOrderAndValues) {
  const co::MachineParams m = titan();
  const std::vector<co::OperatingPoint> pts = {point(0.5, 0.4),
                                               point(1.0, 1.0)};
  const std::vector<co::MachineParams> ms = co::machines_at_points(m, pts);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_DOUBLE_EQ(ms[0].tau_flop, m.tau_flop / 0.5);
  EXPECT_DOUBLE_EQ(ms[0].eps_flop, m.eps_flop * 0.4);
  EXPECT_DOUBLE_EQ(ms[1].tau_flop, m.tau_flop);
}

TEST(DefaultOperatingPoints, EveryPlatformCarriesAValidLadder) {
  for (const pl::PlatformSpec& spec : pl::all_platforms()) {
    const co::OperatingPointTable& t = spec.operating_points;
    ASSERT_FALSE(t.empty()) << spec.name;
    EXPECT_NO_THROW(t.validate()) << spec.name;
    // Nominal point: exactly 1.0x, inheriting the spec's pi1.
    EXPECT_DOUBLE_EQ(t.nominal().freq_scale, 1.0) << spec.name;
    EXPECT_LT(t.nominal().pi1_watts, 0.0) << spec.name;
    EXPECT_DOUBLE_EQ(t.nominal().energy_scale, 1.0) << spec.name;
    // Park power never exceeds the spec's own idle power, and every
    // sub-nominal point runs at reduced constant power.
    EXPECT_LE(t.park_watts(), spec.idle_power + 1e-12) << spec.name;
    for (const co::OperatingPoint& p : t.points) {
      EXPECT_FALSE(p.scale_memory) << spec.name;  // discrete DRAM domain
      if (p.freq_scale < 1.0) {
        EXPECT_GT(p.pi1_watts, 0.0) << spec.name;
        EXPECT_LT(p.pi1_watts, spec.pi1) << spec.name;
        EXPECT_LT(p.energy_scale, 1.0) << spec.name;
      }
    }
  }
}

TEST(DefaultOperatingPoints, MachineAtPointMatchesApply) {
  const pl::PlatformSpec& spec = pl::platform("GTX Titan");
  ASSERT_FALSE(spec.operating_points.empty());
  const co::MachineParams direct = spec.machine_at_point(0);
  const co::MachineParams via = co::apply_operating_point(
      spec.machine(), spec.operating_points.points[0]);
  EXPECT_EQ(direct.tau_flop, via.tau_flop);
  EXPECT_EQ(direct.eps_flop, via.eps_flop);
  EXPECT_EQ(direct.pi1, via.pi1);
  EXPECT_THROW((void)spec.machine_at_point(spec.operating_points.size()),
               std::out_of_range);
}

}  // namespace
