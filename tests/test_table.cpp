// Tests for the ASCII/markdown table renderer.

#include <gtest/gtest.h>

#include <stdexcept>

#include "report/table.hpp"

namespace {

using archline::report::Align;
using archline::report::Table;

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b"});
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b"});
  t.add_row({"1"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| 1 |"), std::string::npos);
}

TEST(Table, TextHasHeaderAndRules) {
  Table t({"name", "value"});
  t.add_row({"x", "10"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
  // Three rules: top, under-header, bottom.
  std::size_t rules = 0;
  for (std::size_t pos = text.find("+-"); pos != std::string::npos;
       pos = text.find("+-", pos + 1))
    ++rules;
  EXPECT_GE(rules, 3u);
}

TEST(Table, ColumnWidthFitsLongestCell) {
  Table t({"h"});
  t.add_row({"a-very-long-cell"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("a-very-long-cell"), std::string::npos);
}

TEST(Table, RightAlignmentPadsLeft) {
  Table t({"col1", "col2"});
  t.add_row({"x", "9"});
  const std::string text = t.to_text();
  // "col2" is 4 wide, right-aligned 9 -> "   9".
  EXPECT_NE(text.find("   9 |"), std::string::npos);
}

TEST(Table, LeftAlignmentPadsRight) {
  Table t({"name", "v"});
  t.add_row({"ab", "1"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| ab   |"), std::string::npos);
}

TEST(Table, SetAlignOverrides) {
  Table t({"a", "b"});
  t.set_align(1, Align::Left);
  t.add_row({"x", "y"});
  EXPECT_NE(t.to_text().find("| y |"), std::string::npos);
}

TEST(Table, SetAlignOutOfRangeThrows) {
  Table t({"a"});
  EXPECT_THROW(t.set_align(5, Align::Left), std::out_of_range);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a"), std::string::npos);
  EXPECT_NE(md.find("---"), std::string::npos);
  EXPECT_NE(md.find(":|"), std::string::npos);  // right-align marker
}

TEST(Table, MarkdownRowCountMatches) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_row({"2"});
  const std::string md = t.to_markdown();
  std::size_t lines = 0;
  for (const char c : md)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4u);  // header + separator + 2 rows
}

}  // namespace
