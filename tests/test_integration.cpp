// Integration tests: the full simulate -> sample -> integrate -> fit ->
// analyze pipeline (Table I / Fig. 4 style), end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "experiments/exp_fig4.hpp"
#include "experiments/exp_table1.hpp"
#include "platforms/platform_db.hpp"

namespace {

namespace ex = archline::experiments;
namespace pl = archline::platforms;

ex::Table1Options fast_options() {
  // Default (full) intensity grid: a thin grid under-identifies delta_pi.
  ex::Table1Options opt;
  opt.suite.repeats = 2;
  opt.suite.target_seconds = 0.1;
  return opt;
}

TEST(Table1Row, TitanRefitMatchesPublishedConstants) {
  const ex::Table1Row row =
      ex::run_table1_row(pl::platform("GTX Titan"), fast_options());
  EXPECT_LT(row.worst_param_error(), 0.15);
  EXPECT_GT(row.observations, 20u);
  EXPECT_GT(row.refit.r_squared_perf, 0.9);
}

TEST(Table1Row, TuningReachesSustainedPeaks) {
  const ex::Table1Row row =
      ex::run_table1_row(pl::platform("Xeon Phi"), fast_options());
  const pl::PlatformSpec& spec = pl::platform("Xeon Phi");
  EXPECT_NEAR(row.tune_sp.throughput, spec.flop_sp.throughput,
              1e-6 * row.tune_sp.throughput);
  EXPECT_NEAR(row.tune_bw.throughput, spec.mem_stream.throughput,
              1e-6 * row.tune_bw.throughput);
}

TEST(Table1Row, CacheAndRandomConstantsRefit) {
  const ex::Table1Row row =
      ex::run_table1_row(pl::platform("Desktop CPU"), fast_options());
  const pl::PlatformSpec& spec = pl::platform("Desktop CPU");
  ASSERT_TRUE(row.refit.l1 && row.refit.l2 && row.refit.random);
  EXPECT_NEAR(row.refit.random->eps_access,
              spec.mem_rand->energy_per_op,
              0.2 * spec.mem_rand->energy_per_op);
}

TEST(Table1Row, MobilePlatformRefits) {
  const ex::Table1Row row =
      ex::run_table1_row(pl::platform("PandaBoard ES"), fast_options());
  EXPECT_LT(row.worst_param_error(), 0.3);
}

TEST(Fig4, CappedModelImprovesEverywhereOrNearly) {
  ex::Fig4Options opt;
  opt.suite.repeats = 3;
  opt.suite.target_seconds = 0.1;
  const ex::Fig4Result r = ex::run_fig4(opt);
  ASSERT_EQ(r.platforms.size(), 12u);
  // "the distribution of errors on all platforms improves": dropping the
  // cap term can only add overprediction, so the capped median magnitude
  // never exceeds the uncapped one.
  EXPECT_EQ(r.improved_count, 12);
  // The uncapped bias is to OVERPREDICT (positive errors), as in Fig. 4.
  for (const ex::Fig4Platform& p : r.platforms)
    EXPECT_GE(p.uncapped_summary.max, -1e-9) << p.platform;
  // The paper marks 7 platforms significant; our verdicts are driven by
  // how strongly each platform's cap binds in the published constants,
  // which matches the paper on a majority but not all (e.g. the Xeon
  // Phi's cap binds by only ~2%, below our noise floor, yet the paper
  // marks it — see EXPERIMENTS.md).
  EXPECT_EQ(r.paper_significant_count, 7);
  EXPECT_GE(r.agreement_count, 6);
  EXPECT_GE(r.significant_count, 4);
  // The strongly cap-bound platforms must test significant, as in the
  // paper.
  for (const ex::Fig4Platform& p : r.platforms) {
    if (p.platform == "NUC GPU" || p.platform == "Arndale GPU" ||
        p.platform == "Arndale CPU") {
      EXPECT_TRUE(p.significant) << p.platform;
    }
  }
  // Capped-model errors must be small in magnitude.
  for (const ex::Fig4Platform& p : r.platforms)
    EXPECT_LT(std::abs(p.capped_summary.median), 0.1) << p.platform;
}

TEST(Fig4, ErrorDistributionsSortedByUncappedMedian) {
  ex::Fig4Options opt;
  opt.suite.intensities = {0.125, 1.0, 8.0, 64.0, 512.0};
  opt.suite.repeats = 2;
  opt.suite.target_seconds = 0.1;
  const ex::Fig4Result r = ex::run_fig4(opt);
  for (std::size_t i = 1; i < r.platforms.size(); ++i)
    EXPECT_GE(r.platforms[i - 1].uncapped_summary.median,
              r.platforms[i].uncapped_summary.median);
}

}  // namespace
