// Server engine tests: worker pool execution, response caching and
// metrics on the live path, backpressure, ordered delivery, the stdio
// transport, and graceful shutdown (every admitted request completes,
// the queue drains, counters reconcile).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/clock.hpp"

namespace {

using namespace archline::serve;

const char* kPredict =
    R"({"type":"predict","platform":"GTX Titan","flops":1e9,"intensity":4})";

ServerOptions small_options() {
  ServerOptions o;
  o.threads = 4;
  o.queue_capacity = 64;
  o.cache_capacity = 128;
  o.cache_shards = 4;
  return o;
}

TEST(ServeServer, HandleNowEvaluatesAndCaches) {
  Server server(small_options());
  const std::string a = server.handle_now(kPredict);
  const std::string b = server.handle_now(kPredict);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(Json::parse(a).bool_or("ok", false));
  const auto cache = server.cache_stats();
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.misses, 1u);
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.by_endpoint[Registry::instance().find("predict")->id], 2u);
}

TEST(ServeServer, CacheKeyIgnoresLineFraming) {
  Server server(small_options());
  (void)server.handle_now(std::string(kPredict));
  (void)server.handle_now(std::string(kPredict) + "\r");
  (void)server.handle_now("  " + std::string(kPredict));
  EXPECT_EQ(server.cache_stats().hits, 2u);
}

TEST(ServeServer, ErrorsAreNotCached) {
  Server server(small_options());
  (void)server.handle_now("garbage");
  (void)server.handle_now("garbage");
  const auto cache = server.cache_stats();
  EXPECT_EQ(cache.hits, 0u);
  EXPECT_EQ(cache.entries, 0u);
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.errors, 2u);
}

TEST(ServeServer, StatsRequestReflectsLiveCounters) {
  Server server(small_options());
  (void)server.handle_now(kPredict);
  (void)server.handle_now(kPredict);
  const Json stats = Json::parse(server.handle_now(R"({"type":"stats"})"));
  EXPECT_TRUE(stats.bool_or("ok", false));
  EXPECT_EQ(stats.find("by_type")->number_or("predict", 0), 2.0);
  EXPECT_DOUBLE_EQ(stats.find("cache")->number_or("hits", -1), 1.0);
  EXPECT_GE(stats.find("latency")->number_or("count", 0), 2.0);
  // Stats responses must never be cached (they change between calls).
  (void)server.handle_now(R"({"type":"stats"})");
  EXPECT_EQ(server.cache_stats().entries, 1u);  // only the predict
}

TEST(ServeServer, WorkerPoolCompletesAllSubmissions) {
  Server server(small_options());
  server.start();
  constexpr int kRequests = 300;
  std::atomic<int> done{0};
  std::atomic<int> ok{0};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < kRequests; ++i) {
    // Vary intensity so some requests miss the cache and some hit.
    Json req = Json::object();
    req.set("type", "predict");
    req.set("platform", "GTX Titan");
    req.set("intensity", 1.0 + (i % 10));
    while (!server.submit(req.dump(), [&](std::string&& body) {
      if (Json::parse(body).bool_or("ok", false))
        ok.fetch_add(1, std::memory_order_relaxed);
      if (done.fetch_add(1) + 1 == kRequests) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_one();
      }
    })) {
      // Backpressure: let the pool catch up, then retry.
      std::this_thread::yield();
    }
  }
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == kRequests; }));
  EXPECT_EQ(ok.load(), kRequests);
  server.shutdown();
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(kRequests));
}

TEST(ServeServer, BackpressureRejectsWhenQueueFull) {
  ServerOptions options = small_options();
  options.queue_capacity = 8;
  Server server(options);
  // Workers not started: the queue fills and then rejects.
  int admitted = 0;
  std::atomic<int> completed{0};
  while (server.submit(kPredict,
                       [&](std::string&&) { completed.fetch_add(1); })) {
    ++admitted;
    ASSERT_LE(admitted, 8);
  }
  EXPECT_EQ(admitted, 8);
  EXPECT_GE(server.metrics().snapshot().rejected, 1u);
  EXPECT_EQ(server.metrics().snapshot().queue_peak, 8u);
  // Graceful shutdown drains the queue even though start() never ran:
  // every admitted request's callback still fires.
  server.shutdown();
  EXPECT_EQ(completed.load(), admitted);
  EXPECT_EQ(server.metrics().snapshot().queue_depth, 0u);
}

TEST(ServeServer, GracefulShutdownDrainsInFlightRequests) {
  ServerOptions options = small_options();
  options.threads = 2;
  Server server(options);
  server.start();
  std::atomic<int> completed{0};
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    Json req = Json::object();
    req.set("type", "predict");
    req.set("platform", "Arndale GPU");
    req.set("intensity", 0.5 + i);  // distinct keys: all real evaluations
    if (server.submit(req.dump(),
                      [&](std::string&&) { completed.fetch_add(1); }))
      ++admitted;
  }
  server.shutdown();  // must block until the queue is fully drained
  EXPECT_EQ(completed.load(), admitted);
  EXPECT_GT(admitted, 0);
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(snap.queue_depth, 0u);
  // After shutdown, new work is refused.
  EXPECT_FALSE(server.submit(kPredict, [](std::string&&) {}));
}

TEST(ServeServer, ShutdownIsIdempotentAndDestructorSafe) {
  Server server(small_options());
  server.start();
  server.shutdown();
  server.shutdown();  // second call is a no-op
  // Destructor runs shutdown again — must not hang or crash.
}

TEST(ServeServer, RestartAfterShutdownServesAgain) {
  // Regression: shutdown() used to close the queue permanently,
  // so a restarted server spawned workers that exited immediately while
  // submit() rejected everything. start() must reopen the queue.
  Server server(small_options());
  server.start();
  std::atomic<int> completed{0};
  ASSERT_TRUE(server.submit(kPredict,
                            [&](std::string&&) { completed.fetch_add(1); }));
  server.shutdown();
  EXPECT_EQ(completed.load(), 1);
  EXPECT_FALSE(server.running());
  // While shut down, admission is refused…
  EXPECT_FALSE(server.submit(kPredict, [](std::string&&) {}));

  // …and a restart serves exactly like a fresh server.
  server.start();
  EXPECT_TRUE(server.running());
  std::mutex m;
  std::condition_variable cv;
  std::string body;
  ASSERT_TRUE(server.submit(kPredict, [&](std::string&& response) {
    {
      std::lock_guard<std::mutex> lock(m);
      body = std::move(response);
    }
    cv.notify_one();
  }));
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return !body.empty(); }));
  EXPECT_TRUE(Json::parse(body).bool_or("ok", false));
  server.shutdown();
  EXPECT_EQ(server.metrics().snapshot().completed, 2u);
}

TEST(ServeServer, ExpiredDeadlineAnswersWithoutExecuting) {
  // Workers not started: jobs sit in the queue past their deadline, and
  // the shutdown drain must answer them with the canned deadline error
  // (same code path the worker loop uses).
  Server server(small_options());
  std::vector<std::string> bodies;
  const auto past = Server::Clock::now() - std::chrono::milliseconds(1);
  ASSERT_TRUE(server.submit(
      kPredict, [&](std::string&& b) { bodies.push_back(std::move(b)); },
      past));
  // No deadline: must execute normally even on the drain path.
  ASSERT_TRUE(server.submit(
      kPredict, [&](std::string&& b) { bodies.push_back(std::move(b)); },
      Server::Clock::time_point::max()));
  server.shutdown();
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(Json::parse(bodies[0]).string_or("error", ""),
            "deadline_exceeded");
  EXPECT_TRUE(Json::parse(bodies[1]).bool_or("ok", false));
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  // The expired job was answered, not executed: only one completion.
  EXPECT_EQ(snap.completed, 1u);
}

TEST(ServeServer, DefaultDeadlineComesFromOptions) {
  // On a SimClock the deadline is exact: one tick past the configured
  // 10 ms expires the queued job; see the boundary test below for the
  // other side. Workers never start, so the only executor is the
  // shutdown drain — the expiry decision is fully deterministic.
  archline::sim::SimClock clock;
  ServerOptions options = small_options();
  options.request_deadline_ms = 10;
  options.clock = &clock;
  Server server(options);
  std::string body;
  ASSERT_TRUE(
      server.submit(kPredict, [&](std::string&& b) { body = std::move(b); }));
  clock.advance(std::chrono::milliseconds(10) + std::chrono::nanoseconds(1));
  server.shutdown();  // drains; the job expired 1 ns ago
  EXPECT_EQ(Json::parse(body).string_or("error", ""), "deadline_exceeded");
  EXPECT_EQ(server.metrics().snapshot().deadline_exceeded, 1u);
}

TEST(ServeServer, DeadlineBoundaryIsExclusive) {
  // run_job expires a queued request only when now() is strictly past
  // its deadline: a job drained exactly AT the deadline still executes.
  // Unobservable with wall clocks, a one-liner with a SimClock.
  archline::sim::SimClock clock;
  ServerOptions options = small_options();
  options.request_deadline_ms = 10;
  options.clock = &clock;
  Server server(options);
  std::string body;
  ASSERT_TRUE(
      server.submit(kPredict, [&](std::string&& b) { body = std::move(b); }));
  clock.advance_ms(10);  // exactly at the deadline, not past it
  server.shutdown();
  EXPECT_TRUE(Json::parse(body).bool_or("ok", false));
  EXPECT_EQ(server.metrics().snapshot().deadline_exceeded, 0u);
}

TEST(ServeServer, OrderedWriterRestoresSubmissionOrder) {
  std::vector<std::string> out;
  OrderedWriter writer([&](const std::string& body) { out.push_back(body); });
  const auto s0 = writer.next_sequence();
  const auto s1 = writer.next_sequence();
  const auto s2 = writer.next_sequence();
  writer.complete(s2, "two");   // finishes first, must be buffered
  writer.complete(s0, "zero");  // releases zero only
  EXPECT_EQ(out, (std::vector<std::string>{"zero"}));
  writer.complete(s1, "one");   // releases one, then buffered two
  writer.drain();
  EXPECT_EQ(out, (std::vector<std::string>{"zero", "one", "two"}));
  EXPECT_EQ(writer.pending(), 0u);
}

TEST(ServeServer, RunStreamPreservesOrderAndHandlesBadLines) {
  Server server(small_options());
  server.start();
  std::istringstream in(
      std::string(kPredict) + "\n" +
      "not json\n" +
      "\n" +  // blank lines are skipped, not answered
      R"({"type":"platforms"})" + "\n" +
      R"({"type":"stats"})" + "\n");
  std::ostringstream out;
  run_stream(server, in, out);
  server.shutdown();
  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(Json::parse(lines[0]).string_or("type", ""), "predict");
  EXPECT_EQ(Json::parse(lines[1]).string_or("error", ""), "parse_error");
  EXPECT_EQ(Json::parse(lines[2]).string_or("type", ""), "platforms");
  EXPECT_EQ(Json::parse(lines[3]).string_or("type", ""), "stats");
}

// ---- Lanes ------------------------------------------------------------------

/// A small fit request (6 observations): Heavy class, a few hundred µs
/// of solver work. Distinct `seed` values defeat the response cache.
std::string fit_request(int seed) {
  Json obs = Json::array();
  for (int p = 0; p < 6; ++p) {
    const double intensity = std::exp2(-2.0 + p);
    const double flops = 1e9 + seed;
    const double bytes = flops / intensity;
    const double t = std::max(flops * 3e-11, bytes * 1.2e-10);
    Json row = Json::object();
    row.set("flops", flops);
    row.set("bytes", bytes);
    row.set("seconds", t);
    row.set("joules", flops * 4.7e-11 + bytes * 3.8e-10 + 2.7 * t);
    obs.push_back(std::move(row));
  }
  Json req = Json::object();
  req.set("type", "fit");
  req.set("observations", std::move(obs));
  return req.dump();
}

TEST(ServeServer, HeavyLaneFullStillAdmitsLightRequests) {
  // Workers not started: pushes pile up per lane. Once the heavy lane
  // is full, fit submissions bounce while predicts keep getting in —
  // the isolation property the lanes exist for.
  ServerOptions options = small_options();
  options.heavy_lane_capacity = 2;
  Server server(options);
  std::atomic<int> completed{0};
  const auto count = [&](std::string&&) { completed.fetch_add(1); };
  ASSERT_TRUE(server.submit(fit_request(0), count));
  ASSERT_TRUE(server.submit(fit_request(1), count));
  EXPECT_FALSE(server.submit(fit_request(2), count));  // heavy lane full
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(server.submit(kPredict, count)) << i;
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.lanes[kHeavyLane].rejected, 1u);
  EXPECT_EQ(snap.lanes[kLightLane].rejected, 0u);
  EXPECT_EQ(snap.lanes[kHeavyLane].peak, 2u);
  EXPECT_EQ(snap.lanes[kLightLane].peak, 4u);
  server.shutdown();  // drain answers all six admitted requests
  EXPECT_EQ(completed.load(), 6);
}

TEST(ServeServer, DisabledHeavyLaneRoutesEverythingLight) {
  ServerOptions options = small_options();
  options.heavy_lane_capacity = 0;  // pre-lane unified behavior
  Server server(options);
  std::atomic<int> completed{0};
  ASSERT_TRUE(server.submit(fit_request(0),
                            [&](std::string&&) { completed.fetch_add(1); }));
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.lanes[kLightLane].depth, 1u);
  EXPECT_EQ(snap.lanes[kHeavyLane].depth, 0u);
  server.shutdown();
  EXPECT_EQ(completed.load(), 1);
}

TEST(ServeServer, HeavyDeadlineOverridesDefault) {
  // Heavy deadline 1 ms, light deadline none: advance sim time past the
  // heavy deadline and the queued fit expires while the queued predict
  // still executes on the drain.
  archline::sim::SimClock clock;
  ServerOptions options = small_options();
  options.request_deadline_ms = 0;
  options.heavy_deadline_ms = 1;
  options.clock = &clock;
  Server server(options);
  std::string fit_body;
  std::string predict_body;
  ASSERT_TRUE(server.submit(fit_request(0), [&](std::string&& b) {
    fit_body = std::move(b);
  }));
  ASSERT_TRUE(server.submit(kPredict, [&](std::string&& b) {
    predict_body = std::move(b);
  }));
  clock.advance_ms(2);
  server.shutdown();
  EXPECT_EQ(Json::parse(fit_body).string_or("error", ""),
            "deadline_exceeded");
  EXPECT_TRUE(Json::parse(predict_body).bool_or("ok", false));
  const auto snap = server.metrics().snapshot();
  EXPECT_EQ(snap.lanes[kHeavyLane].deadline_exceeded, 1u);
  EXPECT_EQ(snap.lanes[kLightLane].deadline_exceeded, 0u);
}

TEST(ServeServer, PredictP99StaysBoundedUnderFitFlood) {
  // The starvation property, in miniature: saturate the heavy lane with
  // fits, then check that concurrently submitted predicts all complete
  // and none is stuck behind the flood. With heavy execution capped at
  // one worker, the other workers stay dedicated to the light lane.
  ServerOptions options = small_options();
  options.threads = 4;
  options.heavy_workers = 1;
  options.heavy_lane_capacity = 16;
  Server server(options);
  server.start();
  std::atomic<int> fit_done{0};
  std::atomic<int> predict_done{0};
  int fits_admitted = 0;
  for (int i = 0; i < 16; ++i)
    if (server.submit(fit_request(i),
                      [&](std::string&&) { fit_done.fetch_add(1); }))
      ++fits_admitted;
  std::mutex m;
  std::condition_variable cv;
  constexpr int kPredicts = 100;
  for (int i = 0; i < kPredicts; ++i) {
    Json req = Json::object();
    req.set("type", "predict");
    req.set("platform", "GTX Titan");
    req.set("intensity", 1.0 + i);
    while (!server.submit(req.dump(), [&](std::string&&) {
      if (predict_done.fetch_add(1) + 1 == kPredicts) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_one();
      }
    })) {
      std::this_thread::yield();
    }
  }
  {
    std::unique_lock<std::mutex> lock(m);
    // All predicts complete long before the fit backlog could drain
    // through a single shared queue.
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return predict_done.load() == kPredicts; }));
  }
  server.shutdown();
  EXPECT_EQ(predict_done.load(), kPredicts);
  EXPECT_EQ(fit_done.load(), fits_admitted);
}

TEST(ServeServer, ConcurrentSubmittersAndCacheConsistency) {
  // Many threads hammer a small key set through the full submit path;
  // every response for a key must be byte-identical to every other.
  Server server(small_options());
  server.start();
  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  std::vector<std::string> requests;
  for (int k = 0; k < 5; ++k) {
    Json req = Json::object();
    req.set("type", "predict");
    req.set("platform", "Xeon Phi");
    req.set("intensity", 1 << k);
    requests.push_back(req.dump());
  }
  std::mutex seen_mutex;
  std::vector<std::string> canonical(requests.size());
  std::atomic<int> mismatches{0};
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t k =
            static_cast<std::size_t>(t + i) % requests.size();
        while (!server.submit(requests[k], [&, k](std::string&& body) {
          {
            std::lock_guard<std::mutex> lock(seen_mutex);
            if (canonical[k].empty())
              canonical[k] = body;
            else if (canonical[k] != body)
              mismatches.fetch_add(1);
          }
          done.fetch_add(1);
        })) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.shutdown();
  EXPECT_EQ(done.load(), kThreads * kPerThread);
  EXPECT_EQ(mismatches.load(), 0);
  // With 5 keys and 1200 requests, nearly everything is a cache hit.
  EXPECT_GT(server.cache_stats().hit_rate(), 0.9);
}

}  // namespace
